"""Ablation — guarded vs literal (flooding) edge-parallel update.

Algorithm 4 as printed never checks that an arc's tail was touched, so
a literal implementation floods the whole cone below the insertion
level (see :mod:`repro.bc.flood`).  This benchmark measures how much
the guard is worth on a deep graph — part of the explanation for the
edge-parallel strategy's poor showing in Table II.
"""

import numpy as np
import pytest

from repro.bc.accountants import make_accountant
from repro.bc.brandes import single_source_state
from repro.bc.cases import Case, classify_insertion
from repro.bc.flood import flood_adjacent_level_update
from repro.bc.update_core import adjacent_level_update
from repro.gpu.costmodel import CostModel
from repro.gpu.device import TESLA_C2075
from repro.graph.dynamic import DynamicGraph
from repro.graph.suite import make_suite_graph
from repro.utils.prng import default_rng


def _case2_pairs(graph, source, count, seed):
    d, _, _, _ = single_source_state(graph, source)
    rng = default_rng(seed)
    pairs = []
    for u, v in graph.undirected_non_edges(rng, 2000).tolist():
        case, high, low = classify_insertion(d, u, v)
        if case == Case.ADJACENT_LEVEL:
            pairs.append((high, low))
            if len(pairs) == count:
                break
    return pairs


def _apply(fn, graph_before, source, pairs, **kwargs):
    model = CostModel(TESLA_C2075)
    total = 0.0
    touched = 0
    for u_high, u_low in pairs:
        dyn = DynamicGraph.from_csr(graph_before)
        dyn.insert_edge(u_high, u_low)
        after = dyn.snapshot()
        d, sigma, delta, _ = single_source_state(graph_before, source)
        delta[source] = 0.0
        bc = np.zeros(graph_before.num_vertices)
        acc = make_accountant("gpu-edge", after.num_vertices,
                              2 * after.num_edges)
        stats = fn(after, source, d, sigma, delta, bc, u_high, u_low, acc,
                   **kwargs)
        total += model.trace_seconds(acc.finish())
        touched += stats.touched
    return total, touched


def test_flood_vs_guarded(benchmark, bench_config, save_artifact):
    # 'del' is the deep graph where flooding hurts most
    bench = make_suite_graph("del", scale=bench_config.scale,
                             seed=bench_config.seed)
    graph = bench.graph
    source = 0
    pairs = _case2_pairs(graph, source, 5, bench_config.seed)
    assert pairs

    def run():
        guarded = _apply(adjacent_level_update, graph, source, pairs,
                         insert=True)
        flood = _apply(flood_adjacent_level_update, graph, source, pairs)
        return guarded, flood

    (g_time, g_touch), (f_time, f_touch) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    lines = [
        "Ablation: guarded vs literal (flooding) edge-parallel Case-2 update",
        f"  graph: del (n={graph.num_vertices}), {len(pairs)} insertions, "
        "one source",
        f"  guarded: {g_time * 1e3:9.3f} ms simulated, {g_touch:7d} touched",
        f"  flood  : {f_time * 1e3:9.3f} ms simulated, {f_touch:7d} touched",
        f"  flood amplification: {f_time / g_time:5.2f}x time, "
        f"{f_touch / max(1, g_touch):5.1f}x touched vertices",
    ]
    save_artifact("ablation_flood.txt", "\n".join(lines))
    assert f_touch >= g_touch
    assert f_time >= g_time * 0.99
