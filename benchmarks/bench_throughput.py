"""Streaming throughput — updates per second under each strategy.

§I motivates dynamic analytics with update volume: "The tremendous
volume of updates to social networks and the web demands a high
throughput solution that can process many updates in a given unit
time."  This benchmark drives each backend through the same Poisson
edge stream and reports sustained simulated updates/second, plus the
wall-clock throughput of the vectorized execution itself.
"""

import pytest

from repro.bc.engine import DynamicBC
from repro.graph.stream import EdgeStream, replay
from repro.graph.suite import make_suite_graph


@pytest.mark.parametrize("backend", ["cpu", "gpu-edge", "gpu-node"])
def test_stream_throughput(benchmark, backend, bench_config, save_artifact):
    bench = make_suite_graph("pref", scale=bench_config.scale,
                             seed=bench_config.seed)
    stream = EdgeStream.poisson_growth(bench.graph,
                                       bench_config.num_insertions,
                                       seed=bench_config.seed)

    def run():
        engine = DynamicBC.from_graph(
            bench.graph, num_sources=bench_config.num_sources,
            backend=backend, seed=bench_config.seed,
        )
        return replay(engine, stream)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_artifact(
        f"throughput_{backend}.txt",
        f"Streaming throughput on 'pref' ({backend}): "
        f"{result.updates_per_second:,.0f} updates/s simulated, "
        f"{len(result.reports) / result.wall_seconds:,.1f} updates/s "
        "wall-clock (vectorized host execution)",
    )
    assert result.updates_per_second > 0
