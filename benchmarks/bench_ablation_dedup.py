"""Ablation — duplicate-removal strategy in the node-parallel kernels.

§III-A describes two designs for keeping ``Q2`` duplicate-free:

* the paper's choice: allow duplicates, then bitonic-sort + prefix-sum
  compact ("similar to Merrill et al. [19]");
* the rejected alternative: atomic test-and-set on ``t[w]`` so only one
  thread enqueues each vertex.

Both are implemented as first-class backends; this benchmark replays
the same stream under each and compares simulated cost and atomic
pressure.
"""

import pytest

from repro.analysis.protocol import replay_stream


@pytest.mark.parametrize("backend", ["gpu-node", "gpu-node-atomic"])
def test_dedup_strategy(benchmark, backend, bench_config):
    run = benchmark.pedantic(
        replay_stream, args=(bench_config, "kron", backend),
        rounds=1, iterations=1,
    )
    run.engine.verify()


def test_dedup_comparison(benchmark, bench_config, save_artifact):
    def compare():
        sort_run = replay_stream(bench_config, "kron", "gpu-node")
        atomic_run = replay_stream(bench_config, "kron", "gpu-node-atomic")
        return sort_run, atomic_run

    sort_run, atomic_run = benchmark.pedantic(compare, rounds=1, iterations=1)
    lines = [
        "Ablation: Q2 duplicate-removal strategy (graph: kron)",
        f"  sort+scan pipeline : {sort_run.total_simulated * 1e3:9.3f} ms "
        f"simulated, {sort_run.engine.counters.atomic_ops:,} atomics",
        f"  atomic test-and-set: {atomic_run.total_simulated * 1e3:9.3f} ms "
        f"simulated, {atomic_run.engine.counters.atomic_ops:,} atomics",
    ]
    ratio = atomic_run.total_simulated / sort_run.total_simulated
    lines.append(f"  atomic/sort cost ratio: {ratio:.2f}x")
    save_artifact("ablation_dedup.txt", "\n".join(lines))
    # the atomic variant must pay more atomic operations per update
    assert atomic_run.engine.counters.atomic_ops > \
        sort_run.engine.counters.atomic_ops
    # and both must produce identical analytics
    import numpy as np

    assert np.allclose(sort_run.engine.bc_scores,
                       atomic_run.engine.bc_scores)
