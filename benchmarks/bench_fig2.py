"""Fig. 2 — distribution of update scenarios across the suite.

The paper pools 100 insertions x k sources per graph and finds Case 2
(adjacent levels) is the dominant work-requiring scenario (73.5% of
Cases 2+3), motivating the Case-2 kernel focus.
"""

import pytest

from repro.analysis.report import render_fig2
from repro.analysis.scenarios import aggregate, run_scenario_study


def test_fig2_scenario_distribution(benchmark, bench_config, save_artifact):
    results = benchmark.pedantic(
        run_scenario_study, args=(bench_config,), rounds=1, iterations=1
    )
    save_artifact("fig2.txt", render_fig2(results))
    agg = aggregate(results)
    expected = bench_config.num_insertions * bench_config.num_sources
    assert all(r.total == expected for r in results)
    # Case 2 dominates the work-requiring scenarios (paper: 73.5%)
    assert agg.case2_share_of_work > 0.5
