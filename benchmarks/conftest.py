"""Shared benchmark configuration.

Every benchmark regenerates one table or figure of the paper (see
DESIGN.md §4) at a scale that keeps the whole suite in the minutes
range, and writes the rendered artifact to ``benchmarks/output/``.
Scale up via environment variables for paper-regime runs::

    REPRO_BENCH_SCALE=20 REPRO_BENCH_SOURCES=128 REPRO_BENCH_INSERTIONS=50 \
        pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.analysis.config import ExperimentConfig

OUTPUT_DIR = Path(__file__).parent / "output"

#: machine-readable benchmark results, one JSON object keyed by
#: section name, written at the repo root so CI and scripts can diff
#: runs without parsing rendered text artifacts
BENCH_JSON = Path(__file__).parent.parent / "BENCH_parallel.json"

#: the service-layer benchmark's artifact (same merge semantics)
BENCH_SERVICE_JSON = Path(__file__).parent.parent / "BENCH_service.json"


def _merge_section(path: Path, section: str, payload: dict) -> None:
    """Merge one ``{section: payload}`` entry into the JSON document at
    *path* (sections accumulate across independent pytest runs)."""
    data = {}
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            data = {}
    data[section] = payload
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    print(f"[recorded section {section!r} in {path.name}]")


def _env_float(name: str, default: float) -> float:
    return float(os.environ.get(name, default))


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    return ExperimentConfig(
        scale=_env_float("REPRO_BENCH_SCALE", 1.0),
        num_sources=_env_int("REPRO_BENCH_SOURCES", 32),
        num_insertions=_env_int("REPRO_BENCH_INSERTIONS", 10),
        seed=_env_int("REPRO_BENCH_SEED", 2014),
    )


@pytest.fixture(scope="session")
def artifact_dir() -> Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture(scope="session")
def save_artifact(artifact_dir):
    def _save(name: str, text: str) -> None:
        (artifact_dir / name).write_text(text + "\n")
        print(f"\n{text}\n[saved to benchmarks/output/{name}]")

    return _save


@pytest.fixture(scope="session")
def record_bench():
    """Merge one section into ``BENCH_parallel.json`` at the repo root.

    Sections are merged (not clobbered) so independent pytest
    invocations — the serial-vs-workers sweep, the update-path
    benchmark — accumulate into one machine-readable file.
    """

    def _record(section: str, payload: dict) -> None:
        _merge_section(BENCH_JSON, section, payload)

    return _record


@pytest.fixture(scope="session")
def record_service_bench():
    """Merge one section into ``BENCH_service.json`` at the repo root
    (one section per traffic profile; the CI service job uploads the
    file as an artifact)."""

    def _record(section: str, payload: dict) -> None:
        _merge_section(BENCH_SERVICE_JSON, section, payload)

    return _record
