"""Ablation — approximation quality vs number of source vertices.

§II-B adopts k-source approximation (Brandes & Pich [11]) and §IV fixes
k = 256 following the SSCA guidelines.  This benchmark sweeps k on one
suite graph and records ranking agreement with exact BC plus the
simulated GPU cost, showing the accuracy/cost knee.
"""

import numpy as np
import pytest

from repro.bc.accuracy import ranking_metrics
from repro.bc.brandes import brandes_bc
from repro.bc.static_gpu import static_bc_gpu
from repro.gpu.device import TESLA_C2075
from repro.graph.suite import make_suite_graph
from repro.utils.prng import default_rng, sample_without_replacement


def test_k_sweep(benchmark, bench_config, save_artifact):
    bench = make_suite_graph("small", scale=bench_config.scale,
                             seed=bench_config.seed)
    graph = bench.graph
    n = graph.num_vertices
    exact = brandes_bc(graph)
    rng = default_rng(bench_config.seed)

    def sweep():
        rows = []
        for k in (8, 32, 128, min(512, n)):
            sources = sample_without_replacement(rng, n, k)
            res = static_bc_gpu(graph, sources=sources, strategy="gpu-edge")
            metrics = ranking_metrics(res.bc * (n / k), exact, k=10)
            cost = res.timing(TESLA_C2075).total_seconds
            rows.append((k, metrics["top_k_overlap"],
                         metrics["kendall_tau_topk"], cost))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["Ablation: approximation quality vs k (graph: small)",
             f"  {'k':>5s} {'top10':>7s} {'tau':>7s} {'cost(ms)':>9s}"]
    for k, overlap, tau, cost in rows:
        lines.append(f"  {k:5d} {overlap:7.0%} {tau:7.3f} {cost * 1e3:9.2f}")
    save_artifact("ablation_k.txt", "\n".join(lines))
    # more sources cannot hurt top-k recovery (weak monotonicity at ends)
    assert rows[-1][1] >= rows[0][1]
    # cost grows with k
    costs = [r[3] for r in rows]
    assert costs == sorted(costs)
