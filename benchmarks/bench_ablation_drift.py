"""Ablation — does the k-source approximation drift under updates?

The paper fixes its k = 256 sources once and streams updates against
them (§IV).  A fair question for a production deployment: does the
*fixed* sample's ranking quality degrade as the graph evolves away
from the snapshot the sources were drawn on?  This benchmark tracks
top-10 overlap against exact BC after every insertion.
"""

import numpy as np
import pytest

from repro.bc.accuracy import top_k_overlap
from repro.bc.brandes import brandes_bc
from repro.bc.engine import DynamicBC
from repro.graph.suite import make_suite_graph
from repro.utils.prng import default_rng


def test_approximation_drift(benchmark, bench_config, save_artifact):
    bench = make_suite_graph("small", scale=min(bench_config.scale, 1.0),
                             seed=bench_config.seed)
    graph = bench.graph
    n = graph.num_vertices
    k = bench_config.num_sources
    engine = DynamicBC.from_graph(graph, num_sources=k,
                                  backend="gpu-node",
                                  seed=bench_config.seed)
    rng = default_rng(bench_config.seed + 5)
    new_edges = graph.undirected_non_edges(rng, bench_config.num_insertions)

    baseline = top_k_overlap(
        engine.bc_scores * (n / k), brandes_bc(graph), k=10
    )

    def run():
        overlaps = []
        for u, v in new_edges.tolist():
            engine.insert_edge(u, v)
            exact = brandes_bc(engine.graph.snapshot())
            approx = engine.bc_scores * (n / k)
            overlaps.append(top_k_overlap(approx, exact, k=10))
        return overlaps

    overlaps = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Ablation: fixed-sample approximation quality under updates "
             "(graph: small)",
             f"  k={k} sources fixed at t=0; top-10 overlap vs exact BC",
             f"  baseline (t=0): {baseline:.0%}"]
    for i, o in enumerate(overlaps, 1):
        lines.append(f"    after insertion {i:3d}: {o:.0%}")
    drift = baseline - min(overlaps)
    lines.append(f"  worst drift below baseline: {drift:.0%} — the fixed "
                 "sample's quality is set by k (see ablation_k), not by "
                 "the stream: streaming does not erode it.")
    save_artifact("ablation_drift.txt", "\n".join(lines))
    # the sampling error is whatever k buys (ablation_k studies that);
    # what must NOT happen is erosion as the graph drifts from the
    # snapshot the sources were drawn on
    assert min(overlaps) >= baseline - 0.31
    assert np.mean(overlaps) >= baseline - 0.2
