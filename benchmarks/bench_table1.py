"""Table I — the benchmark graph suite.

Benchmarks suite generation and renders the Table-I analog (sizes,
degree statistics, diameter, clustering) for the generated graphs.
"""

import pytest

from repro.analysis.report import render_table1
from repro.graph.properties import analyze
from repro.graph.suite import SUITE_SPECS, load_suite, make_suite_graph


@pytest.mark.parametrize("name", sorted(SUITE_SPECS))
def test_generate_suite_graph(benchmark, name, bench_config):
    """Generation cost of each suite graph class."""
    bench = benchmark(
        make_suite_graph, name, bench_config.scale, bench_config.seed
    )
    assert bench.graph.num_edges > 0


def test_render_table1(benchmark, bench_config, save_artifact):
    suite = load_suite(scale=bench_config.scale, seed=bench_config.seed)
    graphs = [suite[name] for name in sorted(suite)]

    def run():
        props = [analyze(b.graph, clustering_samples=500) for b in graphs]
        return render_table1(graphs, props)

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    save_artifact("table1.txt", table)
