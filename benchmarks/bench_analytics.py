"""Extension — dynamic distance oracle and derived centralities.

§VI: "there are plenty of other graph algorithms that can benefit from
either dynamic implementations or parallelism".  This benchmark drives
the k-source distance oracle (the ``d`` half of the BC state) through
the same insertion stream and measures its update cost, plus the cost
of refreshing closeness/harmonic centralities from the maintained rows.
"""

import numpy as np
import pytest

from repro.analytics.closeness import (
    closeness_of_sources,
    harmonic_centrality_estimate,
)
from repro.analytics.distances import DynamicDistances
from repro.analysis.protocol import prepare_stream


def test_distance_oracle_stream(benchmark, bench_config, save_artifact):
    bench, dyn, removed = prepare_stream(bench_config, "small")

    def run():
        oracle = DynamicDistances.with_random_sources(
            dyn, bench_config.num_sources, seed=bench_config.seed
        )
        total = sum(
            oracle.insert_edge(int(u), int(v)).simulated_seconds
            for u, v in removed
        )
        return oracle, total

    oracle, total = benchmark.pedantic(run, rounds=1, iterations=1)
    oracle.verify()
    close = closeness_of_sources(oracle)
    harm = harmonic_centrality_estimate(oracle)
    save_artifact(
        "analytics_distances.txt",
        "Extension: dynamic distance oracle on 'small'\n"
        f"  {len(removed)} insertions maintained in {total * 1e3:.3f} ms "
        "simulated\n"
        f"  closeness of sources: mean {close.mean():.4f}\n"
        f"  harmonic estimate: top vertex {int(np.argmax(harm))} "
        f"(score {harm.max():.1f})",
    )
    assert total > 0
    assert np.all(close >= 0)


def test_centrality_refresh_cost(benchmark, bench_config):
    bench, dyn, removed = prepare_stream(bench_config, "small")
    oracle = DynamicDistances.with_random_sources(
        dyn, bench_config.num_sources, seed=bench_config.seed
    )

    def refresh():
        return (closeness_of_sources(oracle),
                harmonic_centrality_estimate(oracle))

    close, harm = benchmark(refresh)
    assert close.shape == (oracle.num_sources,)
    assert harm.shape == (oracle.graph.num_vertices,)
