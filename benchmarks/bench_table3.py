"""Table III — node-parallel updates vs full GPU recomputation.

Compares the static edge-parallel recomputation time (Jia et al., the
paper's baseline) against the slowest / average / fastest single
dynamic update per graph.  Paper headline: 45x average, with
all-Case-1 insertions (fastest) bounded only by classification time.
"""

import numpy as np
import pytest

from repro.analysis.report import render_headline, render_table3
from repro.analysis.speedup import (
    run_table2,
    run_table3,
    summarize_headline,
)


def test_table3_update_vs_recompute(benchmark, bench_config, save_artifact):
    rows = benchmark.pedantic(
        run_table3, args=(bench_config,), rounds=1, iterations=1
    )
    save_artifact("table3.txt", render_table3(rows))
    for row in rows:
        assert row.fastest <= row.average <= row.slowest
        # updates beat recomputation on average for every graph
        assert row.average_speedup > 1.0, row.graph_name
    # aggregate: the paper reports a 45x mean speedup
    mean = float(np.mean([r.average_speedup for r in rows]))
    assert mean > 2.0


def test_headline_summary(benchmark, bench_config, save_artifact):
    def run():
        t2 = run_table2(bench_config)
        t3 = run_table3(bench_config)
        return summarize_headline(t2, t3)

    head = benchmark.pedantic(run, rounds=1, iterations=1)
    save_artifact("headline.txt", render_headline(head))
    assert head.max_cpu_speedup > 1.0
    assert head.mean_update_vs_recompute > 1.0
