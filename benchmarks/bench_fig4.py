"""Fig. 4 — portion of the graph touched per Case-2 scenario.

The paper records, for all ~63k Case-2 scenarios across the suite, the
fraction of vertices with ``t != untouched``; the distribution is
bottom-heavy (median far below 1%) with a tail reaching ~35%.  This is
the empirical argument for work-efficient (node-parallel) mapping.
"""

import numpy as np
import pytest

from repro.analysis.report import render_fig4
from repro.analysis.touched import run_touched_study


def test_fig4_touched_fractions(benchmark, bench_config, save_artifact):
    studies = benchmark.pedantic(
        run_touched_study, args=(bench_config,), rounds=1, iterations=1
    )
    save_artifact("fig4.txt", render_fig4(studies))
    pooled = np.concatenate([s.fractions for s in studies if s.count])
    assert pooled.size > 0
    # bottom-heavy distribution: typical scenario touches a small part
    assert np.median(pooled) < 0.25
    # and nothing can exceed the whole graph
    assert pooled.max() <= 1.0
