"""Ablation — quantifying §V's wasted-work argument.

Replays one stream under all three strategies and compares charged work
items, memory traffic and atomics against the sequential baseline's
useful work.  Edge-parallel's efficiency collapses as |E| grows; the
node-parallel strategy stays within a small constant of useful work.
"""

import pytest

from repro.analysis.waste import render_waste, run_waste_study


@pytest.mark.parametrize("graph_name", ["small", "kron"])
def test_work_efficiency(benchmark, graph_name, bench_config, save_artifact):
    study = benchmark.pedantic(
        run_waste_study, args=(bench_config, graph_name),
        rounds=1, iterations=1,
    )
    save_artifact(f"ablation_waste_{graph_name}.txt", render_waste(study))
    rows = study.by_backend()
    assert rows["gpu-node"].efficiency > rows["gpu-edge"].efficiency
    assert rows["gpu-edge"].bytes_moved > rows["gpu-node"].bytes_moved
