"""Replication benchmark: lag distribution and failover RTO.

Two rows land in ``BENCH_service.json`` at the repo root:

* ``replication`` — a primary :class:`~repro.service.BCService` and a
  hot-standby :class:`~repro.service.ReplicaService` tailing its
  journal, with the replica's lag (in records, sampled at every
  durable ack) summarised as p50/p99/max, plus the wall time of an
  in-process epoch-fenced promotion (the control-plane share of RTO).
* ``failover-drill`` — the full kill-the-primary drill
  (:func:`~repro.resilience.drill.run_failover_drill`): SIGKILL a
  real serve subprocess mid-stream, promote the live standby, and
  record end-to-end RTO (kill to writable) across seeds.

As everywhere in the service suite, correctness is *asserted*, not
just measured: the replica must converge bit-identical to a plain
replay twin, promotion must lose zero acked writes, and the drill's
oracle checks must pass — the latency numbers describe a correct
failover, or the bench fails.
"""

import asyncio
import time

import numpy as np
import pytest

from repro.bc.engine import DynamicBC
from repro.graph import generators as gen
from repro.graph.dynamic import DynamicGraph
from repro.graph.stream import EdgeStream, replay
from repro.resilience.drill import run_failover_drill
from repro.service import BCService, ReplicaService

pytestmark = [pytest.mark.service, pytest.mark.replication]

KRON_SCALE = 10  # n = 2^10 = 1024 vertices (matches bench_service)
NUM_SOURCES = 64
NUM_WRITES = 160
MAX_BATCH = 16
SEED = 2014
DRILL_SEEDS = (0, 1)
DRILL_OPS = 120


def _build_engine(graph):
    return DynamicBC.from_graph(DynamicGraph.from_csr(graph),
                                num_sources=NUM_SOURCES, seed=SEED)


def _percentiles(samples):
    arr = np.asarray(samples, dtype=np.float64)
    return {
        "count": int(arr.size),
        "p50": float(np.percentile(arr, 50)),
        "p99": float(np.percentile(arr, 99)),
        "max": float(arr.max()),
        "mean": float(arr.mean()),
    }


def test_replication_lag_and_promotion(benchmark, save_artifact,
                                       record_service_bench, tmp_path):
    graph = gen.kronecker(KRON_SCALE, seed=SEED)
    stream = EdgeStream.churn(graph, NUM_WRITES, seed=SEED + 1)
    events = list(stream)

    def run():
        primary = _build_engine(graph)
        standby = _build_engine(graph)
        lag_samples = []
        out = {}

        async def main():
            svc = BCService(primary, max_batch=MAX_BATCH,
                            wal_dir=tmp_path / "wal")
            replica = ReplicaService(standby, tmp_path / "wal",
                                     replica_id="bench")
            async with svc, replica:
                for event in events:
                    seq = await svc.submit(event)
                    # Lag at the moment of the durable ack: how many
                    # acked records the replica has not yet applied.
                    lag_samples.append(max(0, seq + 1 - replica.watermark))
                await svc.drain()
                converge_start = time.monotonic()
                while replica.watermark < svc.watermark:
                    await asyncio.sleep(0.001)
                out["convergence_seconds"] = (
                    time.monotonic() - converge_start)
                out["replica_health"] = replica.health_report()
            # Primary stopped (the graceful stand-in for the drill's
            # SIGKILL); fail over in-process to time the control plane.
            await replica.stop()
            promotion = replica.promote()
            out["promotion"] = promotion
            return svc

        svc = asyncio.run(main())
        return svc, lag_samples, out, primary, standby

    svc, lag_samples, out, primary, standby = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    promotion = out["promotion"]
    try:
        # Differential correctness: the replica (now promoted) is
        # bit-identical to a plain replay twin of the same stream.
        twin = _build_engine(graph)
        try:
            replay(twin, stream)
            assert np.array_equal(standby.bc_scores, twin.bc_scores)
            assert standby.counters == twin.counters
        finally:
            twin.close()
        # Zero acked-write loss at the promotion boundary.
        assert promotion.watermark == NUM_WRITES
        assert promotion.epoch >= 1
    finally:
        promotion.wal.close()
        primary.close()
        standby.close()

    lag = _percentiles(lag_samples)
    health = out["replica_health"]
    record_service_bench("replication", {
        "graph": f"kronecker(scale={KRON_SCALE})",
        "num_vertices": graph.num_vertices,
        "num_edges": graph.num_edges,
        "num_sources": NUM_SOURCES,
        "writes": NUM_WRITES,
        "seed": SEED,
        "max_batch": MAX_BATCH,
        "bit_identical": True,
        "lag_records": lag,
        "convergence_seconds": out["convergence_seconds"],
        "promote_seconds": promotion.seconds,
        "promoted_epoch": promotion.epoch,
        "promotion_watermark": promotion.watermark,
        "records_sealed_at_promotion": promotion.replayed,
        "replica_batches": health["replication"]["batches"],
        "records_applied": health["replication"]["records_applied"],
        "tailer_polls": health["polls"],
        "tailer_rotations": health["rotations"],
    })
    save_artifact("replication_lag.txt", "\n".join([
        f"Hot-standby replication — kronecker(scale={KRON_SCALE}) "
        f"(n={graph.num_vertices}, m={graph.num_edges}, "
        f"k={NUM_SOURCES}):",
        f"  writes        : {NUM_WRITES} durable acks tailed by one "
        f"replica",
        f"  lag p50       : {lag['p50']:8.1f} records behind the ack",
        f"  lag p99       : {lag['p99']:8.1f} records",
        f"  lag max       : {lag['max']:8.1f} records",
        f"  convergence   : {out['convergence_seconds'] * 1e3:8.1f} ms "
        f"from last ack to caught-up",
        f"  promotion     : {promotion.seconds * 1e3:8.1f} ms to fence, "
        f"seal and own the journal (epoch {promotion.epoch})",
        "  differential  : promoted replica bit-identical to replay twin",
    ]))


def test_failover_drill_rto(benchmark, save_artifact,
                            record_service_bench, tmp_path):
    reports = []

    def run():
        reports.clear()
        for seed in DRILL_SEEDS:
            reports.append(run_failover_drill(
                seed=seed, ops=DRILL_OPS,
                artifacts_dir=tmp_path / f"drill-{seed}",
                wall_target=2.5, kill_window=(0.4, 1.6)))
        return reports

    benchmark.pedantic(run, rounds=1, iterations=1)
    for report in reports:
        assert report.ok, "\n".join(report.failures)
        assert report.final_watermark == report.total_writes

    rtos_ms = [r.rto_seconds * 1e3 for r in reports]
    record_service_bench("failover-drill", {
        "seeds": list(DRILL_SEEDS),
        "ops": DRILL_OPS,
        "graph": "small drill graph (see repro.resilience.drill)",
        "zero_acked_loss": True,
        "bit_identical_to_oracle": True,
        "rto_ms": {str(r.seed): r.rto_seconds * 1e3 for r in reports},
        "rto_ms_max": max(rtos_ms),
        "rto_ms_mean": sum(rtos_ms) / len(rtos_ms),
        "promote_ms": {str(r.seed): r.promote_seconds * 1e3
                       for r in reports},
        "lag_max": max(r.max_lag for r in reports),
        "promoted_epochs": {str(r.seed): r.promoted_epoch
                            for r in reports},
    })
    save_artifact("failover_rto.txt", "\n".join(
        [f"Kill-the-primary failover drill ({len(reports)} seeds, "
         f"{DRILL_OPS} ops each):"]
        + [f"  seed {r.seed}: RTO {r.rto_seconds * 1e3:7.1f} ms "
           f"(promote {r.promote_seconds * 1e3:6.1f} ms, "
           f"max lag {r.max_lag} records, epoch {r.promoted_epoch})"
           for r in reports]
        + ["  every seed: zero acked-write loss, bit-identical to the "
           "no-crash oracle, deposed primary fenced"]))
