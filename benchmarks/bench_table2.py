"""Table II — dynamic CPU vs dynamic GPU (edge- and node-parallel).

For each suite graph the identical insertion stream is replayed under
the three execution strategies; speedups are reported relative to the
sequential CPU baseline.  The paper's shape: node-parallel wins on
every graph (24x-110x), edge-parallel lands between 1.03x and 20.6x.

Absolute simulated seconds scale with the graph size; run with
``REPRO_BENCH_SCALE=20`` (or more) to approach the paper's regime —
see EXPERIMENTS.md.
"""

import pytest

from repro.analysis.protocol import replay_stream
from repro.analysis.report import render_table2
from repro.analysis.speedup import Table2Row, run_table2
from repro.graph.suite import SUITE_SPECS


@pytest.mark.parametrize("backend", ["cpu", "gpu-edge", "gpu-node"])
def test_replay_one_backend(benchmark, backend, bench_config):
    """Wall-clock cost of replaying one graph's stream per backend
    (the vectorized execution, not the simulated device time)."""
    sub = bench_config
    run = benchmark.pedantic(
        replay_stream, args=(sub, "small", backend), rounds=1, iterations=1
    )
    assert len(run.reports) == sub.num_insertions


def test_table2_speedups(benchmark, bench_config, save_artifact):
    rows = benchmark.pedantic(
        run_table2, args=(bench_config,), rounds=1, iterations=1
    )
    save_artifact("table2.txt", render_table2(rows))
    assert [r.graph_name for r in rows] == sorted(SUITE_SPECS)
    for row in rows:
        # the paper's central result: node-parallel beats edge-parallel
        # on every graph, and beats the CPU baseline
        assert row.node_seconds < row.edge_seconds, row.graph_name
        assert row.node_speedup > 1.0, row.graph_name
