"""Fig. 1 — static BC speedup vs thread-block count on both devices.

Reproduces the paper's conclusion: speedup scales ~linearly up to one
block per SM, then flattens (slightly degrades) — so the dynamic
kernels launch exactly ``num_sms`` blocks.
"""

import pytest

from repro.analysis.blocks import FIG1_GRAPHS, run_block_sweep
from repro.analysis.report import render_fig1
from repro.gpu.device import GTX_560, TESLA_C2075


def test_fig1_block_sweep(benchmark, bench_config, save_artifact):
    sweeps = benchmark.pedantic(
        run_block_sweep,
        kwargs=dict(scale=bench_config.scale, seed=bench_config.seed,
                    max_sources=4 * bench_config.num_sources),
        rounds=1, iterations=1,
    )
    save_artifact("fig1.txt", render_fig1(sweeps))
    # the paper's finding: optimum at one block per SM, on both devices
    for sweep in sweeps:
        sms = (GTX_560 if "560" in sweep.device_name else TESLA_C2075).num_sms
        assert sweep.best_blocks == sms
        # near-linear region below saturation
        idx = sweep.block_counts.index(sms)
        assert sweep.speedups[idx] > 0.8 * sms
