"""Coarse-grained source parallelism — serial vs multi-worker sweep.

The paper's decomposition assigns one source per SM; the CPU analogue
(``DynamicBC(workers=N)``) fans per-source kernels out to a process
pool over shared memory and reduces results in fixed source order, so
the parallel engine is *bit-identical* to serial — only wall-clock may
differ (see docs/MODEL.md, "Parallel execution").

This benchmark replays the paper's §IV removal/re-insertion protocol
(every event has genuinely active sources) on a Graph500 Kronecker
graph at k=256 sources and n=2^14 vertices, once serially and once per
worker count, and

* always asserts exact equality — ``np.array_equal`` on the BC vector,
  ``==`` on counters, field-identical reports — between serial and
  every parallel run, and
* records the sweep in machine-readable form in ``BENCH_parallel.json``
  at the repo root.

The >= 2x speedup floor at 4 workers only applies when the host
actually has >= 4 usable cores; constrained CI runners still exercise
the full sweep and the bit-identity asserts, they just skip the
wall-clock floor (and say so in the artifact).  That skip used to be a
blind spot — on a starved runner a pathological pool regression (e.g.
a respawn storm adding seconds per round) passed silently — so a
second, *always-on* bound applies everywhere: per-event pool overhead
(the parallel replay's wall-clock delta over serial, divided by the
event count) must stay under ``MAX_OVERHEAD_PER_EVENT`` at every
worker count, cores be damned.  Observed overhead is ~20-35 ms/event
on a single-core host; the 0.5 s budget is ~15x headroom, catching
order-of-magnitude regressions without flaking on slow machines.
"""

import os
import time

import numpy as np
import pytest

from repro.bc.engine import DynamicBC
from repro.graph import generators as gen
from repro.graph.dynamic import DynamicGraph
from repro.graph.stream import EdgeStream, replay
from repro.parallel.shm import shm_available
from repro.resilience.chaos import reports_identical

NUM_SOURCES = 256  # the paper's k
KRON_SCALE = 14  # n = 2^14 = 16384, the ~2e4-vertex regime
NUM_EVENTS = 8  # removal/re-insertion events in the update stream
WORKER_SWEEP = (2, 4)

#: acceptance floor at 4 workers — enforced only on >= 4-core hosts
MIN_SPEEDUP = 2.0

#: always-on budget: wall seconds of pool overhead per stream event
#: ((parallel replay - serial replay) / events), any host, any width
MAX_OVERHEAD_PER_EVENT = 0.5


def available_cores():
    """Cores this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _run_sweep_point(graph, workers, seed):
    """One engine lifetime: build, replay the re-insertion stream, and
    return (replay result, bc copy, counters, replay wall seconds)."""
    dyn = DynamicGraph.from_csr(graph)
    stream = EdgeStream.removal_reinsertion(dyn, NUM_EVENTS, seed=seed)
    engine = DynamicBC.from_graph(
        dyn, num_sources=NUM_SOURCES, seed=seed, workers=workers
    )
    try:
        start = time.perf_counter()
        result = replay(engine, stream)
        elapsed = time.perf_counter() - start
        return result, engine.state.bc.copy(), engine.counters, elapsed
    finally:
        engine.close()


@pytest.mark.skipif(not shm_available(), reason="POSIX shm unavailable")
def test_parallel_sweep(benchmark, bench_config, save_artifact, record_bench):
    graph = gen.kronecker(KRON_SCALE, seed=bench_config.seed)

    def run():
        serial = _run_sweep_point(graph, 1, bench_config.seed)
        points = {
            w: _run_sweep_point(graph, w, bench_config.seed)
            for w in WORKER_SWEEP
        }
        return serial, points

    (res_s, bc_s, cnt_s, t_s), points = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    assert len(res_s.reports) == NUM_EVENTS

    # Bit-identity is unconditional: every parallel run must match the
    # serial run exactly, whatever the host looks like.
    sweep = {}
    for w, (res_w, bc_w, cnt_w, t_w) in points.items():
        assert np.array_equal(bc_s, bc_w), f"bc diverged at workers={w}"
        assert cnt_s == cnt_w, f"counters diverged at workers={w}"
        assert len(res_s.reports) == len(res_w.reports)
        for x, y in zip(res_s.reports, res_w.reports):
            assert reports_identical(x, y), f"report diverged at workers={w}"
        assert res_s.simulated_seconds == res_w.simulated_seconds
        overhead = (t_w - t_s) / NUM_EVENTS
        sweep[w] = {
            "replay_seconds": t_w,
            "speedup": t_s / t_w,
            "overhead_per_event_seconds": overhead,
            "bit_identical": True,
        }
        # Always-on regression bound (the <4-core blind spot fix): a
        # pool that is merely not-faster is acceptable on a starved
        # host, a pool that adds >0.5 s of overhead per event is broken
        # on any host.
        assert overhead <= MAX_OVERHEAD_PER_EVENT, (
            f"workers={w} adds {overhead:.3f}s pool overhead per event "
            f"(budget {MAX_OVERHEAD_PER_EVENT}s; serial {t_s:.3f}s, "
            f"parallel {t_w:.3f}s over {NUM_EVENTS} events)"
        )

    cores = available_cores()
    enforce_floor = cores >= 4
    record_bench(
        "parallel_sweep",
        {
            "graph": f"kronecker(scale={KRON_SCALE})",
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
            "num_sources": NUM_SOURCES,
            "num_events": NUM_EVENTS,
            "cores": cores,
            "serial_replay_seconds": t_s,
            "workers": {str(w): sweep[w] for w in sorted(sweep)},
            "min_speedup_floor": MIN_SPEEDUP,
            "floor_enforced": enforce_floor,
            "max_overhead_per_event_seconds": MAX_OVERHEAD_PER_EVENT,
            "overhead_enforced": True,
        },
    )
    lines = [
        f"Removal/re-insertion replay on kronecker(scale={KRON_SCALE}) "
        f"(n={graph.num_vertices}, m={graph.num_edges}, k={NUM_SOURCES}, "
        f"{NUM_EVENTS} events, {cores} cores):",
        f"  serial      : {t_s * 1e3:8.1f} ms wall",
    ]
    for w in sorted(sweep):
        lines.append(
            f"  workers={w}   : {sweep[w]['replay_seconds'] * 1e3:8.1f} ms "
            f"wall ({sweep[w]['speedup']:5.2f}x, bit-identical)"
        )
    if not enforce_floor:
        lines.append(
            f"  [floor {MIN_SPEEDUP}x at 4 workers not enforced: "
            f"only {cores} usable core(s)]"
        )
    save_artifact("parallel_sweep.txt", "\n".join(lines))

    if enforce_floor:
        assert sweep[4]["speedup"] >= MIN_SPEEDUP, (
            f"workers=4 only {sweep[4]['speedup']:.2f}x over serial "
            f"(need >= {MIN_SPEEDUP}x on a {cores}-core host)"
        )
