"""Coarse-grained source parallelism — serial vs multi-worker sweep.

The paper's decomposition assigns one source per SM; the CPU analogue
(``DynamicBC(workers=N)``) fans per-source kernels out to a process
pool over shared memory and reduces results in fixed source order, so
the parallel engine is *bit-identical* to serial — only wall-clock may
differ (see docs/MODEL.md, "Parallel execution").

This benchmark replays the paper's §IV removal/re-insertion protocol
(every event has genuinely active sources) on a Graph500 Kronecker
graph at k=256 sources and n=2^14 vertices, once serially and once per
worker count, and

* always asserts exact equality — ``np.array_equal`` on the BC vector,
  ``==`` on counters, field-identical reports — between serial and
  every parallel run,
* measures dispatch + reduction overhead **directly** from the
  engine's :meth:`transport_report` (parent-side dispatch, decode and
  fold seconds accumulated per round) instead of the old
  wall-clock-subtraction estimate, which went *negative* on noisy
  hosts (−0.148 s/event was recorded once) because serial and parallel
  replays see different cache/turbo conditions,
* measures the result-queue payload bytes per round for the zero-copy
  slab transport against a ``result_transport="queue"`` control run
  and asserts the ≥10x reduction the slab path exists to deliver, and
* records the sweep — including per-width ``parallel_efficiency``
  (speedup / workers) — in ``BENCH_parallel.json`` at the repo root.

The wall-clock gates (>= 2x at 4 workers, and the scaling-efficiency
monotonicity gate ``speedup(4) > speedup(2)``) only apply when the
host actually has >= 4 usable cores; constrained CI runners still
exercise the full sweep, the bit-identity asserts and the byte-
reduction assert — they just skip the wall-clock gates (and say so in
the artifact).  A second, *always-on* bound applies everywhere: the
directly measured pool overhead per event must stay under
``MAX_OVERHEAD_PER_EVENT`` at every worker count.  Because the direct
measurement only counts parent-side work (it cannot be dragged
negative or inflated by an unlucky serial baseline), it catches
order-of-magnitude transport regressions without flaking on slow
machines.
"""

import os
import time

import numpy as np
import pytest

from repro.bc.engine import DynamicBC
from repro.graph import generators as gen
from repro.graph.dynamic import DynamicGraph
from repro.graph.stream import EdgeStream, replay
from repro.parallel.shm import shm_available
from repro.resilience.chaos import reports_identical

NUM_SOURCES = 256  # the paper's k
KRON_SCALE = 14  # n = 2^14 = 16384, the ~2e4-vertex regime
NUM_EVENTS = 8  # removal/re-insertion events in the update stream
WORKER_SWEEP = (2, 4)

#: acceptance floor at 4 workers — enforced only on >= 4-core hosts
MIN_SPEEDUP = 2.0

#: always-on budget: directly measured parent-side pool overhead
#: (dispatch + decode + fold seconds) per stream event, any host
MAX_OVERHEAD_PER_EVENT = 0.5

#: the slab transport must shrink result-queue payload bytes per round
#: by at least this factor vs the pickled-queue control run
MIN_QUEUE_BYTES_REDUCTION = 10.0


def available_cores():
    """Cores this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _run_sweep_point(graph, workers, seed, result_transport="slab"):
    """One engine lifetime: build, replay the re-insertion stream, and
    return (replay result, bc copy, counters, replay wall seconds,
    transport report captured before close)."""
    dyn = DynamicGraph.from_csr(graph)
    stream = EdgeStream.removal_reinsertion(dyn, NUM_EVENTS, seed=seed)
    engine = DynamicBC.from_graph(
        dyn, num_sources=NUM_SOURCES, seed=seed, workers=workers,
        result_transport=result_transport,
    )
    try:
        start = time.perf_counter()
        result = replay(engine, stream)
        elapsed = time.perf_counter() - start
        transport = engine.transport_report()
        return result, engine.state.bc.copy(), engine.counters, elapsed, \
            transport
    finally:
        engine.close()


def _queue_bytes_per_round(report):
    """Result-queue payload bytes per dispatched round (0 when the
    engine never went parallel)."""
    rounds = report.get("rounds", 0)
    if not rounds:
        return 0.0
    return report.get("queue_bytes", 0) / rounds


@pytest.mark.skipif(not shm_available(), reason="POSIX shm unavailable")
def test_parallel_sweep(benchmark, bench_config, save_artifact, record_bench):
    graph = gen.kronecker(KRON_SCALE, seed=bench_config.seed)

    def run():
        serial = _run_sweep_point(graph, 1, bench_config.seed)
        points = {
            w: _run_sweep_point(graph, w, bench_config.seed)
            for w in WORKER_SWEEP
        }
        # Control run: same stream, pickled-payload result queue.  Its
        # queue bytes per round are the "before" of the zero-copy
        # tentpole; the slab run at the same width is the "after".
        control = _run_sweep_point(
            graph, 2, bench_config.seed, result_transport="queue"
        )
        return serial, points, control

    (res_s, bc_s, cnt_s, t_s, _), points, control = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    assert len(res_s.reports) == NUM_EVENTS

    # Bit-identity is unconditional: every parallel run must match the
    # serial run exactly, whatever the host looks like — and the
    # pickled-queue control run is held to the same bar.
    checked = dict(points)
    checked["2/queue"] = control
    sweep = {}
    for w, (res_w, bc_w, cnt_w, t_w, tr_w) in checked.items():
        assert np.array_equal(bc_s, bc_w), f"bc diverged at workers={w}"
        assert cnt_s == cnt_w, f"counters diverged at workers={w}"
        assert len(res_s.reports) == len(res_w.reports)
        for x, y in zip(res_s.reports, res_w.reports):
            assert reports_identical(x, y), f"report diverged at workers={w}"
        assert res_s.simulated_seconds == res_w.simulated_seconds
        # Direct overhead: parent-side dispatch + decode + fold seconds
        # accumulated by the pool/engine, non-negative by construction.
        overhead = tr_w.get("overhead_seconds", 0.0) / NUM_EVENTS
        assert overhead <= MAX_OVERHEAD_PER_EVENT, (
            f"workers={w} spends {overhead:.3f}s dispatch+reduction "
            f"overhead per event (budget {MAX_OVERHEAD_PER_EVENT}s)"
        )
        if w in points:
            sweep[w] = {
                "replay_seconds": t_w,
                "speedup": t_s / t_w,
                "parallel_efficiency": (t_s / t_w) / w,
                "overhead_per_event_seconds": overhead,
                "transport": {
                    k: tr_w.get(k, 0)
                    for k in ("transport", "backend", "rounds", "chunks",
                              "queue_bytes", "slab_bytes", "spills",
                              "raw_results", "dispatch_seconds",
                              "decode_seconds", "fold_seconds",
                              "overhead_seconds")
                },
                "queue_bytes_per_round": _queue_bytes_per_round(tr_w),
                "bit_identical": True,
            }

    # The tentpole's headline number: payload bytes through the result
    # queue per round, pickled control vs slab headers.  Only the
    # process backend moves bytes at all — the thread backend (e.g.
    # a REPRO_POOL_BACKEND=threads CI leg) passes results by
    # reference, so both sides of the ratio are zero and the gate is
    # moot there.
    backend = points[2][4].get("backend", "processes")
    bytes_before = _queue_bytes_per_round(control[4])
    bytes_after = _queue_bytes_per_round(points[2][4])
    if backend == "processes":
        assert bytes_after > 0 and bytes_before > 0, (
            "transport accounting recorded no rounds — the engines "
            "never went parallel"
        )
        reduction = bytes_before / bytes_after
        assert reduction >= MIN_QUEUE_BYTES_REDUCTION, (
            f"slab transport only cut result-queue bytes/round by "
            f"{reduction:.1f}x ({bytes_before:.0f} -> {bytes_after:.0f}); "
            f"need >= {MIN_QUEUE_BYTES_REDUCTION}x"
        )
    else:
        reduction = None  # by-reference transport: nothing to reduce

    cores = available_cores()
    enforce_floor = cores >= 4
    record_bench(
        "parallel_sweep",
        {
            "graph": f"kronecker(scale={KRON_SCALE})",
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
            "num_sources": NUM_SOURCES,
            "num_events": NUM_EVENTS,
            "cores": cores,
            "serial_replay_seconds": t_s,
            "pool_backend": backend,
            "workers": {str(w): sweep[w] for w in sorted(sweep)},
            "queue_bytes_per_round_before": bytes_before,
            "queue_bytes_per_round_after": bytes_after,
            "queue_bytes_reduction": reduction,
            "queue_bytes_gate_enforced": backend == "processes",
            "min_queue_bytes_reduction": MIN_QUEUE_BYTES_REDUCTION,
            "min_speedup_floor": MIN_SPEEDUP,
            "floor_enforced": enforce_floor,
            "scaling_gate_enforced": enforce_floor,
            "max_overhead_per_event_seconds": MAX_OVERHEAD_PER_EVENT,
            "overhead_enforced": True,
        },
    )
    lines = [
        f"Removal/re-insertion replay on kronecker(scale={KRON_SCALE}) "
        f"(n={graph.num_vertices}, m={graph.num_edges}, k={NUM_SOURCES}, "
        f"{NUM_EVENTS} events, {cores} cores):",
        f"  serial      : {t_s * 1e3:8.1f} ms wall",
    ]
    for w in sorted(sweep):
        lines.append(
            f"  workers={w}   : {sweep[w]['replay_seconds'] * 1e3:8.1f} ms "
            f"wall ({sweep[w]['speedup']:5.2f}x, "
            f"eff {sweep[w]['parallel_efficiency']:.2f}, "
            f"{sweep[w]['overhead_per_event_seconds'] * 1e3:.1f} ms/event "
            f"overhead, bit-identical)"
        )
    if reduction is not None:
        lines.append(
            f"  result queue: {bytes_before:,.0f} B/round pickled -> "
            f"{bytes_after:,.0f} B/round slab ({reduction:.0f}x smaller)"
        )
    else:
        lines.append(
            f"  result queue: 0 B/round ({backend} backend passes "
            f"results by reference)"
        )
    if not enforce_floor:
        lines.append(
            f"  [wall-clock gates not enforced: only {cores} usable "
            f"core(s)]"
        )
    save_artifact("parallel_sweep.txt", "\n".join(lines))

    if enforce_floor:
        assert sweep[4]["speedup"] >= MIN_SPEEDUP, (
            f"workers=4 only {sweep[4]['speedup']:.2f}x over serial "
            f"(need >= {MIN_SPEEDUP}x on a {cores}-core host)"
        )
        # Scaling-efficiency gate: adding cores must keep helping.  A
        # transport or scheduling regression that serializes the pool
        # shows up as speedup(4) collapsing onto speedup(2).
        assert sweep[4]["speedup"] > sweep[2]["speedup"], (
            f"speedup(4)={sweep[4]['speedup']:.2f} <= "
            f"speedup(2)={sweep[2]['speedup']:.2f} on a {cores}-core "
            f"host — parallel scaling regressed"
        )
