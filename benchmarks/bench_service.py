"""Service-layer load test: query latency vs sustained update rate.

Drives the always-on :class:`~repro.service.BCService` with seeded
mixed read/write traffic under three profiles — steady, diurnal, and
flash-crowd — and records p50/p99/max query latency against the
sustained applied-updates/sec into ``BENCH_service.json`` at the repo
root (one section per profile).

Two properties are *asserted*, not just measured, on every run:

* **Differential correctness** — the service's final BC vector,
  counters and report count are bit-identical to a plain
  :func:`replay` of the workload's write events on a twin engine, so
  the latency numbers describe a correct service, and
* **Non-blocking reads** — at least one query per profile was answered
  while an update batch was in flight (the snapshot-store guarantee
  that reads never wait on writers).

Like ``bench_parallel.py``, the artifact records ``cores`` and whether
the parallel speedup floor would be enforced on this host, so a reader
comparing the two files knows what machine produced the numbers.
"""

import numpy as np
import pytest

from repro.bc.engine import DynamicBC
from repro.graph import generators as gen
from repro.graph.dynamic import DynamicGraph
from repro.graph.stream import replay
from repro.resilience.chaos import reports_identical
from repro.service import PROFILES, drive_workload, generate_workload

from bench_parallel import MIN_SPEEDUP, available_cores

pytestmark = pytest.mark.service

KRON_SCALE = 10  # n = 2^10 = 1024 vertices
NUM_SOURCES = 64
NUM_OPS = 400  # reads + writes per profile
MAX_BATCH = 16
MAX_DELAY = 0.01
SEED = 2014


def _build_engine(graph):
    return DynamicBC.from_graph(DynamicGraph.from_csr(graph),
                                num_sources=NUM_SOURCES, seed=SEED)


@pytest.mark.parametrize("profile", PROFILES)
def test_service_profile(profile, benchmark, save_artifact,
                         record_service_bench):
    graph = gen.kronecker(KRON_SCALE, seed=SEED)
    workload = generate_workload(graph, profile, NUM_OPS, seed=SEED + 1)
    assert workload.writes > 0 and workload.reads > 0

    def run():
        engine = _build_engine(graph)
        try:
            return drive_workload(
                engine, workload, max_batch=MAX_BATCH, max_delay=MAX_DELAY,
            ), engine.state.bc.copy(), engine.counters
        finally:
            engine.close()

    metrics, bc_service, counters_service = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    # Differential correctness: the served stream is bit-identical to
    # a plain replay of the workload's writes on a twin engine.
    twin = _build_engine(graph)
    try:
        twin_result = replay(twin, workload.edge_stream())
        assert np.array_equal(bc_service, twin.state.bc)
        assert counters_service == twin.counters
        assert metrics["updates_applied"] == len(twin_result.reports)
        assert metrics["final_watermark"] == workload.writes
    finally:
        twin.close()

    # Non-blocking reads: queries were answered mid-apply, and answered
    # fast — their latency distribution is recorded separately so a
    # blocking regression shows up as a p99 cliff.
    assert metrics["queries"] == workload.reads
    assert metrics["queries_during_apply"] >= 1, (
        "no query overlapped an in-flight batch — reads are "
        "serializing behind updates"
    )

    cores = available_cores()
    record_service_bench(profile, {
        "graph": f"kronecker(scale={KRON_SCALE})",
        "num_vertices": graph.num_vertices,
        "num_edges": graph.num_edges,
        "num_sources": NUM_SOURCES,
        "cores": cores,
        "floor_enforced": cores >= 4,
        "min_speedup_floor": MIN_SPEEDUP,
        "bit_identical": True,
        **{k: metrics[k] for k in (
            "profile", "ops_total", "reads", "writes", "seed",
            "max_batch", "max_delay", "wall_seconds", "updates_applied",
            "updates_skipped", "updates_per_second", "batches",
            "flush_reasons", "backpressure_waits", "max_queue_depth",
            "queries", "queries_during_apply", "query_latency",
            "query_latency_during_apply", "final_watermark",
            "snapshot_version", "snapshots_published",
            "snapshot_buffers_allocated", "snapshot_buffers_reused",
            "health_level",
        )},
    })

    lat = metrics["query_latency"]
    save_artifact(f"service_{profile}.txt", "\n".join([
        f"Service load test — {profile} profile on "
        f"kronecker(scale={KRON_SCALE}) (n={graph.num_vertices}, "
        f"m={graph.num_edges}, k={NUM_SOURCES}, {cores} cores):",
        f"  traffic     : {workload.writes} writes + {workload.reads} "
        f"reads in {metrics['wall_seconds']:.2f}s wall",
        f"  updates/sec : {metrics['updates_per_second']:8.1f} "
        f"({metrics['batches']} batches, {metrics['flush_reasons']})",
        f"  query p50   : {lat['p50_ms']:8.3f} ms",
        f"  query p99   : {lat['p99_ms']:8.3f} ms",
        f"  query max   : {lat['max_ms']:8.3f} ms",
        f"  mid-apply   : {metrics['queries_during_apply']} of "
        f"{metrics['queries']} queries served during an in-flight batch",
        "  differential: bit-identical to plain replay of the writes",
    ]))


def test_profiles_are_deterministic():
    """Same seed, same workload — byte-for-byte (the bench is
    replayable run-to-run)."""
    graph = gen.kronecker(8, seed=SEED)
    a = generate_workload(graph, "flash-crowd", 100, seed=7)
    b = generate_workload(graph, "flash-crowd", 100, seed=7)
    assert a.ops == b.ops
    c = generate_workload(graph, "flash-crowd", 100, seed=8)
    assert a.ops != c.ops


def test_service_reports_match_replay_reports():
    """Field-level differential on the reports themselves (the sweep
    asserts bc/counters; this pins every UpdateReport field too)."""
    graph = gen.kronecker(8, seed=SEED)
    workload = generate_workload(graph, "steady", 80, seed=9)

    import asyncio

    from repro.service import BCService

    async def main():
        eng = _build_engine(graph)
        try:
            async with BCService(eng, max_batch=8, max_delay=0.005) as svc:
                for event in workload.edge_stream():
                    await svc.submit(event)
                await svc.drain()
            return svc
        finally:
            eng.close()

    svc = asyncio.run(main())
    service_reports = svc.core.result.reports
    twin = _build_engine(graph)
    try:
        twin_result = replay(twin, workload.edge_stream())
        assert len(service_reports) == len(twin_result.reports)
        for a, b in zip(service_reports, twin_result.reports):
            assert reports_identical(a, b)
    finally:
        twin.close()
