"""Ablation — heterogeneous CPU+GPU execution (§VI future work).

Partitions the source set between the Tesla C2075 and the otherwise
idle i7 core (Sariyüce-style heterogeneous execution) and measures the
benefit over the pure-GPU engine, sweeping the CPU slice size around
the throughput-model optimum.
"""

import numpy as np
import pytest

from repro.analysis.protocol import prepare_stream
from repro.bc.engine import DynamicBC
from repro.bc.hybrid import HybridDynamicBC


def test_hybrid_split(benchmark, bench_config, save_artifact):
    bench, dyn, removed = prepare_stream(bench_config, "pref")

    def run():
        results = {}
        for frac in (0.0, None, 0.3):  # pure GPU, auto, oversized slice
            graph = bench.graph  # fresh copy of the shrunken graph
            from repro.graph.dynamic import DynamicGraph

            dyn2 = DynamicGraph.from_csr(bench.graph)
            for u, v in removed:
                dyn2.delete_edge(int(u), int(v))
            hybrid = HybridDynamicBC.from_graph(
                dyn2, num_sources=bench_config.num_sources,
                seed=bench_config.seed + 23, cpu_fraction=frac,
            )
            total = sum(
                hybrid.insert_edge(int(u), int(v)).simulated_seconds
                for u, v in removed
            )
            label = "auto" if frac is None else f"{frac:.2f}"
            results[label] = (hybrid.cpu_fraction, total)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Ablation: heterogeneous CPU+GPU source partitioning (pref)"]
    for label, (frac, total) in results.items():
        lines.append(
            f"  cpu_fraction={label:>5s} (={frac:.3f}): "
            f"{total * 1e3:9.3f} ms simulated"
        )
    pure = results["0.00"][1]
    auto = results["auto"][1]
    lines.append(f"  auto split vs pure GPU: {pure / auto:5.2f}x")
    save_artifact("ablation_hybrid.txt", "\n".join(lines))
    # the auto split should never be slower than pure GPU by much, and
    # an oversized CPU slice should hurt
    assert auto <= pure * 1.10
