"""Ablation — strong scaling across SM counts (paper §VI future work).

Models the paper's multi-GPU prediction: coarse-grained parallelism
over source vertices should scale strongly as long as sources outnumber
SMs.  Rescheduling recorded per-source work across 1x..8x the Tesla
C2075's SM count makes both the scaling and its saturation point
visible.
"""

import pytest

from repro.analysis.scaling import render_scaling, run_scaling_study


def test_strong_scaling(benchmark, bench_config, save_artifact):
    study = benchmark.pedantic(
        run_scaling_study,
        args=(bench_config, "pref"),
        kwargs=dict(sm_multipliers=(1, 2, 4, 8)),
        rounds=1, iterations=1,
    )
    save_artifact("ablation_scaling.txt", render_scaling(study))
    speeds = [p.speedup for p in study.points]
    assert speeds == sorted(speeds)  # monotone
    # extra SMs help, but never below the heaviest source's critical path
    assert study.points[1].speedup > 1.05
    assert study.points[-1].seconds >= study.critical_path_seconds * 0.99
