"""Hot path — vectorized multi-source updates vs the per-source loop.

The paper's Fig. 2 observation: on real graphs the overwhelming
majority of per-source classifications are Case 1 (|d(u) - d(v)| = 0,
no work).  The engine exploits that with a vectorized fast path — one
NumPy classification sweep over the (k, n) state matrix plus a bulk
Case-1 charge — instead of k Python iterations with a fresh accountant
each (see docs/MODEL.md, "Hot path & batching").

This benchmark constructs a genuinely Case-1-dominated stream for each
suite graph that admits one: edges between *equidistant* vertex pairs
(``d[:, u] == d[:, v]`` across all k sources — e.g. structural twins
such as leaves of a common hub), whose insertion **and** deletion are
Case 1 for every source.  It then replays the same churn under both
paths and asserts

* the wall-clock speedup of the vectorized path is >= 3x, and
* both paths report identical artifacts (cases, per-source seconds,
  simulated makespan) — the quick in-benchmark parity check; the full
  field-by-field differential across backends lives in
  tests/test_engine_vectorized.py.
"""

import time
from collections import defaultdict

import numpy as np
import pytest

from repro.bc.engine import DynamicBC
from repro.graph.dynamic import DynamicGraph
from repro.graph.suite import make_suite_graph

#: suite graphs whose default-scale instances contain enough
#: equidistant non-adjacent pairs to build a pure Case-1 stream
#: ("pref"/"small"/"del" lack structural twins at small scale)
CASE1_GRAPHS = ("kron", "caida", "eu", "coPap")

#: the acceptance floor for the fast path on Case-1-dominated streams
MIN_SPEEDUP = 3.0

NUM_SOURCES = 256  # the paper's k
NUM_PAIRS = 40  # churn length: each pair is toggled insert -> delete


def equidistant_pairs(graph, d, limit):
    """Non-adjacent vertex pairs with identical distance columns (same
    level from *every* source), found by bucketing columns of the
    (k, n) distance matrix."""
    buckets = defaultdict(list)
    for v in range(graph.num_vertices):
        buckets[d[:, v].tobytes()].append(v)
    pairs = []
    for vs in buckets.values():
        for i in range(len(vs)):
            for j in range(i + 1, len(vs)):
                if not graph.has_edge(vs[i], vs[j]):
                    pairs.append((vs[i], vs[j]))
                    if len(pairs) == limit:
                        return pairs
    return pairs


def _replay_case1_churn(graph, pairs, vectorized, seed):
    """Toggle each pair (insert, then delete) and return the wall-clock
    total plus the reports for parity checking."""
    engine = DynamicBC.from_graph(
        DynamicGraph.from_csr(graph), num_sources=NUM_SOURCES,
        backend="gpu-node", seed=seed, vectorized=vectorized,
    )
    reports = []
    start = time.perf_counter()
    for u, v in pairs:
        reports.append(engine.insert_edge(u, v))
        reports.append(engine.delete_edge(u, v))
    elapsed = time.perf_counter() - start
    return engine, reports, elapsed


@pytest.mark.parametrize("graph_name", CASE1_GRAPHS)
def test_update_path_speedup(benchmark, graph_name, bench_config,
                             save_artifact, record_bench):
    bench = make_suite_graph(graph_name, scale=bench_config.scale,
                             seed=bench_config.seed)
    probe = DynamicBC.from_graph(
        DynamicGraph.from_csr(bench.graph), num_sources=NUM_SOURCES,
        backend="gpu-node", seed=bench_config.seed,
    )
    pairs = equidistant_pairs(bench.graph, probe.state.d, NUM_PAIRS)
    assert len(pairs) >= 10, (
        f"{graph_name} no longer admits a Case-1-dominated stream"
    )

    def run():
        looped = _replay_case1_churn(bench.graph, pairs, False,
                                     bench_config.seed)
        fast = _replay_case1_churn(bench.graph, pairs, True,
                                   bench_config.seed)
        return looped, fast

    (eng_l, reps_l, t_loop), (eng_f, reps_f, t_fast) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    # The stream is pure Case 1 by construction.
    for rep in reps_f:
        assert rep.case_histogram == {1: NUM_SOURCES}
    # Quick parity: identical simulated artifacts from both paths.
    for rl, rf in zip(reps_l, reps_f):
        assert np.array_equal(rl.cases, rf.cases)
        assert np.array_equal(rl.per_source_seconds, rf.per_source_seconds)
        assert rl.simulated_seconds == rf.simulated_seconds
    assert eng_l.counters.bytes_moved == eng_f.counters.bytes_moved
    eng_f.verify()

    speedup = t_loop / t_fast
    updates = 2 * len(pairs)
    record_bench(
        f"update_path_{graph_name}",
        {
            "graph": graph_name,
            "num_sources": NUM_SOURCES,
            "num_updates": updates,
            "loop_seconds": t_loop,
            "vectorized_seconds": t_fast,
            "speedup": speedup,
            "min_speedup_floor": MIN_SPEEDUP,
        },
    )
    save_artifact(
        f"update_path_{graph_name}.txt",
        f"Case-1-dominated churn on '{graph_name}' "
        f"(k={NUM_SOURCES}, {updates} updates):\n"
        f"  per-source loop : {t_loop * 1e3:8.1f} ms wall "
        f"({updates / t_loop:8.1f} updates/s)\n"
        f"  vectorized path : {t_fast * 1e3:8.1f} ms wall "
        f"({updates / t_fast:8.1f} updates/s)\n"
        f"  speedup         : {speedup:8.1f}x (floor {MIN_SPEEDUP}x)",
    )
    assert speedup >= MIN_SPEEDUP, (
        f"vectorized update path only {speedup:.1f}x faster than the "
        f"loop on {graph_name} (need >= {MIN_SPEEDUP}x)"
    )
