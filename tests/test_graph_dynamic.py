import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.dynamic import DynamicGraph
from repro.graph import generators as gen


class TestConstruction:
    def test_from_csr_round_trip(self, karate):
        dyn = DynamicGraph.from_csr(karate)
        assert dyn.snapshot() == karate

    def test_from_edges(self):
        dyn = DynamicGraph.from_edges(4, [(0, 1), (2, 3)])
        assert dyn.num_edges == 2

    def test_empty(self):
        dyn = DynamicGraph(3)
        assert dyn.num_edges == 0
        assert dyn.snapshot().num_vertices == 3

    def test_negative_vertices_raises(self):
        with pytest.raises(ValueError):
            DynamicGraph(-1)


class TestInsertion:
    def test_insert_new_edge(self, dyn_karate):
        before = dyn_karate.num_edges
        assert dyn_karate.insert_edge(0, 9)
        assert dyn_karate.num_edges == before + 1
        assert dyn_karate.has_edge(0, 9) and dyn_karate.has_edge(9, 0)

    def test_insert_existing_returns_false(self, dyn_karate):
        assert not dyn_karate.insert_edge(0, 1)

    def test_insert_self_loop_returns_false(self, dyn_karate):
        assert not dyn_karate.insert_edge(5, 5)

    def test_snapshot_invalidated(self, dyn_karate):
        snap1 = dyn_karate.snapshot()
        dyn_karate.insert_edge(0, 9)
        snap2 = dyn_karate.snapshot()
        assert snap1 != snap2
        assert snap2.has_edge(0, 9)

    def test_snapshot_cached(self, dyn_karate):
        assert dyn_karate.snapshot() is dyn_karate.snapshot()

    def test_capacity_doubling(self):
        dyn = DynamicGraph(50)
        for v in range(1, 50):
            dyn.insert_edge(0, v)
        assert dyn.degree(0) == 49
        assert sorted(dyn.neighbors(0).tolist()) == list(range(1, 50))

    def test_out_of_range_raises(self, dyn_karate):
        with pytest.raises(IndexError):
            dyn_karate.insert_edge(0, 34)


class TestDeletion:
    def test_delete_existing(self, dyn_karate):
        before = dyn_karate.num_edges
        assert dyn_karate.delete_edge(0, 1)
        assert dyn_karate.num_edges == before - 1
        assert not dyn_karate.has_edge(0, 1)

    def test_delete_missing_returns_false(self, dyn_karate):
        assert not dyn_karate.delete_edge(0, 9)

    def test_insert_delete_round_trip(self, karate):
        dyn = DynamicGraph.from_csr(karate)
        dyn.insert_edge(0, 9)
        dyn.delete_edge(0, 9)
        assert dyn.snapshot() == karate

    def test_delete_then_reinsert(self, karate):
        dyn = DynamicGraph.from_csr(karate)
        dyn.delete_edge(0, 1)
        dyn.insert_edge(0, 1)
        assert dyn.snapshot() == karate


class TestRemoveRandomEdges:
    def test_count_and_membership(self, dyn_karate, rng):
        before = dyn_karate.snapshot().edge_list()
        removed = dyn_karate.remove_random_edges(rng, 10)
        assert removed.shape == (10, 2)
        assert dyn_karate.num_edges == 68
        before_set = {tuple(e) for e in before.tolist()}
        for u, v in removed.tolist():
            assert (min(u, v), max(u, v)) in before_set
            assert not dyn_karate.has_edge(u, v)

    def test_reinsertion_restores_graph(self, karate, rng):
        dyn = DynamicGraph.from_csr(karate)
        removed = dyn.remove_random_edges(rng, 20)
        for u, v in removed:
            dyn.insert_edge(int(u), int(v))
        assert dyn.snapshot() == karate

    def test_too_many_raises(self, dyn_karate, rng):
        with pytest.raises(ValueError):
            dyn_karate.remove_random_edges(rng, 79)

    def test_negative_raises(self, dyn_karate, rng):
        with pytest.raises(ValueError):
            dyn_karate.remove_random_edges(rng, -1)


class TestAddVertex:
    def test_new_vertex_is_isolated(self, dyn_karate):
        v = dyn_karate.add_vertex()
        assert v == 34
        assert dyn_karate.degree(v) == 0
        assert dyn_karate.num_vertices == 35

    def test_new_vertex_can_connect(self, dyn_karate):
        v = dyn_karate.add_vertex()
        assert dyn_karate.insert_edge(v, 0)
        assert dyn_karate.has_edge(0, v)


class TestConsistencyUnderChurn:
    def test_random_churn_matches_rebuilt_csr(self, rng):
        base = gen.erdos_renyi(30, 60, seed=3)
        dyn = DynamicGraph.from_csr(base)
        edges = set(map(tuple, base.edge_list().tolist()))
        for _ in range(200):
            u, v = int(rng.integers(0, 30)), int(rng.integers(0, 30))
            if u == v:
                continue
            key = (min(u, v), max(u, v))
            if key in edges:
                assert dyn.delete_edge(u, v)
                edges.remove(key)
            else:
                assert dyn.insert_edge(u, v)
                edges.add(key)
        rebuilt = CSRGraph.from_edges(30, sorted(edges))
        assert dyn.snapshot() == rebuilt
