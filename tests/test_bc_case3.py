"""Correctness of the Case-3 (distant-level) update, including the
component-merge variant and the moved-vertex pre-pass."""

import numpy as np
import pytest

from repro.bc.accountants import make_accountant
from repro.bc.brandes import single_source_state
from repro.bc.cases import Case, classify_insertion
from repro.bc.state import BCState
from repro.bc.update_core import distant_level_update
from repro.graph import generators as gen
from repro.graph.csr import CSRGraph, DIST_INF
from repro.graph.dynamic import DynamicGraph


def apply_case3(graph_after, source, rows, bc, u_high, u_low, strategy="cpu"):
    d, sigma, delta = rows
    acc = make_accountant(strategy, graph_after.num_vertices,
                          2 * graph_after.num_edges)
    return distant_level_update(graph_after, source, d, sigma, delta, bc,
                                u_high, u_low, acc)


def check_against_scratch(graph_before, source, u, v, strategy="cpu"):
    """Insert (u, v), update via Case-3 core, compare with recompute."""
    d, sigma, delta, _ = single_source_state(graph_before, source)
    delta[source] = 0.0
    case, u_high, u_low = classify_insertion(d, u, v)
    assert case == Case.DISTANT_LEVEL, "test setup must produce Case 3"
    dyn = DynamicGraph.from_csr(graph_before)
    dyn.insert_edge(u, v)
    after = dyn.snapshot()
    bc = np.zeros(graph_before.num_vertices)
    bc_before = bc.copy()
    stats = apply_case3(after, source, (d, sigma, delta), bc, u_high, u_low,
                        strategy)
    dn, sn, den, _ = single_source_state(after, source)
    den[source] = 0.0
    assert np.array_equal(d, dn), "distances after Case 3"
    assert np.allclose(sigma, sn), "sigma after Case 3"
    assert np.allclose(delta, den), "delta after Case 3"
    # BC difference equals dependency difference
    d0, s0, de0, _ = single_source_state(graph_before, source)
    de0[source] = 0.0
    assert np.allclose(bc - bc_before, den - de0)
    return stats


class TestPathShortcuts:
    def test_long_shortcut_on_path(self):
        # path 0..9, insert (0, 9): everything past the middle moves
        stats = check_against_scratch(gen.path_graph(10), 0, 0, 9)
        assert stats.moved >= 4

    def test_mid_shortcut(self):
        check_against_scratch(gen.path_graph(12), 0, 2, 9)

    def test_shortcut_near_source(self):
        check_against_scratch(gen.path_graph(8), 1, 0, 6)

    @pytest.mark.parametrize("strategy", ["cpu", "gpu-edge", "gpu-node"])
    def test_strategies_agree(self, strategy):
        check_against_scratch(gen.path_graph(10), 0, 1, 8, strategy)


class TestComponentMerge:
    def test_two_paths_joined(self, two_components):
        stats = check_against_scratch(two_components, 0, 2, 7)
        assert stats.moved == 5  # the whole second path gets distances

    def test_source_component_absorbs_isolated(self):
        g = CSRGraph.from_edges(5, [(0, 1), (1, 2)])  # 3, 4 isolated
        check_against_scratch(g, 0, 1, 3)

    def test_star_plus_far_island(self):
        edges = [(0, i) for i in range(1, 5)] + [(5, 6), (6, 7)]
        g = CSRGraph.from_edges(8, edges)
        stats = check_against_scratch(g, 0, 2, 5)
        assert stats.moved == 3

    def test_merge_deep_island(self):
        # island is itself a path; merged at its middle
        edges = [(0, 1)] + [(i, i + 1) for i in range(2, 9)]
        g = CSRGraph.from_edges(10, edges)
        check_against_scratch(g, 0, 1, 5)


class TestDenseGraphs:
    def test_er_random_case3_insertions(self, rng):
        g = gen.erdos_renyi(70, 110, seed=13)
        sources = [0, 9, 44]
        done = 0
        for u, v in g.undirected_non_edges(rng, 300).tolist():
            for s in sources:
                d, _, _, _ = single_source_state(g, s)
                case, _, _ = classify_insertion(d, u, v)
                if case == Case.DISTANT_LEVEL:
                    check_against_scratch(g, s, u, v)
                    done += 1
            if done >= 6:
                break
        assert done >= 3

    def test_full_multisource_state(self, rng):
        """End-to-end: mixed Case 2/3 insertions, full state verify."""
        g = gen.watts_strogatz(80, k=4, p=0.05, seed=2)
        st = BCState.compute(g, [0, 20, 40])
        dyn = DynamicGraph.from_csr(g)
        from repro.bc.update_core import adjacent_level_update

        inserted = 0
        for u, v in g.undirected_non_edges(rng, 100).tolist():
            if not dyn.insert_edge(u, v):
                continue
            after = dyn.snapshot()
            for i, s in enumerate(st.sources):
                case, high, low = classify_insertion(st.d[i], u, v)
                acc = make_accountant("cpu", after.num_vertices,
                                      2 * after.num_edges)
                if case == Case.ADJACENT_LEVEL:
                    adjacent_level_update(after, int(s), st.d[i], st.sigma[i],
                                          st.delta[i], st.bc, high, low, acc)
                elif case == Case.DISTANT_LEVEL:
                    distant_level_update(after, int(s), st.d[i], st.sigma[i],
                                         st.delta[i], st.bc, high, low, acc)
            inserted += 1
            if inserted == 12:
                break
        st.verify_against(dyn.snapshot())


class TestPreconditions:
    def test_requires_distant_levels(self, path10):
        d, sigma, delta, _ = single_source_state(path10, 0)
        acc = make_accountant("cpu", 10, 18)
        bc = np.zeros(10)
        with pytest.raises(ValueError, match="distant-level"):
            distant_level_update(path10, 0, d, sigma, delta, bc, 0, 1, acc)

    def test_moved_vertices_counted(self):
        stats = check_against_scratch(gen.path_graph(10), 0, 0, 9)
        assert stats.touched >= stats.moved > 0
