"""Smoke tests for the example scripts (they are deliverables too).

Only the fast examples run here; ``make examples`` exercises all six.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "verified" in out
        assert "top-5 central vertices" in out

    def test_streaming_throughput(self):
        out = run_example("streaming_throughput.py")
        assert "Keeps up?" in out
        assert "gpu-node" in out

    def test_examples_directory_complete(self):
        names = {p.name for p in EXAMPLES.glob("*.py")}
        assert names == {
            "quickstart.py",
            "social_network_stream.py",
            "power_grid_contingency.py",
            "gpu_tuning.py",
            "approximation_quality.py",
            "streaming_throughput.py",
        }
