"""Rule-by-rule tests for the AST linter (:mod:`repro.sanitize.lint`).

Every rule gets three checks: a minimal bad snippet fires it, a good
twin (the idiomatic fix) stays silent, and the
``# sanitize: ignore[RNNN]`` pragma suppresses it.  Snippets are linted
under virtual paths so the path-scoped rules see the tree layout they
enforce.
"""

from __future__ import annotations

import json
import subprocess
import sys

import pytest

from repro.sanitize import lint

pytestmark = pytest.mark.sanitize

KERNEL_PATH = "src/repro/bc/mod.py"
PARALLEL_PATH = "src/repro/parallel/mod.py"
RESILIENCE_PATH = "src/repro/resilience/mod.py"
NEUTRAL_PATH = "src/repro/analysis/mod.py"


def rules_of(findings):
    return [f.rule for f in findings]


def lint_at(source: str, path: str):
    return lint.lint_source(source, path)


# ----------------------------------------------------------------------
# R001: wall-clock in kernel code
# ----------------------------------------------------------------------
class TestR001:
    BAD = "import time\n\nstart = time.perf_counter()\n"

    def test_fires_on_perf_counter(self):
        assert rules_of(lint_at(self.BAD, KERNEL_PATH)) == ["R001"]

    def test_fires_on_from_import_alias(self):
        src = "from time import time as now\n\nstart = now()\n"
        assert rules_of(lint_at(src, "src/repro/gpu/mod.py")) == ["R001"]

    def test_fires_on_aliased_module(self):
        src = "import time as t\n\nstart = t.monotonic()\n"
        assert rules_of(lint_at(src, KERNEL_PATH)) == ["R001"]

    def test_silent_outside_kernel_tree(self):
        assert lint_at(self.BAD, NEUTRAL_PATH) == []

    def test_silent_on_simulated_time(self):
        src = ("def run(model, trace):\n"
               "    return model.trace_seconds(trace)\n")
        assert lint_at(src, KERNEL_PATH) == []

    def test_pragma_suppresses(self):
        src = ("import time\n\n"
               "start = time.time()  # sanitize: ignore[R001]\n")
        assert lint_at(src, KERNEL_PATH) == []

    def test_time_sleep_is_not_a_clock_read(self):
        src = "import time\n\ntime.sleep(0.1)\n"
        assert lint_at(src, KERNEL_PATH) == []


# ----------------------------------------------------------------------
# R002: unseeded / global-state numpy RNG
# ----------------------------------------------------------------------
class TestR002:
    def test_fires_on_legacy_global_api(self):
        src = "import numpy as np\n\nx = np.random.rand(10)\n"
        assert rules_of(lint_at(src, NEUTRAL_PATH)) == ["R002"]

    def test_fires_on_global_seed(self):
        src = "import numpy as np\n\nnp.random.seed(0)\n"
        assert rules_of(lint_at(src, NEUTRAL_PATH)) == ["R002"]

    def test_fires_on_unseeded_default_rng(self):
        src = "import numpy as np\n\nrng = np.random.default_rng()\n"
        assert rules_of(lint_at(src, NEUTRAL_PATH)) == ["R002"]

    def test_silent_on_seeded_default_rng(self):
        src = "import numpy as np\n\nrng = np.random.default_rng(42)\n"
        assert lint_at(src, NEUTRAL_PATH) == []

    def test_silent_on_seed_sequence(self):
        src = ("import numpy as np\n\n"
               "ss = np.random.SeedSequence(7)\n"
               "rng = np.random.Generator(np.random.PCG64(ss))\n")
        assert lint_at(src, NEUTRAL_PATH) == []

    def test_silent_on_annotation(self):
        # np.random.Generator as a *type annotation* is an Attribute,
        # not a Call — must not fire.
        src = ("import numpy as np\n\n"
               "def f(rng: np.random.Generator) -> None:\n"
               "    rng.shuffle([1, 2])\n")
        assert lint_at(src, NEUTRAL_PATH) == []

    def test_pragma_suppresses(self):
        src = ("import numpy as np\n\n"
               "x = np.random.rand(3)  # sanitize: ignore[R002]\n")
        assert lint_at(src, NEUTRAL_PATH) == []


# ----------------------------------------------------------------------
# R003: shared-memory lifecycle
# ----------------------------------------------------------------------
class TestR003:
    def test_fires_on_raw_import(self):
        src = "from multiprocessing import shared_memory\n"
        assert rules_of(lint_at(src, NEUTRAL_PATH)) == ["R003"]

    def test_fires_on_dotted_import(self):
        src = "import multiprocessing.shared_memory as shm\n"
        assert rules_of(lint_at(src, NEUTRAL_PATH)) == ["R003"]

    def test_raw_import_allowed_in_shm_module(self):
        src = "from multiprocessing import shared_memory\n"
        assert lint_at(src, "src/repro/parallel/shm.py") == []

    def test_fires_on_unpaired_creation(self):
        src = ("def leak(shape):\n"
               "    arena = ShmArena(shape)\n"
               "    return arena.name\n")
        assert rules_of(lint_at(src, PARALLEL_PATH)) == ["R003"]

    def test_silent_when_paired_in_function(self):
        src = ("def ok(shape):\n"
               "    arena = ShmArena(shape)\n"
               "    try:\n"
               "        return arena.name\n"
               "    finally:\n"
               "        arena.close()\n")
        assert lint_at(src, PARALLEL_PATH) == []

    def test_fires_on_unpaired_result_slabs(self):
        # The PR-8 result-slab block is shm like any other: allocation
        # without a lexical release path is a leak hazard.
        src = ("def leak(workers):\n"
               "    slabs = ResultSlabs(workers)\n"
               "    return slabs.spec()\n")
        assert rules_of(lint_at(src, PARALLEL_PATH)) == ["R003"]

    def test_silent_when_result_slabs_paired(self):
        src = ("def ok(workers):\n"
               "    slabs = ResultSlabs(workers)\n"
               "    try:\n"
               "        return slabs.spec()\n"
               "    finally:\n"
               "        slabs.close()\n")
        assert lint_at(src, PARALLEL_PATH) == []

    def test_silent_when_paired_across_methods(self):
        # The engine pattern: creation in one method, release in a
        # sibling — the widening search must reach the class body.
        src = ("class Engine:\n"
               "    def start(self):\n"
               "        self._arena = ShmArena((4,))\n"
               "    def stop(self):\n"
               "        self._arena.close()\n")
        assert lint_at(src, PARALLEL_PATH) == []

    def test_silent_inside_with_block(self):
        src = ("def ok(shape):\n"
               "    with ShmArena(shape) as arena:\n"
               "        return arena.name\n")
        assert lint_at(src, PARALLEL_PATH) == []

    def test_pragma_suppresses(self):
        src = ("def leak(shape):\n"
               "    a = ShmArena(shape)  # sanitize: ignore[R003]\n"
               "    return a\n")
        assert lint_at(src, PARALLEL_PATH) == []


# ----------------------------------------------------------------------
# R004: swallowed exceptions in resilience-critical layers
# ----------------------------------------------------------------------
class TestR004:
    BARE = ("def f():\n"
            "    try:\n"
            "        g()\n"
            "    except:\n"
            "        pass\n")
    SWALLOW = ("def f():\n"
               "    try:\n"
               "        g()\n"
               "    except Exception:\n"
               "        pass\n")

    def test_fires_on_bare_except(self):
        assert rules_of(lint_at(self.BARE, RESILIENCE_PATH)) == ["R004"]

    def test_fires_on_swallowed_exception(self):
        assert rules_of(lint_at(self.SWALLOW, PARALLEL_PATH)) == ["R004"]

    def test_silent_outside_scoped_trees(self):
        assert lint_at(self.SWALLOW, NEUTRAL_PATH) == []

    def test_silent_on_handled_exception(self):
        src = ("def f(log):\n"
               "    try:\n"
               "        g()\n"
               "    except Exception as exc:\n"
               "        log.warning('g failed: %s', exc)\n")
        assert lint_at(src, RESILIENCE_PATH) == []

    def test_silent_on_narrow_except(self):
        src = ("def f():\n"
               "    try:\n"
               "        g()\n"
               "    except FileNotFoundError:\n"
               "        pass\n")
        assert lint_at(src, RESILIENCE_PATH) == []

    def test_silent_on_contextlib_suppress(self):
        src = ("import contextlib\n\n"
               "def f():\n"
               "    with contextlib.suppress(Exception):\n"
               "        g()\n")
        assert lint_at(src, PARALLEL_PATH) == []

    def test_pragma_suppresses(self):
        src = ("def f():\n"
               "    try:\n"
               "        g()\n"
               "    except:  # sanitize: ignore[R004]\n"
               "        pass\n")
        assert lint_at(src, RESILIENCE_PATH) == []


# ----------------------------------------------------------------------
# R005: kernels must charge their accountant
# ----------------------------------------------------------------------
class TestR005:
    def test_fires_when_acc_unused(self):
        src = ("def kernel(graph, source, acc):\n"
               "    return graph.bfs(source)\n")
        assert rules_of(lint_at(src, KERNEL_PATH)) == ["R005"]

    def test_silent_when_acc_method_called(self):
        src = ("def kernel(graph, source, acc):\n"
               "    acc.sp_level(frontier=1, arcs=2)\n"
               "    return graph.bfs(source)\n")
        assert lint_at(src, KERNEL_PATH) == []

    def test_silent_on_attribute_chain(self):
        src = ("def kernel(graph, source, acc):\n"
               "    acc.trace.add(1, 2.0, 3.0)\n"
               "    return graph.bfs(source)\n")
        assert lint_at(src, KERNEL_PATH) == []

    def test_silent_when_acc_forwarded(self):
        src = ("def kernel(graph, source, acc):\n"
               "    return inner_kernel(graph, source, acc)\n")
        assert lint_at(src, KERNEL_PATH) == []

    def test_silent_outside_bc_tree(self):
        src = ("def helper(acc):\n"
               "    return 1\n")
        assert lint_at(src, NEUTRAL_PATH) == []

    def test_pragma_suppresses(self):
        src = ("def kernel(graph, acc):  # sanitize: ignore[R005]\n"
               "    return 1\n")
        assert lint_at(src, KERNEL_PATH) == []


# ----------------------------------------------------------------------
# R006: non-atomic durable writes in resilience/ and service/
# ----------------------------------------------------------------------
class TestR006:
    SERVICE_PATH = "src/repro/service/mod.py"
    BAD = ("def save(path, data):\n"
           "    with open(path, 'w') as fh:\n"
           "        fh.write(data)\n")

    def test_fires_in_resilience_tree(self):
        assert rules_of(lint_at(self.BAD, RESILIENCE_PATH)) == ["R006"]

    def test_fires_in_service_tree(self):
        assert rules_of(lint_at(self.BAD, self.SERVICE_PATH)) == ["R006"]

    def test_fires_on_mode_keyword_and_binary(self):
        src = ("def save(path, blob):\n"
               "    with open(path, mode='wb') as fh:\n"
               "        fh.write(blob)\n")
        assert rules_of(lint_at(src, self.SERVICE_PATH)) == ["R006"]

    def test_silent_on_read_mode(self):
        src = ("def load(path):\n"
               "    with open(path) as fh:\n"
               "        return fh.read()\n")
        assert lint_at(src, RESILIENCE_PATH) == []

    def test_silent_with_atomic_write_helper(self):
        src = ("from repro.utils.atomicio import atomic_write\n\n"
               "def save(path, data):\n"
               "    with atomic_write(path) as fh:\n"
               "        fh.write(data)\n")
        assert lint_at(src, self.SERVICE_PATH) == []

    def test_silent_with_inline_tmp_and_replace(self):
        src = ("import os\n\n"
               "def save(path, data):\n"
               "    tmp = path + '.tmp'\n"
               "    with open(tmp, 'w') as fh:\n"
               "        fh.write(data)\n"
               "        os.fsync(fh.fileno())\n"
               "    os.replace(tmp, path)\n")
        assert lint_at(src, RESILIENCE_PATH) == []

    def test_widening_search_finds_replace_in_class(self):
        src = ("import os\n\n"
               "class Saver:\n"
               "    def _write(self, tmp, data):\n"
               "        with open(tmp, 'w') as fh:\n"
               "            fh.write(data)\n"
               "    def commit(self, tmp, path):\n"
               "        os.replace(tmp, path)\n")
        assert lint_at(src, self.SERVICE_PATH) == []

    def test_silent_outside_durable_trees(self):
        assert lint_at(self.BAD, NEUTRAL_PATH) == []
        assert lint_at(self.BAD, KERNEL_PATH) == []

    def test_faults_and_wal_modules_exempt(self):
        for exempt in ("src/repro/resilience/faults.py",
                       "src/repro/resilience/wal.py"):
            assert lint_at(self.BAD, exempt) == []

    def test_pragma_suppresses(self):
        src = ("def save(path, data):\n"
               "    with open(path, 'w') as fh:  # sanitize: ignore[R006]\n"
               "        fh.write(data)\n")
        assert lint_at(src, RESILIENCE_PATH) == []


# ----------------------------------------------------------------------
# Pragma mechanics, output formats, exit codes, repo cleanliness
# ----------------------------------------------------------------------
class TestHarness:
    def test_pragma_comma_list(self):
        src = ("import numpy as np\n\n"
               "x = np.random.rand(3)  # sanitize: ignore[R001, R002]\n")
        assert lint_at(src, NEUTRAL_PATH) == []

    def test_pragma_wrong_rule_does_not_suppress(self):
        src = ("import numpy as np\n\n"
               "x = np.random.rand(3)  # sanitize: ignore[R001]\n")
        assert rules_of(lint_at(src, NEUTRAL_PATH)) == ["R002"]

    def test_findings_sorted_and_stable(self):
        src = ("import numpy as np\n"
               "import time\n\n"
               "b = np.random.rand(3)\n"
               "a = time.time()\n")
        findings = lint_at(src, KERNEL_PATH)
        assert rules_of(findings) == ["R002", "R001"]  # line order
        assert findings == sorted(findings, key=lint.LintFinding.sort_key)

    def test_finding_carries_hint(self):
        src = "import numpy as np\n\nx = np.random.rand(3)\n"
        (finding,) = lint_at(src, NEUTRAL_PATH)
        assert "default_rng" in finding.hint
        assert finding.rule in finding.render()
        d = finding.to_dict()
        assert d["rule"] == "R002" and d["hint"] == finding.hint

    def test_lint_file_virtual_path(self, tmp_path):
        bad = tmp_path / "snippet.py"
        bad.write_text("import time\n\nx = time.time()\n")
        # Under its real (neutral) path: silent.
        assert lint.lint_file(bad) == []
        # Under a virtual kernel path: fires.
        findings = lint.lint_file(bad, virtual_path="src/repro/bc/x.py")
        assert rules_of(findings) == ["R001"]

    def test_main_exit_codes(self, tmp_path, capsys):
        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        assert lint.main([str(good)]) == 0
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\n\nx = np.random.rand(3)\n")
        assert lint.main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "R002" in out and "fix-it" in out

    def test_main_json_format(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\n\nnp.random.seed(1)\n")
        assert lint.main([str(bad), "--format", "json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == lint.LINT_VERSION
        assert doc["ok"] is False and doc["files_checked"] == 1
        assert doc["findings"][0]["rule"] == "R002"

    def test_main_output_file(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\n\nnp.random.seed(1)\n")
        report = tmp_path / "report.json"
        assert lint.main([str(bad), "--format", "json",
                          "--output", str(report)]) == 1
        assert json.loads(report.read_text())["ok"] is False

    def test_module_entry_point(self, tmp_path):
        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.sanitize.lint", str(good)],
            capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stderr
        assert "ok" in proc.stdout

    def test_shipped_tree_is_clean(self):
        """The zero-ignore baseline: src/ and tests/ lint clean."""
        assert lint.lint_paths(["src", "tests"]) == []

    def test_syntax_error_is_a_finding(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        findings = lint.lint_file(bad)
        assert len(findings) == 1
        assert "unparseable" in findings[0].message
