import pytest

from repro.analysis.config import DEFAULT, PAPER_LIKE, SMOKE, ExperimentConfig


class TestExperimentConfig:
    def test_defaults(self):
        c = ExperimentConfig()
        assert c.num_sources == 64
        assert c.num_insertions == 20
        assert len(c.graphs) == 7

    def test_presets(self):
        assert SMOKE.scale < DEFAULT.scale < PAPER_LIKE.scale

    def test_frozen(self):
        with pytest.raises(Exception):
            ExperimentConfig().scale = 2.0

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            ExperimentConfig(scale=0)

    def test_bad_sources(self):
        with pytest.raises(ValueError):
            ExperimentConfig(num_sources=0)

    def test_bad_insertions(self):
        with pytest.raises(ValueError):
            ExperimentConfig(num_insertions=0)

    def test_unknown_graph(self):
        with pytest.raises(ValueError, match="unknown"):
            ExperimentConfig(graphs=("caida", "facebook"))

    def test_subset_ok(self):
        c = ExperimentConfig(graphs=("caida",))
        assert c.graphs == ("caida",)
