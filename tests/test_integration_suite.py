"""End-to-end integration: the full protocol on every suite graph and
backend, with the paper's correctness check, plus vertex insertion."""

import numpy as np
import pytest

from repro.analysis.config import ExperimentConfig
from repro.analysis.protocol import replay_stream
from repro.bc.engine import DynamicBC
from repro.graph.csr import DIST_INF
from repro.graph.suite import SUITE_SPECS

TINY = ExperimentConfig(scale=0.15, num_sources=8, num_insertions=3,
                        seed=77)


class TestFullProtocolAcrossSuite:
    @pytest.mark.parametrize("name", sorted(SUITE_SPECS))
    def test_node_backend_verifies(self, name):
        run = replay_stream(TINY, name, "gpu-node")
        run.engine.verify()

    @pytest.mark.parametrize("backend", ["cpu", "gpu-edge"])
    def test_other_backends_verify_on_two_graphs(self, backend):
        for name in ("caida", "kron"):
            run = replay_stream(TINY, name, backend)
            run.engine.verify()

    def test_backends_agree_exactly(self):
        scores = {}
        for backend in ("cpu", "gpu-edge", "gpu-node"):
            run = replay_stream(TINY, "eu", backend)
            scores[backend] = run.engine.bc_scores.copy()
        assert np.allclose(scores["cpu"], scores["gpu-edge"])
        assert np.allclose(scores["cpu"], scores["gpu-node"])


class TestVertexInsertion:
    def test_new_vertex_scores_zero(self, karate):
        eng = DynamicBC.from_graph(karate, num_sources=6, seed=1)
        before = eng.bc_scores.copy()
        v = eng.add_vertex()
        assert v == 34
        assert eng.bc_scores.shape == (35,)
        assert eng.bc_scores[v] == 0.0
        # "a node insertion causes no change to existing BC scores"
        assert np.allclose(eng.bc_scores[:34], before)
        assert np.all(eng.state.d[:, v] == DIST_INF)

    def test_attach_new_vertex_then_verify(self, karate):
        eng = DynamicBC.from_graph(karate, num_sources=6, seed=1)
        v = eng.add_vertex()
        rep = eng.insert_edge(v, 0)  # component merge: Case 3
        assert 3 in rep.case_histogram
        eng.insert_edge(v, 33)
        eng.verify()

    def test_multiple_new_vertices(self, path10):
        eng = DynamicBC.from_graph(path10, sources=[0, 5])
        a = eng.add_vertex()
        b = eng.add_vertex()
        eng.insert_edge(a, b)   # new component of two
        eng.insert_edge(9, a)   # merge into the path
        eng.verify()
        assert eng.state.d[0][b] == 11  # 0..9 path + a + b
