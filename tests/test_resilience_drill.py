"""Crash-drill harness smoke tests: one seeded kill -9 cycle against a
real serve subprocess (recovery + zero-acked-loss + bit-identity
checks), and one kill-the-primary failover cycle against a live hot
standby.  The CI `crash-drill` and `failover-drill` jobs run the full
seed matrices; this keeps the harnesses themselves honest in the
tier-1 suite with one short cycle each."""

import json

import pytest

from repro.resilience.drill import (
    DrillReport,
    FailoverReport,
    run_drill,
    run_failover_drill,
)

pytestmark = pytest.mark.service


class TestDrill:
    def test_single_kill_cycle_recovers(self, tmp_path):
        report = run_drill(seed=0, ops=120, kills=1,
                           artifacts_dir=tmp_path / "artifacts",
                           wall_target=2.5, kill_window=(0.4, 1.6))
        assert report.ok, "\n".join(report.failures)
        assert report.final_watermark == report.total_writes
        phases = [t["phase"] for t in report.timeline]
        assert "recovered" in phases and "completed" in phases
        # Every recovery satisfied RPO zero: watermark covers the ack.
        for entry in report.timeline:
            if entry["phase"] == "recovered" and entry.get("last_ack", -1) >= 0:
                assert entry["watermark"] >= entry["last_ack"] + 1
        header = report.header()
        json.dumps(header)  # the drill log record is JSON-clean
        assert header["ok"] is True and header["seed"] == 0
        summary = report.summary()
        assert "OK" in summary and "seed 0" in summary

    def test_report_failure_bookkeeping(self):
        report = DrillReport(seed=1, ops=10, kills=1)
        assert report.ok
        report.note("spawned", cycle=0, pid=123)
        report.fail("synthetic failure")
        assert not report.ok
        assert report.failures == ["synthetic failure"]
        assert "FAIL" in report.summary()
        assert report.header()["failures"] == ["synthetic failure"]


@pytest.mark.replication
class TestFailoverDrill:
    def test_kill_the_primary_fails_over(self, tmp_path):
        report = run_failover_drill(seed=0, ops=120,
                                    artifacts_dir=tmp_path / "artifacts",
                                    wall_target=2.5,
                                    kill_window=(0.4, 1.6))
        assert report.ok, "\n".join(report.failures)
        assert report.final_watermark == report.total_writes
        phases = [t["phase"] for t in report.timeline]
        assert "promoted" in phases and "completed" in phases
        assert "fenced" in phases  # split-brain check ran
        assert report.promoted_epoch >= 1
        assert report.rto_seconds > 0
        # Zero acked-write loss at the promotion boundary.
        if report.last_ack >= 0:
            promoted = next(t for t in report.timeline
                            if t["phase"] == "promoted")
            assert promoted["watermark"] >= report.last_ack + 1
        header = report.header()
        json.dumps(header)  # the drill log record is JSON-clean
        assert header["record"] == "failover-report"
        assert "rto_seconds" in header and "lag_max" in header
        summary = report.summary()
        assert "RTO" in summary and "OK" in summary

    def test_failover_report_bookkeeping(self):
        report = FailoverReport(seed=2, ops=10, kills=1)
        report.lag_samples.extend([0, 3, 1])
        assert report.max_lag == 3
        assert report.mean_lag == pytest.approx(4 / 3)
        report.fail("synthetic failure")
        assert not report.ok
        assert "FAIL" in report.summary()
