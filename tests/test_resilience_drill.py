"""Crash-drill harness smoke test: one seeded kill -9 cycle against a
real serve subprocess, recovery, and the zero-acked-loss +
bit-identity checks.  The CI `crash-drill` job runs the full matrix
(seeds 0-4, two kills each); this keeps the harness itself honest in
the tier-1 suite with one short cycle."""

import json

import pytest

from repro.resilience.drill import DrillReport, run_drill

pytestmark = pytest.mark.service


class TestDrill:
    def test_single_kill_cycle_recovers(self, tmp_path):
        report = run_drill(seed=0, ops=120, kills=1,
                           artifacts_dir=tmp_path / "artifacts",
                           wall_target=2.5, kill_window=(0.4, 1.6))
        assert report.ok, "\n".join(report.failures)
        assert report.final_watermark == report.total_writes
        phases = [t["phase"] for t in report.timeline]
        assert "recovered" in phases and "completed" in phases
        # Every recovery satisfied RPO zero: watermark covers the ack.
        for entry in report.timeline:
            if entry["phase"] == "recovered" and entry.get("last_ack", -1) >= 0:
                assert entry["watermark"] >= entry["last_ack"] + 1
        header = report.header()
        json.dumps(header)  # the drill log record is JSON-clean
        assert header["ok"] is True and header["seed"] == 0
        summary = report.summary()
        assert "OK" in summary and "seed 0" in summary

    def test_report_failure_bookkeeping(self):
        report = DrillReport(seed=1, ops=10, kills=1)
        assert report.ok
        report.note("spawned", cycle=0, pid=123)
        report.fail("synthetic failure")
        assert not report.ok
        assert report.failures == ["synthetic failure"]
        assert "FAIL" in report.summary()
        assert report.header()["failures"] == ["synthetic failure"]
