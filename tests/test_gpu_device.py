import pytest

from repro.gpu.device import (
    CORE_I7_2600K,
    GTX_560,
    TESLA_C2075,
    DeviceSpec,
    device_by_name,
)


class TestPresets:
    def test_c2075_matches_paper(self):
        # §IV: 14 SMs, 1.15 GHz
        assert TESLA_C2075.num_sms == 14
        assert TESLA_C2075.clock_ghz == pytest.approx(1.15)
        assert not TESLA_C2075.is_cpu

    def test_gtx560_matches_paper(self):
        assert GTX_560.num_sms == 7

    def test_i7_matches_paper(self):
        # §IV: 3.4 GHz, 8 MB cache, single-threaded baseline
        assert CORE_I7_2600K.clock_ghz == pytest.approx(3.4)
        assert CORE_I7_2600K.cache_mb == pytest.approx(8.0)
        assert CORE_I7_2600K.is_cpu
        assert CORE_I7_2600K.threads_per_block == 1

    def test_clock_hz(self):
        assert TESLA_C2075.clock_hz == pytest.approx(1.15e9)

    def test_lookup_by_name(self):
        assert device_by_name("Tesla C2075") is TESLA_C2075

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError):
            device_by_name("RTX 9090")


class TestDeviceSpec:
    def test_frozen(self):
        with pytest.raises(Exception):
            TESLA_C2075.num_sms = 1

    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceSpec("bad", num_sms=0, clock_ghz=1, mem_bandwidth_gbs=1,
                       sm_mem_gbs=1)
        with pytest.raises(ValueError):
            DeviceSpec("bad", num_sms=1, clock_ghz=-1, mem_bandwidth_gbs=1,
                       sm_mem_gbs=1)

    def test_with_sms(self):
        doubled = TESLA_C2075.with_sms(28)
        assert doubled.num_sms == 28
        assert doubled.clock_ghz == TESLA_C2075.clock_ghz
        assert "28" in doubled.name


class TestK40Preset:
    def test_k40(self):
        from repro.gpu.device import TESLA_K40

        assert TESLA_K40.num_sms == 15
        assert device_by_name("Tesla K40") is TESLA_K40

    def test_k40_faster_than_c2075_on_memory_bound(self):
        from repro.gpu.costmodel import CostModel
        from repro.gpu.counters import Step
        from repro.gpu.device import TESLA_K40

        step = Step(10**6, 4.0, 10**7)
        assert CostModel(TESLA_K40).step_seconds(step) < \
            CostModel(TESLA_C2075).step_seconds(step)
