"""Differential suite for the shared-memory parallel engine.

``DynamicBC(workers=N)`` promises *bit-identical* results to the serial
engine — same BC scores, same reports, same counters, same simulated
time — with only wall-clock allowed to differ.  Every test here runs a
serial twin and a parallel twin through the same scenario and compares
them exactly (``np.array_equal``, ``==`` on floats), never with
tolerances.
"""

import warnings

import numpy as np
import pytest

from repro.bc.cases import Case, classify_insertions_batch
from repro.bc.engine import DynamicBC
from repro.graph import generators as gen
from repro.graph.dynamic import DynamicGraph
from repro.graph.stream import EdgeStream, replay
from repro.parallel.pool import WorkerCrashed
from repro.parallel.shm import shm_available
from repro.resilience import FaultInjector, UpdateError
from repro.resilience.chaos import reports_identical
from repro.resilience.guards import GuardPolicy

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="POSIX shm unavailable"
)

K = 12
SEED = 3


def build_pair(graph, workers, **kwargs):
    """A (serial, parallel) engine pair over private copies of *graph*."""
    serial = DynamicBC.from_graph(DynamicGraph.from_csr(graph),
                                  num_sources=K, seed=SEED, **kwargs)
    par = DynamicBC.from_graph(DynamicGraph.from_csr(graph), num_sources=K,
                               seed=SEED, workers=workers, **kwargs)
    return serial, par


def assert_states_equal(a, b):
    for name in ("sources", "d", "sigma", "delta", "bc"):
        assert np.array_equal(getattr(a.state, name), getattr(b.state, name)), name
    assert a.counters == b.counters


def active_insert_edge(engine):
    """A non-edge whose insertion has at least one non-Case-1 source
    (guaranteeing the update actually dispatches to the pool)."""
    snap = engine.graph.snapshot()
    n = snap.num_vertices
    for u in range(n):
        for v in range(u + 1, n):
            if engine.graph.has_edge(u, v):
                continue
            cases, _, _ = classify_insertions_batch(engine.state.d, u, v)
            if np.any(cases != int(Case.SAME_LEVEL)):
                return u, v
    raise AssertionError("no active insertion found")


@pytest.fixture(scope="module")
def er_graph():
    return gen.erdos_renyi(60, 140, seed=7)


# ----------------------------------------------------------------------
# Bit-identity of every engine entry point
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workers", [2, 4])
class TestBitIdentity:
    def test_from_graph(self, er_graph, workers):
        serial, par = build_pair(er_graph, workers)
        try:
            assert par._pool is not None, "pool did not come up"
            assert_states_equal(serial, par)
        finally:
            par.close()

    def test_churn_replay(self, er_graph, workers):
        serial, par = build_pair(er_graph, workers)
        try:
            stream = EdgeStream.churn(er_graph, 25, delete_fraction=0.4,
                                      seed=11)
            rs = replay(serial, stream)
            rp = replay(par, stream)
            assert len(rs.reports) == len(rp.reports)
            for x, y in zip(rs.reports, rp.reports):
                assert reports_identical(x, y)
            assert rs.simulated_seconds == rp.simulated_seconds
            assert_states_equal(serial, par)
        finally:
            par.close()

    def test_removal_reinsertion_stream(self, er_graph, workers):
        """The paper's §IV protocol: remove edges up front, then replay
        their re-insertions (every event has real active sources)."""
        def run(w):
            dyn = DynamicGraph.from_csr(er_graph)
            stream = EdgeStream.removal_reinsertion(dyn, 8, seed=5)
            eng = DynamicBC.from_graph(dyn, num_sources=K, seed=SEED,
                                       workers=w)
            try:
                return replay(eng, stream), eng.state.bc.copy(), eng.counters
            finally:
                eng.close()

        rs, bc_s, cnt_s = run(1)
        rp, bc_p, cnt_p = run(workers)
        assert len(rs.reports) == len(rp.reports)
        for x, y in zip(rs.reports, rp.reports):
            assert reports_identical(x, y)
        assert np.array_equal(bc_s, bc_p)
        assert cnt_s == cnt_p

    def test_add_vertex_triggers_readoption(self, er_graph, workers):
        serial, par = build_pair(er_graph, workers)
        try:
            for eng in (serial, par):
                eng.add_vertex()
            u, v = 60, 10
            rs = serial.insert_edge(u, v)
            rp = par.insert_edge(u, v)
            assert reports_identical(rs, rp)
            assert_states_equal(serial, par)
        finally:
            par.close()

    def test_recompute_and_repair(self, er_graph, workers):
        serial, par = build_pair(er_graph, workers)
        try:
            for eng in (serial, par):
                eng.recompute()
            assert_states_equal(serial, par)

            injector_a, injector_b = FaultInjector(9), FaultInjector(9)
            i, _ = injector_a.corrupt_row(serial)
            j, _ = injector_b.corrupt_row(par)
            assert i == j
            assert serial.check_rows(range(K)) == par.check_rows(range(K)) == [i]
            assert serial.repair_source(i) == par.repair_source(i)
            assert serial.check_rows(range(K)) == par.check_rows(range(K)) == []
            assert_states_equal(serial, par)
        finally:
            par.close()

    def test_guarded_replay(self, er_graph, workers):
        serial, par = build_pair(er_graph, workers)
        try:
            policy = GuardPolicy(check_every=5, num_check_sources=6, seed=2)
            stream = EdgeStream.churn(er_graph, 20, seed=13)
            rs = replay(serial, stream, guard=policy)
            rp = replay(par, stream, guard=policy)
            assert [
                (e.action, e.kind, e.source_index) for e in rs.guard_events
            ] == [(e.action, e.kind, e.source_index) for e in rp.guard_events]
            assert_states_equal(serial, par)
        finally:
            par.close()


# ----------------------------------------------------------------------
# Checkpoint / resume
# ----------------------------------------------------------------------
def test_checkpoint_resume_workers4_matches_uninterrupted_serial(
    er_graph, tmp_path
):
    """The acceptance scenario: a workers=4 replay that checkpoints,
    "crashes", and resumes must be bit-identical to an uninterrupted
    serial run."""
    stream = EdgeStream.churn(er_graph, 24, delete_fraction=0.35, seed=21)

    serial = DynamicBC.from_graph(DynamicGraph.from_csr(er_graph),
                                  num_sources=K, seed=SEED)
    full = replay(serial, stream)

    ck = DynamicBC.from_graph(DynamicGraph.from_csr(er_graph), num_sources=K,
                              seed=SEED, workers=4)
    try:
        res_ck = replay(ck, stream, checkpoint_every=8,
                        checkpoint_dir=str(tmp_path))
        assert res_ck.checkpoints
    finally:
        ck.close()

    resumed = DynamicBC.from_graph(DynamicGraph.from_csr(er_graph),
                                   num_sources=K, seed=SEED, workers=4)
    try:
        res = replay(resumed, stream, resume_from=res_ck.checkpoints[0])
        tail = full.reports[len(full.reports) - len(res.reports):]
        for x, y in zip(tail, res.reports):
            assert reports_identical(x, y)
        assert np.array_equal(serial.bc_scores, resumed.bc_scores)
        assert serial.counters == resumed.counters
        assert full.simulated_seconds == res.simulated_seconds
    finally:
        resumed.close()


# ----------------------------------------------------------------------
# Failure containment
# ----------------------------------------------------------------------
class TestWorkerCrash:
    def test_crash_rolls_back_and_engine_survives(self, er_graph):
        # Legacy (unsupervised) pool: a crash demotes to serial for
        # good.  The supervised recovery paths are covered by
        # tests/test_parallel_supervisor.py.
        clean, par = build_pair(er_graph, 2, supervised=False)
        try:
            u, v = active_insert_edge(par)
            before = (
                par.state.d.copy(), par.state.sigma.copy(),
                par.state.delta.copy(), par.state.bc.copy(), par.counters,
            )
            par._ensure_pool().arm_crash()
            with pytest.warns(RuntimeWarning, match="falling back to serial"):
                with pytest.raises(UpdateError) as info:
                    par.insert_edge(u, v)
            assert info.value.rolled_back
            assert info.value.edge == (u, v)
            assert isinstance(info.value.cause, WorkerCrashed)
            assert not par.graph.has_edge(u, v)
            d, sigma, delta, bc, counters = before
            assert np.array_equal(par.state.d, d)
            assert np.array_equal(par.state.sigma, sigma)
            assert np.array_equal(par.state.delta, delta)
            assert np.array_equal(par.state.bc, bc)
            assert par.counters == counters

            # The engine keeps working (serially) and still matches the
            # clean twin exactly.
            rs = clean.insert_edge(u, v)
            rp = par.insert_edge(u, v)
            assert reports_identical(rs, rp)
            assert_states_equal(clean, par)
            par.verify()
        finally:
            par.close()

    def test_injector_arms_pool_crash(self, er_graph):
        _, par = build_pair(er_graph, 2, supervised=False)
        try:
            injector = FaultInjector(0)
            injector.arm_update_fault(par, after_sources=1)
            assert any("pool mode" in line for line in injector.log)
            u, v = active_insert_edge(par)
            with pytest.warns(RuntimeWarning):
                with pytest.raises(UpdateError) as info:
                    par.insert_edge(u, v)
            assert info.value.rolled_back
        finally:
            par.close()

    def test_guarded_replay_recovers_from_crash(self, er_graph):
        serial, par = build_pair(er_graph, 2, supervised=False)
        try:
            stream = EdgeStream.churn(er_graph, 15, seed=17)
            policy = GuardPolicy(check_every=50, seed=1)
            par._ensure_pool().arm_crash()
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                rp = replay(par, stream, guard=policy)
            rs = replay(serial, stream, guard=policy)
            # The crashed update rolled back and was retried (serially)
            # once — recovered, not skipped — and every report matches.
            assert len(rp.recovered) == 1
            assert not rp.skipped or rp.skipped == rs.skipped
            assert len(rs.reports) == len(rp.reports)
            for x, y in zip(rs.reports, rp.reports):
                assert reports_identical(x, y)
            assert_states_equal(serial, par)
        finally:
            par.close()


# ----------------------------------------------------------------------
# Serial fallback + lifecycle
# ----------------------------------------------------------------------
class TestFallbackAndLifecycle:
    def test_fallback_when_shm_unavailable(self, er_graph, monkeypatch):
        # Pin the process backend: on free-threaded builds (or with
        # REPRO_POOL_BACKEND=threads) auto would resolve to threads,
        # which runs happily without shm and never needs the fallback.
        monkeypatch.delenv("REPRO_POOL_BACKEND", raising=False)
        monkeypatch.setattr("repro.bc.engine.shm_available", lambda: False)
        serial = DynamicBC.from_graph(DynamicGraph.from_csr(er_graph),
                                      num_sources=K, seed=SEED)
        with pytest.warns(RuntimeWarning, match="falling back to serial"):
            par = DynamicBC.from_graph(DynamicGraph.from_csr(er_graph),
                                       num_sources=K, seed=SEED, workers=2,
                                       pool_backend="processes")
        assert par._pool is None
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            u, v = active_insert_edge(par)
            rs = serial.insert_edge(u, v)
            rp = par.insert_edge(u, v)
        assert reports_identical(rs, rp)
        assert_states_equal(serial, par)

    def test_workers_one_is_plain_serial(self, er_graph):
        eng = DynamicBC.from_graph(DynamicGraph.from_csr(er_graph),
                                   num_sources=K, seed=SEED, workers=1)
        assert eng._ensure_pool() is None
        eng.close()  # no-op

    def test_context_manager_closes_pool(self, er_graph):
        with DynamicBC.from_graph(DynamicGraph.from_csr(er_graph),
                                  num_sources=K, seed=SEED,
                                  workers=2) as eng:
            assert eng._pool is not None
            u, v = active_insert_edge(eng)
            eng.insert_edge(u, v)
        assert eng._pool is None
        assert eng._arena is None
        # State migrated out of shared memory and still verifies.
        eng.verify()

    def test_close_migrates_state_out_of_shm(self, er_graph):
        serial, par = build_pair(er_graph, 2)
        par.close()
        assert_states_equal(serial, par)
        # Post-close updates run serially and stay identical.
        u, v = active_insert_edge(par)
        rs = serial.insert_edge(u, v)
        rp = par.insert_edge(u, v)
        assert reports_identical(rs, rp)
