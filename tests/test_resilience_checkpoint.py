"""Checkpoint/restore: versioned checksummed NPZ round-trips on every
backend, atomic writes, corruption/version-mismatch rejection, and the
headline guarantee — a resumed replay is bit-identical to an
uninterrupted one."""

import os

import numpy as np
import pytest

from repro.bc.engine import BACKENDS, DynamicBC
from repro.graph.stream import EdgeStream, replay
from repro.resilience import (
    CHECKPOINT_VERSION,
    CheckpointError,
    FaultInjector,
    load_checkpoint,
    save_checkpoint,
)
from repro.resilience.chaos import reports_identical
from repro.resilience.checkpoint import _digest, _payload


def make_engine(graph, backend="cpu"):
    eng = DynamicBC.from_graph(graph, num_sources=6, seed=2, backend=backend)
    eng.insert_edge(0, 9)  # give the counters something to remember
    return eng


class TestRoundTrip:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_round_trip_all_backends(self, karate, tmp_path, backend):
        eng = make_engine(karate, backend)
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(eng, path, event_index=4, simulated_prefix=1.25,
                        applied_count=3)
        ckpt = load_checkpoint(path)
        assert ckpt.version == CHECKPOINT_VERSION
        assert ckpt.backend == backend
        assert ckpt.event_index == 4
        assert ckpt.simulated_prefix == 1.25
        assert ckpt.applied_count == 3
        restored = ckpt.restore_engine()
        assert restored.backend == backend
        assert np.array_equal(restored.bc_scores, eng.bc_scores)
        assert np.array_equal(restored.state.d, eng.state.d)
        assert np.array_equal(restored.state.sigma, eng.state.sigma)
        assert np.array_equal(restored.state.delta, eng.state.delta)
        assert np.array_equal(restored.state.sources, eng.state.sources)
        assert restored.counters == eng.counters
        assert np.array_equal(
            restored.graph.snapshot().edge_list(),
            eng.graph.snapshot().edge_list(),
        )
        restored.verify()

    def test_restore_into_existing_engine(self, karate, tmp_path):
        eng = make_engine(karate)
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(eng, path, event_index=0, simulated_prefix=0.0,
                        applied_count=0)
        other = DynamicBC.from_graph(karate, num_sources=6, seed=2)
        other.insert_edge(2, 19)  # diverge, then restore back
        load_checkpoint(path).restore_into(other)
        assert np.array_equal(other.bc_scores, eng.bc_scores)
        assert other.counters == eng.counters
        other.verify()

    def test_restored_engine_continues_identically(self, karate, tmp_path):
        eng = make_engine(karate)
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(eng, path, event_index=0, simulated_prefix=0.0,
                        applied_count=0)
        twin = load_checkpoint(path).restore_engine()
        assert reports_identical(eng.insert_edge(3, 20), twin.insert_edge(3, 20))
        assert np.array_equal(eng.bc_scores, twin.bc_scores)


class TestAtomicityAndValidation:
    def test_no_tmp_file_left_behind(self, karate, tmp_path):
        eng = make_engine(karate)
        save_checkpoint(eng, str(tmp_path / "ckpt.npz"), event_index=0,
                        simulated_prefix=0.0, applied_count=0)
        leftovers = [f for f in os.listdir(tmp_path) if f != "ckpt.npz"]
        assert leftovers == []

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="unreadable"):
            load_checkpoint(str(tmp_path / "nope.npz"))

    def test_corrupted_file_rejected(self, karate, tmp_path):
        eng = make_engine(karate)
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(eng, path, event_index=0, simulated_prefix=0.0,
                        applied_count=0)
        FaultInjector(0).corrupt_file(path)
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_version_mismatch_rejected(self, karate, tmp_path):
        eng = make_engine(karate)
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(eng, path, event_index=0, simulated_prefix=0.0,
                        applied_count=0)
        # Rewrite with a bumped version and a *valid* checksum so the
        # version check itself (not the checksum) is what trips.
        data = dict(np.load(path, allow_pickle=False))
        data["version"] = np.asarray(CHECKPOINT_VERSION + 1, dtype=np.int64)
        data.pop("checksum")
        data["checksum"] = np.frombuffer(
            _digest(data).encode("ascii"), dtype=np.uint8
        )
        np.savez(path, **data)
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(path)

    def test_checksum_covers_every_array(self, karate, tmp_path):
        eng = make_engine(karate)
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(eng, path, event_index=0, simulated_prefix=0.0,
                        applied_count=0)
        data = dict(np.load(path, allow_pickle=False))
        data["bc"] = data["bc"] + 1.0  # tamper without touching checksum
        np.savez(path, **data)
        with pytest.raises(CheckpointError, match="checksum"):
            load_checkpoint(path)

    def test_digest_is_deterministic(self, karate):
        eng = make_engine(karate)
        p1 = _payload(eng, 1, 0.5, 1)
        p2 = _payload(eng, 1, 0.5, 1)
        assert _digest(p1) == _digest(p2)


class TestResumeEquivalence:
    @pytest.mark.parametrize("backend", ["cpu", "gpu-edge"])
    def test_resume_bit_identical(self, karate, tmp_path, backend):
        stream = EdgeStream.churn(karate, 12, delete_fraction=0.3, seed=7)

        def fresh():
            return DynamicBC.from_graph(karate, num_sources=6, seed=2,
                                        backend=backend)

        full_eng = fresh()
        full = replay(full_eng, stream)

        ckpt_eng = fresh()
        res = replay(ckpt_eng, stream, checkpoint_every=4,
                     checkpoint_dir=str(tmp_path))
        assert len(res.checkpoints) == 3

        resumed_eng = fresh()
        resumed = replay(resumed_eng, stream, resume_from=res.checkpoints[0])
        assert resumed.resumed_from == res.checkpoints[0]
        assert resumed.start_index == 4

        tail = full.reports[len(full.reports) - len(resumed.reports):]
        assert len(tail) == len(resumed.reports)
        for a, b in zip(tail, resumed.reports):
            assert reports_identical(a, b)
        assert np.array_equal(full_eng.bc_scores, resumed_eng.bc_scores)
        assert full_eng.counters == resumed_eng.counters
        assert full.simulated_seconds == resumed.simulated_seconds
        resumed_eng.verify()

    def test_checkpoint_replay_matches_plain_replay(self, karate, tmp_path):
        stream = EdgeStream.poisson_growth(karate, 8, seed=5)
        a = DynamicBC.from_graph(karate, num_sources=6, seed=2)
        b = DynamicBC.from_graph(karate, num_sources=6, seed=2)
        plain = replay(a, stream)
        ckpt = replay(b, stream, checkpoint_every=3,
                      checkpoint_dir=str(tmp_path))
        assert len(plain.reports) == len(ckpt.reports)
        for x, y in zip(plain.reports, ckpt.reports):
            assert reports_identical(x, y)
        assert np.array_equal(a.bc_scores, b.bc_scores)

    def test_replay_argument_validation(self, karate, tmp_path):
        eng = DynamicBC.from_graph(karate, num_sources=6, seed=2)
        stream = EdgeStream.poisson_growth(karate, 3, seed=5)
        with pytest.raises(ValueError, match="checkpoint_dir"):
            replay(eng, stream, checkpoint_every=2)
        with pytest.raises(ValueError, match="checkpoint_every"):
            replay(eng, stream, checkpoint_every=0,
                   checkpoint_dir=str(tmp_path))
