import numpy as np
import pytest

from repro.bc.brandes import brandes_bc
from repro.bc.static_gpu import (
    STATIC_STRATEGIES,
    static_bc_gpu,
    trace_static_source,
)
from repro.gpu.device import CORE_I7_2600K, GTX_560, TESLA_C2075
from repro.graph import generators as gen


class TestScores:
    @pytest.mark.parametrize("strategy", STATIC_STRATEGIES)
    def test_matches_brandes(self, karate, strategy):
        res = static_bc_gpu(karate, strategy=strategy)
        assert np.allclose(res.bc, brandes_bc(karate))

    def test_subset_sources(self, karate):
        res = static_bc_gpu(karate, sources=[0, 1, 2])
        assert np.allclose(res.bc, brandes_bc(karate, sources=[0, 1, 2]))

    def test_unknown_strategy_raises(self, karate):
        with pytest.raises(ValueError):
            static_bc_gpu(karate, strategy="quantum")


class TestTraces:
    def test_one_trace_per_source(self, karate):
        res = static_bc_gpu(karate, sources=range(5))
        assert len(res.traces) == 5

    def test_edge_strategy_charges_full_scans(self, karate):
        """Edge-parallel scans all 2m arcs per level — its work count
        must exceed node-parallel's on the same graph."""
        edge = static_bc_gpu(karate, sources=[0], strategy="gpu-edge")
        node = static_bc_gpu(karate, sources=[0], strategy="gpu-node")
        cpu = static_bc_gpu(karate, sources=[0], strategy="cpu")
        assert edge.counters.work_items > node.counters.work_items
        assert node.counters.work_items > cpu.counters.work_items

    def test_cpu_access_cycles_raise_cost(self, karate):
        cheap = trace_static_source(karate, 0, "cpu", access_cycles=4.0)[1]
        costly = trace_static_source(karate, 0, "cpu", access_cycles=200.0)[1]
        from repro.gpu.costmodel import CostModel

        model = CostModel(CORE_I7_2600K)
        assert model.trace_seconds(costly) > model.trace_seconds(cheap)


class TestTiming:
    def test_more_sms_is_faster(self, small_er):
        res = static_bc_gpu(small_er, sources=range(56), strategy="gpu-edge")
        t_gtx = res.timing(GTX_560).total_seconds
        t_tesla = res.timing(TESLA_C2075).total_seconds
        assert t_tesla < t_gtx * 1.5  # 14 SMs vs 7 (clocks differ)

    def test_block_sweep_peaks_at_sm_count(self, small_er):
        res = static_bc_gpu(small_er, sources=range(56), strategy="gpu-edge")
        times = {b: res.timing(TESLA_C2075, b).total_seconds
                 for b in (1, 7, 14, 28)}
        assert times[14] < times[1]
        assert times[14] < times[7]
        assert times[14] <= times[28]

    def test_speedup_near_linear_below_sms(self, small_er):
        res = static_bc_gpu(small_er, sources=range(56), strategy="gpu-edge")
        t1 = res.timing(TESLA_C2075, 1).total_seconds
        t7 = res.timing(TESLA_C2075, 7).total_seconds
        assert 5.0 < t1 / t7 < 7.5
