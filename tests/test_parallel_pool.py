"""Unit tests for the parallel substrate: chunk planning, the
shared-memory arena, the worker pool, and the deterministic reducer.

The end-to-end bit-identity claims live in tests/test_parallel.py;
this module pins the contracts of each layer in isolation.
"""

import os

import numpy as np
import pytest

from repro.parallel import (
    ParallelExecutionError,
    ShmArena,
    ShmAttachment,
    WorkerCrashed,
    WorkerPool,
    WorkerTaskError,
    merge_indexed,
    plan_chunks,
    rebuild_trace,
    shm_available,
)
from repro.gpu.counters import Step


# ----------------------------------------------------------------------
# plan_chunks
# ----------------------------------------------------------------------
class TestPlanChunks:
    def test_concat_preserves_items_and_order(self):
        items = list(range(23))
        chunks = plan_chunks(items, 3)
        assert [x for c in chunks for x in c] == items

    def test_chunks_are_contiguous_and_bounded(self):
        chunks = plan_chunks(list(range(100)), 4, chunks_per_worker=4)
        assert len(chunks) <= 16
        sizes = {len(c) for c in chunks}
        assert max(sizes) - min(sizes) <= 1 or len(sizes) <= 2

    def test_fewer_items_than_chunks(self):
        chunks = plan_chunks([7, 8], 4)
        assert [x for c in chunks for x in c] == [7, 8]
        assert all(c for c in chunks)  # no empty chunks

    def test_empty_items(self):
        assert plan_chunks([], 4) == []

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            plan_chunks([1], 0)
        with pytest.raises(ValueError):
            plan_chunks([1], 2, chunks_per_worker=0)


# ----------------------------------------------------------------------
# ShmArena / ShmAttachment
# ----------------------------------------------------------------------
@pytest.mark.skipif(not shm_available(), reason="POSIX shm unavailable")
class TestArena:
    def test_allocate_roundtrip_and_generation(self):
        arena = ShmArena()
        try:
            gen0 = arena.generation
            d = arena.allocate("d", (3, 5), np.int64)
            assert arena.generation == gen0 + 1
            d[...] = np.arange(15).reshape(3, 5)
            assert np.array_equal(arena.get("d"), d)
            assert arena.owns("d", d)
            assert not arena.owns("d", d.copy())
            assert "d" in arena

            # Attach through the spec and verify both directions.
            att = ShmAttachment(arena.spec())
            assert att.generation == arena.generation
            assert np.array_equal(att.arrays["d"], d)
            att.arrays["d"][0, 0] = 99
            assert d[0, 0] == 99
            att.close()
        finally:
            arena.close()

    def test_reallocate_bumps_generation_and_replaces(self):
        arena = ShmArena()
        try:
            arena.allocate("col", (4,), np.int32)
            g1 = arena.generation
            bigger = arena.allocate("col", (16,), np.int32)
            assert arena.generation > g1
            assert bigger.shape == (16,)
            assert arena.spec()["fields"]["col"][1] == (16,)
        finally:
            arena.close()

    def test_close_is_idempotent(self):
        arena = ShmArena()
        arena.allocate("x", (2,), np.float64)
        arena.close()
        arena.close()
        assert "x" not in arena


# ----------------------------------------------------------------------
# Leak guard: abnormal parent exit must reclaim /dev/shm segments
# ----------------------------------------------------------------------
_LEAK_CHILD = """
import os, sys, signal
import numpy as np
from repro.parallel.shm import ShmArena

arena = ShmArena()
arena.allocate("d", (64, 64), np.int64)
arena.allocate("sigma", (64, 64), np.float64)
print("\\n".join(arena.block_names()), flush=True)
mode = sys.argv[1]
if mode == "exception":
    raise RuntimeError("simulated parent crash")
elif mode == "sigterm":
    os.kill(os.getpid(), signal.SIGTERM)
    signal.pause()
"""


@pytest.mark.skipif(not shm_available(), reason="POSIX shm unavailable")
class TestLeakGuard:
    @pytest.mark.parametrize("mode", ["exception", "sigterm"])
    def test_segments_reclaimed_after_abnormal_exit(self, mode):
        import subprocess
        import sys

        import repro

        src_dir = os.path.dirname(os.path.dirname(repro.__file__))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [src_dir] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        proc = subprocess.run(
            [sys.executable, "-c", _LEAK_CHILD, mode],
            capture_output=True, text=True, timeout=60, env=env,
        )
        names = [n for n in proc.stdout.splitlines() if n.strip()]
        assert len(names) == 2, (proc.stdout, proc.stderr)
        assert proc.returncode != 0  # it really died abnormally
        for name in names:
            path = os.path.join("/dev/shm", name.lstrip("/"))
            assert not os.path.exists(path), (
                f"leaked shared-memory segment {path} ({mode})"
            )

    def test_fork_child_does_not_unlink_parents_segments(self):
        # A forked child inherits the guard's module state; its exit
        # must not tear the parent's live segments down (pid check).
        arena = ShmArena()
        try:
            arena.allocate("d", (8,), np.int64)
            pid = os.fork()
            if pid == 0:  # child: run atexit-equivalent path and leave
                try:
                    from repro.parallel import shm as shm_mod

                    shm_mod._unlink_live_arenas()
                finally:
                    os._exit(0)
            os.waitpid(pid, 0)
            name = arena.block_names()[0]
            path = os.path.join("/dev/shm", name.lstrip("/"))
            assert os.path.exists(path)
            assert np.array_equal(arena.get("d"), arena.get("d"))
        finally:
            arena.close()


# ----------------------------------------------------------------------
# WorkerPool
# ----------------------------------------------------------------------
@pytest.mark.skipif(not shm_available(), reason="POSIX shm unavailable")
class TestWorkerPool:
    def test_ping_returns_chunks_in_payload_order(self):
        with WorkerPool(2) as pool:
            payloads = [{"items": [i, i + 1]} for i in range(0, 10, 2)]
            outs = pool.run("ping", {}, payloads)
            assert outs == [[i, i + 1] for i in range(0, 10, 2)]

    def test_task_error_carries_remote_traceback(self):
        with WorkerPool(2) as pool:
            with pytest.raises(WorkerTaskError) as info:
                pool.run("no-such-kind", {}, [{"items": []}])
            assert "KeyError" in str(info.value)
            # The pool respawned: the next round must still work.
            assert pool.run("ping", {}, [{"items": [1]}]) == [[1]]

    def test_worker_crash_detected_and_pool_respawns(self):
        with WorkerPool(2) as pool:
            pool.arm_crash()
            with pytest.raises(WorkerCrashed):
                pool.run("ping", {}, [{"items": [0]}, {"items": [1]}])
            assert pool.run("ping", {}, [{"items": [2]}]) == [[2]]

    def test_crash_is_one_shot(self):
        with WorkerPool(2) as pool:
            pool.arm_crash()
            with pytest.raises(ParallelExecutionError):
                pool.run("ping", {}, [{"items": [0]}])
            outs = pool.run("ping", {}, [{"items": [0]}, {"items": [1]}])
            assert outs == [[0], [1]]

    def test_close_idempotent_and_rejects_tiny_pool(self):
        pool = WorkerPool(2)
        pool.close()
        pool.close()
        with pytest.raises(ValueError):
            WorkerPool(1)

    def test_empty_round_short_circuits(self):
        with WorkerPool(2) as pool:
            assert pool.run("ping", {}, []) == []


# ----------------------------------------------------------------------
# Teardown escalation (join -> terminate -> kill), no zombies
# ----------------------------------------------------------------------
def _assert_reaped(pid):
    """The process must be gone or at least not a zombie (a zombie
    means close() skipped the final join)."""
    try:
        with open(f"/proc/{pid}/stat") as fh:
            state = fh.read().rsplit(")", 1)[1].split()[0]
    except (FileNotFoundError, ProcessLookupError):
        return
    assert state != "Z", f"pid {pid} left as a zombie"


@pytest.mark.skipif(not shm_available(), reason="POSIX shm unavailable")
class TestTeardown:
    def test_join_timeout_is_configurable_and_validated(self):
        with pytest.raises(ValueError):
            WorkerPool(2, join_timeout=0.0)
        with pytest.raises(ValueError):
            WorkerPool(2, join_timeout=-1.0)
        pool = WorkerPool(2, join_timeout=0.5)
        assert pool.join_timeout == 0.5
        pool.close()

    def test_close_escalates_to_sigkill_for_stopped_workers(self):
        import os
        import signal
        import time

        # SIGSTOPped workers ignore the sentinel and SIGTERM alike;
        # close() must walk the whole escalation and still reap them.
        pool = WorkerPool(2, join_timeout=0.3)
        pids = [p.pid for p in pool._procs]
        for pid in pids:
            os.kill(pid, signal.SIGSTOP)
        start = time.monotonic()
        pool.close()
        elapsed = time.monotonic() - start
        for pid in pids:
            _assert_reaped(pid)
        # Bounded: one graceful deadline + one terminate deadline,
        # plus slack — never the historical infinite join.
        assert elapsed < 10.0

    def test_kill_worker_reaps_and_respawn_restores_service(self):
        with WorkerPool(2, join_timeout=0.5) as pool:
            victim = pool._procs[0].pid
            pool.kill_worker(0)
            _assert_reaped(victim)
            pool.respawn()
            assert pool.run("ping", {}, [{"items": [5]}]) == [[5]]

    def test_sigkilled_run_leaves_no_zombies(self):
        import os
        import signal

        with WorkerPool(2, join_timeout=0.5) as pool:
            pids = [p.pid for p in pool._procs]
            os.kill(pids[0], signal.SIGKILL)
            # The survivor may drain every chunk before the death is
            # noticed (success) or the pool may fail the round and
            # respawn — either way close() must reap everything.
            try:
                outs = pool.run("ping", {}, [{"items": [0]}, {"items": [1]}])
                assert outs == [[0], [1]]
            except ParallelExecutionError:
                pass
        for pid in pids:
            _assert_reaped(pid)


# ----------------------------------------------------------------------
# Reducer
# ----------------------------------------------------------------------
class TestReducer:
    def test_merge_indexed_flattens_by_index(self):
        outs = [[(0, "a"), (1, "b")], [(4, "c")]]
        merged = merge_indexed(outs, [0, 1, 4])
        assert merged == {0: ("a",), 1: ("b",), 4: ("c",)}

    def test_merge_indexed_rejects_duplicates(self):
        with pytest.raises(ValueError):
            merge_indexed([[(0, "a")], [(0, "b")]], [0])

    def test_merge_indexed_rejects_gaps(self):
        with pytest.raises(ValueError):
            merge_indexed([[(0, "a")]], [0, 1])

    def test_rebuild_trace_round_trips_steps(self):
        steps = [Step(4, 2.0, 64.0, 1, 2, "sp"), Step(2, 1.0, 16.0)]
        trace = rebuild_trace("insert:3", steps)
        assert trace.label == "insert:3"
        assert trace.steps == steps
