"""Unit tests for the parallel substrate: chunk planning, the
shared-memory arena, the worker pool, and the deterministic reducer.

The end-to-end bit-identity claims live in tests/test_parallel.py;
this module pins the contracts of each layer in isolation.
"""

import numpy as np
import pytest

from repro.parallel import (
    ParallelExecutionError,
    ShmArena,
    ShmAttachment,
    WorkerCrashed,
    WorkerPool,
    WorkerTaskError,
    merge_indexed,
    plan_chunks,
    rebuild_trace,
    shm_available,
)
from repro.gpu.counters import Step


# ----------------------------------------------------------------------
# plan_chunks
# ----------------------------------------------------------------------
class TestPlanChunks:
    def test_concat_preserves_items_and_order(self):
        items = list(range(23))
        chunks = plan_chunks(items, 3)
        assert [x for c in chunks for x in c] == items

    def test_chunks_are_contiguous_and_bounded(self):
        chunks = plan_chunks(list(range(100)), 4, chunks_per_worker=4)
        assert len(chunks) <= 16
        sizes = {len(c) for c in chunks}
        assert max(sizes) - min(sizes) <= 1 or len(sizes) <= 2

    def test_fewer_items_than_chunks(self):
        chunks = plan_chunks([7, 8], 4)
        assert [x for c in chunks for x in c] == [7, 8]
        assert all(c for c in chunks)  # no empty chunks

    def test_empty_items(self):
        assert plan_chunks([], 4) == []

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            plan_chunks([1], 0)
        with pytest.raises(ValueError):
            plan_chunks([1], 2, chunks_per_worker=0)


# ----------------------------------------------------------------------
# ShmArena / ShmAttachment
# ----------------------------------------------------------------------
@pytest.mark.skipif(not shm_available(), reason="POSIX shm unavailable")
class TestArena:
    def test_allocate_roundtrip_and_generation(self):
        arena = ShmArena()
        try:
            gen0 = arena.generation
            d = arena.allocate("d", (3, 5), np.int64)
            assert arena.generation == gen0 + 1
            d[...] = np.arange(15).reshape(3, 5)
            assert np.array_equal(arena.get("d"), d)
            assert arena.owns("d", d)
            assert not arena.owns("d", d.copy())
            assert "d" in arena

            # Attach through the spec and verify both directions.
            att = ShmAttachment(arena.spec())
            assert att.generation == arena.generation
            assert np.array_equal(att.arrays["d"], d)
            att.arrays["d"][0, 0] = 99
            assert d[0, 0] == 99
            att.close()
        finally:
            arena.close()

    def test_reallocate_bumps_generation_and_replaces(self):
        arena = ShmArena()
        try:
            arena.allocate("col", (4,), np.int32)
            g1 = arena.generation
            bigger = arena.allocate("col", (16,), np.int32)
            assert arena.generation > g1
            assert bigger.shape == (16,)
            assert arena.spec()["fields"]["col"][1] == (16,)
        finally:
            arena.close()

    def test_close_is_idempotent(self):
        arena = ShmArena()
        arena.allocate("x", (2,), np.float64)
        arena.close()
        arena.close()
        assert "x" not in arena


# ----------------------------------------------------------------------
# WorkerPool
# ----------------------------------------------------------------------
@pytest.mark.skipif(not shm_available(), reason="POSIX shm unavailable")
class TestWorkerPool:
    def test_ping_returns_chunks_in_payload_order(self):
        with WorkerPool(2) as pool:
            payloads = [{"items": [i, i + 1]} for i in range(0, 10, 2)]
            outs = pool.run("ping", {}, payloads)
            assert outs == [[i, i + 1] for i in range(0, 10, 2)]

    def test_task_error_carries_remote_traceback(self):
        with WorkerPool(2) as pool:
            with pytest.raises(WorkerTaskError) as info:
                pool.run("no-such-kind", {}, [{"items": []}])
            assert "KeyError" in str(info.value)
            # The pool respawned: the next round must still work.
            assert pool.run("ping", {}, [{"items": [1]}]) == [[1]]

    def test_worker_crash_detected_and_pool_respawns(self):
        with WorkerPool(2) as pool:
            pool.arm_crash()
            with pytest.raises(WorkerCrashed):
                pool.run("ping", {}, [{"items": [0]}, {"items": [1]}])
            assert pool.run("ping", {}, [{"items": [2]}]) == [[2]]

    def test_crash_is_one_shot(self):
        with WorkerPool(2) as pool:
            pool.arm_crash()
            with pytest.raises(ParallelExecutionError):
                pool.run("ping", {}, [{"items": [0]}])
            outs = pool.run("ping", {}, [{"items": [0]}, {"items": [1]}])
            assert outs == [[0], [1]]

    def test_close_idempotent_and_rejects_tiny_pool(self):
        pool = WorkerPool(2)
        pool.close()
        pool.close()
        with pytest.raises(ValueError):
            WorkerPool(1)

    def test_empty_round_short_circuits(self):
        with WorkerPool(2) as pool:
            assert pool.run("ping", {}, []) == []


# ----------------------------------------------------------------------
# Reducer
# ----------------------------------------------------------------------
class TestReducer:
    def test_merge_indexed_flattens_by_index(self):
        outs = [[(0, "a"), (1, "b")], [(4, "c")]]
        merged = merge_indexed(outs, [0, 1, 4])
        assert merged == {0: ("a",), 1: ("b",), 4: ("c",)}

    def test_merge_indexed_rejects_duplicates(self):
        with pytest.raises(ValueError):
            merge_indexed([[(0, "a")], [(0, "b")]], [0])

    def test_merge_indexed_rejects_gaps(self):
        with pytest.raises(ValueError):
            merge_indexed([[(0, "a")]], [0, 1])

    def test_rebuild_trace_round_trips_steps(self):
        steps = [Step(4, 2.0, 64.0, 1, 2, "sp"), Step(2, 1.0, 16.0)]
        trace = rebuild_trace("insert:3", steps)
        assert trace.label == "insert:3"
        assert trace.steps == steps
