"""Edge-case coverage for the shared update core: degenerate graphs,
source-adjacent insertions, repeated updates on one edge's endpoints,
and dedup interplay."""

import numpy as np
import pytest

from repro.bc.accountants import make_accountant
from repro.bc.brandes import single_source_state
from repro.bc.cases import Case, classify_insertion
from repro.bc.engine import DynamicBC
from repro.bc.update_core import (
    UNTOUCHED,
    _max_multiplicity,
    adjacent_level_update,
    distant_level_update,
)
from repro.graph import generators as gen
from repro.graph.csr import CSRGraph
from repro.graph.dynamic import DynamicGraph


class TestMaxMultiplicity:
    def test_empty(self):
        assert _max_multiplicity(np.array([], dtype=np.int64)) == 1

    def test_unique(self):
        assert _max_multiplicity(np.array([1, 2, 3])) == 1

    def test_repeats(self):
        assert _max_multiplicity(np.array([5, 5, 5, 2, 2, 9])) == 3


class TestDegenerateGraphs:
    def test_two_vertex_insertion(self):
        eng = DynamicBC.from_graph(CSRGraph.empty(2), sources=[0])
        rep = eng.insert_edge(0, 1)
        assert rep.case_histogram == {3: 1}  # merge of two singletons
        eng.verify()

    def test_triangle_closure(self):
        g = CSRGraph.from_edges(3, [(0, 1), (1, 2)])
        eng = DynamicBC.from_graph(g)  # exact
        eng.insert_edge(0, 2)
        eng.verify()
        assert np.allclose(eng.bc_scores, 0.0)  # complete graph

    def test_single_vertex_graph(self):
        eng = DynamicBC.from_graph(CSRGraph.empty(1), sources=[0])
        assert eng.bc_scores.tolist() == [0.0]

    def test_all_sources_on_tiny_star(self):
        eng = DynamicBC.from_graph(gen.star_graph(4))
        v = eng.add_vertex()
        eng.insert_edge(v, 1)
        eng.verify()


class TestSourceAdjacentUpdates:
    def test_edge_at_source_is_case3(self, karate):
        """An insertion at the source pulls the far endpoint to depth 1
        (a source-adjacent Case 2 cannot exist: every depth-1 vertex is
        already adjacent to the source)."""
        eng = DynamicBC.from_graph(karate, sources=[0])
        target = next(
            v for v in range(34)
            if eng.state.d[0][v] == 2 and not eng.graph.has_edge(0, v)
        )
        rep = eng.insert_edge(0, int(target))
        assert rep.cases[0] == 3  # gap 2 -> case 3 (v pulled to depth 1)
        eng.verify()

    def test_repeat_insert_delete_same_endpoints(self, karate):
        eng = DynamicBC.from_graph(karate, num_sources=10, seed=4)
        for _ in range(4):
            eng.insert_edge(0, 9)
            eng.delete_edge(0, 9)
        eng.verify()


class TestParallelEdgesOfWork:
    def test_simultaneous_multi_parent_sigma(self):
        """A vertex reached through many new predecessors in one level
        accumulates all contributions (the atomicAdd semantics)."""
        # source 0 -> a,b,c (depth 1) -> hub (depth 2); insert (0, far)
        # chain to create a heavy multi-pred step
        edges = [(0, 1), (0, 2), (0, 3), (1, 4), (2, 4), (3, 4), (4, 5)]
        g = CSRGraph.from_edges(7, edges)  # vertex 6 isolated
        eng = DynamicBC.from_graph(g, sources=[0])
        eng.insert_edge(5, 6)  # extends the chain; merge case
        eng.verify()
        assert eng.state.sigma[0][6] == 3.0  # all three routes counted

    def test_dedup_heavy_frontier(self):
        """Many duplicate enqueue attempts in one level (complete
        bipartite core) must still produce each vertex once."""
        g = gen.complete_bipartite(6, 6)
        eng = DynamicBC.from_graph(g, backend="gpu-node")
        v = eng.add_vertex()
        eng.insert_edge(v, 0)
        eng.verify()


class TestGrownStateColumns:
    """Updates touching a vertex appended via add_vertex mid-stream:
    the state matrix columns were grown *after* engine construction, so
    both update paths must classify and traverse over the wider state
    correctly."""

    @pytest.mark.parametrize("vectorized", [True, False])
    def test_update_through_appended_vertex(self, karate, vectorized):
        eng = DynamicBC.from_graph(karate, num_sources=8, seed=3,
                                   vectorized=vectorized)
        w = eng.add_vertex()
        assert eng.state.d.shape[1] == 35
        rep = eng.insert_edge(w, 0)  # merge: new vertex joins the club
        assert rep.case_histogram == {3: 8}
        eng.verify()
        rep = eng.insert_edge(w, 33)  # second attachment through w
        eng.verify()
        eng.delete_edge(w, 0)
        eng.verify()

    @pytest.mark.parametrize("vectorized", [True, False])
    def test_chain_of_appended_vertices(self, path10, vectorized):
        """Several appended vertices chained onto the path: every update
        classifies over columns that did not exist at construction."""
        eng = DynamicBC.from_graph(path10, sources=[0, 9],
                                   vectorized=vectorized)
        prev = 9
        for _ in range(3):
            w = eng.add_vertex()
            eng.insert_edge(prev, w)
            eng.verify()
            prev = w

    def test_paths_agree_after_growth(self, path10):
        """Differential: grown-column updates must match bit-for-bit
        between the looped and vectorized paths."""
        fast = DynamicBC.from_graph(path10, sources=[0, 5], vectorized=True)
        loop = DynamicBC.from_graph(path10, sources=[0, 5], vectorized=False)
        wf, wl = fast.add_vertex(), loop.add_vertex()
        assert wf == wl
        rf, rl = fast.insert_edge(wf, 4), loop.insert_edge(wl, 4)
        assert np.array_equal(rf.cases, rl.cases)
        assert np.array_equal(rf.per_source_seconds, rl.per_source_seconds)
        assert rf.simulated_seconds == rl.simulated_seconds


class TestBatchSkipping:
    """insert_edges / delete_edges report the pairs they skip instead of
    silently dropping them."""

    def test_insert_edges_returns_skipped(self, karate):
        eng = DynamicBC.from_graph(karate, num_sources=6, seed=2)
        result = eng.insert_edges([(0, 1), (0, 9), (4, 4), (9, 0)])
        # (0, 1) exists, (4, 4) is a self loop, and (9, 0) duplicates
        # the just-inserted (0, 9).
        assert [r.edge for r in result.reports] == [(0, 9)]
        assert result.skipped == [(0, 1), (4, 4), (9, 0)]
        eng.verify()

    def test_delete_edges_returns_skipped(self, karate):
        eng = DynamicBC.from_graph(karate, num_sources=6, seed=2)
        result = eng.delete_edges([(0, 1), (7, 7), (0, 1)])
        assert [r.edge for r in result.reports] == [(0, 1)]
        # second (0, 1) is already gone by the time it is reached
        assert result.skipped == [(7, 7), (0, 1)]
        eng.verify()

    def test_batch_result_iterates_reports(self, karate):
        eng = DynamicBC.from_graph(karate, num_sources=6, seed=2)
        result = eng.insert_edges([(0, 9), (4, 4)])
        assert len(result) == 1
        assert [r.operation for r in result] == ["insert"]

    def test_all_skipped_is_empty_batch(self, karate):
        eng = DynamicBC.from_graph(karate, num_sources=6, seed=2)
        result = eng.insert_edges([(0, 1), (1, 0), (2, 2)])
        assert len(result) == 0
        assert result.skipped == [(0, 1), (1, 0), (2, 2)]


class TestAccountantMisuse:
    def test_base_class_is_abstract(self):
        from repro.bc.accountants import UpdateAccountant

        acc = UpdateAccountant(10, 20)
        with pytest.raises(NotImplementedError):
            acc.sp_level(1, 1, 1, 1, 1)
        with pytest.raises(NotImplementedError):
            acc.dep_level(1, 1, 1, 1, 1, 1)
        with pytest.raises(NotImplementedError):
            acc.pull_level(1, 1, 1, 1, 1)
        with pytest.raises(NotImplementedError):
            acc.prepass(1, 1, 1)
