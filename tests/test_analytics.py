"""Tests for the dynamic distance oracle and derived centralities."""

import numpy as np
import pytest

from repro.analytics.closeness import (
    closeness_of_sources,
    harmonic_centrality_estimate,
)
from repro.analytics.distances import DynamicDistances
from repro.graph import generators as gen
from repro.graph.csr import CSRGraph, DIST_INF
from repro.graph.dynamic import DynamicGraph


class TestConstruction:
    def test_rows_match_bfs(self, karate):
        oracle = DynamicDistances(karate, [0, 5, 33])
        for i, s in enumerate(oracle.sources):
            assert np.array_equal(oracle.d[i],
                                  karate.bfs_distances(int(s)))

    def test_random_sources(self, karate):
        oracle = DynamicDistances.with_random_sources(karate, 6, seed=1)
        assert oracle.num_sources == 6
        oracle.verify()

    def test_duplicate_sources_rejected(self, karate):
        with pytest.raises(ValueError):
            DynamicDistances(karate, [0, 0, 1])


class TestInsertions:
    def test_shortcut_repairs_distances(self):
        oracle = DynamicDistances(gen.path_graph(10), [0])
        rep = oracle.insert_edge(0, 9)
        assert rep.moved[0] >= 4
        oracle.verify()

    def test_case2_moves_nothing(self):
        # diamond-to-be: inserting (1, 3) is Case 2 for source 0
        g = CSRGraph.from_edges(4, [(0, 1), (0, 2), (2, 3)])
        oracle = DynamicDistances(g, [0])
        rep = oracle.insert_edge(1, 3)
        assert rep.cases[0] == 2
        assert rep.moved[0] == 0  # adjacent levels: distances untouched
        oracle.verify()

    def test_case1_moves_nothing(self):
        g = CSRGraph.from_edges(3, [(0, 1), (0, 2)])
        oracle = DynamicDistances(g, [0])
        rep = oracle.insert_edge(1, 2)
        assert rep.cases[0] == 1
        assert rep.moved[0] == 0
        oracle.verify()

    def test_component_merge(self, two_components):
        oracle = DynamicDistances(two_components, [0])
        rep = oracle.insert_edge(4, 5)
        assert rep.moved[0] == 5  # the whole second path gains distances
        assert oracle.d[0][9] == 9
        oracle.verify()

    def test_random_stream_verifies(self, rng):
        g = gen.erdos_renyi(80, 160, seed=6)
        oracle = DynamicDistances.with_random_sources(g, 8, seed=2)
        for u, v in g.undirected_non_edges(rng, 15).tolist():
            if not oracle.graph.has_edge(u, v):
                oracle.insert_edge(u, v)
        oracle.verify()

    def test_existing_edge_rejected(self, karate):
        oracle = DynamicDistances(karate, [0])
        with pytest.raises(ValueError):
            oracle.insert_edge(0, 1)

    def test_simulated_time_positive(self, karate):
        oracle = DynamicDistances(karate, [0, 3])
        rep = oracle.insert_edge(15, 16)
        assert rep.simulated_seconds > 0


class TestDeletions:
    def test_redundant_deletion_no_recompute(self):
        g = CSRGraph.from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        oracle = DynamicDistances(g, [0])
        rep = oracle.delete_edge(1, 3)
        assert rep.recomputed_rows == 0
        oracle.verify()

    def test_bridge_deletion_recomputes(self, path10):
        oracle = DynamicDistances(path10, [0, 9])
        rep = oracle.delete_edge(4, 5)
        assert rep.recomputed_rows == 2
        assert oracle.d[0][9] == DIST_INF
        oracle.verify()

    def test_non_dag_arc_free(self):
        g = CSRGraph.from_edges(3, [(0, 1), (0, 2), (1, 2)])
        oracle = DynamicDistances(g, [0])
        rep = oracle.delete_edge(1, 2)  # same-level edge for source 0
        assert rep.recomputed_rows == 0
        oracle.verify()

    def test_mixed_churn(self, rng):
        g = gen.watts_strogatz(60, k=4, p=0.1, seed=4)
        oracle = DynamicDistances.with_random_sources(g, 6, seed=3)
        for _ in range(30):
            u, v = int(rng.integers(0, 60)), int(rng.integers(0, 60))
            if u == v:
                continue
            if oracle.graph.has_edge(u, v):
                oracle.delete_edge(u, v)
            else:
                oracle.insert_edge(u, v)
        oracle.verify()

    def test_missing_edge_rejected(self, karate):
        oracle = DynamicDistances(karate, [0])
        with pytest.raises(ValueError):
            oracle.delete_edge(0, 9)


class TestCloseness:
    def test_matches_networkx(self, karate):
        import networkx as nx

        oracle = DynamicDistances(karate, range(34))
        ours = closeness_of_sources(oracle)
        G = nx.karate_club_graph()
        theirs = np.array([nx.closeness_centrality(G, u=v) for v in range(34)])
        assert np.allclose(ours, theirs)

    def test_disconnected_normalization(self, two_components):
        oracle = DynamicDistances(two_components, [0])
        c = closeness_of_sources(oracle)[0]
        # component-aware: (r-1)/sum * (r-1)/(n-1)  with r=5, n=10
        assert c == pytest.approx((4 / 10) * (4 / 9))

    def test_isolated_source_zero(self):
        g = CSRGraph.from_edges(3, [(0, 1)])
        oracle = DynamicDistances(g, [2])
        assert closeness_of_sources(oracle)[0] == 0.0

    def test_updates_shift_closeness(self):
        oracle = DynamicDistances(gen.path_graph(10), [0])
        before = closeness_of_sources(oracle)[0]
        oracle.insert_edge(0, 9)
        after = closeness_of_sources(oracle)[0]
        assert after > before  # endpoints got closer to everything


class TestHarmonic:
    def test_exact_with_all_sources(self, karate):
        import networkx as nx

        oracle = DynamicDistances(karate, range(34))
        ours = harmonic_centrality_estimate(oracle)
        G = nx.karate_club_graph()
        theirs = np.array([v for _, v in
                           sorted(nx.harmonic_centrality(G).items())])
        # with k = n the estimator is exact up to the (n-1)/k scaling
        assert np.allclose(ours * 34 / 33, theirs)

    def test_sampled_correlates(self, karate, rng):
        import networkx as nx

        oracle = DynamicDistances.with_random_sources(karate, 17, seed=5)
        est = harmonic_centrality_estimate(oracle)
        G = nx.karate_club_graph()
        exact = np.array([v for _, v in
                          sorted(nx.harmonic_centrality(G).items())])
        corr = np.corrcoef(est, exact)[0, 1]
        assert corr > 0.8

    def test_disconnected_contributions_zero(self, two_components):
        oracle = DynamicDistances(two_components, [0])
        est = harmonic_centrality_estimate(oracle)
        assert np.all(est[5:] == 0.0)

    def test_empty_oracle(self):
        g = CSRGraph.empty(4)
        oracle = DynamicDistances(g, [])
        assert np.all(harmonic_centrality_estimate(oracle) == 0.0)


class TestPropertyBased:
    """Hypothesis: the distance oracle equals scratch BFS under
    arbitrary update streams."""

    def test_random_streams(self):
        from hypothesis import HealthCheck, given, settings
        from hypothesis import strategies as st

        N = 12
        pool = [(u, v) for u in range(N) for v in range(u + 1, N)]

        @given(
            initial=st.lists(st.sampled_from(pool), max_size=20, unique=True),
            ops=st.lists(st.sampled_from(pool), min_size=1, max_size=10),
            k=st.integers(1, N),
        )
        @settings(max_examples=40, deadline=None,
                  suppress_health_check=[HealthCheck.too_slow])
        def run(initial, ops, k):
            g = CSRGraph.from_edges(N, initial or [])
            oracle = DynamicDistances(g, range(k))
            for u, v in ops:
                if oracle.graph.has_edge(u, v):
                    oracle.delete_edge(u, v)
                else:
                    oracle.insert_edge(u, v)
            oracle.verify()

        run()
