"""Snapshot isolation, watermark resume, and crash safety for the
service layer.

Three claims from the tentpole are proven here:

* a reader *pinning* snapshot v sees BC frozen at v's watermark while
  any number of further batches commit (and the store's double
  buffering keeps recycling for unpinned readers);
* resume-from-checkpoint restores the engine *and* the exact stream
  watermark, so a resumed service continues bit-identically;
* a seeded :class:`FaultInjector` crash mid-batch rolls the failing
  update back without ever corrupting the published snapshot — readers
  keep getting committed state throughout.
"""

import asyncio

import numpy as np
import pytest

from repro.bc.engine import DynamicBC
from repro.graph import generators as gen
from repro.graph.dynamic import DynamicGraph
from repro.graph.stream import EdgeStream, replay
from repro.resilience import FaultInjector
from repro.resilience.checkpoint import load_checkpoint
from repro.service import BCService, SnapshotStore

pytestmark = pytest.mark.service

K = 12
SEED = 3


def make_engine(graph):
    """A fresh serial engine with the suite's fixed source sample."""
    return DynamicBC.from_graph(DynamicGraph.from_csr(graph),
                                num_sources=K, seed=SEED)


@pytest.fixture(scope="module")
def graph():
    return gen.erdos_renyi(40, 90, seed=7)


@pytest.fixture(scope="module")
def stream(graph):
    return EdgeStream.churn(graph, 40, seed=5)


# ----------------------------------------------------------------------
# SnapshotStore unit behaviour
# ----------------------------------------------------------------------
class TestSnapshotStore:
    def test_versions_increase_and_watermark_monotonic(self):
        store = SnapshotStore()
        with pytest.raises(RuntimeError):
            store.current()
        a = store.publish(np.arange(4, dtype=np.float64), watermark=2)
        b = store.publish(np.ones(4), watermark=2)
        c = store.publish(np.zeros(4), watermark=5)
        assert (a.version, b.version, c.version) == (0, 1, 2)
        assert store.version == 2 and store.watermark == 5
        with pytest.raises(ValueError):
            store.publish(np.zeros(4), watermark=4)

    def test_snapshots_are_read_only(self):
        store = SnapshotStore()
        snap = store.publish(np.arange(4, dtype=np.float64), watermark=0)
        with pytest.raises(ValueError):
            snap.bc[0] = 99.0

    def test_publish_copies_the_source(self):
        store = SnapshotStore()
        src = np.arange(4, dtype=np.float64)
        snap = store.publish(src, watermark=0)
        src[0] = 42.0
        assert snap.bc[0] == 0.0

    def test_unpinned_buffers_are_recycled(self):
        store = SnapshotStore()
        for w in range(6):
            store.publish(np.full(8, float(w)), watermark=w)
        # Steady-state double buffer: after warm-up every publish
        # reuses a retired buffer instead of allocating.
        assert store.buffers_allocated == 2
        assert store.buffers_reused == 4

    def test_pinned_buffer_is_never_recycled(self):
        store = SnapshotStore()
        store.publish(np.zeros(4), watermark=0)
        pinned = store.acquire()
        frozen = pinned.bc.copy()
        for w in range(1, 4):
            store.publish(np.full(4, float(w)), watermark=w)
        assert np.array_equal(pinned.bc, frozen)
        assert pinned.stale and pinned.pinned
        pinned.release()
        assert not pinned.pinned
        with pytest.raises(RuntimeError):
            pinned.release()

    def test_release_returns_buffer_to_spares(self):
        store = SnapshotStore()
        store.publish(np.zeros(4), watermark=0)
        with store.acquire():
            store.publish(np.ones(4), watermark=1)
            allocated_while_pinned = store.buffers_allocated
        store.publish(np.full(4, 2.0), watermark=2)
        # The released buffer came back through the spare pool.
        assert store.buffers_allocated == allocated_while_pinned
        assert store.buffers_reused >= 1

    def test_max_spares_validation(self):
        with pytest.raises(ValueError):
            SnapshotStore(max_spares=-1)


# ----------------------------------------------------------------------
# Service-level snapshot isolation
# ----------------------------------------------------------------------
class TestServiceIsolation:
    def test_pinned_reader_frozen_while_batches_commit(self, graph, stream):
        async def main():
            engine = make_engine(graph)
            try:
                async with BCService(engine, max_batch=8,
                                     max_delay=0.005) as svc:
                    # Commit a first chunk, pin its snapshot.
                    for event in stream.events[:10]:
                        await svc.submit(event)
                    await svc.drain()
                    pinned = svc.acquire_snapshot()
                    frozen = pinned.bc.copy()
                    frozen_watermark = pinned.watermark
                    version_at_pin = pinned.version
                    assert frozen_watermark == 10

                    # At least two further batches commit under the pin
                    # (max_batch=8 over 30 events guarantees >= 2).
                    for event in stream.events[10:]:
                        await svc.submit(event)
                    await svc.drain()
                    assert svc.core.store.version >= version_at_pin + 2

                    # The pinned view is bitwise frozen at watermark 10
                    # while the live snapshot has moved on.
                    assert np.array_equal(pinned.bc, frozen)
                    assert pinned.watermark == frozen_watermark
                    assert pinned.stale
                    live = svc.snapshot()
                    assert live.watermark == len(stream)
                    assert not np.array_equal(pinned.bc, live.bc)
                    pinned.release()
                return svc
            finally:
                engine.close()

        asyncio.run(main())

    def test_store_recycles_across_service_batches(self, graph, stream):
        svc_store = SnapshotStore()

        async def main():
            engine = make_engine(graph)
            try:
                async with BCService(engine, max_batch=4, max_delay=0.005,
                                     store=svc_store) as svc:
                    for event in stream:
                        await svc.submit(event)
                    await svc.drain()
                return svc
            finally:
                engine.close()

        svc = asyncio.run(main())
        # Many batches, constant buffer economy: the double buffer means
        # allocations stay at 2 no matter how many snapshots published.
        assert svc.core.store.published == svc.stats["batches"] + 1
        assert svc_store.buffers_allocated == 2
        assert svc_store.buffers_reused == svc_store.published - 2


# ----------------------------------------------------------------------
# Watermark resume
# ----------------------------------------------------------------------
class TestResume:
    def test_resume_restores_exact_watermark_and_state(self, graph, stream,
                                                       tmp_path):
        # Uninterrupted twin for the expected final state.
        twin = make_engine(graph)
        twin_result = replay(twin, stream)

        first = asyncio.run(self._run_prefix(graph, stream, tmp_path))
        ckpt_path = first.core.result.checkpoints[-1]
        ckpt = load_checkpoint(ckpt_path)
        assert ckpt.event_index == 20

        svc = asyncio.run(self._run_resumed(graph, stream, ckpt_path))
        # The resumed service picked up at the checkpoint's watermark...
        assert svc.core.result.start_index == 20
        assert svc.core.result.resumed_from == ckpt_path
        # ...its very first published snapshot carried that watermark...
        assert svc.first_snapshot_watermark == 20
        # ...and the finished run is bit-identical to the uninterrupted
        # twin, including the cross-restart totals.
        assert svc.watermark == len(stream)
        assert np.array_equal(svc.core.engine.bc_scores, twin.bc_scores)
        assert svc.core.engine.counters == twin.counters
        assert svc.core._sim_seconds == twin_result.simulated_seconds
        assert svc.core.applied_total == len(twin_result.reports)
        twin.close()

    @staticmethod
    async def _run_prefix(graph, stream, tmp_path):
        engine = make_engine(graph)
        try:
            async with BCService(engine, max_batch=8, max_delay=0.005,
                                 checkpoint_every=10,
                                 checkpoint_dir=tmp_path) as svc:
                for event in stream.events[:20]:
                    await svc.submit(event)
                await svc.drain()
            return svc
        finally:
            engine.close()

    @staticmethod
    async def _run_resumed(graph, stream, ckpt_path):
        engine = make_engine(graph)
        try:
            async with BCService(engine, max_batch=8, max_delay=0.005,
                                 resume_from=ckpt_path) as svc:
                svc.first_snapshot_watermark = svc.snapshot().watermark
                for event in stream.events[20:]:
                    await svc.submit(event)
                await svc.drain()
            return svc
        finally:
            engine.close()


# ----------------------------------------------------------------------
# Crash mid-batch
# ----------------------------------------------------------------------
class TestCrashMidBatch:
    def test_fault_rolls_back_without_corrupting_snapshot(self, graph,
                                                          stream):
        # Clean twin (same stream, no faults): the service's retry-once
        # recovery must land on exactly this state.
        twin = make_engine(graph)
        twin_result = replay(twin, stream)

        async def main():
            engine = make_engine(graph)
            injector = FaultInjector(0)
            try:
                async with BCService(engine, max_batch=8,
                                     max_delay=0.005) as svc:
                    for event in stream.events[:10]:
                        await svc.submit(event)
                    await svc.drain()
                    pinned = svc.acquire_snapshot()
                    committed = pinned.bc.copy()

                    # Arm a one-shot mid-update fault, then push the
                    # rest of the stream through in one burst.
                    injector.arm_update_fault(engine, after_sources=1)
                    for event in stream.events[10:]:
                        await svc.submit(event)
                    await svc.drain()

                    # The pinned pre-fault snapshot never changed —
                    # readers could not observe the rolled-back state.
                    assert np.array_equal(pinned.bc, committed)
                    pinned.release()
                return svc, injector
            finally:
                engine.close()

        svc, injector = asyncio.run(main())
        # The fault fired, was rolled back, and the retry recovered it.
        assert any("update fault fired" in line for line in injector.log)
        assert len(svc.core.result.recovered) == 1
        assert svc.stats["events_recovered"] == 1
        # Recovery is invisible in the final state: bit-identical to
        # the clean twin.
        assert np.array_equal(svc.core.engine.bc_scores, twin.bc_scores)
        assert len(svc.core.result.reports) == len(twin_result.reports)
        assert svc.watermark == len(stream)
        twin.close()
