import pytest

from repro.utils.timing import WallTimer


class TestWallTimer:
    def test_context_manager_records_elapsed(self):
        with WallTimer() as t:
            sum(range(100))
        assert t.elapsed >= 0.0
        assert t.total == t.elapsed

    def test_accumulates_total(self):
        t = WallTimer()
        with t:
            pass
        first = t.total
        with t:
            pass
        assert t.total >= first

    def test_double_start_raises(self):
        t = WallTimer().start()
        with pytest.raises(RuntimeError):
            t.start()
        t.stop()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            WallTimer().stop()

    def test_running_flag(self):
        t = WallTimer()
        assert not t.running
        t.start()
        assert t.running
        t.stop()
        assert not t.running
