"""Hot-standby replication differential suite.

The replication contract has three legs:

1. **bit-identity** — a :class:`ReplicaService` tailing the primary's
   journal reaches the exact same BC scores, state arrays, counters
   and watermark as the primary (and as a plain replay twin);
2. **fenced failover** — promotion seals the tail with zero
   acked-write loss and the deposed primary's next commit is refused
   (split-brain);
3. **clean degradation** — an injected disk fault fails acks cleanly
   and switches the primary to read-only with a HEALTH event, never a
   torn acked record.

All waiting goes through ``wait_until``/``async_wait_until`` from
``tests/conftest.py`` — no fixed sleeps.
"""

import asyncio

import numpy as np
import pytest

from repro.bc.engine import DynamicBC
from repro.graph import generators as gen
from repro.graph.dynamic import DynamicGraph
from repro.graph.stream import EdgeEvent, EdgeStream, replay
from repro.resilience.errors import WalError, WalFencedError
from repro.resilience.faults import FaultInjector
from repro.resilience.guards import HEALTH
from repro.resilience.wal import WriteAheadLog, read_fence
from repro.service import (
    BCService,
    ReplicaService,
    StaleReadError,
)
from tests.conftest import async_wait_until

pytestmark = [pytest.mark.service, pytest.mark.replication]

K = 12
SEED = 3


def make_engine(graph):
    return DynamicBC.from_graph(DynamicGraph.from_csr(graph),
                                num_sources=K, seed=SEED)


@pytest.fixture(scope="module")
def graph():
    return gen.erdos_renyi(40, 90, seed=7)


@pytest.fixture(scope="module")
def stream(graph):
    return EdgeStream.churn(graph, 40, seed=5)


@pytest.fixture(scope="module")
def twin(graph, stream):
    engine = make_engine(graph)
    result = replay(engine, stream)
    return engine, result


def assert_state_equal(engine, twin_engine):
    assert np.array_equal(engine.bc_scores, twin_engine.bc_scores)
    for name in ("sources", "d", "sigma", "delta"):
        assert np.array_equal(getattr(engine.state, name),
                              getattr(twin_engine.state, name)), name
    assert engine.counters == twin_engine.counters


class TestReplicaDifferential:
    def test_replica_is_bit_identical_to_primary(self, graph, stream,
                                                 twin, tmp_path):
        twin_engine, _ = twin

        async def main():
            primary = make_engine(graph)
            standby = make_engine(graph)
            try:
                svc = BCService(primary, max_batch=8,
                                wal_dir=tmp_path / "wal")
                replica = ReplicaService(standby, tmp_path / "wal",
                                         replica_id="r1")
                async with svc, replica:
                    await svc.submit_many(list(stream))
                    await svc.drain()
                    await async_wait_until(
                        lambda: replica.watermark >= svc.watermark,
                        message="replica caught up to the primary")
                    p = await svc.query_bc()
                    r = await replica.query_bc()
                    assert r["watermark"] == p["watermark"]
                    assert np.array_equal(r["scores"], p["scores"])
                assert_state_equal(standby, primary)
                assert_state_equal(standby, twin_engine)
            finally:
                primary.close()
                standby.close()

        asyncio.run(main())

    def test_replica_lags_then_converges_mid_stream(self, graph, stream,
                                                    tmp_path):
        """Reads served *during* replication carry watermark
        provenance a caller can reason about; they converge to the
        primary without the primary ever stopping."""
        async def main():
            primary = make_engine(graph)
            standby = make_engine(graph)
            try:
                svc = BCService(primary, max_batch=4,
                                wal_dir=tmp_path / "wal")
                replica = ReplicaService(standby, tmp_path / "wal")
                async with svc, replica:
                    watermarks = []
                    for event in stream:
                        await svc.submit(event)
                        result = await replica.query_top_k(3)
                        watermarks.append(result["watermark"])
                        # The replica can run ahead of the primary's
                        # *apply* (it tails the journal, which is the
                        # source of truth) but never ahead of the
                        # journal itself.
                        assert result["watermark"] <= svc._wal.next_seq
                    assert watermarks == sorted(watermarks)  # monotone
                    await svc.drain()
                    await async_wait_until(
                        lambda: replica.watermark >= svc.watermark,
                        message="replica converged")
            finally:
                primary.close()
                standby.close()

        asyncio.run(main())


class TestStaleBoundedReads:
    def test_min_watermark_refuses_stale_snapshot(self, graph, stream,
                                                  tmp_path):
        async def main():
            primary = make_engine(graph)
            standby = make_engine(graph)
            try:
                svc = BCService(primary, wal_dir=tmp_path / "wal")
                # Not started: the replica only advances when we say so.
                replica = ReplicaService(standby, tmp_path / "wal")
                async with svc:
                    await svc.submit_many(list(stream))
                    await svc.drain()
                    with pytest.raises(StaleReadError) as info:
                        await replica.query_top_k(
                            3, min_watermark=svc.watermark)
                    assert info.value.min_watermark == svc.watermark
                    assert replica.stats["stale_rejections"] == 1
                    replica.catch_up()
                    result = await replica.query_top_k(
                        3, min_watermark=svc.watermark)
                    assert result["watermark"] >= svc.watermark
                    assert result["lag_records"] == 0
            finally:
                primary.close()
                standby.close()

        asyncio.run(main())


class TestFailover:
    def test_promotion_zero_acked_loss_and_split_brain(self, graph,
                                                       stream, twin,
                                                       tmp_path):
        twin_engine, _ = twin
        events = list(stream)

        async def main():
            primary = make_engine(graph)
            standby = make_engine(graph)
            try:
                svc = BCService(primary, max_batch=8,
                                wal_dir=tmp_path / "wal")
                replica = ReplicaService(standby, tmp_path / "wal",
                                         replica_id="hot")
                old_epoch = read_fence(tmp_path / "wal")
                acked = []
                half = len(events) // 2
                async with svc:
                    replica.start()
                    for event in events[:half]:
                        acked.append(await svc.submit(event))
                    await svc.drain()
                # Primary is gone (stopped = the graceful analogue of
                # the drill's SIGKILL).  Fail over.
                await replica.stop()
                promotion = replica.promote()
                # Zero acked-write loss.
                assert promotion.watermark >= max(acked) + 1
                assert promotion.epoch == old_epoch + 1
                promoted_health = replica.health_report()
                assert promoted_health["promoted"] is True
                assert any(
                    e.action == HEALTH and e.kind == "promoted"
                    for e in promotion.core.result.guard_events)

                # Split-brain: a writer still holding the old epoch is
                # refused before a byte lands.
                deposed = WriteAheadLog(tmp_path / "wal",
                                        epoch=old_epoch)
                deposed.append(events[0], seq=deposed.next_seq)
                with pytest.raises(WalFencedError):
                    deposed.sync()
                deposed.close()

                # The promoted replica accepts writes and finishes the
                # stream bit-identical to the never-failed twin.
                promoted = BCService(
                    promotion.core.engine, core=promotion.core,
                    wal=promotion.wal, max_batch=8)
                async with promoted:
                    await promoted.submit_many(
                        events[promotion.watermark:])
                    await promoted.drain()
                assert promoted.core.watermark == len(events)
                assert_state_equal(standby, twin_engine)
            finally:
                primary.close()
                standby.close()

        asyncio.run(main())

    def test_promote_requires_stopped_tailer(self, graph, tmp_path):
        async def main():
            standby = make_engine(graph)
            try:
                WriteAheadLog(tmp_path / "wal").close()
                replica = ReplicaService(standby, tmp_path / "wal")
                replica.start()
                with pytest.raises(RuntimeError, match="stop"):
                    replica.promote()
                await replica.stop()
                replica.promote()
                with pytest.raises(RuntimeError, match="already"):
                    replica.promote()
            finally:
                standby.close()

        asyncio.run(main())


class TestWriteDegradation:
    """Satellite: an injected disk fault fails the ack cleanly and
    degrades the service to read-only with a HEALTH event."""

    def test_fsync_fault_degrades_to_read_only(self, graph, stream,
                                               tmp_path):
        async def main():
            engine = make_engine(graph)
            faults = FaultInjector(seed=0)
            events = list(stream)
            try:
                svc = BCService(engine, max_batch=4,
                                wal_dir=tmp_path / "wal",
                                fsync_every=4)
                async with svc:
                    await svc.submit_many(events[:8])
                    await svc.drain()
                    faults.arm_wal_fault(svc._wal, stage="fsync")
                    # The poisoned group commit must fail this ack.
                    with pytest.raises(
                            (WalError, RuntimeError)):
                        await svc.submit(events[8])
                    await async_wait_until(
                        lambda: svc.writes_degraded,
                        message="service degraded after the fault")
                    # Writes rejected from now on...
                    with pytest.raises(WalError, match="read-only"):
                        await svc.submit(events[9])
                    with pytest.raises(WalError, match="read-only"):
                        svc.try_submit(events[9])
                    # ...but reads keep serving.
                    result = await svc.query_top_k(3)
                    assert result["watermark"] >= 0
                    health = svc.health_report()
                    assert health["writes_degraded"] is True
                    assert "write_failure" in health
                    assert health["wal"]["failed"] is not None
                    assert any(
                        e.action == HEALTH and e.kind == "wal-failure"
                        for e in svc.core.result.guard_events)
            finally:
                engine.close()

        asyncio.run(main())

    def test_no_acked_record_lost_to_the_fault(self, graph, stream,
                                               tmp_path):
        """Every sequence acked before the fault is durable on disk;
        the poisoned batch is at worst a torn (never-acked) tail."""
        from repro.resilience.wal import scan_wal

        acked = []

        async def main():
            engine = make_engine(graph)
            faults = FaultInjector(seed=1)
            events = list(stream)
            try:
                svc = BCService(engine, wal_dir=tmp_path / "wal",
                                fsync_every=2)
                async with svc:
                    for event in events[:6]:
                        acked.append(await svc.submit(event))
                    faults.arm_wal_fault(svc._wal, stage="write")
                    with pytest.raises((WalError, RuntimeError)):
                        await svc.submit(events[6])
                    await async_wait_until(
                        lambda: svc.writes_degraded,
                        message="service degraded")
            finally:
                engine.close()

        asyncio.run(main())
        scan = scan_wal(tmp_path / "wal")
        assert scan.last_seq is not None
        assert scan.last_seq >= max(acked)


class TestAdoptionValidation:
    def test_core_excludes_build_args(self, graph, tmp_path):
        engine = make_engine(graph)
        try:
            from repro.service import ServiceCore

            core = ServiceCore(engine)
            with pytest.raises(ValueError, match="adopts"):
                BCService(engine, core=core,
                          checkpoint_dir=tmp_path / "ckpts")
            with pytest.raises(ValueError, match="core's engine"):
                BCService(object(), core=core)
        finally:
            engine.close()

    def test_wal_and_wal_dir_exclusive(self, graph, tmp_path):
        engine = make_engine(graph)
        try:
            wal = WriteAheadLog(tmp_path / "wal")
            with pytest.raises(ValueError, match="not both"):
                BCService(engine, wal=wal, wal_dir=tmp_path / "wal2")
            wal.close()
        finally:
            engine.close()


class TestReplicaHealth:
    def test_health_report_replication_surface(self, graph, stream,
                                               tmp_path):
        async def main():
            primary = make_engine(graph)
            standby = make_engine(graph)
            try:
                svc = BCService(primary, wal_dir=tmp_path / "wal")
                replica = ReplicaService(standby, tmp_path / "wal",
                                         replica_id="obs")
                async with svc:
                    await svc.submit_many(list(stream)[:10])
                    await svc.drain()
                    replica.catch_up()
                    health = replica.health_report()
                    assert health["role"] == "replica"
                    assert health["replica_id"] == "obs"
                    assert health["watermark"] == replica.watermark
                    assert health["lag_records"] == 0
                    assert health["epoch"] == 0
                    assert health["replication"]["records_applied"] > 0
                    primary_health = svc.health_report()
                    wal_health = primary_health["wal"]
                    for key in ("segments", "size_bytes",
                                "fsync_lag_records", "epoch", "failed"):
                        assert key in wal_health
                    assert primary_health["writes_degraded"] is False
            finally:
                primary.close()
                standby.close()

        asyncio.run(main())
