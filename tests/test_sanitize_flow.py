"""Mutation tests for the interprocedural flow analyzer
(:mod:`repro.sanitize.flow`).

Every rule family F101–F104 gets *twin* checks: a seeded-defect
snippet fires the rule, and the repaired twin (the idiomatic fix,
usually the exact shape the shipped tree uses) stays silent.  Snippets
are analyzed under virtual tree paths via ``analyze_sources`` so the
path-scoped rules see the layout they enforce.  The suite also locks
the supporting machinery: the call graph, the AST cache, the
suppression baseline, the SARIF formatter, and the CLI — and the
headline acceptance check that the real tree analyzes clean with an
empty baseline.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.sanitize.astcache import AstCache, parse_source
from repro.sanitize.callgraph import CallGraph, attr_chain
from repro.sanitize.flow import (
    BaselineError,
    analyze_paths,
    analyze_sources,
    apply_baseline,
    empty_baseline,
    load_baseline,
    main,
    to_sarif,
)

pytestmark = pytest.mark.sanitize

SERVICE_PATH = "src/repro/service/mod.py"
RESILIENCE_PATH = "src/repro/resilience/mod.py"
ANALYSIS_PATH = "src/repro/analysis/mod.py"
PARALLEL_PATH = "src/repro/parallel/mod.py"
KERNEL_PATH = "src/repro/bc/mod.py"

REPO = Path(__file__).resolve().parent.parent


def codes_of(report):
    return [f.code for f in report.findings]


def analyze_one(path, source):
    return analyze_sources([(path, source)])


# ----------------------------------------------------------------------
# F101: async-blocking
# ----------------------------------------------------------------------
class TestF101:
    BAD_DIRECT = (
        "import os\n"
        "\n"
        "class Service:\n"
        "    async def stop(self):\n"
        "        os.fsync(3)\n"
    )
    BAD_INDIRECT = (
        "def _persist(path, data):\n"
        "    with open(path, 'wb') as fh:\n"
        "        fh.write(data)\n"
        "\n"
        "class Service:\n"
        "    async def stop(self):\n"
        "        _persist('x', b'')\n"
    )
    GOOD_TO_THREAD = (
        "import asyncio\n"
        "\n"
        "def _persist(path, data):\n"
        "    with open(path, 'wb') as fh:\n"
        "        fh.write(data)\n"
        "\n"
        "class Service:\n"
        "    async def stop(self):\n"
        "        await asyncio.to_thread(_persist, 'x', b'')\n"
    )
    GOOD_RUN_IN_EXECUTOR = (
        "import asyncio\n"
        "\n"
        "def _persist(path, data):\n"
        "    with open(path, 'wb') as fh:\n"
        "        fh.write(data)\n"
        "\n"
        "class Service:\n"
        "    async def stop(self):\n"
        "        loop = asyncio.get_running_loop()\n"
        "        await loop.run_in_executor(None, _persist, 'x', b'')\n"
    )
    GOOD_CONSTRUCTOR = (
        "class Journal:\n"
        "    def __init__(self, path):\n"
        "        self._fh = open(path, 'ab')\n"
        "\n"
        "class Service:\n"
        "    async def start(self):\n"
        "        self._journal = Journal('x')\n"
    )

    def test_direct_blocking_fires(self):
        report = analyze_one(SERVICE_PATH, self.BAD_DIRECT)
        assert codes_of(report) == ["F101"]
        finding = report.findings[0]
        assert finding.line == 5
        assert "os.fsync" in finding.message
        assert finding.trace == ()  # a root: no call chain to show

    def test_indirect_blocking_fires_with_trace(self):
        report = analyze_one(SERVICE_PATH, self.BAD_INDIRECT)
        assert codes_of(report) == ["F101"]
        finding = report.findings[0]
        assert "_persist" in finding.message
        assert finding.trace  # witness chain down to open()
        assert any("open" in step for step in finding.trace)

    def test_to_thread_good_twin_silent(self):
        assert analyze_one(SERVICE_PATH, self.GOOD_TO_THREAD).ok

    def test_run_in_executor_good_twin_silent(self):
        assert analyze_one(SERVICE_PATH, self.GOOD_RUN_IN_EXECUTOR).ok

    def test_constructor_exempt(self):
        assert analyze_one(SERVICE_PATH, self.GOOD_CONSTRUCTOR).ok

    def test_sync_function_out_of_scope(self):
        source = self.BAD_DIRECT.replace("async def", "def")
        assert analyze_one(SERVICE_PATH, source).ok

    def test_outside_service_tree_out_of_scope(self):
        assert analyze_one(ANALYSIS_PATH, self.BAD_DIRECT).ok


# ----------------------------------------------------------------------
# F102: durability protocol order
# ----------------------------------------------------------------------
WAL_SYNC_BAD = (
    "class MiniWal:\n"
    "    def __init__(self, path):\n"
    "        self._fh = open(path, 'ab')\n"
    "        self._pending = []\n"
    "\n"
    "    def check_fence(self):\n"
    "        pass\n"
    "\n"
    "    def append(self, rec):\n"
    "        self._pending.append(rec)\n"
    "\n"
    "    def sync(self):\n"
    "        self._fh.write(b'x')\n"
    "        self.check_fence()\n"
)
WAL_SYNC_GOOD = WAL_SYNC_BAD.replace(
    "        self._fh.write(b'x')\n        self.check_fence()\n",
    "        self.check_fence()\n        self._fh.write(b'x')\n",
)


class TestF102FenceBeforeWrite:
    def test_write_before_fence_fires(self):
        report = analyze_one(RESILIENCE_PATH, WAL_SYNC_BAD)
        assert codes_of(report) == ["F102"]
        assert "before any check_fence" in report.findings[0].message
        assert "MiniWal.sync" in report.findings[0].message

    def test_fence_first_silent(self):
        assert analyze_one(RESILIENCE_PATH, WAL_SYNC_GOOD).ok

    def test_private_methods_out_of_scope(self):
        # a private helper may write unfenced: its public caller fences
        source = WAL_SYNC_BAD.replace("def sync(", "def _sync(")
        assert analyze_one(RESILIENCE_PATH, source).ok

    def test_interprocedural_write_detected(self):
        # the write hides one call deep; the effect summary carries it
        source = WAL_SYNC_GOOD.replace(
            "    def sync(self):\n",
            "    def _emit(self):\n"
            "        self._fh.write(b'y')\n"
            "\n"
            "    def sync(self):\n",
        ).replace(
            "        self.check_fence()\n        self._fh.write(b'x')\n",
            "        self._emit()\n        self.check_fence()\n",
        )
        report = analyze_one(RESILIENCE_PATH, source)
        assert codes_of(report) == ["F102"]


ACK_GOOD = (
    "class MiniWal:\n"
    "    def check_fence(self):\n"
    "        pass\n"
    "\n"
    "    def append(self, rec):\n"
    "        return 1\n"
    "\n"
    "class Svc:\n"
    "    def __init__(self):\n"
    "        self._wal = MiniWal()\n"
    "\n"
    "    def _journal(self, event):\n"
    "        return self._wal.append(event)\n"
    "\n"
    "    async def _wait_durable(self, seq):\n"
    "        pass\n"
    "\n"
    "    async def submit(self, event):\n"
    "        seq = self._journal(event)\n"
    "        await self._wait_durable(seq)\n"
    "        return seq\n"
)
ACK_BAD = ACK_GOOD.replace(
    "        seq = self._journal(event)\n"
    "        await self._wait_durable(seq)\n",
    "        await self._wait_durable(0)\n"
    "        seq = self._journal(event)\n",
)


class TestF102AppendBeforeAck:
    def test_ack_before_append_fires(self):
        report = analyze_one(SERVICE_PATH, ACK_BAD)
        assert codes_of(report) == ["F102"]
        assert "_wait_durable" in report.findings[0].message

    def test_append_first_silent(self):
        assert analyze_one(SERVICE_PATH, ACK_GOOD).ok

    def test_never_appends_fires(self):
        source = ACK_GOOD.replace(
            "        seq = self._journal(event)\n", "        seq = 0\n"
        )
        report = analyze_one(SERVICE_PATH, source)
        assert codes_of(report) == ["F102"]
        assert "never journal-appends" in report.findings[0].message


PROMOTE_GOOD = (
    "def write_fence(d, e):\n"
    "    pass\n"
    "\n"
    "def clear_replica_position(d, r):\n"
    "    pass\n"
    "\n"
    "class Replica:\n"
    "    def catch_up(self):\n"
    "        return 0\n"
    "\n"
    "    def promote(self, epoch):\n"
    "        write_fence(self.wal_dir, epoch)\n"
    "        self.catch_up()\n"
    "        wal = WriteAheadLog(self.wal_dir, epoch=epoch)\n"
    "        clear_replica_position(self.wal_dir, self.replica_id)\n"
    "        return wal\n"
)


class TestF102Promote:
    def test_full_protocol_in_order_silent(self):
        assert analyze_one(SERVICE_PATH, PROMOTE_GOOD).ok

    def test_missing_advertise_fires(self):
        source = PROMOTE_GOOD.replace(
            "        clear_replica_position(self.wal_dir, self.replica_id)\n",
            "",
        )
        report = analyze_one(SERVICE_PATH, source)
        assert codes_of(report) == ["F102"]
        assert "advertise" in report.findings[0].message

    def test_out_of_order_fires(self):
        source = PROMOTE_GOOD.replace(
            "        write_fence(self.wal_dir, epoch)\n"
            "        self.catch_up()\n",
            "        self.catch_up()\n"
            "        write_fence(self.wal_dir, epoch)\n",
        )
        report = analyze_one(SERVICE_PATH, source)
        assert codes_of(report) == ["F102"]
        assert "out of order" in report.findings[0].message

    def test_promote_outside_service_out_of_scope(self):
        source = PROMOTE_GOOD.replace(
            "        clear_replica_position(self.wal_dir, self.replica_id)\n",
            "",
        )
        assert analyze_one(ANALYSIS_PATH, source).ok


# ----------------------------------------------------------------------
# F103: zero-copy view lifetime
# ----------------------------------------------------------------------
class TestF103:
    BAD_RETURN = (
        "import numpy as np\n"
        "\n"
        "def view_of(buf):\n"
        "    arr = np.frombuffer(buf, dtype=np.float64)\n"
        "    return arr\n"
    )
    GOOD_COPY = BAD_RETURN.replace("return arr", "return arr.copy()")
    BAD_ATTR = (
        "import numpy as np\n"
        "\n"
        "class Cache:\n"
        "    def load(self, buf):\n"
        "        self._data = np.frombuffer(buf, dtype=np.int64)\n"
    )
    BAD_CLOSURE = (
        "import numpy as np\n"
        "\n"
        "def reader(buf):\n"
        "    v = np.frombuffer(buf, dtype=np.int64)\n"
        "    def total():\n"
        "        return v.sum()\n"
        "    return total\n"
    )

    def test_return_escape_fires(self):
        report = analyze_one(ANALYSIS_PATH, self.BAD_RETURN)
        assert codes_of(report) == ["F103"]
        assert "via return" in report.findings[0].message

    def test_copy_good_twin_silent(self):
        assert analyze_one(ANALYSIS_PATH, self.GOOD_COPY).ok

    def test_attribute_store_fires(self):
        report = analyze_one(ANALYSIS_PATH, self.BAD_ATTR)
        assert codes_of(report) == ["F103"]
        assert "self._data" in report.findings[0].message

    def test_closure_capture_fires(self):
        report = analyze_one(ANALYSIS_PATH, self.BAD_CLOSURE)
        assert codes_of(report) == ["F103"]
        assert "closure" in report.findings[0].message

    def test_interprocedural_view_summary(self):
        # helper returns a raw view; the caller re-returning it is a
        # second, distinct escape (returns-view fixpoint)
        source = self.BAD_RETURN + (
            "\n"
            "def relay(buf):\n"
            "    v = view_of(buf)\n"
            "    return v\n"
        )
        report = analyze_one(ANALYSIS_PATH, source)
        assert codes_of(report) == ["F103", "F103"]

    def test_materialized_relay_silent(self):
        source = self.GOOD_COPY + (
            "\n"
            "def relay(buf):\n"
            "    return np.array(view_of(buf))\n"
        )
        assert analyze_one(ANALYSIS_PATH, source).ok

    def test_parallel_tree_exempt(self):
        # the transport owns the round protocol; same code is its
        # documented contract there
        assert analyze_one(PARALLEL_PATH, self.BAD_RETURN).ok


# ----------------------------------------------------------------------
# F104: determinism taint
# ----------------------------------------------------------------------
class TestF104:
    BAD_ACCOUNTANT = (
        "import time\n"
        "\n"
        "def relax(frontier, acc):\n"
        "    dt = time.perf_counter()\n"
        "    acc.charge_edges(dt)\n"
    )
    GOOD_ACCOUNTANT = (
        "import time\n"
        "\n"
        "def relax(frontier, acc):\n"
        "    acc.charge_edges(len(frontier))\n"
    )
    BAD_SIM_SECONDS = (
        "import time\n"
        "\n"
        "class Core:\n"
        "    def apply(self):\n"
        "        self.simulated_seconds = time.time()\n"
    )
    GOOD_WALL_SECONDS = (
        "import time\n"
        "\n"
        "class Core:\n"
        "    def apply(self):\n"
        "        self.wall_seconds = time.time()\n"
    )
    BAD_CHECKPOINT = (
        "import time\n"
        "\n"
        "def snapshot(path):\n"
        "    stamp = time.time()\n"
        "    save_checkpoint(path, stamp)\n"
    )
    BAD_RNG = (
        "from repro.utils.prng import default_rng\n"
        "\n"
        "def shuffle(acc):\n"
        "    rng = default_rng()\n"
        "    acc.charge_nodes(rng)\n"
    )
    GOOD_RNG = BAD_RNG.replace("default_rng()", "default_rng(42)")

    def test_wall_clock_to_accountant_fires(self):
        report = analyze_one(KERNEL_PATH, self.BAD_ACCOUNTANT)
        assert codes_of(report) == ["F104"]
        assert "cost accountant" in report.findings[0].message
        assert "time.perf_counter" in report.findings[0].message

    def test_deterministic_charge_silent(self):
        assert analyze_one(KERNEL_PATH, self.GOOD_ACCOUNTANT).ok

    def test_sim_seconds_store_fires(self):
        report = analyze_one(SERVICE_PATH, self.BAD_SIM_SECONDS)
        assert codes_of(report) == ["F104"]
        assert "simulated_seconds" in report.findings[0].message

    def test_wall_seconds_by_contract_silent(self):
        assert analyze_one(SERVICE_PATH, self.GOOD_WALL_SECONDS).ok

    def test_checkpoint_payload_fires(self):
        report = analyze_one(SERVICE_PATH, self.BAD_CHECKPOINT)
        assert codes_of(report) == ["F104"]
        assert "checkpoint payload" in report.findings[0].message

    def test_unseeded_rng_fires(self):
        report = analyze_one(KERNEL_PATH, self.BAD_RNG)
        assert codes_of(report) == ["F104"]
        assert "default_rng" in report.findings[0].message

    def test_seeded_rng_silent(self):
        assert analyze_one(KERNEL_PATH, self.GOOD_RNG).ok

    def test_interprocedural_taint_summary(self):
        source = (
            "import time\n"
            "\n"
            "def _now():\n"
            "    return time.time()\n"
            "\n"
            "class Core:\n"
            "    def apply(self):\n"
            "        self._sim_seconds = _now()\n"
        )
        report = analyze_one(SERVICE_PATH, source)
        assert codes_of(report) == ["F104"]
        assert "_now" in report.findings[0].message


# ----------------------------------------------------------------------
# the headline acceptance check
# ----------------------------------------------------------------------
class TestRealTree:
    def test_shipped_tree_is_clean(self):
        report = analyze_paths([str(REPO / "src" / "repro")],
                               cache=AstCache())
        assert report.ok, "\n" + "\n".join(
            f.render() for f in report.findings
        )
        # the graph actually covered the tree (meaningful emptiness)
        assert report.files > 50
        assert report.functions > 500
        assert report.call_edges > 2000

    def test_checked_in_baseline_is_empty(self):
        baseline = load_baseline(str(REPO / ".flow-baseline.json"))
        assert baseline["suppressions"] == []


# ----------------------------------------------------------------------
# call graph + cache machinery
# ----------------------------------------------------------------------
class TestCallGraph:
    def test_attr_chain(self):
        import ast as astmod

        expr = astmod.parse("a.b.c()").body[0].value
        assert attr_chain(expr.func) == ("a", "b", "c")
        dynamic = astmod.parse("f().g()").body[0].value
        assert attr_chain(dynamic.func) == ()

    def _build(self, source, path=SERVICE_PATH):
        return CallGraph.build([parse_source(source, path)])

    def test_async_coloring_and_nesting(self):
        graph = self._build(
            "async def outer():\n"
            "    def inner():\n"
            "        pass\n"
        )
        fns = {f.name: f for f in graph.functions.values()}
        assert fns["outer"].is_async
        assert not fns["inner"].is_async
        assert fns["inner"].qname.endswith("outer.inner")

    def test_executor_dispatch_site(self):
        graph = self._build(
            "import asyncio\n"
            "\n"
            "def work():\n"
            "    pass\n"
            "\n"
            "async def go():\n"
            "    await asyncio.to_thread(work)\n"
        )
        go = next(q for q in graph.calls if q.endswith(".go"))
        kinds = {s.kind for s in graph.calls[go]}
        assert "executor" in kinds
        executor_site = next(
            s for s in graph.calls[go] if s.kind == "executor"
        )
        assert executor_site.callee is not None
        assert executor_site.callee.endswith(".work")

    def test_attribute_type_inference(self):
        graph = self._build(
            "from concurrent.futures import ThreadPoolExecutor\n"
            "\n"
            "class S:\n"
            "    def __init__(self, path):\n"
            "        self._pool = ThreadPoolExecutor(max_workers=1)\n"
            "        self._fh = open(path, 'ab')\n"
        )
        cls = next(c for c in graph.classes.values() if c.name == "S")
        assert cls.attr_types["_pool"] == "ThreadPoolExecutor"
        assert cls.attr_types["_fh"] == "<file>"

    def test_with_binding_inside_try_is_typed(self):
        # regression: the forward type pass must see statements in
        # source order even under try/with nesting
        graph = self._build(
            "class S:\n"
            "    pass\n"
            "\n"
            "def go():\n"
            "    s = S()\n"
            "    try:\n"
            "        with s as h:\n"
            "            pass\n"
            "    finally:\n"
            "        pass\n"
        )
        fn = next(f for f in graph.functions.values() if f.name == "go")
        assert fn.local_types["h"].endswith(".S")


class TestAstCache:
    def test_reuse_and_invalidation(self, tmp_path):
        target = tmp_path / "m.py"
        target.write_text("x = 1\n", encoding="utf-8")
        cache = AstCache()
        first = cache.get(str(target))
        again = cache.get(str(target))
        assert first is again
        assert cache.hits == 1 and cache.misses == 1
        # content change with a different stat signature re-parses
        target.write_text("x = 1\ny = 2\n", encoding="utf-8")
        changed = cache.get(str(target))
        assert changed is not first

    def test_syntax_error_is_captured_not_raised(self):
        mod = parse_source("def broken(:\n", "src/repro/analysis/m.py")
        assert not mod.ok and mod.error is not None
        # an unparseable file doesn't crash the analyzer
        report = analyze_sources([("src/repro/analysis/m.py",
                                   "def broken(:\n")])
        assert report.files == 0


# ----------------------------------------------------------------------
# baseline + fingerprints
# ----------------------------------------------------------------------
class TestBaseline:
    def _finding(self):
        report = analyze_one(SERVICE_PATH, TestF101.BAD_DIRECT)
        return report.findings[0]

    def test_fingerprint_is_line_independent(self):
        plain = analyze_one(SERVICE_PATH, TestF101.BAD_DIRECT)
        shifted = analyze_one(SERVICE_PATH,
                              "# prologue\n" + TestF101.BAD_DIRECT)
        assert (plain.findings[0].fingerprint
                == shifted.findings[0].fingerprint)
        assert plain.findings[0].line != shifted.findings[0].line

    def test_apply_baseline_suppresses_and_reports_stale(self):
        finding = self._finding()
        baseline = {
            "version": 1,
            "suppressions": [
                {"fingerprint": finding.fingerprint,
                 "justification": "accepted for the test"},
                {"fingerprint": "deadbeefdeadbeef",
                 "justification": "matches nothing"},
            ],
        }
        new, suppressed, stale = apply_baseline([finding], baseline)
        assert new == [] and suppressed == [finding]
        assert stale == ["deadbeefdeadbeef"]

    def test_justification_is_mandatory(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text(json.dumps({
            "version": 1,
            "suppressions": [{"fingerprint": "deadbeefdeadbeef"}],
        }), encoding="utf-8")
        with pytest.raises(BaselineError, match="justification"):
            load_baseline(str(path))

    def test_bad_schema_rejected(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text("[]", encoding="utf-8")
        with pytest.raises(BaselineError):
            load_baseline(str(path))

    def test_empty_baseline_roundtrip(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text(json.dumps(empty_baseline()), encoding="utf-8")
        assert load_baseline(str(path))["suppressions"] == []


# ----------------------------------------------------------------------
# SARIF + CLI
# ----------------------------------------------------------------------
class TestSarif:
    def test_document_shape(self):
        report = analyze_one(SERVICE_PATH, TestF101.BAD_DIRECT)
        doc = to_sarif(report)
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert rule_ids == {"F101", "F102", "F103", "F104"}
        result = run["results"][0]
        assert result["ruleId"] == "F101"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == SERVICE_PATH
        assert location["region"]["startLine"] == 5
        assert result["partialFingerprints"]["repro/flow/v1"] == \
            report.findings[0].fingerprint


class TestCli:
    def _write_bad(self, tmp_path):
        tree = tmp_path / "src" / "repro" / "service"
        tree.mkdir(parents=True)
        (tree / "mod.py").write_text(TestF101.BAD_DIRECT,
                                     encoding="utf-8")
        return tmp_path / "src"

    def test_exit_codes_and_json(self, tmp_path, capsys):
        bad = self._write_bad(tmp_path)
        assert main([str(bad), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"] == {"F101": 1}
        clean = tmp_path / "clean"
        clean.mkdir()
        (clean / "m.py").write_text("x = 1\n", encoding="utf-8")
        assert main([str(clean)]) == 0

    def test_baseline_flag_suppresses(self, tmp_path, capsys):
        bad = self._write_bad(tmp_path)
        assert main([str(bad), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        fingerprint = payload["findings"][0]["fingerprint"]
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({
            "version": 1,
            "suppressions": [{"fingerprint": fingerprint,
                              "justification": "test acceptance"}],
        }), encoding="utf-8")
        assert main([str(bad), "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "1 suppressed" in out

    def test_rejected_baseline_fails_closed(self, tmp_path, capsys):
        bad = self._write_bad(tmp_path)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({
            "version": 1,
            "suppressions": [{"fingerprint": "deadbeefdeadbeef",
                              "justification": ""}],
        }), encoding="utf-8")
        assert main([str(bad), "--baseline", str(baseline)]) == 1
        assert "justification" in capsys.readouterr().err

    def test_sarif_output_file(self, tmp_path, capsys):
        bad = self._write_bad(tmp_path)
        out_file = tmp_path / "report.sarif"
        assert main([str(bad), "--format", "sarif",
                     "--output", str(out_file)]) == 1
        capsys.readouterr()
        doc = json.loads(out_file.read_text(encoding="utf-8"))
        assert doc["runs"][0]["results"]

    def test_module_entry_point(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.sanitize.flow",
             str(REPO / "src" / "repro" / "utils")],
            capture_output=True, text=True,
            env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr
        assert "sanitize-flow: ok" in proc.stdout

    def test_combined_runner_shares_parses(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.sanitize",
             str(REPO / "src" / "repro" / "utils")],
            capture_output=True, text=True,
            env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr
        assert "reuse(s)" in proc.stdout
