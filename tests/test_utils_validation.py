import pytest

from repro.utils.validation import (
    check_in_range,
    check_nonnegative,
    check_positive,
    check_type,
)


class TestCheckType:
    def test_accepts_instance(self):
        assert check_type("x", 3, int) == 3

    def test_accepts_tuple(self):
        assert check_type("x", 3.0, (int, float)) == 3.0

    def test_rejects(self):
        with pytest.raises(TypeError, match="x must be int"):
            check_type("x", "s", int)


class TestNumericChecks:
    def test_positive_ok(self):
        assert check_positive("p", 0.5) == 0.5

    def test_positive_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive("p", 0)

    def test_nonnegative_ok(self):
        assert check_nonnegative("q", 0) == 0

    def test_nonnegative_rejects(self):
        with pytest.raises(ValueError):
            check_nonnegative("q", -1)

    def test_in_range_ok(self):
        assert check_in_range("r", 5, 0, 10) == 5

    def test_in_range_inclusive_bounds(self):
        assert check_in_range("r", 0, 0, 10) == 0
        assert check_in_range("r", 10, 0, 10) == 10

    def test_in_range_rejects(self):
        with pytest.raises(ValueError):
            check_in_range("r", 11, 0, 10)
