import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.counters import Trace
from repro.gpu.primitives import (
    bitonic_sort_steps,
    prefix_sum_steps,
    remove_duplicates,
)


class TestStepCounts:
    @pytest.mark.parametrize("n,expected", [(0, 0), (1, 0), (2, 1), (4, 3),
                                            (8, 6), (16, 10), (1024, 55)])
    def test_bitonic_phases(self, n, expected):
        assert bitonic_sort_steps(n) == expected

    def test_bitonic_rounds_up_to_pow2(self):
        assert bitonic_sort_steps(5) == bitonic_sort_steps(8)

    @pytest.mark.parametrize("n,expected", [(0, 0), (1, 0), (2, 2), (8, 6),
                                            (9, 8)])
    def test_scan_phases(self, n, expected):
        assert prefix_sum_steps(n) == expected


class TestRemoveDuplicates:
    def test_matches_numpy_unique(self):
        buf = np.array([5, 3, 5, 1, 3, 3, 9], dtype=np.int64)
        out = remove_duplicates(buf, Trace())
        assert np.array_equal(out, np.unique(buf))

    def test_empty(self):
        out = remove_duplicates(np.array([], dtype=np.int64), Trace())
        assert out.size == 0

    def test_single(self):
        t = Trace()
        out = remove_duplicates(np.array([7]), t)
        assert np.array_equal(out, [7])

    def test_charges_pipeline(self):
        t = Trace()
        remove_duplicates(np.arange(100), t)
        # sort + compare + scan + scatter phases all present
        assert len(t) == bitonic_sort_steps(100) + 1 + prefix_sum_steps(100) + 1

    def test_cost_grows_with_size(self):
        t_small, t_big = Trace(), Trace()
        remove_duplicates(np.arange(16), t_small)
        remove_duplicates(np.arange(4096), t_big)
        assert t_big.total_items > t_small.total_items

    @given(st.lists(st.integers(0, 50), max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_property_equals_unique(self, values):
        buf = np.array(values, dtype=np.int64)
        assert np.array_equal(remove_duplicates(buf, Trace()), np.unique(buf))
