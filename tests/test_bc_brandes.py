import numpy as np
import pytest

from repro.bc.brandes import brandes_bc, single_source_state
from repro.bc.reference import brandes_reference, single_source_reference
from repro.graph import generators as gen
from repro.graph.csr import CSRGraph, DIST_INF


class TestSingleSource:
    def test_path_center(self):
        g = gen.path_graph(5)
        d, sigma, delta, levels = single_source_state(g, 0)
        assert np.array_equal(d, [0, 1, 2, 3, 4])
        assert np.array_equal(sigma, [1, 1, 1, 1, 1])
        # dependency of v for source 0 on a path = number of nodes beyond v
        assert np.array_equal(delta[1:4], [3, 2, 1])

    def test_star_center_counts(self):
        g = gen.star_graph(5)
        d, sigma, delta, _ = single_source_state(g, 0)
        assert np.array_equal(d, [0, 1, 1, 1, 1])
        assert np.all(sigma == 1)

    def test_parallel_paths_sigma(self):
        # 0-1-3, 0-2-3: two shortest paths to 3
        g = CSRGraph.from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        _, sigma, delta, _ = single_source_state(g, 0)
        assert sigma[3] == 2
        assert delta[1] == pytest.approx(0.5)
        assert delta[2] == pytest.approx(0.5)

    def test_unreachable(self, two_components):
        d, sigma, delta, _ = single_source_state(two_components, 0)
        assert all(d[v] == DIST_INF for v in range(5, 10))
        assert all(sigma[v] == 0 for v in range(5, 10))
        assert all(delta[v] == 0 for v in range(5, 10))

    def test_levels_partition_reachable(self, karate):
        d, _, _, levels = single_source_state(karate, 0)
        seen = np.concatenate(levels)
        assert len(seen) == len(set(seen.tolist()))
        assert len(seen) == np.count_nonzero(d != DIST_INF)
        for depth, frontier in enumerate(levels):
            assert np.all(d[frontier] == depth)

    def test_matches_reference(self, small_er):
        for s in (0, 7, 31):
            d1, s1, de1, _ = single_source_state(small_er, s)
            d2, s2, de2 = single_source_reference(small_er, s)
            assert np.array_equal(d1, d2)
            assert np.allclose(s1, s2)
            de1 = de1.copy()
            de1[s] = 0.0
            assert np.allclose(de1, de2)

    def test_bad_source_raises(self, karate):
        with pytest.raises(IndexError):
            single_source_state(karate, 34)

    def test_sigma_consistency_invariant(self, small_er):
        """sigma[w] equals the sum of sigma over predecessors."""
        d, sigma, _, _ = single_source_state(small_er, 3)
        for w in range(small_er.num_vertices):
            if d[w] in (0, DIST_INF):
                continue
            nbrs = small_er.neighbors(w)
            preds = nbrs[d[nbrs] == d[w] - 1]
            assert sigma[w] == pytest.approx(sigma[preds].sum())


class TestBrandesBC:
    def test_karate_vs_reference(self, karate):
        assert np.allclose(brandes_bc(karate), brandes_reference(karate))

    def test_karate_vs_networkx(self, karate):
        import networkx as nx

        nxbc = nx.betweenness_centrality(nx.karate_club_graph(),
                                         normalized=False)
        ours = brandes_bc(karate)
        theirs = 2 * np.array([nxbc[v] for v in range(34)])
        assert np.allclose(ours, theirs)

    def test_er_vs_networkx(self, small_er):
        import networkx as nx

        G = nx.Graph(list(map(tuple, small_er.edge_list().tolist())))
        G.add_nodes_from(range(small_er.num_vertices))
        nxbc = nx.betweenness_centrality(G, normalized=False)
        ours = brandes_bc(small_er)
        theirs = 2 * np.array([nxbc[v] for v in range(small_er.num_vertices)])
        assert np.allclose(ours, theirs)

    def test_path_scores(self):
        bc = brandes_bc(gen.path_graph(5))
        # middle of a path: (i)(n-1-i) ordered pairs each way
        assert np.allclose(bc, [0, 6, 8, 6, 0])

    def test_star_center(self):
        bc = brandes_bc(gen.star_graph(6))
        assert bc[0] == pytest.approx(5 * 4)  # all ordered leaf pairs
        assert np.all(bc[1:] == 0)

    def test_complete_graph_zero(self):
        assert np.all(brandes_bc(gen.complete_graph(6)) == 0)

    def test_subset_sources(self, karate):
        partial = brandes_bc(karate, sources=[0, 1, 2])
        full = brandes_bc(karate)
        assert partial.shape == full.shape
        assert partial.sum() < full.sum()

    def test_all_sources_equals_exact(self, karate):
        assert np.allclose(
            brandes_bc(karate, sources=range(34)), brandes_bc(karate)
        )

    def test_normalized(self, karate):
        n = karate.num_vertices
        assert np.allclose(
            brandes_bc(karate, normalized=True),
            brandes_bc(karate) / ((n - 1) * (n - 2)),
        )

    def test_disconnected(self, two_components):
        bc = brandes_bc(two_components)
        # two disjoint 5-paths: same scores per component
        assert np.allclose(bc[:5], bc[5:])

    def test_empty_graph(self):
        assert brandes_bc(CSRGraph.empty(3)).tolist() == [0, 0, 0]
