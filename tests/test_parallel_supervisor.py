"""Supervision subsystem: heartbeats, hung-worker kills, respawn,
quarantine, and the degradation ladder.

The pool-level tests drive :class:`SupervisedPool` directly with cheap
``ping``/``sleep`` rounds; the engine-level tests prove the headline
claim — a supervised engine hit by crashes *and* SIGSTOP hangs stays
bit-identical to its serial twin with no permanent serial demotion.
"""

import os
import signal
import threading
import time
import warnings

import numpy as np
import pytest

from repro.bc.engine import DynamicBC
from repro.graph import generators as gen
from repro.graph.dynamic import DynamicGraph
from repro.graph.stream import EdgeStream, replay
from repro.parallel.shm import shm_available
from repro.parallel.supervisor import (
    FULL_POOL,
    SERIAL,
    SHRUNK_POOL,
    SupervisedPool,
    SupervisorPolicy,
)
from repro.resilience import FaultInjector
from repro.resilience.chaos import reports_identical
from repro.resilience.guards import HEALTH, GuardPolicy

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="POSIX shm unavailable"
)

#: fast-reacting policy so detection latency, not safety margins,
#: dominates test wall-clock
FAST = SupervisorPolicy(heartbeat_interval=0.05, backoff_base=0.01,
                        backoff_max=0.05, chunk_deadline=30.0)

K = 12
SEED = 3


def serial_ping(kind, common, payload):
    """In-parent executor for ping-style chunks (quarantine/serial leg)."""
    assert kind in ("ping", "sleep")
    return list(payload["items"])


def build_pair(graph, workers, **kwargs):
    serial = DynamicBC.from_graph(DynamicGraph.from_csr(graph),
                                  num_sources=K, seed=SEED)
    par = DynamicBC.from_graph(DynamicGraph.from_csr(graph), num_sources=K,
                               seed=SEED, workers=workers,
                               supervisor_policy=FAST, **kwargs)
    return serial, par


def assert_states_equal(a, b):
    for name in ("sources", "d", "sigma", "delta", "bc"):
        assert np.array_equal(getattr(a.state, name),
                              getattr(b.state, name)), name
    assert a.counters == b.counters


# ----------------------------------------------------------------------
# Detection + recovery at the pool level
# ----------------------------------------------------------------------
class TestDetection:
    def test_hung_deadline_is_twice_the_heartbeat_by_default(self):
        policy = SupervisorPolicy()
        assert policy.hung_deadline == 2 * policy.heartbeat_interval

    def test_self_stalled_worker_is_killed_and_chunk_reassigned(self):
        # The worker SIGSTOPs itself mid-chunk (a live-but-frozen
        # process): the heartbeat goes silent, the supervisor SIGKILLs
        # it, respawns, and the round still returns every chunk.
        with SupervisedPool(2, policy=FAST) as pool:
            pool.arm_stall()
            payloads = [{"items": [i]} for i in range(4)]
            start = time.monotonic()
            outs = pool.run("ping", {}, payloads, serial=serial_ping)
            elapsed = time.monotonic() - start
            assert outs == [[i] for i in range(4)]
            assert pool.counts["hung"] == 1
            assert pool.counts["kills"] == 1
            assert pool.counts["respawns"] >= 1
            assert pool.level == FULL_POOL
            # Detection is bounded by the hung deadline (2x heartbeat)
            # plus polling slack — nowhere near a blocking hang.
            assert elapsed < FAST.hung_deadline + 5.0
            actions = [e.action for e in pool.drain_events()]
            assert "hung-worker" in actions
            assert "kill" in actions
            assert "respawn" in actions

    def test_externally_sigstopped_worker_mid_chunk(self):
        # Freeze a live worker from the outside while it busy-sleeps
        # on a chunk — the closest harness analogue of a production
        # hang that no cooperative check can see.  The trigger watches
        # the heartbeat block for a worker that has demonstrably picked
        # up a chunk (HB_TASK_START goes nonzero) instead of sleeping a
        # fixed 0.2s and hoping the pipeline lined up — freezing an
        # *idle* worker would never trip hung detection and the
        # counts below would flake.
        from repro.parallel import worker as _worker

        from tests.conftest import wait_until

        with SupervisedPool(2, policy=FAST) as pool:
            hb = pool._pool._heartbeat

            def busy_worker():
                for j in range(2):
                    base = _worker.HB_SLOTS * j
                    if hb[base + _worker.HB_TASK_START] > 0.0:
                        return j + 1  # 1-based so 0 stays falsy
                return 0

            def freeze_first_busy():
                j = wait_until(busy_worker, timeout=10.0,
                               message="a worker to pick up a chunk") - 1
                os.kill(pool._pool._procs[j].pid, signal.SIGSTOP)

            trigger = threading.Thread(target=freeze_first_busy, daemon=True)
            trigger.start()
            try:
                payloads = [{"items": [i], "seconds": 1.5} for i in range(2)]
                outs = pool.run("sleep", {}, payloads, serial=serial_ping)
            finally:
                trigger.join(timeout=30.0)
            assert outs == [[0], [1]]
            assert pool.counts["hung"] >= 1
            assert pool.counts["kills"] >= 1

    def test_crashed_worker_round_is_retried(self):
        with SupervisedPool(2, policy=FAST) as pool:
            pool.arm_crash()
            outs = pool.run("ping", {}, [{"items": [i]} for i in range(3)],
                            serial=serial_ping)
            assert outs == [[i] for i in range(3)]
            assert pool.counts["deaths"] == 1
            assert pool.counts["quarantined"] == 0
            assert pool.level == FULL_POOL


class TestQuarantine:
    def test_poisoned_chunk_retried_serially_in_parent(self):
        # The same chunk kills two workers -> quarantined, executed by
        # the parent; the other chunks still go through the pool and
        # the pool stays at full strength.
        with SupervisedPool(2, policy=FAST) as pool:
            pool.arm_crash(chunks=1, rounds=2)
            outs = pool.run("ping", {}, [{"items": [i]} for i in range(4)],
                            serial=serial_ping)
            assert outs == [[i] for i in range(4)]
            assert pool.counts["quarantined"] == 1
            assert pool.counts["serial_retries"] == 1
            assert pool.level == FULL_POOL
            assert pool.pending_faults() == 0

    def test_reset_called_for_pending_chunks_before_retry(self):
        resets = []
        with SupervisedPool(2, policy=FAST) as pool:
            pool.arm_crash()
            pool.run("ping", {}, [{"items": [i]} for i in range(3)],
                     reset=lambda p: resets.append(tuple(p["items"])),
                     serial=serial_ping)
        # Every chunk still pending when the round failed was reset
        # exactly once (none had completed yet).
        assert sorted(resets) == [(0,), (1,), (2,)]


class TestLadder:
    def test_demote_to_serial_and_promote_back(self):
        policy = SupervisorPolicy(heartbeat_interval=0.05, backoff_base=0.01,
                                  backoff_max=0.02, max_respawns=1,
                                  promote_after=2, poison_threshold=99)
        with SupervisedPool(4, policy=policy) as pool:
            # 4 failing rounds walk the whole ladder: 2 respawn
            # attempts at full strength, demote, 2 at half strength,
            # demote to serial (poison_threshold=99 keeps quarantine
            # out of the way so it is the *ladder* that degrades).
            pool.arm_crash(chunks=1, rounds=4)
            outs = pool.run("ping", {}, [{"items": [i]} for i in range(4)],
                            serial=serial_ping)
            assert outs == [[i] for i in range(4)]
            assert pool.level == SERIAL
            assert pool.counts["demotions"] == 2
            assert pool.pending_faults() == 0
            ladder_walk = [e.detail for e in pool.events
                           if e.action == "demote"]
            assert any(FULL_POOL in d and SHRUNK_POOL in d
                       for d in ladder_walk)
            assert any(SHRUNK_POOL in d and SERIAL in d for d in ladder_walk)

            # Healthy (serial) runs build the promotion streak; the
            # climb back to full strength goes through a ping probe.
            for _ in range(policy.promote_after):
                pool.run("ping", {}, [{"items": [0]}], serial=serial_ping)
            pool.run("ping", {}, [{"items": [0]}], serial=serial_ping)
            assert pool.level == SHRUNK_POOL
            assert pool.counts["probes"] == 1
            for _ in range(policy.promote_after + 1):
                pool.run("ping", {}, [{"items": [0]}], serial=serial_ping)
            assert pool.level == FULL_POOL
            assert pool.counts["promotions"] == 2

    def test_shrunk_pool_width_respects_floor(self):
        policy = SupervisorPolicy(min_workers=2)
        pool = SupervisedPool(3, policy=policy)
        try:
            pool.level = SHRUNK_POOL
            assert pool._level_size() == 2
            # Chunk planning still sees the requested width, so chunk
            # shapes (and results) never depend on pool health.
            assert pool.workers == 3
        finally:
            pool.close()


# ----------------------------------------------------------------------
# Engine-level bit-identity under supervision
# ----------------------------------------------------------------------
@pytest.fixture
def er_graph():
    return gen.erdos_renyi(40, 90, seed=7)


class TestEngineSupervised:
    def test_crash_stall_quarantine_update_stays_bit_identical(self, er_graph):
        serial, par = build_pair(er_graph, 2)
        try:
            pool = par._ensure_pool()
            assert isinstance(pool, SupervisedPool)
            # Crash on round 1, SIGSTOP on the retry: two strikes
            # quarantine the chunk, so one update exercises death
            # detection, hung detection, respawn AND the in-parent
            # serial retry — and must still match serial exactly.
            pool.arm_crash()
            pool.arm_stall(rounds=2)
            u, v = _active_edge(par)
            rs = serial.insert_edge(u, v)
            rp = par.insert_edge(u, v)
            assert reports_identical(rs, rp)
            assert_states_equal(serial, par)
            assert pool.counts["deaths"] == 1
            assert pool.counts["hung"] == 1
            assert pool.counts["quarantined"] == 1
            assert pool.level == FULL_POOL
            hr = par.health_report()
            assert hr["level"] == FULL_POOL
            assert not hr["parallel_disabled"]
        finally:
            par.close()

    def test_injector_stall_guarded_replay_matches_serial(self, er_graph):
        serial, par = build_pair(er_graph, 2)
        try:
            injector = FaultInjector(0)
            injector.arm_update_stall(par)
            assert any("pool mode" in line for line in injector.log)
            stream = EdgeStream.churn(er_graph, 12, seed=5)
            policy = GuardPolicy(check_every=50, seed=1)
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                rp = replay(par, stream, guard=policy)
            rs = replay(serial, stream, guard=policy)
            # Supervision recovers *inside* the update: nothing rolls
            # back, nothing is skipped, every report matches.
            assert not rp.skipped and not rp.recovered
            assert len(rs.reports) == len(rp.reports)
            for x, y in zip(rs.reports, rp.reports):
                assert reports_identical(x, y)
            assert_states_equal(serial, par)
            # ...and the supervision activity is folded into the guard
            # log as health events.
            health = [e for e in rp.guard_events if e.action == HEALTH]
            assert any(e.kind == "hung-worker" for e in health)
            assert any(e.kind == "respawn" for e in health)
        finally:
            par.close()

    def test_unsupervised_opt_out_keeps_legacy_pool(self, er_graph):
        from repro.parallel.pool import WorkerPool

        # Backend pinned: the point is the supervision opt-out, and
        # under REPRO_POOL_BACKEND=threads (or free-threaded builds)
        # auto would legitimately hand back a ThreadWorkerPool.
        _, par = build_pair(er_graph, 2, supervised=False,
                            pool_backend="processes")
        try:
            pool = par._ensure_pool()
            assert type(pool) is WorkerPool
            hr = par.health_report()
            assert hr["supervised"] is False
            assert hr["level"] == FULL_POOL
        finally:
            par.close()


def _active_edge(engine):
    from repro.bc.cases import Case, classify_insertions_batch

    n = engine.graph.snapshot().num_vertices
    for u in range(n):
        for v in range(u + 1, n):
            if engine.graph.has_edge(u, v):
                continue
            cases, _, _ = classify_insertions_batch(engine.state.d, u, v)
            if np.any(cases != int(Case.SAME_LEVEL)):
                return u, v
    raise AssertionError("no active insertion found")
