import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bc.brandes import brandes_bc
from repro.bc.tree import bc_auto, is_forest, tree_bc
from repro.graph import generators as gen
from repro.graph.csr import CSRGraph


class TestIsForest:
    def test_path(self):
        assert is_forest(gen.path_graph(10))

    def test_star(self):
        assert is_forest(gen.star_graph(8))

    def test_cycle(self):
        g = CSRGraph.from_edges(3, [(0, 1), (1, 2), (0, 2)])
        assert not is_forest(g)

    def test_forest_of_two_trees(self, two_components):
        assert is_forest(two_components)

    def test_empty(self):
        assert is_forest(CSRGraph.empty(4))


class TestTreeBC:
    def test_path_matches_brandes(self):
        g = gen.path_graph(12)
        assert np.allclose(tree_bc(g), brandes_bc(g))

    def test_star_matches_brandes(self):
        g = gen.star_graph(9)
        assert np.allclose(tree_bc(g), brandes_bc(g))

    def test_forest_matches_brandes(self, two_components):
        assert np.allclose(tree_bc(two_components),
                           brandes_bc(two_components))

    def test_isolated_vertices(self):
        g = CSRGraph.empty(5)
        assert np.all(tree_bc(g) == 0)

    def test_caterpillar(self):
        edges = [(i, i + 1) for i in range(5)] + [(2, 6), (2, 7), (4, 8)]
        g = CSRGraph.from_edges(9, edges)
        assert np.allclose(tree_bc(g), brandes_bc(g))

    def test_cycle_rejected(self):
        g = CSRGraph.from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        with pytest.raises(ValueError, match="forest"):
            tree_bc(g)

    @given(st.lists(st.integers(0, 10**6), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_random_trees_match_brandes(self, seeds):
        """Random tree via random parent attachment."""
        n = len(seeds) + 1
        edges = [(seed % (i + 1), i + 1) for i, seed in enumerate(seeds)]
        g = CSRGraph.from_edges(n, edges)
        assert np.allclose(tree_bc(g), brandes_bc(g))


class TestAuto:
    def test_dispatches_to_tree(self):
        g = gen.path_graph(8)
        assert np.allclose(bc_auto(g), brandes_bc(g))

    def test_dispatches_to_brandes(self, karate):
        assert np.allclose(bc_auto(karate), brandes_bc(karate))
