"""Write-ahead journal (:mod:`repro.resilience.wal`): on-disk format
round trips, buffered group-commit semantics, segment rotation/GC, the
align contract — and the corruption matrix the recovery claims rest
on: torn tails are truncated, everything else refuses to guess.

Sequence numbers in the journal are the service watermark, so every
test here is really a statement about which acknowledged events a
crash is allowed (none) or not allowed (the unsynced suffix) to lose.
"""

import os
import struct

import pytest

from repro.graph.stream import EdgeEvent
from repro.resilience.errors import WalError
from repro.resilience.wal import (
    WAL_VERSION,
    WriteAheadLog,
    encode_record,
    list_segments,
    scan_wal,
    segment_name,
)


def make_events(n, start=0):
    """Deterministic mixed insert/delete events, self-loop free."""
    out = []
    for i in range(start, start + n):
        u = i % 7
        v = u + 1 + (i % 3)
        out.append(EdgeEvent(float(i) * 0.5, u, v,
                             "delete" if i % 5 == 4 else "insert"))
    return out


def fill(directory, n, *, segment_records=4096, start=0):
    """A closed journal holding *n* synced events; returns the events."""
    events = make_events(n, start=start)
    with WriteAheadLog(directory, segment_records=segment_records,
                       start_seq=start) as wal:
        for event in events:
            wal.append(event)
    return events


class TestFormat:
    def test_round_trip(self, tmp_path):
        events = fill(tmp_path, 10)
        scan = scan_wal(tmp_path)
        assert [e for _, e in scan.events] == events
        assert [s for s, _ in scan.events] == list(range(10))
        assert scan.first_seq == 0 and scan.last_seq == 9
        assert scan.torn_path is None

    def test_append_only_buffers_until_sync(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        for event in make_events(5):
            wal.append(event)
        assert wal.unsynced == 5
        assert wal.last_synced_seq == -1
        assert scan_wal(tmp_path).events == []  # nothing on disk yet
        assert wal.sync() == 4
        assert wal.unsynced == 0
        assert len(scan_wal(tmp_path).events) == 5
        wal.close()

    def test_close_syncs_pending(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append(make_events(1)[0])
        wal.close()
        assert len(scan_wal(tmp_path).events) == 1
        wal.close()  # idempotent

    def test_segment_rotation_and_names(self, tmp_path):
        fill(tmp_path, 10, segment_records=4)
        names = [os.path.basename(p) for _, p in list_segments(tmp_path)]
        assert names == [segment_name(0), segment_name(4), segment_name(8)]
        scan = scan_wal(tmp_path)
        assert [s.first_seq for s in scan.segments] == [0, 4, 8]
        assert [s.records for s in scan.segments] == [4, 4, 2]

    def test_reopen_continues_sequence(self, tmp_path):
        events = fill(tmp_path, 7, segment_records=4)
        wal = WriteAheadLog(tmp_path, segment_records=4)
        assert wal.next_seq == 7
        more = make_events(3, start=7)
        for event in more:
            wal.append(event)
        wal.close()
        scan = scan_wal(tmp_path)
        assert [e for _, e in scan.events] == events + more
        assert scan.last_seq == 9

    def test_start_seq_offsets_a_fresh_journal(self, tmp_path):
        fill(tmp_path, 3, start=100)
        scan = scan_wal(tmp_path)
        assert scan.first_seq == 100 and scan.last_seq == 102
        assert os.path.basename(scan.segments[0].path) == segment_name(100)

    def test_non_contiguous_append_raises(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(make_events(1)[0])
            with pytest.raises(WalError, match="non-contiguous"):
                wal.append(make_events(1)[0], seq=5)

    def test_append_after_close_raises(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.close()
        with pytest.raises(WalError, match="closed"):
            wal.append(make_events(1)[0])

    def test_record_layout(self):
        event = EdgeEvent(1.5, 2, 3, "insert")
        record = encode_record(7, event)
        seq, length = struct.unpack_from("<QI", record, 0)
        assert seq == 7
        assert len(record) == 12 + length + 4  # header + payload + crc
        assert b'"op":"insert"' in record

    def test_events_from_filters_by_watermark(self, tmp_path):
        fill(tmp_path, 10)
        scan = scan_wal(tmp_path)
        tail = scan.events_from(6)
        assert [s for s, _ in tail] == [6, 7, 8, 9]
        assert scan.events_from(10) == []


class TestCorruptionMatrix:
    def test_empty_journal(self, tmp_path):
        scan = scan_wal(tmp_path)
        assert scan.events == [] and scan.segments == []
        wal = WriteAheadLog(tmp_path)
        assert wal.next_seq == 0
        wal.close()

    def test_torn_tail_is_truncated(self, tmp_path):
        fill(tmp_path, 6)
        (_, path), = list_segments(tmp_path)
        with open(path, "r+b") as fh:
            fh.truncate(os.path.getsize(path) - 5)  # cut mid-record
        scan = scan_wal(tmp_path)  # read-only: reports, does not repair
        assert scan.torn_path == path and scan.torn_bytes > 0
        assert [s for s, _ in scan.events] == [0, 1, 2, 3, 4]
        repaired = scan_wal(tmp_path, truncate=True)
        assert os.path.getsize(path) == repaired.segments[-1].end_offset
        after = scan_wal(tmp_path)
        assert after.torn_path is None and after.last_seq == 4

    def test_bad_crc_on_final_record_is_a_torn_tail(self, tmp_path):
        fill(tmp_path, 6)
        (_, path), = list_segments(tmp_path)
        with open(path, "r+b") as fh:
            fh.seek(-3, os.SEEK_END)  # inside the last record's payload
            byte = fh.read(1)
            fh.seek(-1, os.SEEK_CUR)
            fh.write(bytes([byte[0] ^ 0xFF]))
        scan = scan_wal(tmp_path, truncate=True)
        assert scan.torn_path == path
        assert scan.last_seq == 4  # only the unsynced-style tail is lost

    def test_mid_segment_bit_flip_raises(self, tmp_path):
        fill(tmp_path, 8)
        (_, path), = list_segments(tmp_path)
        record_len = len(encode_record(0, make_events(1)[0]))
        with open(path, "r+b") as fh:
            fh.seek(16 + record_len + 14)  # inside the second record
            byte = fh.read(1)
            fh.seek(-1, os.SEEK_CUR)
            fh.write(bytes([byte[0] ^ 0x01]))
        # Valid acknowledged records follow the damage: truncating
        # would lose them, so the scan must refuse.
        with pytest.raises(WalError, match="refusing to truncate"):
            scan_wal(tmp_path, truncate=True)
        assert os.path.exists(path)  # nothing was repaired away

    def test_missing_segment_raises(self, tmp_path):
        fill(tmp_path, 12, segment_records=4)
        segments = list_segments(tmp_path)
        os.unlink(segments[1][1])  # drop the middle segment
        with pytest.raises(WalError, match="missing journal segment"):
            scan_wal(tmp_path)

    def test_partial_header_on_newest_segment_is_deleted(self, tmp_path):
        fill(tmp_path, 4, segment_records=4)
        stub = tmp_path / segment_name(4)
        stub.write_bytes(b"RWAL\x01")  # crash mid-rotation
        scan = scan_wal(tmp_path, truncate=True)
        assert not stub.exists()
        assert scan.last_seq == 3

    def test_partial_header_mid_journal_raises(self, tmp_path):
        fill(tmp_path, 8, segment_records=4)
        with open(tmp_path / segment_name(0), "r+b") as fh:
            fh.truncate(8)
        with pytest.raises(WalError, match="truncated segment header"):
            scan_wal(tmp_path)

    def test_bad_magic_raises(self, tmp_path):
        fill(tmp_path, 2)
        (_, path), = list_segments(tmp_path)
        with open(path, "r+b") as fh:
            fh.write(b"XXXX")
        with pytest.raises(WalError, match="magic"):
            scan_wal(tmp_path)

    def test_future_version_raises(self, tmp_path):
        fill(tmp_path, 2)
        (_, path), = list_segments(tmp_path)
        with open(path, "r+b") as fh:
            fh.seek(4)
            fh.write(struct.pack("<I", WAL_VERSION + 1))
        with pytest.raises(WalError, match="version"):
            scan_wal(tmp_path)

    def test_reopen_repairs_torn_tail_and_continues(self, tmp_path):
        fill(tmp_path, 6)
        (_, path), = list_segments(tmp_path)
        with open(path, "r+b") as fh:
            fh.truncate(os.path.getsize(path) - 2)
        wal = WriteAheadLog(tmp_path)  # open scans with truncate=True
        assert wal.scan.torn_path == path
        assert wal.next_seq == 5  # seq 5's record was the torn one
        wal.append(make_events(1, start=5)[0])
        wal.close()
        assert scan_wal(tmp_path).last_seq == 5


class TestGcAndAlign:
    def test_gc_drops_segments_below_watermark(self, tmp_path):
        wal = WriteAheadLog(tmp_path, segment_records=4)
        for event in make_events(12):
            wal.append(event)
        wal.sync()
        removed = wal.gc(8)  # segments [0..3] and [4..7] are baked in
        assert [os.path.basename(p) for p in removed] == [
            segment_name(0), segment_name(4)]
        assert [s for s, _ in list_segments(tmp_path)] == [8]
        wal.close()

    def test_gc_keeps_partially_covered_segment(self, tmp_path):
        wal = WriteAheadLog(tmp_path, segment_records=4)
        for event in make_events(12):
            wal.append(event)
        wal.sync()
        # Watermark 6 sits inside segment 4: only segment 0 may go.
        assert len(wal.gc(6)) == 1
        assert [s for s, _ in list_segments(tmp_path)] == [4, 8]
        wal.close()

    def test_gc_never_removes_newest_segment(self, tmp_path):
        wal = WriteAheadLog(tmp_path, segment_records=4)
        for event in make_events(8):
            wal.append(event)
        wal.sync()
        wal.gc(1000)  # even an absurd watermark keeps the tail
        assert [s for s, _ in list_segments(tmp_path)] == [4]
        wal.close()

    def test_align_equal_is_a_noop(self, tmp_path):
        fill(tmp_path, 5)
        wal = WriteAheadLog(tmp_path)
        wal.align(5)
        assert wal.next_seq == 5
        assert len(list_segments(tmp_path)) == 1
        wal.close()

    def test_align_behind_drops_stale_segments(self, tmp_path):
        fill(tmp_path, 5)
        wal = WriteAheadLog(tmp_path)
        # A checkpoint at watermark 20 supersedes every journal record.
        wal.align(20)
        assert wal.next_seq == 20
        assert list_segments(tmp_path) == []
        wal.append(make_events(1, start=20)[0])
        wal.close()
        assert scan_wal(tmp_path).first_seq == 20

    def test_align_ahead_raises(self, tmp_path):
        fill(tmp_path, 10)
        wal = WriteAheadLog(tmp_path)
        with pytest.raises(WalError, match="ahead of watermark"):
            wal.align(4)
        wal.close()
