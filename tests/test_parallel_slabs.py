"""Result-slab transport: framing round-trips, spill/overflow, and
the parent/worker slab lifecycle (PR-8 tentpole)."""

import numpy as np
import pytest

from repro.bc.update_core import UpdateStats
from repro.gpu.counters import Step
from repro.parallel.shm import shm_available
from repro.parallel.slabs import (
    MAGIC,
    ResultSlabs,
    SlabEncodeError,
    SlabWriter,
    decode,
    encode,
    encode_into,
)


def roundtrip(obj):
    """Encode to private bytes and decode back (the spill path)."""
    return decode(encode(obj))


# ----------------------------------------------------------------------
# Framing round-trips
# ----------------------------------------------------------------------
class TestFraming:
    @pytest.mark.parametrize("obj", [
        None, True, False, 0, 1, -1, 2**62, -(2**62), 0.0, -3.25,
        float("inf"), "", "ascii", "unicode: κόμβος ↔ ακμή",
        b"", b"raw\x00bytes", [], (), [1, 2.5, "x", None],
        (1, (2, [3, b"4"]), "5"),
    ])
    def test_scalars_and_containers(self, obj):
        assert roundtrip(obj) == obj

    def test_nan_roundtrip(self):
        out = roundtrip(float("nan"))
        assert out != out  # NaN propagates bit-level through the frame

    def test_step_roundtrip(self):
        step = Step(work_items=7, cycles_per_item=1.5, bytes_moved=96.0,
                    atomic_ops=3, max_conflict=2, stage="sp_level")
        assert roundtrip(step) == step

    def test_update_stats_roundtrip(self):
        stats = UpdateStats(touched=4, moved=2, sp_levels=3, dep_levels=5)
        assert roundtrip(stats) == stats

    @pytest.mark.parametrize("arr", [
        np.arange(17, dtype=np.int64),
        np.arange(6, dtype=np.float64).reshape(2, 3),
        np.array([], dtype=np.int32),
        np.array([[True, False]], dtype=bool),
    ])
    def test_ndarray_roundtrip(self, arr):
        out = roundtrip(arr)
        assert out.dtype == arr.dtype
        assert out.shape == arr.shape
        assert np.array_equal(out, arr)

    def test_mixed_result_payload(self):
        # The shape a worker actually posts: per-source step lists,
        # stats, and sparse bc probe arrays.
        payload = {
            3: ([Step(2, 1.0, 16.0, stage="sp_level")],
                UpdateStats(touched=1),
                np.array([0, 5], dtype=np.int64),
                np.array([0.5, -0.5], dtype=np.float64)),
        }
        # dicts are not framed — workers post (index, value) tuples
        items = tuple(sorted((k,) + v for k, v in payload.items()))
        out = roundtrip(items)
        assert out[0][0] == 3
        assert out[0][1] == payload[3][0]
        assert out[0][2] == payload[3][1]
        assert np.array_equal(out[0][3], payload[3][2])
        assert np.array_equal(out[0][4], payload[3][3])

    def test_zero_copy_views_track_buffer(self):
        buf = bytearray(encode(np.arange(8, dtype=np.int64)))
        view = decode(buf, copy=False)
        copied = decode(buf, copy=True)
        # Flip one payload byte: the view sees it, the copy does not.
        arr_byte = len(buf) - 1
        buf[arr_byte] ^= 0xFF
        assert view[-1] != 7
        assert copied[-1] == 7

    def test_encode_into_matches_encode(self):
        # Spill bytes and slab bytes must be byte-identical so one
        # decoder serves both paths (array padding is computed from
        # the buffer start in both).
        obj = ("trace", np.arange(5, dtype=np.float64), [1, None])
        private = encode(obj)
        buf = bytearray(4096)
        end = encode_into(obj, buf, 0, len(buf))
        assert bytes(buf[:end]) == private

    def test_encode_into_returns_none_when_full(self):
        buf = bytearray(32)
        assert encode_into(np.arange(64, dtype=np.int64), buf, 0, 32) is None

    def test_unencodable_types_raise(self):
        with pytest.raises(SlabEncodeError):
            encode({"dict": "unsupported"})
        with pytest.raises(SlabEncodeError):
            encode(np.array([object()], dtype=object))

    def test_bad_magic_rejected(self):
        blob = bytearray(encode(42))
        blob[0] ^= 0xFF
        with pytest.raises(ValueError, match="magic"):
            decode(blob)

    def test_length_mismatch_rejected(self):
        blob = encode([1, 2, 3])
        with pytest.raises(ValueError, match="length mismatch"):
            decode(blob, length=len(blob) + 8)
        assert decode(blob, length=len(blob)) == [1, 2, 3]

    def test_magic_constant(self):
        assert MAGIC == 0x534C4142  # "SLAB"


# ----------------------------------------------------------------------
# ResultSlabs / SlabWriter lifecycle
# ----------------------------------------------------------------------
@pytest.mark.skipif(not shm_available(), reason="POSIX shm unavailable")
class TestResultSlabs:
    def test_validation(self):
        with pytest.raises(ValueError):
            ResultSlabs(0)
        with pytest.raises(ValueError):
            ResultSlabs(2, slab_bytes=16)

    def test_write_read_roundtrip(self):
        with ResultSlabs(2, slab_bytes=65536) as slabs:
            writer = SlabWriter(slabs.spec(), worker_id=1)
            try:
                obj = (np.arange(32, dtype=np.float64), "chunk", 7)
                ref = writer.write(0, obj)
                assert ref is not None
                offset, length = ref
                out = slabs.read(1, offset, length)
                assert np.array_equal(out[0], obj[0])
                assert out[1:] == obj[1:]
            finally:
                writer.close()

    def test_cursor_advances_within_round_resets_on_new_round(self):
        with ResultSlabs(1, slab_bytes=65536) as slabs:
            writer = SlabWriter(slabs.spec(), worker_id=0)
            try:
                off_a, _ = writer.write(5, [1])
                off_b, _ = writer.write(5, [2])
                assert off_b > off_a  # bump within the round
                off_c, len_c = writer.write(6, [3])
                assert off_c == off_a  # new round resets the cursor
                assert slabs.read(0, off_c, len_c) == [3]
            finally:
                writer.close()

    def test_overflow_returns_none_for_spill(self):
        with ResultSlabs(1, slab_bytes=4096) as slabs:
            writer = SlabWriter(slabs.spec(), worker_id=0)
            try:
                big = np.zeros(4096, dtype=np.float64)  # 32 KiB > slab
                assert writer.write(0, big) is None
                # The slab remains usable for fitting results.
                assert writer.write(0, "small") is not None
            finally:
                writer.close()

    def test_unencodable_returns_none_for_raw_fallback(self):
        with ResultSlabs(1, slab_bytes=4096) as slabs:
            writer = SlabWriter(slabs.spec(), worker_id=0)
            try:
                assert writer.write(0, {"not": "framable"}) is None
            finally:
                writer.close()

    def test_read_bounds_checked(self):
        with ResultSlabs(1, slab_bytes=4096) as slabs:
            with pytest.raises(ValueError):
                slabs.read(1, 0, 8)  # worker out of range
            with pytest.raises(ValueError):
                slabs.read(0, 4090, 64)  # ref past the row end

    def test_rows_are_private_per_worker(self):
        with ResultSlabs(2, slab_bytes=4096) as slabs:
            w0 = SlabWriter(slabs.spec(), worker_id=0)
            w1 = SlabWriter(slabs.spec(), worker_id=1)
            try:
                r0 = w0.write(0, "worker-zero")
                r1 = w1.write(0, "worker-one")
                assert slabs.read(0, *r0) == "worker-zero"
                assert slabs.read(1, *r1) == "worker-one"
            finally:
                w0.close()
                w1.close()
