import pytest

from repro.cli import ARTIFACTS, build_parser, main, run_artifact

FAST = ["--scale", "0.2", "--sources", "6", "--insertions", "3",
        "--graphs", "small"]


class TestParser:
    def test_artifact_choices(self):
        assert set(ARTIFACTS) == {"table1", "fig1", "fig2", "table2",
                                  "table3", "fig4", "all"}

    def test_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.scale == 1.0
        assert args.sources == 64

    def test_rejects_unknown_artifact(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig9"])


class TestRunArtifact:
    @pytest.mark.parametrize("artifact", ["table1", "fig2", "table2",
                                          "table3", "fig4"])
    def test_each_artifact_renders(self, artifact):
        args = build_parser().parse_args([artifact] + FAST)
        sections = run_artifact(artifact, args)
        assert sections
        assert all(isinstance(s, str) and s for s in sections)

    def test_fig1_renders(self):
        args = build_parser().parse_args(["fig1", "--scale", "0.2",
                                          "--seed", "3"])
        sections = run_artifact("fig1", args)
        assert any("speedup" in s for s in sections)

    def test_all_includes_headline(self):
        args = build_parser().parse_args(["all"] + FAST)
        sections = run_artifact("all", args)
        assert any("Headline" in s for s in sections)
        assert len(sections) >= 7

    def test_unknown_graph_rejected(self):
        args = build_parser().parse_args(["table1", "--graphs", "nope"])
        with pytest.raises(ValueError):
            run_artifact("table1", args)


class TestMain:
    def test_main_runs(self, capsys):
        rc = main(["fig2"] + FAST)
        assert rc == 0
        out = capsys.readouterr().out
        assert "Fig. 2" in out

    def test_main_verify_flag(self, capsys):
        rc = main(["table2"] + FAST + ["--verify"])
        assert rc == 0
        assert "TABLE II" in capsys.readouterr().out

    def test_save_writes_sections_and_csv(self, tmp_path, capsys):
        rc = main(["fig4"] + FAST + ["--save", str(tmp_path)])
        assert rc == 0
        assert (tmp_path / "fig4.txt").exists()
        csv = (tmp_path / "fig4.csv").read_text()
        assert csv.startswith("graph,rank,touched_fraction")

    def test_save_fig1_csv(self, tmp_path):
        rc = main(["fig1", "--scale", "0.2", "--seed", "3",
                   "--save", str(tmp_path)])
        assert rc == 0
        csv = (tmp_path / "fig1.csv").read_text()
        assert csv.startswith("graph,device,blocks,speedup")
        assert "Tesla C2075" in csv


REPLAY_FAST = ["replay", "--scale", "0.3", "--sources", "8",
               "--events", "10", "--seed", "5"]


class TestReplaySubcommand:
    def test_guarded_replay_runs(self, capsys):
        rc = main(REPLAY_FAST + ["--guard-every", "4", "--verify"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "replayed" in out
        assert "final verify: ok" in out

    def test_checkpoint_and_resume(self, tmp_path, capsys):
        rc = main(REPLAY_FAST + ["--checkpoint-every", "4",
                                 "--checkpoint-dir", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        ckpts = sorted(tmp_path.glob("ckpt-*.npz"))
        assert len(ckpts) == 2
        def sim_total(text):
            line = [ln for ln in text.splitlines() if "simulated" in ln][0]
            return line.split()[2]

        full_sim = sim_total(out)
        rc = main(REPLAY_FAST + ["--resume-from", str(ckpts[0])])
        assert rc == 0
        resumed = capsys.readouterr().out
        # bit-identical resume -> identical printed simulated total
        assert sim_total(resumed) == full_sim
        assert "events 4..9" in resumed

    def test_stream_file_replayed(self, tmp_path, capsys):
        from repro.graph.stream import EdgeStream
        from repro.graph.suite import make_suite_graph

        graph = make_suite_graph("small", scale=0.3, seed=5).graph
        path = tmp_path / "s.csv"
        EdgeStream.poisson_growth(graph, 4, seed=1).save(path)
        rc = main(REPLAY_FAST + ["--stream", str(path)])
        assert rc == 0
        assert "replayed 4" in capsys.readouterr().out


class TestChaosSubcommand:
    def test_chaos_passes(self, capsys):
        rc = main(["chaos", "--seed", "1", "--events", "18"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        assert "checkpoint resume bit-identical: yes" in out

    def test_chaos_always_prints_reproduction_line(self, capsys):
        # Pass or fail, a log excerpt must be replayable: the full
        # seed/events/backend/workers invocation is always printed.
        rc = main(["chaos", "--seed", "1", "--events", "18"])
        assert rc == 0
        out = capsys.readouterr().out
        assert ("reproduce with: python -m repro.cli chaos "
                "--seed 1 --events 18") in out
        assert "--workers 1" in out

    def test_chaos_writes_health_log(self, capsys, tmp_path):
        import json

        log = tmp_path / "health.jsonl"
        rc = main(["chaos", "--seed", "1", "--events", "18",
                   "--health-log", str(log)])
        assert rc == 0
        assert f"health log: {log}" in capsys.readouterr().out
        records = [json.loads(line) for line in log.read_text().splitlines()]
        assert records[0]["record"] == "chaos-report"
        assert records[0]["seed"] == 1
        assert records[0]["ok"] is True
        assert any(r["record"] == "injection" for r in records)

    def test_backend_override(self, capsys):
        rc = main(["chaos", "--seed", "2", "--events", "18",
                   "--backend", "cpu"])
        assert rc == 0
        assert "backend=cpu" in capsys.readouterr().out
