import pytest

from repro.cli import ARTIFACTS, build_parser, main, run_artifact

FAST = ["--scale", "0.2", "--sources", "6", "--insertions", "3",
        "--graphs", "small"]


class TestParser:
    def test_artifact_choices(self):
        assert set(ARTIFACTS) == {"table1", "fig1", "fig2", "table2",
                                  "table3", "fig4", "all"}

    def test_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.scale == 1.0
        assert args.sources == 64

    def test_rejects_unknown_artifact(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig9"])


class TestRunArtifact:
    @pytest.mark.parametrize("artifact", ["table1", "fig2", "table2",
                                          "table3", "fig4"])
    def test_each_artifact_renders(self, artifact):
        args = build_parser().parse_args([artifact] + FAST)
        sections = run_artifact(artifact, args)
        assert sections
        assert all(isinstance(s, str) and s for s in sections)

    def test_fig1_renders(self):
        args = build_parser().parse_args(["fig1", "--scale", "0.2",
                                          "--seed", "3"])
        sections = run_artifact("fig1", args)
        assert any("speedup" in s for s in sections)

    def test_all_includes_headline(self):
        args = build_parser().parse_args(["all"] + FAST)
        sections = run_artifact("all", args)
        assert any("Headline" in s for s in sections)
        assert len(sections) >= 7

    def test_unknown_graph_rejected(self):
        args = build_parser().parse_args(["table1", "--graphs", "nope"])
        with pytest.raises(ValueError):
            run_artifact("table1", args)


class TestMain:
    def test_main_runs(self, capsys):
        rc = main(["fig2"] + FAST)
        assert rc == 0
        out = capsys.readouterr().out
        assert "Fig. 2" in out

    def test_main_verify_flag(self, capsys):
        rc = main(["table2"] + FAST + ["--verify"])
        assert rc == 0
        assert "TABLE II" in capsys.readouterr().out

    def test_save_writes_sections_and_csv(self, tmp_path, capsys):
        rc = main(["fig4"] + FAST + ["--save", str(tmp_path)])
        assert rc == 0
        assert (tmp_path / "fig4.txt").exists()
        csv = (tmp_path / "fig4.csv").read_text()
        assert csv.startswith("graph,rank,touched_fraction")

    def test_save_fig1_csv(self, tmp_path):
        rc = main(["fig1", "--scale", "0.2", "--seed", "3",
                   "--save", str(tmp_path)])
        assert rc == 0
        csv = (tmp_path / "fig1.csv").read_text()
        assert csv.startswith("graph,device,blocks,speedup")
        assert "Tesla C2075" in csv
