"""Backend matrix for the parallel runtime (PR-8): thread-backend
bit-identity, warm-pool reuse across engines and replay streams, and
the supervision ladder parameterized over both backends."""

import numpy as np
import pytest

from repro.bc.engine import DynamicBC
from repro.graph import generators as gen
from repro.graph.dynamic import DynamicGraph
from repro.graph.stream import EdgeStream, replay
from repro.parallel.pool import WorkerCrashed
from repro.parallel.shm import shm_available
from repro.parallel.supervisor import (
    FULL_POOL,
    SupervisedPool,
    SupervisorPolicy,
)
from repro.parallel.threadpool import (
    ThreadWorkerPool,
    free_threading_active,
    resolve_pool_backend,
)
from repro.resilience.chaos import reports_identical

FAST = SupervisorPolicy(heartbeat_interval=0.05, backoff_base=0.01,
                        backoff_max=0.05, chunk_deadline=30.0)

K = 12
SEED = 3

#: both backends, with the process leg skipped where shm is missing
BACKENDS = [
    pytest.param("processes", marks=pytest.mark.skipif(
        not shm_available(), reason="POSIX shm unavailable")),
    "threads",
]


def serial_ping(kind, common, payload):
    """In-parent executor for ping chunks (quarantine/serial leg)."""
    assert kind == "ping"
    return list(payload["items"])


def assert_states_equal(a, b):
    """Bitwise equality across every state field and the counters."""
    for name in ("sources", "d", "sigma", "delta", "bc"):
        assert np.array_equal(getattr(a.state, name),
                              getattr(b.state, name)), name
    assert a.counters == b.counters


@pytest.fixture
def er_graph():
    return gen.erdos_renyi(60, 140, seed=7)


def _mutate(engine):
    """A deterministic insert/delete mix with genuinely active
    sources: the first four absent non-loop pairs go in, then the
    first two come back out."""
    snap = engine.graph.snapshot()
    present = {
        (int(u), int(snap.col_indices[j]))
        for u in range(snap.num_vertices)
        for j in range(snap.row_offsets[u], snap.row_offsets[u + 1])
    }
    picks = []
    for u in range(snap.num_vertices):
        for v in range(u + 1, snap.num_vertices):
            if (u, v) not in present:
                picks.append((u, v))
                if len(picks) == 4:
                    break
        if len(picks) == 4:
            break
    reports = [engine.insert_edge(u, v) for u, v in picks]
    reports += [engine.delete_edge(u, v) for u, v in picks[:2]]
    return reports


# ----------------------------------------------------------------------
# Backend resolution
# ----------------------------------------------------------------------
class TestResolve:
    def test_explicit_choices_pass_through(self):
        assert resolve_pool_backend("processes") == "processes"
        assert resolve_pool_backend("threads") == "threads"

    def test_invalid_choice_rejected(self):
        with pytest.raises(ValueError):
            resolve_pool_backend("fibers")

    def test_env_override_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_POOL_BACKEND", "threads")
        assert resolve_pool_backend("auto") == "threads"

    def test_auto_prefers_free_threading_then_processes(self, monkeypatch):
        monkeypatch.delenv("REPRO_POOL_BACKEND", raising=False)
        expected = "threads" if free_threading_active() else (
            "processes" if shm_available() else "threads")
        assert resolve_pool_backend("auto") == expected


# ----------------------------------------------------------------------
# Thread backend: identical protocol, zero-copy by reference
# ----------------------------------------------------------------------
class TestThreadPool:
    def test_ping_round(self):
        with ThreadWorkerPool(2) as pool:
            outs = pool.run("ping", {}, [{"items": [i]} for i in range(5)])
            assert outs == [[i] for i in range(5)]
            stats = pool.transport_stats()
            assert stats["backend"] == "threads"
            assert stats["transport"] == "reference"
            assert stats["queue_bytes"] == 0

    def test_cooperative_crash_raises_and_pool_recovers(self):
        with ThreadWorkerPool(2) as pool:
            pool.arm_crash()
            with pytest.raises(WorkerCrashed):
                pool.run("ping", {}, [{"items": [i]} for i in range(3)])
            outs = pool.run("ping", {}, [{"items": [i]} for i in range(3)])
            assert outs == [[i] for i in range(3)]

    def test_engine_bit_identity_vs_serial(self, er_graph):
        serial = DynamicBC.from_graph(DynamicGraph.from_csr(er_graph),
                                      num_sources=K, seed=SEED)
        par = DynamicBC.from_graph(DynamicGraph.from_csr(er_graph),
                                   num_sources=K, seed=SEED, workers=2,
                                   pool_backend="threads",
                                   supervisor_policy=FAST)
        try:
            rs = _mutate(serial)
            rp = _mutate(par)
            for a, b in zip(rs, rp):
                assert reports_identical(a, b)
            assert_states_equal(serial, par)
            report = par.transport_report()
            assert report["backend"] == "threads"
            assert report["transport"] == "reference"
            assert report["queue_bytes"] == 0  # results move by reference
            assert par.health_report()["pool_backend"] == "threads"
        finally:
            serial.close()
            par.close()


# ----------------------------------------------------------------------
# Supervision ladder on both backends
# ----------------------------------------------------------------------
class TestSupervisionMatrix:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_crashed_round_is_retried(self, backend):
        with SupervisedPool(2, policy=FAST, backend=backend) as pool:
            assert pool.backend == backend
            pool.arm_crash()
            outs = pool.run("ping", {}, [{"items": [i]} for i in range(3)],
                            serial=serial_ping)
            assert outs == [[i] for i in range(3)]
            assert pool.counts["deaths"] == 1
            assert pool.counts["respawns"] >= 1
            assert pool.level == FULL_POOL

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_stalled_worker_is_killed(self, backend):
        with SupervisedPool(2, policy=FAST, backend=backend) as pool:
            pool.arm_stall()
            outs = pool.run("ping", {}, [{"items": [i]} for i in range(4)],
                            serial=serial_ping)
            assert outs == [[i] for i in range(4)]
            assert pool.counts["hung"] == 1
            assert pool.counts["kills"] == 1
            assert pool.level == FULL_POOL

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_poisoned_chunk_quarantined(self, backend):
        with SupervisedPool(2, policy=FAST, backend=backend) as pool:
            pool.arm_crash(chunks=1, rounds=2)
            outs = pool.run("ping", {}, [{"items": [i]} for i in range(4)],
                            serial=serial_ping)
            assert outs == [[i] for i in range(4)]
            assert pool.counts["quarantined"] == 1
            assert pool.counts["serial_retries"] == 1
            assert pool.level == FULL_POOL


# ----------------------------------------------------------------------
# Warm pools: one pool outliving streams and engines
# ----------------------------------------------------------------------
@pytest.mark.skipif(not shm_available(), reason="POSIX shm unavailable")
class TestWarmPool:
    def test_pool_survives_successive_replays(self, er_graph):
        # Two replay() streams through one engine: the pool (and its
        # workers) persist — no respawn between streams.
        dyn = DynamicGraph.from_csr(er_graph)
        engine = DynamicBC.from_graph(dyn, num_sources=K, seed=SEED,
                                      workers=2, supervisor_policy=FAST)
        try:
            s1 = EdgeStream.removal_reinsertion(engine.graph, 3, seed=11)
            replay(engine, s1)
            pool = engine._pool
            assert pool is not None
            s2 = EdgeStream.removal_reinsertion(engine.graph, 3, seed=12)
            replay(engine, s2)
            assert engine._pool is pool
            assert pool.counts["respawns"] == 0
        finally:
            engine.close()

    def test_external_pool_survives_engine_instances(self, er_graph):
        # One externally owned pool serves two engine lifetimes and a
        # serial twin confirms both runs stay bit-identical; the
        # workers never respawn and the engine never closes the pool.
        serial = DynamicBC.from_graph(DynamicGraph.from_csr(er_graph),
                                      num_sources=K, seed=SEED)
        _mutate(serial)
        pool = SupervisedPool(2, policy=FAST)
        try:
            rounds_after_first = None
            for _ in range(2):
                eng = DynamicBC.from_graph(DynamicGraph.from_csr(er_graph),
                                           num_sources=K, seed=SEED,
                                           workers=2, pool=pool)
                _mutate(eng)
                assert_states_equal(serial, eng)
                eng.close()
                stats = pool.transport_stats()
                if rounds_after_first is None:
                    rounds_after_first = stats["rounds"]
            assert pool.counts["respawns"] == 0
            # The second engine really used the same pool: the round
            # counter kept growing instead of starting over.
            assert pool.transport_stats()["rounds"] > rounds_after_first
        finally:
            pool.close()
        serial.close()
