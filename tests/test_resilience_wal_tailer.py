"""WAL shipping primitives: :class:`WalTailer`, fencing tokens,
replica retention positions, and injected disk faults.

These are the synchronous foundations of the replication layer — the
follower must read exactly what the writer wrote (tolerating live
tails, rotation, and GC of consumed segments), a deposed writer must
be refused before a byte lands, and a disk fault must latch the
journal failed with no torn *acked* record.
"""

import os
import struct

import pytest

from repro.graph.stream import EdgeEvent
from repro.resilience.errors import WalError, WalFencedError
from repro.resilience.faults import FaultInjector
from repro.resilience.wal import (
    WalTailer,
    WriteAheadLog,
    clear_replica_position,
    list_segments,
    read_fence,
    record_replica_position,
    replica_positions,
    scan_wal,
    segment_name,
    write_fence,
)

pytestmark = pytest.mark.replication


def ev(i, op="insert"):
    return EdgeEvent(float(i), i, i + 1, op)


def events(n, start=0, op="insert"):
    return [ev(i, op) for i in range(start, start + n)]


@pytest.fixture
def wal(tmp_path):
    w = WriteAheadLog(tmp_path / "wal", segment_records=4)
    yield w
    if not w.closed and w.failed is None:
        w.close()


class TestWalTailer:
    def test_reads_what_the_writer_wrote(self, wal):
        for e in events(10):
            wal.append(e)
        wal.sync()
        tailer = WalTailer(wal.directory)
        got = tailer.poll()
        assert [seq for seq, _ in got] == list(range(10))
        assert [e for _, e in got] == events(10)
        assert tailer.last_seen_seq == 9

    def test_empty_journal_polls_empty(self, tmp_path):
        d = tmp_path / "wal"
        os.makedirs(d)
        tailer = WalTailer(d)
        assert tailer.poll() == []
        assert tailer.last_seen_seq == -1

    def test_incremental_across_syncs(self, wal):
        tailer = WalTailer(wal.directory)
        seen = []
        for chunk in range(5):
            for e in events(3, start=chunk * 3):
                wal.append(e)
            wal.sync()
            seen.extend(tailer.poll())
        assert [seq for seq, _ in seen] == list(range(15))
        # Nothing new: the cursor holds.
        assert tailer.poll() == []

    def test_follows_rotation(self, wal):
        for e in events(13):  # > 3 segments at segment_records=4
            wal.append(e)
        wal.sync()
        tailer = WalTailer(wal.directory)
        got = tailer.poll()
        assert [seq for seq, _ in got] == list(range(13))
        assert tailer.rotations >= 2

    def test_max_records_bounds_a_poll(self, wal):
        for e in events(10):
            wal.append(e)
        wal.sync()
        tailer = WalTailer(wal.directory)
        assert [s for s, _ in tailer.poll(4)] == [0, 1, 2, 3]
        assert [s for s, _ in tailer.poll(4)] == [4, 5, 6, 7]
        assert [s for s, _ in tailer.poll(4)] == [8, 9]

    def test_start_seq_skips_the_prefix(self, wal):
        for e in events(10):
            wal.append(e)
        wal.sync()
        tailer = WalTailer(wal.directory, start_seq=6)
        assert [s for s, _ in tailer.poll()] == [6, 7, 8, 9]

    def test_partial_tail_record_waits(self, wal):
        """A record cut off mid-write is an in-progress append, not
        corruption: the tailer stops before it and resumes once the
        bytes complete."""
        for e in events(3):
            wal.append(e)
        wal.sync()
        tailer = WalTailer(wal.directory)
        assert len(tailer.poll()) == 3
        # Simulate the writer mid-append: a truncated record header.
        seg = list_segments(wal.directory)[-1][1]
        with open(seg, "ab") as fh:
            fh.write(struct.pack("<QI", 3, 64)[:7])
        assert tailer.poll() == []  # waits, does not raise
        assert tailer.poll() == []  # still waiting — cursor is stable

    def test_unsynced_appends_invisible_until_sync(self, wal):
        tailer = WalTailer(wal.directory)
        wal.append(ev(0))
        assert tailer.poll() == []  # buffered in the writer only
        wal.sync()
        assert [s for s, _ in tailer.poll()] == [0]

    def test_corrupt_record_raises(self, wal):
        for e in events(3):
            wal.append(e)
        wal.sync()
        seg = list_segments(wal.directory)[0][1]
        with open(seg, "r+b") as fh:
            fh.seek(-3, os.SEEK_END)  # inside the last record's CRC
            fh.write(b"\xff")
        tailer = WalTailer(wal.directory)
        with pytest.raises(WalError, match="CRC mismatch"):
            tailer.poll()

    def test_gc_of_consumed_segments_is_tolerated(self, wal):
        for e in events(12):
            wal.append(e)
        wal.sync()
        tailer = WalTailer(wal.directory)
        assert len(tailer.poll()) == 12
        removed = wal.gc(12)
        assert removed  # consumed segments really went away
        for e in events(4, start=12):
            wal.append(e)
        wal.sync()
        assert [s for s, _ in tailer.poll()] == [12, 13, 14, 15]

    def test_gc_past_the_tailer_raises(self, wal):
        """A tailer that needs records below every surviving segment
        must fail loudly — silently skipping would break the replica's
        bit-identity contract."""
        for e in events(12):
            wal.append(e)
        wal.sync()
        wal.gc(12)  # no replica position advertised: GC runs ahead
        tailer = WalTailer(wal.directory, start_seq=0)
        with pytest.raises(WalError, match="garbage-collected"):
            tailer.poll()


class TestGcRespectsReplicas:
    """Regression: retention must account for follower progress — GC
    may never delete a segment a registered tailer still needs."""

    def test_gc_clamps_to_slowest_replica(self, wal):
        record_replica_position(wal.directory, "r1", 2)
        for e in events(12):
            wal.append(e)
        wal.sync()
        removed = wal.gc(12)
        assert removed == []  # seq 2 lives in the first segment
        # The follower's records are all still readable.
        tailer = WalTailer(wal.directory, start_seq=2)
        assert [s for s, _ in tailer.poll()] == list(range(2, 12))

    def test_gc_advances_with_replica_progress(self, wal):
        for e in events(12):
            wal.append(e)
        wal.sync()
        record_replica_position(wal.directory, "r1", 0)
        assert wal.gc(12) == []
        tailer = WalTailer(wal.directory)
        consumed = tailer.poll(8)
        record_replica_position(wal.directory, "r1",
                                consumed[-1][0] + 1)
        removed = wal.gc(12)
        assert removed  # segments below the follower's position go
        # ...and what remains still covers the follower's cursor.
        assert [s for s, _ in tailer.poll()] == [8, 9, 10, 11]

    def test_slowest_of_many_replicas_wins(self, wal):
        for e in events(12):
            wal.append(e)
        wal.sync()
        record_replica_position(wal.directory, "fast", 12)
        record_replica_position(wal.directory, "slow", 1)
        assert wal.gc(12) == []
        clear_replica_position(wal.directory, "slow")
        assert wal.gc(12)  # the laggard deregistered: GC may proceed

    def test_positions_roundtrip(self, tmp_path):
        d = tmp_path / "wal"
        os.makedirs(d)
        assert replica_positions(d) == {}
        record_replica_position(d, "a", 5)
        record_replica_position(d, "b.2", 9)
        assert replica_positions(d) == {"a": 5, "b.2": 9}
        clear_replica_position(d, "a")
        clear_replica_position(d, "a")  # idempotent
        assert replica_positions(d) == {"b.2": 9}

    def test_bad_replica_id_rejected(self, tmp_path):
        d = tmp_path / "wal"
        os.makedirs(d)
        with pytest.raises(ValueError):
            record_replica_position(d, "../escape", 0)


class TestFencing:
    def test_epoch_starts_at_zero_and_is_monotonic(self, tmp_path):
        d = tmp_path / "wal"
        os.makedirs(d)
        assert read_fence(d) == 0
        assert write_fence(d, 1) == 1
        assert read_fence(d) == 1
        with pytest.raises(WalError, match="must increase"):
            write_fence(d, 1)

    def test_deposed_writer_commit_refused(self, wal):
        wal.append(ev(0))
        wal.sync()
        write_fence(wal.directory, 1)  # a replica was promoted
        wal.append(ev(1))
        with pytest.raises(WalFencedError) as info:
            wal.sync()
        assert info.value.held_epoch == 0
        assert info.value.current_epoch == 1
        # Nothing reached disk: the journal still ends at seq 0.
        assert scan_wal(wal.directory).last_seq == 0

    def test_new_epoch_holder_writes(self, wal):
        wal.append(ev(0))
        wal.sync()
        wal.close()
        write_fence(wal.directory, 1)
        promoted = WriteAheadLog(wal.directory, epoch=1)
        promoted.append(ev(1))
        assert promoted.sync() == 1
        promoted.close()
        assert read_fence(wal.directory) == 1


class TestWalDiskFaults:
    """Satellite: an injected ENOSPC/EIO must fail the ack cleanly —
    no torn acked record, journal latched failed."""

    @pytest.mark.parametrize("stage", ["write", "fsync"])
    def test_sync_fault_latches_the_journal(self, wal, stage):
        faults = FaultInjector(seed=0)
        for e in events(3):
            wal.append(e)
        assert wal.sync() == 2
        faults.arm_wal_fault(wal, stage=stage)
        wal.append(ev(3))
        with pytest.raises(WalError, match="acks stopped"):
            wal.sync()
        # The ack never happened and never will: last_synced_seq is
        # unchanged and the journal refuses further use.
        assert wal.last_synced_seq == 2
        assert wal.failed is not None
        with pytest.raises(WalError, match="failed journal"):
            wal.append(ev(4))
        with pytest.raises(WalError, match="failed journal"):
            wal.sync()
        wal.close()  # must not raise (releases the handle)
        # What IS on disk is at worst a torn tail — exactly the shape
        # recovery repairs; every previously acked record survives.
        scan = scan_wal(wal.directory)
        assert scan.last_seq is not None and scan.last_seq >= 2

    def test_append_fault_rejects_cleanly(self, wal):
        faults = FaultInjector(seed=0)
        wal.append(ev(0))
        wal.sync()
        faults.arm_wal_fault(wal, stage="append")
        with pytest.raises(OSError):
            wal.append(ev(1))
        # The trap disarmed itself; the journal was never damaged and
        # keeps working (an append fault rejects one record, it does
        # not kill the journal).
        assert wal.append(ev(1)) == 1
        assert wal.sync() == 1

    def test_fault_trap_counts_down(self, wal):
        faults = FaultInjector(seed=0)
        faults.arm_wal_fault(wal, stage="fsync", count=1)
        wal.append(ev(0))
        with pytest.raises(WalError):
            wal.sync()
        assert wal.fault_hook is None  # disarmed after firing
        assert any("wal fault fired" in line for line in faults.log)


class TestTailerStats:
    def test_stats_surface(self, wal):
        for e in events(6):
            wal.append(e)
        wal.sync()
        stats = wal.stats()
        assert stats["segments"] == 2
        assert stats["size_bytes"] > 0
        assert stats["fsync_lag_records"] == 0
        assert stats["epoch"] == 0
        assert stats["failed"] is None
        wal.append(ev(6))
        assert wal.stats()["fsync_lag_records"] == 1

    def test_segment_name_roundtrip(self):
        assert segment_name(0).startswith("wal-")
