import numpy as np
import pytest

from repro.bc.engine import DynamicBC
from repro.bc.hybrid import HybridDynamicBC
from repro.graph import generators as gen
from repro.graph.dynamic import DynamicGraph


@pytest.fixture
def workload():
    graph = gen.erdos_renyi(150, 400, seed=8)
    rng = np.random.default_rng(4)
    edges = graph.undirected_non_edges(rng, 6)
    return graph, edges


class TestCorrectness:
    def test_matches_scratch(self, workload):
        graph, edges = workload
        hybrid = HybridDynamicBC.from_graph(graph, num_sources=20, seed=3,
                                            cpu_fraction=0.25)
        for u, v in edges.tolist():
            hybrid.insert_edge(u, v)
        hybrid.verify()

    def test_matches_homogeneous_engine(self, workload):
        graph, edges = workload
        hybrid = HybridDynamicBC.from_graph(graph, num_sources=20, seed=3,
                                            cpu_fraction=0.3)
        pure = DynamicBC.from_graph(graph, num_sources=20, seed=3,
                                    backend="gpu-node")
        for u, v in edges.tolist():
            hybrid.insert_edge(u, v)
            pure.insert_edge(u, v)
        assert np.allclose(hybrid.bc_scores, pure.bc_scores)

    def test_existing_edge_rejected(self, workload):
        graph, _ = workload
        hybrid = HybridDynamicBC.from_graph(graph, num_sources=10, seed=3)
        u, v = map(int, graph.edge_list()[0])
        with pytest.raises(ValueError):
            hybrid.insert_edge(u, v)


class TestPartitioning:
    def test_fraction_zero_is_pure_gpu(self, workload):
        graph, edges = workload
        hybrid = HybridDynamicBC.from_graph(graph, num_sources=20, seed=3,
                                            cpu_fraction=0.0)
        rep = hybrid.insert_edge(*edges[0].tolist())
        assert rep.cpu_sources == 0
        assert rep.cpu_seconds == 0.0
        assert rep.simulated_seconds == rep.gpu_seconds

    def test_invalid_fraction_rejected(self, workload):
        graph, _ = workload
        with pytest.raises(ValueError):
            HybridDynamicBC.from_graph(graph, num_sources=10, seed=3,
                                       cpu_fraction=1.0)

    def test_auto_fraction_small_but_positive(self, workload):
        graph, _ = workload
        hybrid = HybridDynamicBC.from_graph(graph, num_sources=10, seed=3)
        # one CPU core against a 14-SM GPU: a thin slice
        assert 0.0 <= hybrid.cpu_fraction < 0.4

    def test_partition_sizes_sum(self, workload):
        graph, edges = workload
        hybrid = HybridDynamicBC.from_graph(graph, num_sources=20, seed=3,
                                            cpu_fraction=0.25)
        rep = hybrid.insert_edge(*edges[0].tolist())
        assert rep.gpu_sources + rep.cpu_sources == 20
        assert rep.cpu_sources == 5

    def test_report_balance_bounded(self, workload):
        graph, edges = workload
        hybrid = HybridDynamicBC.from_graph(graph, num_sources=20, seed=3,
                                            cpu_fraction=0.2)
        rep = hybrid.insert_edge(*edges[0].tolist())
        assert 0.0 <= rep.balance <= 1.0

    def test_adaptive_rebalances(self, workload):
        graph, edges = workload
        hybrid = HybridDynamicBC.from_graph(graph, num_sources=20, seed=3,
                                            cpu_fraction=0.45, adaptive=True)
        start = hybrid.cpu_fraction
        for u, v in edges.tolist():
            hybrid.insert_edge(u, v)
        # an oversized CPU slice must shrink toward balance
        assert hybrid.cpu_fraction < start
        hybrid.verify()

    def test_adaptive_still_exact(self, workload):
        graph, edges = workload
        hybrid = HybridDynamicBC.from_graph(graph, num_sources=20, seed=3,
                                            adaptive=True)
        pure = DynamicBC.from_graph(graph, num_sources=20, seed=3,
                                    backend="gpu-node")
        for u, v in edges.tolist():
            hybrid.insert_edge(u, v)
            pure.insert_edge(u, v)
        assert np.allclose(hybrid.bc_scores, pure.bc_scores)

    def test_repr(self, workload):
        graph, _ = workload
        hybrid = HybridDynamicBC.from_graph(graph, num_sources=10, seed=3,
                                            cpu_fraction=0.2)
        assert "Tesla" in repr(hybrid)


class TestHybridDeletion:
    def test_delete_and_verify(self, workload):
        graph, _ = workload
        hybrid = HybridDynamicBC.from_graph(graph, num_sources=15, seed=3,
                                            cpu_fraction=0.3)
        edges = graph.edge_list()
        rng = np.random.default_rng(6)
        for idx in rng.choice(len(edges), 6, replace=False):
            u, v = map(int, edges[idx])
            if hybrid.graph.has_edge(u, v):
                hybrid.delete_edge(u, v)
        hybrid.verify()

    def test_insert_delete_round_trip(self, workload):
        graph, edges = workload
        hybrid = HybridDynamicBC.from_graph(graph, num_sources=12, seed=3,
                                            cpu_fraction=0.25)
        before = hybrid.bc_scores.copy()
        u, v = edges[0].tolist()
        hybrid.insert_edge(u, v)
        hybrid.delete_edge(u, v)
        assert np.allclose(hybrid.bc_scores, before, atol=1e-9)

    def test_delete_missing_rejected(self, workload):
        graph, edges = workload
        hybrid = HybridDynamicBC.from_graph(graph, num_sources=5, seed=3)
        u, v = edges[0].tolist()
        with pytest.raises(ValueError):
            hybrid.delete_edge(u, v)
