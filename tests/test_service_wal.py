"""Durable-service differential suite: :class:`BCService` with a
write-ahead journal vs plain :func:`replay`.

Journaling must be invisible to the determinism contract (bit-identical
final state) while adding the durability contract: every submit returns
the journal sequence number — equal to the watermark the event commits
at — and in ``ack_durable`` mode the ack implies the record is fsynced.
"""

import asyncio
import os

import numpy as np
import pytest

from repro.bc.engine import DynamicBC
from repro.graph import generators as gen
from repro.graph.dynamic import DynamicGraph
from repro.graph.stream import EdgeStream, replay
from repro.resilience.chaos import reports_identical
from repro.resilience.wal import scan_wal, segment_name
from repro.service import BCService

pytestmark = pytest.mark.service

K = 12
SEED = 3


def make_engine(graph):
    return DynamicBC.from_graph(DynamicGraph.from_csr(graph),
                                num_sources=K, seed=SEED)


@pytest.fixture(scope="module")
def graph():
    return gen.erdos_renyi(40, 90, seed=7)


@pytest.fixture(scope="module")
def stream(graph):
    return EdgeStream.churn(graph, 40, seed=5)


@pytest.fixture(scope="module")
def twin(graph, stream):
    engine = make_engine(graph)
    result = replay(engine, stream)
    return engine, result


def assert_state_equal(engine, twin_engine):
    assert np.array_equal(engine.bc_scores, twin_engine.bc_scores)
    for name in ("sources", "d", "sigma", "delta"):
        assert np.array_equal(getattr(engine.state, name),
                              getattr(twin_engine.state, name)), name
    assert engine.counters == twin_engine.counters


class TestDurableSubmit:
    def test_seqs_are_the_watermarks(self, graph, stream, tmp_path):
        async def main():
            engine = make_engine(graph)
            try:
                async with BCService(engine, max_batch=8,
                                     wal_dir=tmp_path / "wal") as svc:
                    seqs = [await svc.submit(e) for e in stream]
                    await svc.drain()
                    assert seqs == list(range(len(stream)))
                    assert svc.core.watermark == len(stream)
                    assert svc.stats["wal_appends"] == len(stream)
                    assert svc.stats["wal_syncs"] >= 1
                return svc
            finally:
                engine.close()

        svc = asyncio.run(main())
        assert svc.ack_durable  # default on whenever a journal exists
        # Clean stop sealed the journal: every accepted event on disk.
        scan = scan_wal(tmp_path / "wal")
        assert scan.last_seq == len(stream) - 1
        assert [e for _, e in scan.events] == list(stream)

    def test_ack_implies_synced(self, graph, stream, tmp_path):
        async def main():
            engine = make_engine(graph)
            try:
                async with BCService(engine,
                                     wal_dir=tmp_path / "wal") as svc:
                    for event in list(stream)[:5]:
                        seq = await svc.submit(event)
                        # The durable ack happened before submit
                        # returned: the record is already fsynced.
                        assert svc._wal.last_synced_seq >= seq
                    await svc.drain()
            finally:
                engine.close()

        asyncio.run(main())

    def test_durable_false_skips_the_wait(self, graph, stream, tmp_path):
        async def main():
            engine = make_engine(graph)
            try:
                async with BCService(engine,
                                     wal_dir=tmp_path / "wal") as svc:
                    for event in list(stream)[:5]:
                        await svc.submit(event, durable=False)
                    assert svc.stats["durable_waits"] == 0
                    await svc.drain()
            finally:
                engine.close()

        asyncio.run(main())

    def test_submit_many_waits_once(self, graph, stream, tmp_path):
        async def main():
            engine = make_engine(graph)
            try:
                async with BCService(engine,
                                     wal_dir=tmp_path / "wal") as svc:
                    await svc.submit_many(list(stream))
                    # One group commit covers the whole batch: at most
                    # one blocked wait, on the final sequence number.
                    assert svc.stats["durable_waits"] <= 1
                    assert svc._wal.last_synced_seq == len(stream) - 1
                    await svc.drain()
            finally:
                engine.close()

        asyncio.run(main())

    def test_no_wal_submit_returns_none(self, graph, stream):
        async def main():
            engine = make_engine(graph)
            try:
                async with BCService(engine) as svc:
                    assert await svc.submit(list(stream)[0]) is None
                    await svc.drain()
                    assert "wal" not in svc.health_report()
            finally:
                engine.close()

        asyncio.run(main())

    def test_ack_durable_requires_wal(self, graph):
        engine = make_engine(graph)
        try:
            with pytest.raises(ValueError, match="requires wal_dir"):
                BCService(engine, ack_durable=True)
        finally:
            engine.close()

    def test_rejected_event_burns_no_seq(self, graph, stream, tmp_path):
        """Admission control and the journal must agree: a rejected
        try_submit leaves no record (its seq would be a permanent hole
        in the stream)."""
        events = list(stream)

        async def main():
            engine = make_engine(graph)
            try:
                # max_delay far out: the queued event sits in the queue
                # until drain, so the 1-slot queue stays full.
                async with BCService(engine, max_batch=64, max_delay=5.0,
                                     max_pending=1,
                                     wal_dir=tmp_path / "wal") as svc:
                    assert await svc.submit(events[0]) == 0
                    assert svc.queue.full
                    assert svc.try_submit(events[1]) is False
                    assert svc.stats["rejected"] == 1
                    assert svc._wal.next_seq == 1  # no seq burned
                    await svc.drain()
                    assert svc.try_submit(events[1]) is True
                    await svc.drain()
                    assert svc.core.watermark == 2
            finally:
                engine.close()

        asyncio.run(main())

    def test_health_report_wal_section(self, graph, stream, tmp_path):
        async def main():
            engine = make_engine(graph)
            try:
                async with BCService(engine,
                                     wal_dir=tmp_path / "wal") as svc:
                    await svc.submit_many(list(stream)[:4])
                    await svc.drain()
                    wal = svc.health_report()["wal"]
                    assert wal["directory"] == os.fspath(tmp_path / "wal")
                    assert wal["ack_durable"] is True
                    assert wal["next_seq"] == 4
                    assert wal["replayed_on_recovery"] == 0
            finally:
                engine.close()

        asyncio.run(main())


class TestDurableDifferential:
    def test_journaling_is_bit_identical(self, graph, stream, twin,
                                         tmp_path):
        twin_engine, twin_result = twin

        async def main():
            engine = make_engine(graph)
            async with BCService(engine, max_batch=8,
                                 wal_dir=tmp_path / "wal",
                                 wal_segment_records=16) as svc:
                for event in stream:
                    await svc.submit(event)
                await svc.drain()
            return svc

        svc = asyncio.run(main())
        try:
            assert_state_equal(svc.core.engine, twin_engine)
            assert len(svc.core.result.reports) == len(twin_result.reports)
            for mine, theirs in zip(svc.core.result.reports,
                                    twin_result.reports):
                assert reports_identical(mine, theirs)
            assert (svc.core.result.simulated_seconds
                    == twin_result.simulated_seconds)
            names = sorted(os.listdir(tmp_path / "wal"))
            assert names[0] == segment_name(0)  # rotation happened
            assert len(names) >= 2
        finally:
            svc.core.engine.close()

    def test_restart_resumes_and_matches(self, graph, stream, twin,
                                         tmp_path):
        """Stop mid-stream, restart from checkpoint + journal tail,
        serve the rest: final state identical to one uninterrupted
        replay."""
        twin_engine, twin_result = twin
        events = list(stream)
        wal_dir = tmp_path / "wal"
        ckpt_dir = tmp_path / "ckpt"

        async def first_half():
            engine = make_engine(graph)
            try:
                async with BCService(engine, max_batch=8,
                                     checkpoint_every=8,
                                     checkpoint_dir=ckpt_dir,
                                     checkpoint_keep=2,
                                     wal_dir=wal_dir) as svc:
                    for event in events[:30]:
                        await svc.submit(event)
                    await svc.drain()
                    assert svc.core.watermark == 30
            finally:
                engine.close()

        async def second_half():
            engine = make_engine(graph)
            async with BCService(engine, max_batch=8,
                                 checkpoint_every=8,
                                 checkpoint_dir=ckpt_dir,
                                 checkpoint_keep=2,
                                 resume_from=ckpt_dir,
                                 wal_dir=wal_dir) as svc:
                # Retention kept checkpoints 16 and 24; the journal
                # tail 24..29 was replayed during construction.
                assert svc.core.watermark == 30
                assert svc.core.wal_replayed == 6
                for event in events[30:]:
                    await svc.submit(event)
                await svc.drain()
            return svc

        asyncio.run(first_half())
        svc = asyncio.run(second_half())
        try:
            assert svc.core.watermark == len(events)
            assert_state_equal(svc.core.engine, twin_engine)
            # The post-resume report suffix matches the oracle's.
            suffix = twin_result.reports[-len(svc.core.result.reports):]
            for mine, theirs in zip(svc.core.result.reports, suffix):
                assert reports_identical(mine, theirs)
        finally:
            svc.core.engine.close()
