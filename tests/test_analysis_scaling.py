import pytest

from repro.analysis.config import ExperimentConfig
from repro.analysis.scaling import render_scaling, run_scaling_study
from repro.gpu.device import TESLA_C2075

CFG = ExperimentConfig(scale=0.25, num_sources=56, num_insertions=4,
                       graphs=("small",), seed=7)


class TestScalingStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return run_scaling_study(CFG, "small", sm_multipliers=(1, 2, 4))

    def test_baseline_is_one(self, study):
        assert study.points[0].speedup == pytest.approx(1.0)
        assert study.points[0].num_sms == TESLA_C2075.num_sms

    def test_speedup_monotone(self, study):
        speeds = [p.speedup for p in study.points]
        assert speeds == sorted(speeds)

    def test_scaling_helps_but_saturates(self, study):
        """Extra SMs help while sources are plentiful, but dynamic
        updates saturate at the heaviest source's critical path — a
        refinement of the paper's §VI strong-scaling prediction."""
        assert study.points[1].speedup > 1.05
        assert study.points[-1].seconds >= study.critical_path_seconds * 0.99

    def test_efficiency_decays_when_starved(self):
        """With fewer sources than SMs, extra SMs idle."""
        starved = run_scaling_study(
            ExperimentConfig(scale=0.25, num_sources=14, num_insertions=3,
                             graphs=("small",), seed=7),
            "small", sm_multipliers=(1, 8),
        )
        assert starved.points[-1].efficiency < 0.5

    def test_render(self, study):
        out = render_scaling(study)
        assert "Strong scaling" in out
        assert "efficiency" in out
        assert "critical path" in out
