"""Property-based tests (hypothesis): the dynamic engines must agree
with from-scratch recomputation on arbitrary graphs and update streams.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bc.engine import DynamicBC
from repro.bc.brandes import brandes_bc
from repro.graph.csr import CSRGraph
from repro.graph.dynamic import DynamicGraph

N = 14  # vertex count for generated graphs: small => fast oracles


@st.composite
def graph_and_stream(draw):
    """A random simple graph plus a random insert/delete stream."""
    edge_pool = [(u, v) for u in range(N) for v in range(u + 1, N)]
    initial = draw(st.lists(st.sampled_from(edge_pool), max_size=25,
                            unique=True))
    ops = draw(st.lists(st.sampled_from(edge_pool), min_size=1, max_size=12))
    return initial, ops


@st.composite
def graph_and_mixed_ops(draw):
    """A random small graph plus an interleaved stream of edge toggles
    and vertex additions.

    Each op is either ``("vertex",)`` — append an isolated vertex — or
    ``("edge", u, v)`` with endpoints drawn over the *grown* vertex
    range, so later edge ops can touch state columns appended after
    engine construction (toggle semantics: insert if absent, else
    delete).
    """
    n0 = draw(st.integers(min_value=2, max_value=8))
    edge_pool = [(u, v) for u in range(n0) for v in range(u + 1, n0)]
    initial = draw(st.lists(st.sampled_from(edge_pool), max_size=10,
                            unique=True))
    num_ops = draw(st.integers(min_value=1, max_value=8))
    ops = []
    n = n0
    for _ in range(num_ops):
        if n < n0 + 3 and draw(st.booleans()):
            ops.append(("vertex",))
            n += 1
        else:
            u = draw(st.integers(min_value=0, max_value=n - 1))
            v = draw(st.integers(min_value=0, max_value=n - 1))
            if u != v:
                ops.append(("edge", min(u, v), max(u, v)))
    return n0, initial, ops


common_settings = settings(
    # max_examples inherited from the loaded profile (see conftest.py):
    # 40 locally, trimmed under HYPOTHESIS_PROFILE=ci.
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestStreamEqualsScratch:
    @given(data=graph_and_stream(),
           backend=st.sampled_from(["cpu", "gpu-edge", "gpu-node",
                                    "gpu-node-atomic"]))
    @common_settings
    def test_insert_delete_stream(self, data, backend):
        initial, ops = data
        graph = CSRGraph.from_edges(N, initial or [])
        eng = DynamicBC.from_graph(graph, backend=backend)  # exact mode
        for u, v in ops:
            if eng.graph.has_edge(u, v):
                eng.delete_edge(u, v)
            else:
                eng.insert_edge(u, v)
        eng.verify(atol=1e-8)

    @given(data=graph_and_stream())
    @common_settings
    def test_scores_equal_exact_brandes(self, data):
        initial, ops = data
        graph = CSRGraph.from_edges(N, initial or [])
        eng = DynamicBC.from_graph(graph, backend="gpu-node")
        for u, v in ops:
            if eng.graph.has_edge(u, v):
                eng.delete_edge(u, v)
            else:
                eng.insert_edge(u, v)
        assert np.allclose(eng.bc_scores,
                           brandes_bc(eng.graph.snapshot()), atol=1e-8)

    @given(data=graph_and_stream(),
           k=st.integers(min_value=1, max_value=N))
    @common_settings
    def test_partial_sources_stream(self, data, k):
        """Approximate mode must match scratch recomputation over the
        same source subset."""
        initial, ops = data
        graph = CSRGraph.from_edges(N, initial or [])
        eng = DynamicBC.from_graph(graph, num_sources=k, backend="gpu-node",
                                   seed=3)
        for u, v in ops:
            if eng.graph.has_edge(u, v):
                eng.delete_edge(u, v)
            else:
                eng.insert_edge(u, v)
        eng.verify(atol=1e-8)


class TestMixedOpsStepwise:
    @given(data=graph_and_mixed_ops(),
           backend=st.sampled_from(["cpu", "gpu-edge", "gpu-node",
                                    "gpu-node-atomic"]),
           vectorized=st.booleans())
    @common_settings
    def test_interleaved_ops_verify_every_step(self, data, backend,
                                               vectorized):
        """insert_edge / delete_edge / add_vertex interleaved on a
        random graph, with the full scratch oracle checked after every
        single step — for both the looped and vectorized paths."""
        n0, initial, ops = data
        graph = CSRGraph.from_edges(n0, initial or [])
        eng = DynamicBC.from_graph(graph, backend=backend,
                                   vectorized=vectorized)
        for op in ops:
            if op[0] == "vertex":
                eng.add_vertex()
            else:
                _, u, v = op
                if eng.graph.has_edge(u, v):
                    eng.delete_edge(u, v)
                else:
                    eng.insert_edge(u, v)
            eng.verify(atol=1e-8)

    @given(data=graph_and_mixed_ops())
    @common_settings
    def test_interleaved_ops_paths_agree(self, data):
        """Both update paths must hold bit-identical analytic state
        through an interleaved vertex/edge stream."""
        n0, initial, ops = data
        graph = CSRGraph.from_edges(n0, initial or [])
        fast = DynamicBC.from_graph(graph, vectorized=True)
        loop = DynamicBC.from_graph(graph, vectorized=False)
        for op in ops:
            if op[0] == "vertex":
                fast.add_vertex()
                loop.add_vertex()
                continue
            _, u, v = op
            if fast.graph.has_edge(u, v):
                rf, rl = fast.delete_edge(u, v), loop.delete_edge(u, v)
            else:
                rf, rl = fast.insert_edge(u, v), loop.insert_edge(u, v)
            assert np.array_equal(rf.cases, rl.cases)
            assert np.array_equal(rf.per_source_seconds,
                                  rl.per_source_seconds)
            assert rf.simulated_seconds == rl.simulated_seconds
        assert np.array_equal(fast.bc_scores, loop.bc_scores)


class TestReversibility:
    @given(data=graph_and_stream())
    @common_settings
    def test_insert_then_delete_is_identity(self, data):
        initial, _ = data
        graph = CSRGraph.from_edges(N, initial or [])
        eng = DynamicBC.from_graph(graph, backend="cpu")
        before_bc = eng.bc_scores.copy()
        before_sigma = eng.state.sigma.copy()
        before_d = eng.state.d.copy()
        pool = [(u, v) for u in range(N) for v in range(u + 1, N)
                if not eng.graph.has_edge(u, v)]
        if not pool:
            return
        u, v = pool[len(pool) // 2]
        eng.insert_edge(u, v)
        eng.delete_edge(u, v)
        assert np.allclose(eng.bc_scores, before_bc, atol=1e-8)
        assert np.allclose(eng.state.sigma, before_sigma, atol=1e-8)
        assert np.array_equal(eng.state.d, before_d)
