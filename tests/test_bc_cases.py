import numpy as np
import pytest

from repro.bc.brandes import single_source_state
from repro.bc.cases import (
    Case,
    classify_deletion,
    classify_insertion,
    classify_insertion_batch,
)
from repro.graph.csr import CSRGraph, DIST_INF
from repro.graph import generators as gen


@pytest.fixture
def path_state(path10):
    d, _, _, _ = single_source_state(path10, 0)
    return d


class TestClassifyInsertion:
    def test_case1_same_level(self):
        # 0-1, 0-2: vertices 1 and 2 both at level 1
        g = CSRGraph.from_edges(3, [(0, 1), (0, 2)])
        d, _, _, _ = single_source_state(g, 0)
        case, _, _ = classify_insertion(d, 1, 2)
        assert case == Case.SAME_LEVEL

    def test_case1_both_unreachable(self, two_components):
        d, _, _, _ = single_source_state(two_components, 0)
        case, _, _ = classify_insertion(d, 6, 8)
        assert case == Case.SAME_LEVEL

    def test_case2_adjacent(self, path_state):
        case, high, low = classify_insertion(path_state, 3, 4)
        assert case == Case.ADJACENT_LEVEL
        assert (high, low) == (3, 4)

    def test_case2_order_normalized(self, path_state):
        _, high, low = classify_insertion(path_state, 4, 3)
        assert (high, low) == (3, 4)

    def test_case3_distant(self, path_state):
        case, high, low = classify_insertion(path_state, 1, 7)
        assert case == Case.DISTANT_LEVEL
        assert (high, low) == (1, 7)

    def test_case3_component_merge(self, two_components):
        d, _, _, _ = single_source_state(two_components, 0)
        case, high, low = classify_insertion(d, 2, 7)
        assert case == Case.DISTANT_LEVEL
        assert (high, low) == (2, 7)

    def test_source_to_unreachable_is_case3(self, two_components):
        # regression guard: with a -1 sentinel this would misclassify
        # as Case 2 (|0 - (-1)| == 1)
        d, _, _, _ = single_source_state(two_components, 0)
        case, _, _ = classify_insertion(d, 0, 7)
        assert case == Case.DISTANT_LEVEL

    def test_batch_matches_scalar(self, karate):
        from repro.bc.state import BCState

        st = BCState.compute(karate, range(10))
        batch = classify_insertion_batch(st.d, 0, 9)
        for i in range(10):
            scalar, _, _ = classify_insertion(st.d[i], 0, 9)
            assert batch[i] == int(scalar)


class TestClassifyDeletion:
    def test_same_level_edge_is_case1(self, karate):
        d, _, _, _ = single_source_state(karate, 0)
        # find an existing same-level edge
        for u, v in karate.edge_list():
            if d[u] == d[v]:
                case, _, _ = classify_deletion(d, None, karate, int(u), int(v))
                assert case == Case.SAME_LEVEL
                return
        pytest.skip("no same-level edge in fixture")

    def test_redundant_pred_is_case2(self):
        # 0-1, 0-2, 1-3, 2-3: removing (1,3) keeps d[3]=2 via 2
        g = CSRGraph.from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        d, sigma, _, _ = single_source_state(g, 0)
        case, high, low = classify_deletion(d, sigma, g, 1, 3)
        assert case == Case.ADJACENT_LEVEL
        assert (high, low) == (1, 3)

    def test_sole_pred_is_case3(self, path10):
        d, sigma, _, _ = single_source_state(path10, 0)
        case, _, _ = classify_deletion(d, sigma, path10, 4, 5)
        assert case == Case.DISTANT_LEVEL

    def test_stale_state_detected(self, path10):
        d = np.zeros(10, dtype=np.int64)
        d[5] = 3  # inconsistent with any BFS containing edge (4,5)
        with pytest.raises(ValueError, match="spans"):
            classify_deletion(d, None, path10, 4, 5)


class TestTrichotomy:
    def test_every_pair_gets_exactly_one_case(self, karate, rng):
        d, _, _, _ = single_source_state(karate, 5)
        for _ in range(50):
            u, v = rng.integers(0, 34, 2)
            if u == v:
                continue
            case, high, low = classify_insertion(d, int(u), int(v))
            assert case in (Case.SAME_LEVEL, Case.ADJACENT_LEVEL,
                            Case.DISTANT_LEVEL)
            assert {high, low} == {int(u), int(v)}
            gap = abs(int(d[u]) - int(d[v]))
            expected = (Case.SAME_LEVEL if gap == 0 else
                        Case.ADJACENT_LEVEL if gap == 1 else
                        Case.DISTANT_LEVEL)
            assert case == expected
            if case != Case.SAME_LEVEL:
                assert d[high] < d[low]


class TestSubCases:
    def test_case1_connected(self):
        from repro.bc.cases import SubCase, classify_insertion_detailed

        g = CSRGraph.from_edges(3, [(0, 1), (0, 2)])
        d, _, _, _ = single_source_state(g, 0)
        sub, _, _ = classify_insertion_detailed(d, 1, 2)
        assert sub == SubCase.SAME_LEVEL_CONNECTED
        assert sub.case == Case.SAME_LEVEL

    def test_case1_disconnected(self, two_components):
        from repro.bc.cases import SubCase, classify_insertion_detailed

        d, _, _, _ = single_source_state(two_components, 0)
        sub, _, _ = classify_insertion_detailed(d, 6, 8)
        assert sub == SubCase.SAME_LEVEL_DISCONNECTED
        assert sub.case == Case.SAME_LEVEL

    def test_case2(self, path10):
        from repro.bc.cases import SubCase, classify_insertion_detailed

        d, _, _, _ = single_source_state(path10, 0)
        sub, high, low = classify_insertion_detailed(d, 3, 4)
        assert sub == SubCase.ADJACENT_LEVEL
        assert sub.case == Case.ADJACENT_LEVEL

    def test_case3_connected(self, path10):
        from repro.bc.cases import SubCase, classify_insertion_detailed

        d, _, _, _ = single_source_state(path10, 0)
        sub, _, _ = classify_insertion_detailed(d, 1, 7)
        assert sub == SubCase.DISTANT_LEVEL_CONNECTED

    def test_case3_merge(self, two_components):
        from repro.bc.cases import SubCase, classify_insertion_detailed

        d, _, _, _ = single_source_state(two_components, 0)
        sub, high, low = classify_insertion_detailed(d, 2, 7)
        assert sub == SubCase.DISTANT_LEVEL_MERGE
        assert (high, low) == (2, 7)

    def test_subcase_matches_coarse(self, karate, rng):
        from repro.bc.cases import classify_insertion_detailed

        d, _, _, _ = single_source_state(karate, 3)
        for _ in range(40):
            u, v = rng.integers(0, 34, 2)
            if u == v:
                continue
            coarse, ch, cl = classify_insertion(d, int(u), int(v))
            sub, sh, sl = classify_insertion_detailed(d, int(u), int(v))
            assert sub.case == coarse
            assert (sh, sl) == (ch, cl)
