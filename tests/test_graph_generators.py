import numpy as np
import pytest

from repro.graph import generators as gen
from repro.graph.csr import DIST_INF


class TestDeterministicTopologies:
    def test_path(self):
        g = gen.path_graph(5)
        assert g.num_edges == 4
        assert g.degree(0) == 1 and g.degree(2) == 2

    def test_path_trivial_sizes(self):
        assert gen.path_graph(0).num_edges == 0
        assert gen.path_graph(1).num_edges == 0

    def test_star(self):
        g = gen.star_graph(6)
        assert g.degree(0) == 5
        assert all(g.degree(v) == 1 for v in range(1, 6))

    def test_complete(self):
        g = gen.complete_graph(6)
        assert g.num_edges == 15
        assert all(g.degree(v) == 5 for v in range(6))

    def test_grid(self):
        g = gen.grid_2d(3, 4)
        assert g.num_vertices == 12
        assert g.num_edges == 3 * 3 + 2 * 4  # horiz + vert
        assert g.degree(0) == 2  # corner

    def test_grid_1x1(self):
        assert gen.grid_2d(1, 1).num_edges == 0

    def test_karate_canonical(self):
        g = gen.zachary_karate()
        assert g.num_vertices == 34
        assert g.num_edges == 78
        assert g.degree(33) == 17 and g.degree(0) == 16


class TestSeededDeterminism:
    @pytest.mark.parametrize(
        "builder",
        [
            lambda s: gen.erdos_renyi(100, 200, seed=s),
            lambda s: gen.watts_strogatz(100, k=6, p=0.2, seed=s),
            lambda s: gen.preferential_attachment(100, m=3, seed=s),
            lambda s: gen.kronecker(7, edge_factor=8, seed=s),
            lambda s: gen.random_triangulation(100, seed=s),
            lambda s: gen.router_level(120, seed=s),
            lambda s: gen.web_crawl(120, seed=s),
            lambda s: gen.co_papers(100, seed=s),
        ],
        ids=["er", "ws", "ba", "kron", "tri", "router", "web", "copaper"],
    )
    def test_same_seed_same_graph(self, builder):
        assert builder(11) == builder(11)

    def test_different_seed_differs(self):
        assert gen.erdos_renyi(100, 200, seed=1) != gen.erdos_renyi(100, 200, seed=2)


class TestErdosRenyi:
    def test_exact_edge_count(self):
        g = gen.erdos_renyi(50, 123, seed=0)
        assert g.num_edges == 123

    def test_too_many_edges_raises(self):
        with pytest.raises(ValueError):
            gen.erdos_renyi(5, 11, seed=0)


class TestWattsStrogatz:
    def test_size(self):
        g = gen.watts_strogatz(200, k=10, p=0.1, seed=1)
        assert g.num_vertices == 200
        # rewiring can merge a few edges; stays close to n*k/2
        assert abs(g.num_edges - 1000) < 30

    def test_zero_rewiring_is_lattice(self):
        g = gen.watts_strogatz(20, k=4, p=0.0, seed=1)
        assert g.num_edges == 40
        assert all(g.degree(v) == 4 for v in range(20))

    def test_odd_k_raises(self):
        with pytest.raises(ValueError):
            gen.watts_strogatz(20, k=3, seed=1)

    def test_small_n_raises(self):
        with pytest.raises(ValueError):
            gen.watts_strogatz(4, k=4, seed=1)

    def test_log_diameter(self):
        from repro.graph.properties import approximate_diameter

        g = gen.watts_strogatz(500, k=10, p=0.1, seed=2)
        assert approximate_diameter(g) <= 12  # ~log n, not ~n/k


class TestPreferentialAttachment:
    def test_size(self):
        g = gen.preferential_attachment(300, m=4, seed=3)
        assert g.num_vertices == 300
        assert g.num_edges == (300 - 4) * 4

    def test_min_degree(self):
        g = gen.preferential_attachment(200, m=3, seed=4)
        assert g.degrees.min() >= 3 or g.degrees[:3].min() >= 0

    def test_heavy_tail(self):
        g = gen.preferential_attachment(2000, m=5, seed=5)
        degs = g.degrees
        # scale-free signature: max degree far above the mean
        assert degs.max() > 8 * degs.mean()

    def test_connected(self):
        g = gen.preferential_attachment(300, m=2, seed=6)
        assert np.all(g.connected_components() == 0)

    def test_bad_params_raise(self):
        with pytest.raises(ValueError):
            gen.preferential_attachment(5, m=5, seed=0)
        with pytest.raises(ValueError):
            gen.preferential_attachment(10, m=0, seed=0)


class TestKronecker:
    def test_vertex_count_power_of_two(self):
        g = gen.kronecker(8, edge_factor=8, seed=7)
        assert g.num_vertices == 256

    def test_skewed_degrees(self):
        g = gen.kronecker(10, edge_factor=16, seed=8)
        degs = g.degrees
        assert degs.max() > 10 * max(1.0, np.median(degs))

    def test_bad_scale_raises(self):
        with pytest.raises(ValueError):
            gen.kronecker(0)
        with pytest.raises(ValueError):
            gen.kronecker(31)

    def test_bad_probs_raise(self):
        with pytest.raises(ValueError):
            gen.kronecker(5, a=0.6, b=0.3, c=0.3)


class TestTriangulation:
    def test_planar_edge_bound(self):
        g = gen.random_triangulation(300, seed=9)
        assert g.num_edges <= 3 * 300 - 6  # planarity

    def test_connected(self):
        g = gen.random_triangulation(150, seed=10)
        assert np.all(g.connected_components() == 0)

    def test_large_diameter(self):
        from repro.graph.properties import approximate_diameter

        g = gen.random_triangulation(1000, seed=11)
        assert approximate_diameter(g) >= 12  # ~sqrt(n) for planar meshes

    def test_min_points(self):
        with pytest.raises(ValueError):
            gen.random_triangulation(2, seed=0)


class TestRouterLevel:
    def test_sparse(self):
        g = gen.router_level(1000, seed=12)
        assert 1.0 < g.num_edges / g.num_vertices < 8.0

    def test_heavy_tail(self):
        g = gen.router_level(1000, seed=13)
        assert g.degrees.max() > 5 * g.degrees.mean()

    def test_min_size_raises(self):
        with pytest.raises(ValueError):
            gen.router_level(10, seed=0)


class TestWebCrawl:
    def test_dense(self):
        g = gen.web_crawl(1000, seed=14)
        assert g.num_edges / g.num_vertices > 3.0

    def test_clustered(self):
        from repro.graph.properties import average_clustering

        g = gen.web_crawl(500, seed=15)
        assert average_clustering(g, samples=None) > 0.1

    def test_min_size_raises(self):
        with pytest.raises(ValueError):
            gen.web_crawl(5, seed=0)


class TestCoPapers:
    def test_very_clustered(self):
        from repro.graph.properties import average_clustering

        g = gen.co_papers(300, seed=16)
        assert average_clustering(g, samples=None) > 0.3

    def test_dense(self):
        g = gen.co_papers(500, seed=17)
        assert g.num_edges / g.num_vertices > 2.0

    def test_min_size_raises(self):
        with pytest.raises(ValueError):
            gen.co_papers(5, seed=0)


class TestCompleteBipartite:
    def test_sizes(self):
        g = gen.complete_bipartite(3, 4)
        assert g.num_vertices == 7
        assert g.num_edges == 12
        assert all(g.degree(v) == 4 for v in range(3))
        assert all(g.degree(v) == 3 for v in range(3, 7))

    def test_star_special_case(self):
        assert gen.complete_bipartite(1, 5) == gen.star_graph(6)

    def test_bc_matches_networkx(self):
        import networkx as nx
        from repro.bc.brandes import brandes_bc

        g = gen.complete_bipartite(3, 5)
        G = nx.complete_bipartite_graph(3, 5)
        nxbc = nx.betweenness_centrality(G, normalized=False)
        theirs = 2 * np.array([nxbc[v] for v in range(8)])
        assert np.allclose(brandes_bc(g), theirs)

    def test_sigma_between_sides(self):
        from repro.bc.brandes import single_source_state

        g = gen.complete_bipartite(4, 6)
        _, sigma, _, _ = single_source_state(g, 0)  # source in A
        # A->A pairs route through all 6 B vertices
        assert np.all(sigma[1:4] == 6)
        assert np.all(sigma[4:] == 1)

    def test_empty_part_rejected(self):
        with pytest.raises(ValueError):
            gen.complete_bipartite(0, 3)
