import pytest

from repro.utils.tables import format_float, format_table


class TestFormatFloat:
    def test_plain(self):
        assert format_float(3.14159) == "3.14"

    def test_zero(self):
        assert format_float(0.0) == "0"

    def test_large_uses_scientific(self):
        assert "e" in format_float(1.5e9)

    def test_small_uses_scientific(self):
        assert "e" in format_float(1.5e-7)

    def test_thousands_separator(self):
        assert format_float(12345.6) == "12,345.60"

    def test_nan(self):
        assert format_float(float("nan")) == "nan"

    def test_digits_kwarg(self):
        assert format_float(3.14159, digits=4) == "3.1416"


class TestFormatTable:
    def test_contains_headers_and_cells(self):
        out = format_table(["a", "b"], [(1, "x"), (2, "y")])
        assert "a" in out and "b" in out
        assert "x" in out and "y" in out

    def test_title_rendered(self):
        out = format_table(["c"], [(1,)], title="My Table")
        assert out.startswith("My Table")

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [(1,)])

    def test_alignment_override(self):
        out = format_table(["col"], [("ab",), ("c",)], align=["r"])
        lines = out.splitlines()
        cells = [ln for ln in lines if "c " in ln or " c" in ln]
        assert any(ln.rstrip().endswith("c |") for ln in lines)

    def test_bad_align_length_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [(1, 2)], align=["r"])

    def test_empty_rows(self):
        out = format_table(["a"], [])
        assert "a" in out

    def test_numeric_columns_right_aligned(self):
        out = format_table(["name", "val"], [("long-name", 1), ("x", 23)])
        for line in out.splitlines():
            if "| 23" in line or "23 |" in line:
                assert line.rstrip().endswith("23 |")
