"""Crash recovery paths: checkpoint retention and watermark naming,
corrupt-checkpoint fallback (:func:`load_newest_valid` /
:func:`resolve_resume`), and the headline contract — a
:class:`ServiceCore` reconstructed from newest-valid-checkpoint +
journal tail is bit-identical to a process that never crashed."""

import os
import warnings

import numpy as np
import pytest

from repro.bc.engine import DynamicBC
from repro.graph import generators as gen
from repro.graph.dynamic import DynamicGraph
from repro.graph.stream import EdgeStream, replay
from repro.resilience import CheckpointError, FaultInjector, save_checkpoint
from repro.resilience.checkpoint import (
    checkpoint_watermark,
    find_checkpoints,
    load_newest_valid,
    resolve_resume,
    retain_checkpoints,
)
from repro.resilience.errors import WalError
from repro.resilience.wal import WriteAheadLog, list_segments
from repro.service.core import ServiceCore

K = 12
SEED = 3


def make_engine(graph):
    return DynamicBC.from_graph(DynamicGraph.from_csr(graph),
                                num_sources=K, seed=SEED)


@pytest.fixture(scope="module")
def graph():
    return gen.erdos_renyi(40, 90, seed=7)


@pytest.fixture(scope="module")
def stream(graph):
    return EdgeStream.churn(graph, 30, seed=5)


def write_checkpoints(graph, directory, watermarks):
    """One checkpoint file per watermark (engine state is irrelevant
    to the selection logic under test)."""
    engine = make_engine(graph)
    try:
        for mark in watermarks:
            save_checkpoint(
                engine, os.path.join(directory, f"ckpt-{mark:08d}.npz"),
                event_index=mark,
            )
    finally:
        engine.close()
    return find_checkpoints(directory)


class TestRetention:
    def test_watermark_parsing(self):
        assert checkpoint_watermark("ckpt-00000012.npz") == 12
        assert checkpoint_watermark("/a/b/ckpt-00000300.npz") == 300
        assert checkpoint_watermark("snapshot.npz") is None

    def test_find_checkpoints_sorted_and_tmp_free(self, graph, tmp_path):
        write_checkpoints(graph, tmp_path, [20, 5, 10])
        (tmp_path / "ckpt-00000030.npz.tmp").write_bytes(b"partial")
        found = find_checkpoints(tmp_path)
        assert [checkpoint_watermark(p) for p in found] == [5, 10, 20]

    def test_retain_keeps_newest(self, graph, tmp_path):
        write_checkpoints(graph, tmp_path, [5, 10, 15, 20])
        removed = retain_checkpoints(tmp_path, 2)
        assert [checkpoint_watermark(p) for p in removed] == [5, 10]
        assert [checkpoint_watermark(p)
                for p in find_checkpoints(tmp_path)] == [15, 20]

    def test_retain_noop_under_limit(self, graph, tmp_path):
        write_checkpoints(graph, tmp_path, [5])
        assert retain_checkpoints(tmp_path, 3) == []

    def test_retain_rejects_bad_keep(self, tmp_path):
        with pytest.raises(ValueError, match="keep"):
            retain_checkpoints(tmp_path, 0)


class TestFallback:
    def test_newest_valid_picks_newest(self, graph, tmp_path):
        paths = write_checkpoints(graph, tmp_path, [5, 10, 15])
        ckpt, path, skipped = load_newest_valid(tmp_path)
        assert path == paths[-1] and ckpt.event_index == 15
        assert skipped == []

    def test_falls_back_past_corrupt_newest(self, graph, tmp_path):
        paths = write_checkpoints(graph, tmp_path, [5, 10, 15])
        FaultInjector(0).corrupt_file(paths[-1])
        with pytest.warns(RuntimeWarning, match="skipping corrupt"):
            ckpt, path, skipped = load_newest_valid(tmp_path)
        assert ckpt.event_index == 10 and path == paths[1]
        assert skipped == [paths[-1]]

    def test_all_corrupt_raises(self, graph, tmp_path):
        for path in write_checkpoints(graph, tmp_path, [5, 10]):
            FaultInjector(1).corrupt_file(path)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            with pytest.raises(CheckpointError, match="all 2 retained"):
                load_newest_valid(tmp_path)

    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoints"):
            load_newest_valid(tmp_path)

    def test_resolve_resume_directory(self, graph, tmp_path):
        write_checkpoints(graph, tmp_path, [5, 10])
        ckpt, _, _ = resolve_resume(tmp_path)
        assert ckpt.event_index == 10

    def test_resolve_resume_corrupt_file_falls_back(self, graph, tmp_path):
        paths = write_checkpoints(graph, tmp_path, [5, 10, 15])
        FaultInjector(2).corrupt_file(paths[-1])
        with pytest.warns(RuntimeWarning, match="falling back"):
            ckpt, resolved, skipped = resolve_resume(paths[-1])
        assert ckpt.event_index == 10 and resolved == paths[1]
        assert skipped == [paths[-1]]

    def test_resolve_resume_corrupt_file_no_fallback_raises(self, graph,
                                                            tmp_path):
        (path,) = write_checkpoints(graph, tmp_path, [5])
        FaultInjector(3).corrupt_file(path)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            with pytest.raises(CheckpointError, match="no older valid"):
                resolve_resume(path)


class TestCoreRecovery:
    """Checkpoint + journal-tail recovery is bit-identical to a run
    that never crashed (the in-process core of the kill -9 drill)."""

    def run_and_abandon(self, graph, stream, wal_dir, ckpt_dir, *,
                        checkpoint_every=10, keep=2):
        """Apply the whole stream with journaling, sync, then abandon
        everything without a clean close — the in-process stand-in for
        kill -9 (the journal holds every accepted event)."""
        engine = make_engine(graph)
        wal = WriteAheadLog(wal_dir)
        core = ServiceCore(engine, checkpoint_every=checkpoint_every,
                           checkpoint_dir=ckpt_dir, checkpoint_keep=keep,
                           wal=wal)
        for event in stream:
            wal.append(event)
            core.apply_batch([event])
        wal.sync()
        engine.close()
        return core.watermark

    def recover(self, graph, wal_dir, ckpt_dir):
        engine = make_engine(graph)
        wal = WriteAheadLog(wal_dir)
        resume = ckpt_dir if find_checkpoints(ckpt_dir) else None
        core = ServiceCore(engine, checkpoint_every=10,
                           checkpoint_dir=ckpt_dir, checkpoint_keep=2,
                           resume_from=resume, wal=wal)
        wal.close()
        return engine, core

    def assert_matches_oracle(self, graph, stream, engine, core):
        oracle = make_engine(graph)
        try:
            replay(oracle, EdgeStream(list(stream)[:core.watermark]))
            assert np.array_equal(engine.bc_scores, oracle.bc_scores)
            for name in ("sources", "d", "sigma", "delta"):
                assert np.array_equal(getattr(engine.state, name),
                                      getattr(oracle.state, name)), name
            assert engine.counters == oracle.counters
        finally:
            oracle.close()

    def test_recovery_is_bit_identical(self, graph, stream, tmp_path):
        wal_dir, ckpt_dir = tmp_path / "wal", tmp_path / "ckpt"
        watermark = self.run_and_abandon(graph, stream, wal_dir, ckpt_dir)
        engine, core = self.recover(graph, wal_dir, ckpt_dir)
        try:
            assert core.watermark == watermark == len(stream)
            # Retention kept 2 checkpoints; the tail past the newest
            # (watermark 30 is on the cadence, so 0 here) was replayed
            # from the journal.
            assert core.wal_replayed == watermark - core.result.start_index
            self.assert_matches_oracle(graph, stream, engine, core)
        finally:
            engine.close()

    def test_recovery_without_any_checkpoint(self, graph, stream, tmp_path):
        """A kill before the first cadence checkpoint recovers from the
        journal alone, replaying from watermark zero."""
        wal_dir = tmp_path / "wal"
        events = list(stream)[:7]
        self.run_and_abandon(graph, EdgeStream(events), wal_dir,
                             tmp_path / "ckpt", checkpoint_every=1000)
        engine, core = self.recover(graph, wal_dir, tmp_path / "ckpt")
        try:
            assert core.result.resumed_from is None
            assert core.wal_replayed == 7 and core.watermark == 7
            self.assert_matches_oracle(graph, EdgeStream(events),
                                       engine, core)
        finally:
            engine.close()

    def test_recovery_past_corrupt_newest_checkpoint(self, graph, stream,
                                                     tmp_path):
        """Corrupting the newest checkpoint costs nothing but replay
        length: the fallback checkpoint plus a longer journal tail
        still lands on identical state."""
        wal_dir, ckpt_dir = tmp_path / "wal", tmp_path / "ckpt"
        self.run_and_abandon(graph, stream, wal_dir, ckpt_dir)
        FaultInjector(4).corrupt_file(find_checkpoints(ckpt_dir)[-1])
        with pytest.warns(RuntimeWarning, match="skipping corrupt"):
            engine, core = self.recover(graph, wal_dir, ckpt_dir)
        try:
            assert core.watermark == len(stream)
            assert core.wal_replayed > 0  # the longer tail was replayed
            self.assert_matches_oracle(graph, stream, engine, core)
        finally:
            engine.close()

    def test_journal_gap_refuses_recovery(self, graph, stream, tmp_path):
        """Journal records starting past the restored watermark mean
        acknowledged events were lost — recovery must fail loudly, not
        resume with a silent hole in the stream."""
        wal_dir = tmp_path / "wal"
        events = list(stream)[:6]
        with WriteAheadLog(wal_dir, start_seq=3) as wal:
            for event in events[3:]:
                wal.append(event)
        engine = make_engine(graph)
        try:
            with pytest.raises(WalError, match="journal gap"):
                ServiceCore(engine, wal=WriteAheadLog(wal_dir))
        finally:
            engine.close()

    def test_checkpoints_bound_the_journal(self, graph, stream, tmp_path):
        """Retention GC: after a run with cadence checkpoints the
        journal only holds segments at or past the oldest retained
        checkpoint's watermark."""
        wal_dir, ckpt_dir = tmp_path / "wal", tmp_path / "ckpt"
        engine = make_engine(graph)
        wal = WriteAheadLog(wal_dir, segment_records=5)
        core = ServiceCore(engine, checkpoint_every=10,
                           checkpoint_dir=ckpt_dir, checkpoint_keep=2,
                           wal=wal)
        for event in stream:
            wal.append(event)
            wal.sync()
            core.apply_batch([event])
        wal.close()
        engine.close()
        marks = [checkpoint_watermark(p) for p in find_checkpoints(ckpt_dir)]
        assert marks == [20, 30]
        oldest_retained = marks[0]
        firsts = [s for s, _ in list_segments(wal_dir)]
        assert firsts  # the newest segment always survives
        # No segment may end strictly below the GC horizon.
        assert all(first + 5 > oldest_retained or first == firsts[-1]
                   for first in firsts[:-1])
        assert firsts[0] + 5 > oldest_retained
