"""Edge-deletion support: distance-preserving Case-2 duals and the
distance-increasing recompute fallback (see repro/bc/deletion.py)."""

import numpy as np
import pytest

from repro.bc.deletion import (
    connectivity_preserving_removals,
    removal_reinsertion_protocol,
)
from repro.bc.engine import DynamicBC
from repro.graph import generators as gen
from repro.graph.csr import CSRGraph
from repro.graph.dynamic import DynamicGraph


class TestEngineDeletion:
    @pytest.mark.parametrize("backend", ["cpu", "gpu-edge", "gpu-node"])
    def test_random_deletions_verify(self, backend, rng):
        g = gen.erdos_renyi(60, 150, seed=4)
        eng = DynamicBC.from_graph(g, num_sources=15, backend=backend, seed=1)
        edges = g.edge_list()
        for idx in rng.choice(len(edges), 10, replace=False):
            u, v = map(int, edges[idx])
            if eng.graph.has_edge(u, v):
                eng.delete_edge(u, v)
        eng.verify()

    def test_delete_missing_raises(self, karate):
        eng = DynamicBC.from_graph(karate, num_sources=5, seed=1)
        with pytest.raises(ValueError):
            eng.delete_edge(0, 9)

    def test_delete_bridge_disconnects(self, path10):
        """Deleting a bridge (Case-3 deletion) falls back to recompute
        and still matches scratch."""
        eng = DynamicBC.from_graph(path10, sources=[0, 5], backend="cpu")
        eng.delete_edge(4, 5)
        eng.verify()
        from repro.graph.csr import DIST_INF

        assert eng.state.d[0][9] == DIST_INF  # source 0 lost the far half

    def test_insert_then_delete_restores_scores(self, karate):
        eng = DynamicBC.from_graph(karate, num_sources=10, seed=3)
        before = eng.bc_scores.copy()
        eng.insert_edge(0, 9)
        eng.delete_edge(0, 9)
        assert np.allclose(eng.bc_scores, before, atol=1e-9)
        eng.verify()

    def test_delete_then_reinsert_restores_scores(self, karate):
        eng = DynamicBC.from_graph(karate, num_sources=10, seed=3)
        before = eng.bc_scores.copy()
        eng.delete_edge(0, 1)
        eng.insert_edge(0, 1)
        assert np.allclose(eng.bc_scores, before, atol=1e-9)

    def test_same_level_deletion_is_free(self):
        # 0-1, 0-2, 1-2: edge (1,2) joins same-level vertices for source 0
        g = CSRGraph.from_edges(3, [(0, 1), (0, 2), (1, 2)])
        eng = DynamicBC.from_graph(g, sources=[0], backend="gpu-node")
        rep = eng.delete_edge(1, 2)
        assert rep.case_histogram == {1: 1}
        assert rep.touched[0] == 0
        eng.verify()

    def test_mixed_stream(self, rng):
        """Interleaved insertions and deletions stay exact."""
        g = gen.watts_strogatz(50, k=4, p=0.1, seed=5)
        eng = DynamicBC.from_graph(g, num_sources=12, backend="gpu-node",
                                   seed=2)
        for step in range(30):
            u, v = int(rng.integers(0, 50)), int(rng.integers(0, 50))
            if u == v:
                continue
            if eng.graph.has_edge(u, v):
                eng.delete_edge(u, v)
            else:
                eng.insert_edge(u, v)
        eng.verify()


class TestProtocolHelpers:
    def test_removal_protocol(self, karate, rng):
        dyn = DynamicGraph.from_csr(karate)
        removed = removal_reinsertion_protocol(dyn, 10, seed=1)
        assert removed.shape == (10, 2)
        assert dyn.num_edges == 68

    def test_removal_protocol_deterministic(self, karate):
        a = removal_reinsertion_protocol(DynamicGraph.from_csr(karate), 5, seed=9)
        b = removal_reinsertion_protocol(DynamicGraph.from_csr(karate), 5, seed=9)
        assert np.array_equal(a, b)

    def test_connectivity_preserving(self, karate):
        dyn = DynamicGraph.from_csr(karate)
        removed = connectivity_preserving_removals(dyn, 5, seed=2)
        assert removed.shape == (5, 2)
        # karate is connected and stays connected
        assert np.all(dyn.snapshot().connected_components() == 0)
