"""Shared fixtures and timing helpers for the test suite."""

from __future__ import annotations

import os
import time

import numpy as np
import pytest
from hypothesis import settings

from repro.graph import generators as gen
from repro.graph.csr import CSRGraph
from repro.graph.dynamic import DynamicGraph

# Hypothesis profiles: "default" preserves local thoroughness; "ci"
# trims example counts so the full suite stays well under the CI time
# budget (selected via HYPOTHESIS_PROFILE, see .github/workflows/ci.yml).
# Property-test modules inherit max_examples from the loaded profile
# unless they pin their own.
settings.register_profile("default", max_examples=40, deadline=None)
settings.register_profile("ci", max_examples=10, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


def wait_until(predicate, timeout: float = 10.0, interval: float = 0.01,
               message: str = "condition"):
    """Poll *predicate* until truthy, with a hard deadline.

    The suite's replacement for fixed wall-clock sleeps: a test that
    needs "the worker has started a chunk" or "the event was observed"
    states the condition and a generous deadline instead of guessing a
    duration that is both slow on fast machines and flaky on loaded
    ones.  Returns the predicate's final (truthy) value.
    """
    deadline = time.monotonic() + timeout
    while True:
        value = predicate()
        if value:
            return value
        if time.monotonic() >= deadline:
            raise TimeoutError(
                f"timed out after {timeout}s waiting for {message}"
            )
        time.sleep(interval)


async def async_wait_until(predicate, timeout: float = 10.0,
                           interval: float = 0.01,
                           message: str = "condition"):
    """:func:`wait_until` for asyncio tests — polls without blocking
    the event loop, so the code under test keeps running between
    checks."""
    import asyncio

    deadline = time.monotonic() + timeout
    while True:
        value = predicate()
        if value:
            return value
        if time.monotonic() >= deadline:
            raise TimeoutError(
                f"timed out after {timeout}s waiting for {message}"
            )
        await asyncio.sleep(interval)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def karate() -> CSRGraph:
    return gen.zachary_karate()


@pytest.fixture
def path10() -> CSRGraph:
    return gen.path_graph(10)


@pytest.fixture
def small_er() -> CSRGraph:
    """A fixed 60-vertex Erdos-Renyi graph, connected enough to be
    interesting but small enough for exhaustive oracles."""
    return gen.erdos_renyi(60, 140, seed=7)


@pytest.fixture
def two_components() -> CSRGraph:
    """Two disjoint paths: 0-1-2-3-4 and 5-6-7-8-9."""
    edges = [(i, i + 1) for i in range(4)] + [(i, i + 1) for i in range(5, 9)]
    return CSRGraph.from_edges(10, edges)


@pytest.fixture
def dyn_karate(karate) -> DynamicGraph:
    return DynamicGraph.from_csr(karate)


@pytest.fixture(scope="session")
def kron_small() -> CSRGraph:
    """The sanitizer suite's standard workload: Kronecker n=2^8, k=8
    (session-scoped — the graph is immutable; engines copy state)."""
    return gen.kronecker(8, 8, seed=3)
