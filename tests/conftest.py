"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import generators as gen
from repro.graph.csr import CSRGraph
from repro.graph.dynamic import DynamicGraph


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def karate() -> CSRGraph:
    return gen.zachary_karate()


@pytest.fixture
def path10() -> CSRGraph:
    return gen.path_graph(10)


@pytest.fixture
def small_er() -> CSRGraph:
    """A fixed 60-vertex Erdos-Renyi graph, connected enough to be
    interesting but small enough for exhaustive oracles."""
    return gen.erdos_renyi(60, 140, seed=7)


@pytest.fixture
def two_components() -> CSRGraph:
    """Two disjoint paths: 0-1-2-3-4 and 5-6-7-8-9."""
    edges = [(i, i + 1) for i in range(4)] + [(i, i + 1) for i in range(5, 9)]
    return CSRGraph.from_edges(10, edges)


@pytest.fixture
def dyn_karate(karate) -> DynamicGraph:
    return DynamicGraph.from_csr(karate)
