"""Direct unit tests of the Case-2 deletion dual (negated sigma deltas
and explicit retirement of the removed arc's contribution)."""

import numpy as np
import pytest

from repro.bc.accountants import make_accountant
from repro.bc.brandes import single_source_state
from repro.bc.cases import Case, classify_deletion
from repro.bc.update_core import adjacent_level_update
from repro.graph import generators as gen
from repro.graph.csr import CSRGraph
from repro.graph.dynamic import DynamicGraph


def delete_and_check(graph_before, source, u, v):
    """Delete {u, v} (must be a distance-preserving deletion for
    *source*), update via the core, compare against recomputation."""
    d, sigma, delta, _ = single_source_state(graph_before, source)
    delta[source] = 0.0
    case, u_high, u_low = classify_deletion(d, sigma, graph_before, u, v)
    assert case == Case.ADJACENT_LEVEL, "test setup: needs redundant pred"
    dyn = DynamicGraph.from_csr(graph_before)
    assert dyn.delete_edge(u, v)
    after = dyn.snapshot()
    bc = np.zeros(graph_before.num_vertices)
    acc = make_accountant("cpu", after.num_vertices, 2 * after.num_edges)
    adjacent_level_update(after, source, d, sigma, delta, bc,
                          u_high, u_low, acc, insert=False)
    dn, sn, den, _ = single_source_state(after, source)
    den[source] = 0.0
    assert np.array_equal(d, dn)
    assert np.allclose(sigma, sn)
    assert np.allclose(delta, den)


class TestDiamond:
    def test_redundant_edge_deletion(self):
        # diamond: 0-1, 0-2, 1-3, 2-3 — deleting (1,3) keeps d[3]=2
        g = CSRGraph.from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        delete_and_check(g, 0, 1, 3)

    def test_longer_diamond(self):
        # 0-1-2-5, 0-3-4-5: two length-3 paths; delete (4, 5)
        g = CSRGraph.from_edges(
            6, [(0, 1), (1, 2), (2, 5), (0, 3), (3, 4), (4, 5)]
        )
        delete_and_check(g, 0, 4, 5)

    def test_wide_fan(self):
        # source 0 -> {1,2,3} -> 4: sigma[4] = 3; delete one arm
        g = CSRGraph.from_edges(
            5, [(0, 1), (0, 2), (0, 3), (1, 4), (2, 4), (3, 4)]
        )
        delete_and_check(g, 0, 2, 4)


class TestDenseRandom:
    def test_random_redundant_deletions(self, rng):
        g = gen.erdos_renyi(80, 240, seed=21)
        sources = [0, 13, 55]
        done = 0
        for u, v in g.edge_list().tolist():
            for s in sources:
                d, sigma, _, _ = single_source_state(g, s)
                case, _, _ = classify_deletion(d, sigma, g, u, v)
                if case == Case.ADJACENT_LEVEL:
                    delete_and_check(g, s, u, v)
                    done += 1
            if done >= 8:
                break
        assert done >= 4

    def test_downstream_sigma_shrinks(self):
        """The deletion dual must propagate *negative* sigma deltas."""
        g = CSRGraph.from_edges(
            6, [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (4, 5)]
        )
        d, sigma, delta, _ = single_source_state(g, 0)
        delta[0] = 0.0
        assert sigma[5] == 2.0
        dyn = DynamicGraph.from_csr(g)
        dyn.delete_edge(1, 3)
        after = dyn.snapshot()
        bc = np.zeros(6)
        acc = make_accountant("gpu-node", 6, 2 * after.num_edges)
        adjacent_level_update(after, 0, d, sigma, delta, bc, 1, 3, acc,
                              insert=False)
        assert sigma[3] == 1.0
        assert sigma[5] == 1.0  # delta propagated down the chain
