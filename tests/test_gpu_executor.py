import numpy as np
import pytest

from repro.gpu.counters import Trace
from repro.gpu.device import CORE_I7_2600K, TESLA_C2075
from repro.gpu.executor import KernelTiming, VirtualGPU, schedule_blocks


class TestScheduleBlocks:
    def test_round_robin_assignment(self):
        # 4 sources on 2 blocks: blocks get {0,2} and {1,3}
        timing = schedule_blocks([1.0, 2.0, 3.0, 4.0], TESLA_C2075,
                                 num_blocks=2, launch_overhead=0.0)
        assert timing.block_seconds == [4.0, 6.0]
        assert timing.total_seconds == 6.0

    def test_makespan_is_max_sm(self):
        dev = TESLA_C2075.with_sms(2)
        timing = schedule_blocks([5.0, 1.0], dev, num_blocks=2,
                                 launch_overhead=0.0)
        assert timing.total_seconds == 5.0

    def test_blocks_stack_on_sms(self):
        dev = TESLA_C2075.with_sms(2)
        # 4 blocks on 2 SMs: SM0 gets blocks 0,2; SM1 gets 1,3
        timing = schedule_blocks([1.0, 1.0, 1.0, 1.0], dev, num_blocks=4,
                                 launch_overhead=0.0)
        assert timing.sm_seconds == [2.0, 2.0]

    def test_launch_overhead_added(self):
        t0 = schedule_blocks([1.0], TESLA_C2075, launch_overhead=0.5)
        assert t0.total_seconds == pytest.approx(1.5)

    def test_default_overhead_from_device(self):
        t = schedule_blocks([0.0], TESLA_C2075)
        assert t.total_seconds == pytest.approx(4e-6)

    def test_empty_sources(self):
        t = schedule_blocks([], TESLA_C2075, launch_overhead=0.1)
        assert t.total_seconds == pytest.approx(0.1)

    def test_cpu_is_sequential(self):
        t = schedule_blocks([1.0, 2.0, 3.0], CORE_I7_2600K, num_blocks=5,
                            launch_overhead=0.0)
        assert t.total_seconds == pytest.approx(6.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            schedule_blocks([-1.0], TESLA_C2075)

    def test_bad_block_count_rejected(self):
        with pytest.raises(ValueError):
            schedule_blocks([1.0], TESLA_C2075, num_blocks=-2)

    def test_busy_fraction_balanced(self):
        t = schedule_blocks([1.0] * 14, TESLA_C2075, launch_overhead=0.0)
        assert t.busy_fraction == pytest.approx(1.0)

    def test_busy_fraction_imbalanced(self):
        t = schedule_blocks([10.0] + [0.0] * 13, TESLA_C2075,
                            launch_overhead=0.0)
        assert t.busy_fraction < 0.2


class TestVirtualGPU:
    def test_default_grid_is_sm_count(self):
        assert VirtualGPU(TESLA_C2075).num_blocks == 14

    def test_cpu_grid_is_one(self):
        assert VirtualGPU(CORE_I7_2600K, num_blocks=10).num_blocks == 1

    def test_time_traces(self):
        gpu = VirtualGPU(TESLA_C2075)
        t = Trace()
        t.add(1000, 4.0, 10000.0)
        timing = gpu.time_traces([t, t, t])
        assert timing.total_seconds > 0

    def test_with_blocks(self):
        gpu = VirtualGPU(TESLA_C2075)
        other = gpu.with_blocks(7)
        assert other.num_blocks == 7
        assert other.device is TESLA_C2075

    def test_more_sources_takes_longer(self):
        gpu = VirtualGPU(TESLA_C2075)
        t = Trace()
        t.add(10**5, 4.0, 10**6)
        few = gpu.time_traces([t] * 14)
        many = gpu.time_traces([t] * 140)
        assert many.total_seconds > few.total_seconds

    def test_repr(self):
        assert "Tesla" in repr(VirtualGPU(TESLA_C2075))
