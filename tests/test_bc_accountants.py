import pytest

from repro.bc.accountants import (
    ACCOUNTANTS,
    CPUAccountant,
    EdgeParallelAccountant,
    NodeParallelAccountant,
    make_accountant,
)


@pytest.fixture(params=sorted(ACCOUNTANTS))
def accountant(request):
    return make_accountant(request.param, num_vertices=1000, total_arcs=10000)


class TestFactory:
    def test_names(self):
        assert set(ACCOUNTANTS) == {"cpu", "gpu-edge", "gpu-node",
                                    "gpu-node-atomic"}

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            make_accountant("fpga", 10, 20)

    def test_instances(self):
        assert isinstance(make_accountant("cpu", 10, 20), CPUAccountant)
        assert isinstance(make_accountant("gpu-edge", 10, 20),
                          EdgeParallelAccountant)
        assert isinstance(make_accountant("gpu-node", 10, 20),
                          NodeParallelAccountant)


class TestSharedEvents:
    def test_classify_cheap(self, accountant):
        accountant.classify()
        assert accountant.trace.total_items == 1

    def test_init_charges_n(self, accountant):
        accountant.init(1000)
        assert accountant.trace.total_items >= 1000

    def test_commit_atomics_track_touched(self, accountant):
        accountant.commit(1000, touched=37)
        assert accountant.trace.total_atomics == 37

    def test_finish_returns_trace(self, accountant):
        accountant.classify()
        assert accountant.finish() is accountant.trace


class TestWorkMapping:
    """The heart of the paper: the same event costs very different
    amounts under the three mappings."""

    def _sp(self, acc):
        acc.sp_level(frontier=4, arcs=40, onpath=10, raw_new=8, new=5)
        return acc.trace.total_items

    def test_edge_charges_all_arcs_per_level(self):
        acc = make_accountant("gpu-edge", 1000, 10000)
        assert self._sp(acc) >= 10000

    def test_node_charges_frontier_only(self):
        acc = make_accountant("gpu-node", 1000, 10000)
        items = self._sp(acc)
        assert items < 1000  # frontier + arcs + dedup pipeline

    def test_cpu_charges_useful_work(self):
        acc = make_accountant("cpu", 1000, 10000)
        assert self._sp(acc) == 4 + 40 + 10 + 5

    def test_dep_level_edge_vs_node(self):
        edge = make_accountant("gpu-edge", 1000, 10000)
        node = make_accountant("gpu-node", 1000, 10000)
        for acc in (edge, node):
            acc.dep_level(qq=20, level_nodes=6, arcs=60, adds=12, subs=3,
                          new_up=4)
        assert edge.trace.total_items > node.trace.total_items

    def test_node_dep_scans_whole_qq(self):
        node = make_accountant("gpu-node", 1000, 10000)
        node.dep_level(qq=500, level_nodes=1, arcs=2, adds=1, subs=0, new_up=0)
        assert node.trace.total_items >= 500

    def test_cpu_dep_ignores_qq_size(self):
        cpu = make_accountant("cpu", 1000, 10000)
        cpu.dep_level(qq=500, level_nodes=1, arcs=2, adds=1, subs=0, new_up=0)
        assert cpu.trace.total_items < 20

    def test_node_dedup_pipeline_charged(self):
        with_dups = make_accountant("gpu-node", 1000, 10000)
        without = make_accountant("gpu-node", 1000, 10000)
        with_dups.sp_level(frontier=4, arcs=40, onpath=10, raw_new=32, new=5)
        without.sp_level(frontier=4, arcs=40, onpath=10, raw_new=1, new=1)
        assert len(with_dups.trace) > len(without.trace)

    def test_atomic_accounting(self):
        node = make_accountant("gpu-node", 1000, 10000)
        node.sp_level(frontier=4, arcs=40, onpath=10, raw_new=8, new=5,
                      max_conflict=3)
        assert node.trace.total_atomics >= 18  # sigma hits + Q2 appends

    def test_prepass_and_pull_implemented_everywhere(self):
        for name in ACCOUNTANTS:
            acc = make_accountant(name, 1000, 10000)
            acc.pull_level(frontier=3, pull_arcs=12, scan_arcs=30, raw_new=6,
                           new=4)
            acc.prepass(moved=5, arcs=50, subs=7)
            assert acc.trace.total_items > 0

    def test_cpu_access_cycles_scale_cost(self):
        slow = make_accountant("cpu", 1000, 10000, access_cycles=200.0)
        fast = make_accountant("cpu", 1000, 10000, access_cycles=8.0)
        for acc in (slow, fast):
            acc.sp_level(frontier=4, arcs=40, onpath=10, raw_new=8, new=5)
        assert slow.trace.steps[0].cycles_per_item > \
            fast.trace.steps[0].cycles_per_item
