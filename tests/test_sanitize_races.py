"""Mutation harness for the kernel race sanitizer (Layer 1).

The proof obligation runs in both directions:

* **Sensitivity** — a copied BFS kernel with one seeded defect per
  finding class (dropped atomic → S101, dropped barrier → S102, broken
  frontier discipline → S103) is *detected*;
* **Specificity** — the shipped kernels produce **zero** findings on a
  real workload (Kronecker n=2^8, k=8 churn replay), and sanitize mode
  is bit-identical to the uninstrumented engine.

The mutants are faithful copies of the instrumented BFS in
:func:`repro.bc.brandes.single_source_state` with exactly one defect
each, run on a diamond graph (0-1, 0-2, 1-3, 2-3) whose two equal-cost
paths guarantee duplicate-head traffic at level 1.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bc.brandes import brandes_bc, single_source_state
from repro.bc.engine import DynamicBC
from repro.bc.static_gpu import static_bc_gpu
from repro.gpu.primitives import BENIGN_RACES, atomic_scatter_add
from repro.graph.csr import CSRGraph, DIST_INF
from repro.graph.stream import EdgeStream
from repro.sanitize import tracer as san
from repro.sanitize.report import S101, S102, S103

pytestmark = pytest.mark.sanitize


@pytest.fixture
def diamond() -> CSRGraph:
    return CSRGraph.from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)])


def _mutant_bfs(graph: CSRGraph, source: int, mutation: str):
    """The stage-2 BFS of ``single_source_state``, instrumented exactly
    like the original, with one seeded defect selected by *mutation*."""
    n = graph.num_vertices
    d = np.full(n, DIST_INF, dtype=np.int64)
    sigma = np.zeros(n, dtype=np.float64)
    d[source] = 0
    sigma[source] = 1.0
    tracer = san.MemoryTracer()

    merged = mutation == "merge-levels"
    with san.tracing(tracer), san.kernel(f"mutant:{mutation}"):
        if merged:
            # Seeded defect: the whole BFS shares ONE barrier interval.
            tracer.begin_interval("sp", 0)
        frontier = np.array([source], dtype=np.int64)
        depth = 0
        while frontier.size:
            tails, heads = graph.frontier_arcs(frontier)
            if tails.size == 0:
                break
            if not merged:
                tracer.begin_interval("sp", depth)
            san.read("d", heads)
            undiscovered = d[heads] == DIST_INF
            new_nodes = np.unique(heads[undiscovered])
            if new_nodes.size:
                d[new_nodes] = depth + 1
                san.write("d", new_nodes, intent="discover")
            on_path = d[heads] == depth + 1
            if np.any(on_path):
                san.read("sigma", tails[on_path])
                if mutation == "drop-atomic":
                    # Seeded defect: plain scatter instead of the
                    # declared atomic helper — duplicate heads collide.
                    np.add.at(sigma, heads[on_path], sigma[tails[on_path]])
                    san.write("sigma", heads[on_path])
                else:
                    atomic_scatter_add(
                        sigma, heads[on_path], sigma[tails[on_path]],
                        array="sigma",
                    )
            if mutation == "skip-dedup":
                # Seeded defect: raw (un-uniqued) discovery pushed.
                san.enqueue("Q", heads[undiscovered], depth + 1,
                            distances=d, direction=1)
            elif mutation == "wrong-level":
                # Seeded defect: frontier labeled with its parent level.
                san.enqueue("Q", new_nodes, depth, distances=d,
                            direction=1)
            elif mutation == "double-push":
                # Seeded defect: the frontier is enqueued twice.
                san.enqueue("Q", new_nodes, depth + 1, distances=d,
                            direction=1)
                san.enqueue("Q", new_nodes, depth + 1, distances=d,
                            direction=1)
            elif mutation == "wrong-direction":
                # Seeded defect: levels move against the declared
                # direction (distances omitted to isolate the check).
                san.enqueue("Q", new_nodes, -depth - 1, direction=1)
            else:
                san.enqueue("Q", new_nodes, depth + 1, distances=d,
                            direction=1)
            if not merged:
                tracer.end_interval()
            frontier = new_nodes
            depth += 1
        if merged:
            tracer.end_interval()
    return tracer.report()


class TestSensitivity:
    """Each seeded defect class is detected — nothing else fires."""

    def test_clean_copy_is_clean(self, diamond):
        report = _mutant_bfs(diamond, 0, "none")
        assert report.ok, report.summary()
        assert report.atomics > 0  # the copy exercised the helper

    def test_dropped_atomic_yields_s101(self, diamond):
        report = _mutant_bfs(diamond, 0, "drop-atomic")
        codes = {f.code for f in report.findings}
        assert codes == {S101}, report.summary()
        (finding,) = report.findings
        assert finding.array == "sigma"
        assert 3 in finding.sample  # the diamond's double-predecessor

    def test_dropped_barrier_yields_s102(self, diamond):
        report = _mutant_bfs(diamond, 0, "merge-levels")
        codes = {f.code for f in report.findings}
        assert S102 in codes, report.summary()
        assert S101 not in codes  # accumulation still atomic
        s102 = [f for f in report.findings if f.code == S102]
        assert any(f.array == "sigma" for f in s102)

    @pytest.mark.parametrize("mutation,needle", [
        ("skip-dedup", "duplicate"),
        ("wrong-level", "distance"),
        ("double-push", "re-enqueued"),
        ("wrong-direction", "direction"),
    ])
    def test_broken_frontier_yields_s103(self, diamond, mutation, needle):
        report = _mutant_bfs(diamond, 0, mutation)
        codes = {f.code for f in report.findings}
        assert codes == {S103}, report.summary()
        assert any(needle in f.message for f in report.findings)


class TestBenignRegistry:
    """The whitelist is by construction, not suppression."""

    def test_sigma_accumulation_is_declared(self):
        assert ("sigma", "accumulate") in BENIGN_RACES
        assert ("delta", "accumulate") in BENIGN_RACES
        assert ("d", "discover") in BENIGN_RACES

    def test_every_entry_has_a_justification(self):
        for (array, intent), why in BENIGN_RACES.items():
            assert isinstance(why, str) and len(why) > 10, (array, intent)

    def test_undeclared_atomic_contention_still_flags(self, diamond):
        """An atomic on an *undeclared* (array, intent) with real
        contention is S101 — the registry gates the exemption."""
        tracer = san.MemoryTracer()
        with san.tracing(tracer), san.kernel("probe"):
            with san.interval("sp", 0):
                buf = np.zeros(4)
                atomic_scatter_add(
                    buf, np.array([3, 3]), np.array([1.0, 1.0]),
                    array="scratch", intent="mystery",
                )
        report = tracer.report()
        assert {f.code for f in report.findings} == {S101}


class TestSpecificity:
    """Shipped kernels: zero findings on a real workload."""

    def test_brandes_clean_on_kron(self, kron_small):
        _, report = brandes_bc(kron_small, sources=range(8), sanitize=True)
        assert report.ok, report.summary()
        assert report.kernels == 8
        assert report.atomics > 0

    def test_static_gpu_clean_on_kron(self, kron_small):
        result = static_bc_gpu(kron_small, sources=range(4),
                               strategy="gpu-edge", sanitize=True)
        assert result.sanitizer is not None
        assert result.sanitizer.ok, result.sanitizer.summary()

    def test_engine_replay_clean_on_kron(self, kron_small):
        """All three dynamic cases (and the commit kernel) trace clean
        over a churn stream that exercises inserts and deletes."""
        stream = EdgeStream.churn(kron_small, 40, seed=11)
        engine = DynamicBC.from_graph(kron_small, num_sources=8, seed=5,
                                      backend="gpu-node", sanitize=True)
        try:
            cases = set()
            for event in stream:
                try:
                    if event.op == "insert":
                        rep = engine.insert_edge(event.u, event.v)
                    else:
                        rep = engine.delete_edge(event.u, event.v)
                except ValueError:
                    continue
                cases.update(int(c) for c in rep.cases)
            report = engine.sanitizer_report()
        finally:
            engine.close()
        assert report.ok, report.summary()
        assert len(cases) > 1  # the stream hit more than one scenario
        assert report.benign  # whitelisted traffic was actually seen

    def test_recompute_clean(self, kron_small):
        engine = DynamicBC.from_graph(kron_small, num_sources=4, seed=5,
                                      backend="gpu-node", sanitize=True)
        try:
            engine.recompute()
            report = engine.sanitizer_report()
        finally:
            engine.close()
        assert report.ok, report.summary()


class TestBitIdentity:
    """Sanitize mode observes; it never perturbs (acceptance: a
    100-event stream is bit-identical in bc/state/counters/reports)."""

    def test_100_event_stream_bit_identical(self, kron_small):
        stream = list(EdgeStream.churn(kron_small, 100, seed=11))

        def run(sanitize: bool):
            engine = DynamicBC.from_graph(
                kron_small, num_sources=8, seed=5, backend="gpu-node",
                sanitize=sanitize,
            )
            try:
                reports = []
                for event in stream:
                    try:
                        if event.op == "insert":
                            reports.append(engine.insert_edge(event.u, event.v))
                        else:
                            reports.append(engine.delete_edge(event.u, event.v))
                    except ValueError:
                        continue
                bc = engine.bc_scores.copy()
                counters = engine.counters
                return bc, counters, reports
            finally:
                engine.close()

        bc_ref, counters_ref, reports_ref = run(sanitize=False)
        bc_san, counters_san, reports_san = run(sanitize=True)

        assert bc_ref.tobytes() == bc_san.tobytes()  # bitwise, not approx
        assert counters_ref == counters_san
        assert len(reports_ref) == len(reports_san) == 100
        for ref, ins in zip(reports_ref, reports_san):
            assert ref.edge == ins.edge and ref.operation == ins.operation
            assert np.array_equal(ref.cases, ins.cases)
            assert ref.per_source_seconds.tobytes() == \
                ins.per_source_seconds.tobytes()
            assert ref.simulated_seconds == ins.simulated_seconds
            assert np.array_equal(ref.touched, ins.touched)
            assert ref.stage_seconds == ins.stage_seconds


class TestHookOverhead:
    """Hooks are inert without a tracer: no context, no recording."""

    def test_hooks_are_noops_when_off(self):
        assert san.current_tracer() is None
        assert not san.active()
        san.read("sigma", [1, 2])
        san.write("sigma", [1, 2])
        san.atomic("sigma", [1, 2])
        san.enqueue("Q", [1], 1)
        with san.kernel("off"), san.interval("sp", 0):
            pass  # cheap null contexts
        assert san.current_tracer() is None

    def test_single_source_state_untraced(self, diamond):
        d, sigma, delta, levels = single_source_state(diamond, 0)
        assert sigma[3] == 2.0  # two shortest paths through the diamond
        assert san.current_tracer() is None
