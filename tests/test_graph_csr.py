import numpy as np
import pytest

from repro.graph.csr import CSRGraph, DIST_INF
from repro.graph import generators as gen


class TestConstruction:
    def test_from_edges_basic(self):
        g = CSRGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assert g.num_vertices == 4
        assert g.num_edges == 3

    def test_neighbors_sorted(self):
        g = CSRGraph.from_edges(5, [(0, 4), (0, 2), (0, 1)])
        assert np.array_equal(g.neighbors(0), [1, 2, 4])

    def test_self_loops_dropped(self):
        g = CSRGraph.from_edges(3, [(0, 0), (0, 1)])
        assert g.num_edges == 1

    def test_duplicates_merged(self):
        g = CSRGraph.from_edges(3, [(0, 1), (1, 0), (0, 1)])
        assert g.num_edges == 1

    def test_duplicates_raise_when_disallowed(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges(3, [(0, 1), (1, 0)], allow_duplicates=False)

    def test_empty_graph(self):
        g = CSRGraph.empty(5)
        assert g.num_vertices == 5
        assert g.num_edges == 0
        assert g.degree(3) == 0

    def test_zero_vertices(self):
        g = CSRGraph.empty(0)
        assert g.num_vertices == 0

    def test_out_of_range_edge_raises(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges(2, [(0, 2)])

    def test_negative_endpoint_raises(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges(2, [(-1, 0)])

    def test_bad_shape_raises(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges(3, np.array([[0, 1, 2]]))

    def test_raw_ctor_validates_offsets(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 2, 1]), np.array([1, 0], dtype=np.int32))

    def test_raw_ctor_validates_arc_parity(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 1]), np.array([0], dtype=np.int32))

    def test_symmetry(self, small_er):
        tails, heads = small_er.arcs()
        fwd = set(zip(tails.tolist(), heads.tolist()))
        assert all((h, t) in fwd for t, h in fwd)


class TestQueries:
    def test_degree_matches_neighbors(self, karate):
        for v in range(karate.num_vertices):
            assert karate.degree(v) == karate.neighbors(v).size

    def test_degrees_vector(self, karate):
        assert np.array_equal(
            karate.degrees,
            [karate.degree(v) for v in range(karate.num_vertices)],
        )

    def test_degrees_sum_is_twice_edges(self, karate):
        assert karate.degrees.sum() == 2 * karate.num_edges

    def test_has_edge(self, karate):
        assert karate.has_edge(0, 1)
        assert karate.has_edge(1, 0)
        assert not karate.has_edge(0, 0)
        assert not karate.has_edge(0, 9)

    def test_vertex_range_checked(self, karate):
        with pytest.raises(IndexError):
            karate.neighbors(34)
        with pytest.raises(IndexError):
            karate.degree(-1)

    def test_edge_list_canonical(self, karate):
        el = karate.edge_list()
        assert el.shape == (karate.num_edges, 2)
        assert np.all(el[:, 0] < el[:, 1])

    def test_arcs_count(self, karate):
        tails, heads = karate.arcs()
        assert tails.size == heads.size == 2 * karate.num_edges

    def test_frontier_arcs_match_neighbors(self, karate):
        tails, heads = karate.frontier_arcs(np.array([0, 33]))
        assert tails.size == karate.degree(0) + karate.degree(33)
        assert np.array_equal(heads[tails == 0], karate.neighbors(0))
        assert np.array_equal(heads[tails == 33], karate.neighbors(33))

    def test_frontier_arcs_empty(self, karate):
        tails, heads = karate.frontier_arcs(np.array([], dtype=np.int64))
        assert tails.size == 0 and heads.size == 0

    def test_equality(self):
        a = CSRGraph.from_edges(3, [(0, 1)])
        b = CSRGraph.from_edges(3, [(0, 1)])
        c = CSRGraph.from_edges(3, [(1, 2)])
        assert a == b
        assert a != c

    def test_repr(self, karate):
        assert "n=34" in repr(karate) and "m=78" in repr(karate)


class TestBFS:
    def test_path_distances(self, path10):
        d = path10.bfs_distances(0)
        assert np.array_equal(d, np.arange(10))

    def test_unreachable_is_inf(self, two_components):
        d = two_components.bfs_distances(0)
        assert d[4] == 4
        assert all(d[v] == DIST_INF for v in range(5, 10))

    def test_source_distance_zero(self, karate):
        assert karate.bfs_distances(7)[7] == 0

    def test_distances_match_networkx(self, karate):
        import networkx as nx

        G = nx.karate_club_graph()
        ours = karate.bfs_distances(0)
        theirs = nx.single_source_shortest_path_length(G, 0)
        for v, dist in theirs.items():
            assert ours[v] == dist

    def test_connected_components(self, two_components):
        labels = two_components.connected_components()
        assert np.array_equal(labels[:5], [0] * 5)
        assert np.array_equal(labels[5:], [5] * 5)

    def test_components_connected_graph(self, karate):
        assert np.all(karate.connected_components() == 0)


class TestNonEdges:
    def test_sampled_non_edges_are_non_edges(self, karate, rng):
        pairs = karate.undirected_non_edges(rng, 20)
        assert pairs.shape == (20, 2)
        for u, v in pairs:
            assert not karate.has_edge(int(u), int(v))
            assert u != v

    def test_distinct_pairs(self, karate, rng):
        pairs = karate.undirected_non_edges(rng, 30)
        keys = {(min(u, v), max(u, v)) for u, v in pairs.tolist()}
        assert len(keys) == 30

    def test_too_many_raises(self, rng):
        g = gen.complete_graph(4)
        with pytest.raises(ValueError):
            g.undirected_non_edges(rng, 1)
