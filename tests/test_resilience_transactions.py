"""Transactional updates: a mid-update failure must leave the engine
bit-identical to its pre-update state, surfaced as a structured
UpdateError, and `repair_source` must rebuild a corrupted row exactly."""

import numpy as np
import pytest

from repro.bc.engine import DynamicBC
from repro.resilience import FaultInjected, FaultInjector, UpdateError


def snapshot_state(eng):
    return (
        eng.graph.snapshot().edge_list().copy(),
        eng.state.d.copy(),
        eng.state.sigma.copy(),
        eng.state.delta.copy(),
        eng.state.bc.copy(),
        eng.counters,
    )


def assert_state_equal(eng, snap):
    edges, d, sigma, delta, bc, counters = snap
    assert np.array_equal(eng.graph.snapshot().edge_list(), edges)
    assert np.array_equal(eng.state.d, d)
    assert np.array_equal(eng.state.sigma, sigma)
    assert np.array_equal(eng.state.delta, delta)
    assert np.array_equal(eng.state.bc, bc)
    assert eng.counters == counters


class TestRollback:
    def test_insert_fault_rolls_back_everything(self, karate):
        eng = DynamicBC.from_graph(karate, num_sources=8, seed=1)
        before = snapshot_state(eng)
        FaultInjector(3).arm_update_fault(eng, after_sources=1)
        with pytest.raises(UpdateError) as info:
            eng.insert_edge(0, 9)
        assert info.value.rolled_back
        assert info.value.edge == (0, 9)
        assert info.value.operation == "insert"
        assert isinstance(info.value.cause, FaultInjected)
        assert_state_equal(eng, before)
        eng.verify()

    def test_delete_fault_rolls_back_everything(self, karate):
        eng = DynamicBC.from_graph(karate, num_sources=8, seed=1)
        before = snapshot_state(eng)
        FaultInjector(3).arm_update_fault(eng, after_sources=0)
        with pytest.raises(UpdateError) as info:
            eng.delete_edge(0, 1)
        assert info.value.operation == "delete"
        assert eng.graph.has_edge(0, 1)
        assert_state_equal(eng, before)
        eng.verify()

    def test_retry_after_rollback_matches_clean_twin(self, karate):
        faulty = DynamicBC.from_graph(karate, num_sources=8, seed=1)
        clean = DynamicBC.from_graph(karate, num_sources=8, seed=1)
        FaultInjector(3).arm_update_fault(faulty, after_sources=1)
        with pytest.raises(UpdateError):
            faulty.insert_edge(0, 9)
        # the one-shot trap disarmed itself; the retry must succeed and
        # be bit-identical to an engine that never saw the fault
        from repro.resilience.chaos import reports_identical

        r_faulty = faulty.insert_edge(0, 9)
        r_clean = clean.insert_edge(0, 9)
        assert reports_identical(r_faulty, r_clean)
        assert np.array_equal(faulty.bc_scores, clean.bc_scores)
        assert faulty.counters == clean.counters

    def test_non_transactional_engine_propagates_raw_fault(self, karate):
        eng = DynamicBC.from_graph(karate, num_sources=8, seed=1,
                                   transactional=False)
        FaultInjector(3).arm_update_fault(eng, after_sources=0)
        with pytest.raises(FaultInjected):
            eng.insert_edge(0, 9)

    def test_looped_path_rolls_back_too(self, karate):
        eng = DynamicBC.from_graph(karate, num_sources=8, seed=1,
                                   vectorized=False)
        before = snapshot_state(eng)
        FaultInjector(3).arm_update_fault(eng, after_sources=2)
        with pytest.raises(UpdateError):
            eng.insert_edge(0, 9)
        assert_state_equal(eng, before)
        eng.verify()

    def test_transactional_reports_match_non_transactional(self, karate):
        a = DynamicBC.from_graph(karate, num_sources=8, seed=1)
        b = DynamicBC.from_graph(karate, num_sources=8, seed=1,
                                 transactional=False)
        from repro.resilience.chaos import reports_identical

        assert reports_identical(a.insert_edge(0, 9), b.insert_edge(0, 9))
        assert reports_identical(a.delete_edge(0, 9), b.delete_edge(0, 9))
        assert np.array_equal(a.bc_scores, b.bc_scores)


class TestRepairSource:
    @pytest.mark.parametrize("kind", ["d", "sigma", "delta"])
    def test_repairs_each_corruption_kind(self, karate, kind):
        eng = DynamicBC.from_graph(karate, num_sources=8, seed=1)
        i, _ = FaultInjector(7).corrupt_row(eng, kind=kind)
        assert eng.check_rows(range(8)) == [i]
        eng.repair_source(i)
        assert eng.check_rows(range(8)) == []
        eng.verify()

    def test_charges_repair_kernel(self, karate):
        eng = DynamicBC.from_graph(karate, num_sources=8, seed=1)
        eng.repair_source(0)
        assert "repair" in eng.counters.by_kernel
        assert eng.counters.by_kernel["repair"] > 0

    def test_out_of_range_index_rejected(self, karate):
        eng = DynamicBC.from_graph(karate, num_sources=8, seed=1)
        with pytest.raises(IndexError):
            eng.repair_source(8)
        with pytest.raises(IndexError):
            eng.repair_source(-1)

    def test_repair_restores_bc_after_delta_corruption(self, karate):
        # Corrupting delta breaks the bc = sum(delta rows) invariant in
        # a way an incremental patch could never detect; repair_source
        # must refold bc from the rebuilt rows.
        eng = DynamicBC.from_graph(karate, num_sources=8, seed=1)
        expected = eng.bc_scores.copy()
        i, _ = FaultInjector(11).corrupt_row(eng, kind="delta")
        eng.repair_source(i)
        assert np.allclose(eng.bc_scores, expected, atol=1e-9)
        eng.verify()
