import math

import pytest

from repro.gpu.costmodel import (
    CostModel,
    OpCosts,
    cpu_access_cycles,
    traversal_working_set_bytes,
)
from repro.gpu.counters import Step, Trace
from repro.gpu.device import CORE_I7_2600K, GTX_560, TESLA_C2075


class TestStepSeconds:
    def test_compute_bound_scaling(self):
        model = CostModel(TESLA_C2075)
        cheap = Step(work_items=1024, cycles_per_item=100.0, bytes_moved=0.0)
        costly = Step(work_items=10 * 1024, cycles_per_item=100.0, bytes_moved=0.0)
        assert model.step_seconds(costly) == pytest.approx(
            10 * model.step_seconds(cheap)
        )

    def test_threads_strip_mine(self):
        model = CostModel(TESLA_C2075)
        one_wave = Step(1024, 1000.0, 0.0)
        partial = Step(1, 1000.0, 0.0)
        assert model.step_seconds(one_wave) == pytest.approx(
            model.step_seconds(partial)
        )

    def test_memory_bound_dominates(self):
        model = CostModel(TESLA_C2075)
        mem = Step(work_items=1, cycles_per_item=1.0, bytes_moved=1e6)
        expected = 1e6 / (min(TESLA_C2075.sm_mem_gbs,
                              TESLA_C2075.mem_bandwidth_gbs / 14) * 1e9)
        assert model.step_seconds(mem) == pytest.approx(expected, rel=0.05)

    def test_conflicting_atomics_serialize(self):
        model = CostModel(TESLA_C2075)
        free = Step(1, 1.0, 0.0, atomic_ops=64, max_conflict=1)
        contended = Step(1, 1.0, 0.0, atomic_ops=64, max_conflict=64)
        assert model.step_seconds(contended) > model.step_seconds(free)

    def test_monotone_in_work(self):
        model = CostModel(GTX_560)
        times = [
            model.step_seconds(Step(w, 4.0, 12.0 * w)) for w in (10, 100, 10**4, 10**6)
        ]
        assert times == sorted(times)

    def test_empty_step_is_free(self):
        model = CostModel(TESLA_C2075)
        assert model.step_seconds(Step(0, 4.0, 0.0)) == 0.0

    def test_cpu_sequential(self):
        model = CostModel(CORE_I7_2600K)
        s = Step(work_items=1000, cycles_per_item=10.0, bytes_moved=0.0)
        expected = 1000 * 10 * CORE_I7_2600K.cpi / CORE_I7_2600K.clock_hz
        assert model.step_seconds(s) == pytest.approx(expected, rel=0.01)


class TestBlockScaling:
    def test_bandwidth_per_block_shrinks_past_sms(self):
        few = CostModel(TESLA_C2075, num_blocks=7)
        full = CostModel(TESLA_C2075, num_blocks=14)
        mem = Step(1, 1.0, 1e6)
        # per-block bandwidth is capped the same below/at saturation
        assert few.step_seconds(mem) <= full.step_seconds(mem) * 1.05

    def test_residency_penalty(self):
        one = CostModel(TESLA_C2075, num_blocks=14)
        two = CostModel(TESLA_C2075, num_blocks=28)
        s = Step(1024, 100.0, 0.0)
        assert two.step_seconds(s) > one.step_seconds(s)

    def test_cpu_forces_one_block(self):
        model = CostModel(CORE_I7_2600K, num_blocks=99)
        assert model.num_blocks == 1

    def test_negative_blocks_rejected(self):
        with pytest.raises(ValueError):
            CostModel(TESLA_C2075, num_blocks=-1)


class TestTraceSeconds:
    def test_sums_steps(self):
        model = CostModel(TESLA_C2075)
        t = Trace()
        t.add(100, 4.0, 1000.0)
        t.add(200, 4.0, 2000.0)
        assert model.trace_seconds(t) == pytest.approx(
            sum(model.step_seconds(s) for s in t.steps)
        )

    def test_accepts_plain_list(self):
        model = CostModel(TESLA_C2075)
        steps = [Step(10, 1.0, 10.0)]
        assert model.trace_seconds(steps) > 0

    def test_launch_overhead(self):
        assert CostModel(TESLA_C2075).launch_overhead_seconds == pytest.approx(4e-6)
        assert CostModel(CORE_I7_2600K).launch_overhead_seconds == 0.0


class TestCacheModel:
    def test_small_working_set_is_cached(self):
        cycles = cpu_access_cycles(CORE_I7_2600K, 100, 1000)
        assert cycles == pytest.approx(CORE_I7_2600K.cached_access_cycles)

    def test_large_working_set_misses(self):
        cycles = cpu_access_cycles(CORE_I7_2600K, 10**7, 10**8)
        assert cycles > 0.8 * CORE_I7_2600K.random_access_cycles

    def test_monotone_in_size(self):
        sizes = [(10**k, 10**(k + 1)) for k in range(2, 8)]
        vals = [cpu_access_cycles(CORE_I7_2600K, n, a) for n, a in sizes]
        assert vals == sorted(vals)

    def test_gpu_has_no_cache_model(self):
        assert cpu_access_cycles(TESLA_C2075, 10**7, 10**8) == pytest.approx(
            TESLA_C2075.cached_access_cycles
        )

    def test_working_set_grows(self):
        assert traversal_working_set_bytes(1000, 10000) < \
            traversal_working_set_bytes(2000, 20000)


class TestOpCosts:
    def test_defaults_positive(self):
        ops = OpCosts()
        for field in (
            "edge_check_cycles", "edge_check_bytes", "edge_hit_bytes",
            "node_pop_cycles", "arc_scan_cycles", "init_bytes",
            "commit_bytes", "dep_update_cycles",
        ):
            assert getattr(ops, field) > 0


class TestStageBreakdown:
    def test_sums_to_trace_seconds(self):
        model = CostModel(TESLA_C2075)
        t = Trace()
        t.add(100, 4.0, 1000.0, stage="sp")
        t.add(50, 4.0, 500.0, stage="dep")
        t.add(10, 4.0, 100.0)  # untagged -> "other"
        bd = model.stage_breakdown(t)
        assert set(bd) == {"sp", "dep", "other"}
        assert sum(bd.values()) == pytest.approx(model.trace_seconds(t))

    def test_empty_trace(self):
        model = CostModel(TESLA_C2075)
        assert model.stage_breakdown(Trace()) == {}

    def test_add_stage_helper(self):
        t = Trace()
        t.add_stage("init", 10, 2.0, 100.0)
        assert t.steps[0].stage == "init"
        assert t.steps[0].work_items == 10
