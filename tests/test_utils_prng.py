import numpy as np
import pytest

from repro.utils.prng import default_rng, sample_without_replacement, spawn_rngs


class TestDefaultRng:
    def test_int_seed_is_deterministic(self):
        a = default_rng(42).integers(0, 1000, 10)
        b = default_rng(42).integers(0, 1000, 10)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(1)
        assert default_rng(g) is g

    def test_none_gives_generator(self):
        assert isinstance(default_rng(None), np.random.Generator)

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(5)
        g = default_rng(seq)
        assert isinstance(g, np.random.Generator)


class TestSpawnRngs:
    def test_children_are_independent_and_deterministic(self):
        a = [g.integers(0, 10**9) for g in spawn_rngs(7, 3)]
        b = [g.integers(0, 10**9) for g in spawn_rngs(7, 3)]
        assert a == b
        assert len(set(a)) == 3  # overwhelmingly likely distinct

    def test_zero_children(self):
        assert spawn_rngs(1, 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)

    def test_generator_seed_supported(self):
        g = np.random.default_rng(3)
        children = spawn_rngs(g, 2)
        assert len(children) == 2


class TestSampleWithoutReplacement:
    def test_distinct_and_in_range(self, rng):
        sample = sample_without_replacement(rng, 100, 30)
        assert len(np.unique(sample)) == 30
        assert sample.min() >= 0 and sample.max() < 100

    def test_sorted_output(self, rng):
        sample = sample_without_replacement(rng, 50, 10)
        assert np.array_equal(sample, np.sort(sample))

    def test_exclude_removes_candidates(self, rng):
        sample = sample_without_replacement(rng, 10, 8, exclude=[0, 1])
        assert 0 not in sample and 1 not in sample

    def test_k_equals_population(self, rng):
        sample = sample_without_replacement(rng, 5, 5)
        assert np.array_equal(sample, np.arange(5))

    def test_too_many_raises(self, rng):
        with pytest.raises(ValueError):
            sample_without_replacement(rng, 5, 6)

    def test_too_many_after_exclusion_raises(self, rng):
        with pytest.raises(ValueError):
            sample_without_replacement(rng, 5, 5, exclude=[2])

    def test_negative_k_raises(self, rng):
        with pytest.raises(ValueError):
            sample_without_replacement(rng, 5, -1)
