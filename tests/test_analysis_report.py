import numpy as np

from repro.analysis.blocks import BlockSweepResult
from repro.analysis.report import (
    render_fig1,
    render_fig2,
    render_fig4,
    render_headline,
    render_table1,
    render_table2,
    render_table3,
)
from repro.analysis.scenarios import ScenarioDistribution
from repro.analysis.speedup import HeadlineSummary, Table2Row, Table3Row
from repro.analysis.touched import TouchedStudy
from repro.graph.properties import analyze
from repro.graph.suite import make_suite_graph


class TestRenderers:
    def test_table1(self):
        bench = make_suite_graph("small", scale=0.2, seed=1)
        out = render_table1([bench], [analyze(bench.graph)])
        assert "smallworld" in out
        assert "TABLE I" in out

    def test_fig1(self):
        r = BlockSweepResult("caida", "Tesla C2075", [1, 7, 14],
                             [1.0, 6.5, 12.1])
        out = render_fig1([r])
        assert "caida" in out and "12.10x" in out
        assert "best grid: 14" in out

    def test_fig2(self):
        r = ScenarioDistribution("pref", {1: 10, 2: 25, 3: 5})
        out = render_fig2([r])
        assert "pref" in out
        assert "62.5%" in out  # 25/40 of all
        assert "83.3%" in out  # 25/30 of work

    def test_table2(self):
        row = Table2Row("caida", cpu_seconds=100.0, edge_seconds=10.0,
                        node_seconds=1.0)
        out = render_table2([row])
        assert "10.00x" in out and "100.00x" in out

    def test_table3(self):
        row = Table3Row("eu", recompute_seconds=10.0, slowest=2.0,
                        average=1.0, fastest=0.1)
        out = render_table3([row])
        assert "Slowest" in out and "Average" in out and "Fastest" in out
        assert "5.00x" in out and "100.00x" in out

    def test_fig4(self):
        s = TouchedStudy("kron", np.array([0.001, 0.01, 0.35]))
        out = render_fig4([s])
        assert "kron" in out and "max=0.3500" in out

    def test_headline(self):
        out = render_headline(HeadlineSummary(110.4, 45.2))
        assert "110.4x" in out and "45.2x" in out


class TestCsvExports:
    def test_fig1_csv(self):
        from repro.analysis.report import fig1_csv

        r = BlockSweepResult("caida", "Tesla C2075", [1, 14], [1.0, 12.5])
        csv = fig1_csv([r])
        lines = csv.splitlines()
        assert lines[0] == "graph,device,blocks,speedup"
        assert lines[1].startswith("caida,Tesla C2075,1,1.0")
        assert len(lines) == 3

    def test_fig4_csv(self):
        from repro.analysis.report import fig4_csv

        s = TouchedStudy("kron", np.array([0.01, 0.35]))
        csv = fig4_csv([s])
        lines = csv.splitlines()
        assert lines[0] == "graph,rank,touched_fraction"
        assert lines[2] == "kron,1,0.35000000"


class TestSubcaseRenderer:
    def test_render_subcases(self):
        from repro.analysis.report import render_subcases

        out = render_subcases({
            "pref": {"1-connected": 3, "2": 5, "3-merge": 1},
        })
        assert "pref" in out
        assert "3 merge" in out
