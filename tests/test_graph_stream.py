import numpy as np
import pytest

from repro.bc.engine import DynamicBC
from repro.graph import generators as gen
from repro.graph.dynamic import DynamicGraph
from repro.graph.stream import (
    DELETE,
    INSERT,
    EdgeEvent,
    EdgeStream,
    ReplayResult,
    replay,
)


class TestEdgeEvent:
    def test_valid(self):
        e = EdgeEvent(1.0, 2, 3)
        assert e.op == INSERT

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            EdgeEvent(0.0, 1, 1)

    def test_bad_op_rejected(self):
        with pytest.raises(ValueError):
            EdgeEvent(0.0, 1, 2, op="upsert")


class TestEdgeStream:
    def test_ordering_enforced(self):
        with pytest.raises(ValueError):
            EdgeStream([EdgeEvent(2.0, 0, 1), EdgeEvent(1.0, 1, 2)])

    def test_duration(self):
        s = EdgeStream([EdgeEvent(1.0, 0, 1), EdgeEvent(4.0, 1, 2)])
        assert s.duration == 3.0
        assert len(s) == 2

    def test_empty(self):
        assert EdgeStream().duration == 0.0


class TestPoissonGrowth:
    def test_all_insertions_of_non_edges(self, karate):
        s = EdgeStream.poisson_growth(karate, 20, rate=2.0, seed=1)
        assert len(s) == 20
        for e in s:
            assert e.op == INSERT
            assert not karate.has_edge(e.u, e.v)

    def test_times_increasing(self, karate):
        s = EdgeStream.poisson_growth(karate, 15, seed=2)
        times = [e.time for e in s]
        assert times == sorted(times)

    def test_deterministic(self, karate):
        a = EdgeStream.poisson_growth(karate, 10, seed=3)
        b = EdgeStream.poisson_growth(karate, 10, seed=3)
        assert a.events == b.events

    def test_bad_rate(self, karate):
        with pytest.raises(ValueError):
            EdgeStream.poisson_growth(karate, 5, rate=0.0)


class TestRemovalReinsertion:
    def test_protocol(self, karate):
        dyn = DynamicGraph.from_csr(karate)
        s = EdgeStream.removal_reinsertion(dyn, 10, seed=4)
        assert dyn.num_edges == 68
        for e in s:
            assert e.op == INSERT
            assert not dyn.has_edge(e.u, e.v)


class TestChurn:
    def test_simple_graph_preserved(self, karate):
        s = EdgeStream.churn(karate, 40, delete_fraction=0.4, seed=5)
        live = {tuple(e) for e in karate.edge_list().tolist()}
        for e in s:
            key = (min(e.u, e.v), max(e.u, e.v))
            if e.op == INSERT:
                assert key not in live
                live.add(key)
            else:
                assert key in live
                live.remove(key)

    def test_bad_fraction(self, karate):
        with pytest.raises(ValueError):
            EdgeStream.churn(karate, 5, delete_fraction=1.5)


class TestWindows:
    def test_grouping(self):
        s = EdgeStream([EdgeEvent(0.1, 0, 1), EdgeEvent(0.9, 1, 2),
                        EdgeEvent(2.5, 2, 3)])
        windows = list(s.windows(1.0))
        assert len(windows) == 2
        assert windows[0][0] == 0.0 and len(windows[0][1]) == 2
        assert windows[1][0] == 2.0 and len(windows[1][1]) == 1

    def test_bad_width(self):
        with pytest.raises(ValueError):
            list(EdgeStream().windows(0))


class TestReplay:
    def test_replay_and_verify(self, karate):
        eng = DynamicBC.from_graph(karate, num_sources=8, seed=1)
        stream = EdgeStream.churn(karate, 15, delete_fraction=0.3, seed=6)
        result = replay(eng, stream)
        assert len(result.reports) == 15
        assert result.simulated_seconds > 0
        assert result.updates_per_second > 0
        eng.verify()

    def test_empty_stream_zero_throughput(self, karate):
        eng = DynamicBC.from_graph(karate, num_sources=8, seed=1)
        result = replay(eng, EdgeStream())
        assert result.updates_per_second == 0.0
        assert result.reports == []

    def test_zero_simulated_seconds_zero_throughput(self):
        # Regression: used to divide by zero and report inf.
        result = ReplayResult(reports=[object()], simulated_seconds=0.0,
                              wall_seconds=0.1)
        assert result.updates_per_second == 0.0

    def test_duplicate_insert_skipped_not_fatal(self, karate):
        eng = DynamicBC.from_graph(karate, num_sources=8, seed=1)
        stream = EdgeStream([
            EdgeEvent(0.5, 0, 1),          # already in karate -> skip
            EdgeEvent(1.0, 0, 9),          # fresh insert -> applied
            EdgeEvent(1.5, 0, 15, DELETE),  # missing edge -> skip
            EdgeEvent(2.0, 0, 9, DELETE),  # applied
        ])
        result = replay(eng, stream)
        assert len(result.reports) == 2
        reasons = [(s.index, s.reason) for s in result.skipped]
        assert reasons == [(0, "duplicate-insert"), (2, "missing-edge")]
        eng.verify()

    def test_replay_matches_manual(self, karate):
        stream = EdgeStream.poisson_growth(karate, 5, seed=7)
        a = DynamicBC.from_graph(karate, num_sources=8, seed=1)
        replay(a, stream)
        b = DynamicBC.from_graph(karate, num_sources=8, seed=1)
        for e in stream:
            b.insert_edge(e.u, e.v)
        assert np.allclose(a.bc_scores, b.bc_scores)


class TestBatchAPI:
    def test_insert_edges_skips_existing(self, karate):
        eng = DynamicBC.from_graph(karate, num_sources=6, seed=2)
        result = eng.insert_edges([(0, 1), (0, 9), (4, 4)])
        assert len(result) == 1  # only (0, 9) is new and not a loop
        assert result.skipped == [(0, 1), (4, 4)]
        eng.verify()

    def test_delete_edges_skips_missing(self, karate):
        eng = DynamicBC.from_graph(karate, num_sources=6, seed=2)
        result = eng.delete_edges([(0, 1), (0, 9)])
        assert len(result) == 1
        assert result.skipped == [(0, 9)]
        eng.verify()

    def test_round_trip(self, karate):
        eng = DynamicBC.from_graph(karate, num_sources=6, seed=2)
        before = eng.bc_scores.copy()
        edges = [(0, 9), (5, 25), (13, 22)]
        eng.insert_edges(edges)
        eng.delete_edges(edges)
        assert np.allclose(eng.bc_scores, before, atol=1e-9)


class TestStreamIO:
    def test_round_trip(self, karate, tmp_path):
        s = EdgeStream.churn(karate, 12, seed=9)
        path = tmp_path / "stream.csv"
        s.save(path)
        loaded = EdgeStream.load(path)
        assert loaded.events == s.events

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("t,u,v\n")
        with pytest.raises(ValueError, match="header"):
            EdgeStream.load(path)

    def test_malformed_row_rejected(self, tmp_path):
        path = tmp_path / "bad2.csv"
        path.write_text("time,u,v,op\n1.0,2,3\n")
        with pytest.raises(ValueError, match="malformed"):
            EdgeStream.load(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "ok.csv"
        path.write_text("time,u,v,op\n1.0,2,3,insert\n\n")
        assert len(EdgeStream.load(path)) == 1

    @pytest.mark.parametrize("row,fragment", [
        ("1.0,2,3,upsert", "invalid op"),
        ("1.0,-2,3,insert", "negative vertex id"),
        ("1.0,2,three,insert", "invalid vertex id"),
        ("soon,2,3,insert", "invalid timestamp"),
        ("1.0,2,3,insert,extra", "malformed"),
        ("1.0,4,4,insert", "self loop"),
    ])
    def test_bad_rows_rejected_with_location(self, tmp_path, row, fragment):
        path = tmp_path / "bad.csv"
        path.write_text(f"time,u,v,op\n0.5,0,1,insert\n{row}\n")
        with pytest.raises(ValueError, match=fragment) as info:
            EdgeStream.load(path)
        # the message pinpoints the offending line
        assert f"{path}:3" in str(info.value)

    def test_save_is_atomic(self, karate, tmp_path):
        s = EdgeStream.churn(karate, 5, seed=9)
        path = tmp_path / "stream.csv"
        s.save(path)
        assert [p.name for p in tmp_path.iterdir()] == ["stream.csv"]
