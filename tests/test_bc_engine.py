import numpy as np
import pytest

from repro.bc.brandes import brandes_bc
from repro.bc.engine import BACKENDS, DynamicBC, UpdateReport
from repro.bc.state import BCState
from repro.gpu.device import CORE_I7_2600K, GTX_560, TESLA_C2075
from repro.graph import generators as gen
from repro.graph.dynamic import DynamicGraph


class TestConstruction:
    def test_backends_enumerated(self):
        assert set(BACKENDS) == {"cpu", "gpu-edge", "gpu-node",
                                 "gpu-node-atomic"}

    def test_unknown_backend_raises(self, karate):
        with pytest.raises(ValueError, match="backend"):
            DynamicBC.from_graph(karate, num_sources=4, backend="tpu")

    def test_default_devices(self, karate):
        cpu = DynamicBC.from_graph(karate, num_sources=4, backend="cpu")
        gpu = DynamicBC.from_graph(karate, num_sources=4, backend="gpu-node")
        assert cpu.device is CORE_I7_2600K
        assert gpu.device is TESLA_C2075

    def test_explicit_device(self, karate):
        eng = DynamicBC.from_graph(karate, num_sources=4, backend="gpu-node",
                                   device=GTX_560)
        assert eng.device is GTX_560
        assert eng.num_blocks == 7

    def test_explicit_sources(self, karate):
        eng = DynamicBC.from_graph(karate, sources=[3, 1, 2])
        assert np.array_equal(eng.sources, [1, 2, 3])

    def test_exact_mode_all_sources(self, path10):
        eng = DynamicBC.from_graph(path10)
        assert eng.state.num_sources == 10
        assert np.allclose(eng.bc_scores, brandes_bc(path10))

    def test_accepts_dynamic_graph(self, karate):
        dyn = DynamicGraph.from_csr(karate)
        eng = DynamicBC.from_graph(dyn, num_sources=4, seed=1)
        assert eng.graph is dyn

    def test_state_graph_mismatch_rejected(self, karate, path10):
        st = BCState.compute(path10, [0])
        with pytest.raises(ValueError):
            DynamicBC(karate, st)


class TestInsert:
    def test_report_fields(self, karate):
        eng = DynamicBC.from_graph(karate, num_sources=8, seed=1)
        rep = eng.insert_edge(0, 9)
        assert isinstance(rep, UpdateReport)
        assert rep.edge == (0, 9)
        assert rep.operation == "insert"
        assert rep.cases.shape == (8,)
        assert rep.per_source_seconds.shape == (8,)
        assert rep.simulated_seconds > 0
        assert rep.wall_seconds > 0
        assert sum(rep.case_histogram.values()) == 8

    def test_existing_edge_raises(self, karate):
        eng = DynamicBC.from_graph(karate, num_sources=4, seed=1)
        with pytest.raises(ValueError):
            eng.insert_edge(0, 1)

    def test_self_loop_raises(self, karate):
        eng = DynamicBC.from_graph(karate, num_sources=4, seed=1)
        with pytest.raises(ValueError):
            eng.insert_edge(3, 3)

    def test_scores_track_exact(self, path10):
        eng = DynamicBC.from_graph(path10)  # exact: all sources
        eng.insert_edge(0, 9)
        expected = brandes_bc(eng.graph.snapshot())
        assert np.allclose(eng.bc_scores, expected)

    def test_case1_touches_nothing(self, two_components):
        # both endpoints unreachable from sources in the first component
        eng = DynamicBC.from_graph(two_components, sources=[0])
        rep = eng.insert_edge(6, 8)
        assert rep.case_histogram == {1: 1}
        assert rep.touched[0] == 0
        eng.verify()

    def test_counters_accumulate(self, karate):
        eng = DynamicBC.from_graph(karate, num_sources=6, seed=2)
        eng.insert_edge(0, 9)
        first = eng.counters.work_items
        eng.insert_edge(4, 20)
        assert eng.counters.work_items > first
        assert eng.counters.kernel_launches == 8

    def test_per_source_seconds_positive_for_work(self, karate):
        eng = DynamicBC.from_graph(karate, num_sources=6, seed=2)
        rep = eng.insert_edge(0, 9)
        worked = rep.cases >= 2
        assert np.all(rep.per_source_seconds[worked] > 0)


class TestRecompute:
    def test_recompute_equals_incremental(self, karate):
        eng = DynamicBC.from_graph(karate, num_sources=8, seed=5)
        eng.insert_edge(0, 9)
        eng.insert_edge(15, 16)
        incremental = eng.bc_scores.copy()
        eng.recompute()
        assert np.allclose(eng.bc_scores, incremental, atol=1e-9)

    def test_verify_passes_after_stream(self, karate, rng):
        eng = DynamicBC.from_graph(karate, num_sources=8, seed=5)
        for u, v in karate.undirected_non_edges(rng, 10).tolist():
            if not eng.graph.has_edge(u, v):
                eng.insert_edge(u, v)
        eng.verify()


class TestBackendEquivalence:
    def test_all_backends_same_scores(self, small_er, rng):
        """The three strategies are different *cost* models over the
        same state transitions — scores must match bitwise-close."""
        results = {}
        for backend in BACKENDS:
            dyn = DynamicGraph.from_csr(small_er)
            removed = dyn.remove_random_edges(np.random.default_rng(3), 8)
            eng = DynamicBC.from_graph(dyn, num_sources=10, backend=backend,
                                       seed=7)
            for u, v in removed:
                eng.insert_edge(int(u), int(v))
            results[backend] = eng.bc_scores.copy()
        assert np.allclose(results["cpu"], results["gpu-edge"])
        assert np.allclose(results["cpu"], results["gpu-node"])

    def test_simulated_times_differ(self, small_er):
        """...but their simulated costs must NOT match (that is the
        entire point of the paper)."""
        times = {}
        for backend in BACKENDS:
            dyn = DynamicGraph.from_csr(small_er)
            removed = dyn.remove_random_edges(np.random.default_rng(3), 8)
            eng = DynamicBC.from_graph(dyn, num_sources=10, backend=backend,
                                       seed=7)
            times[backend] = sum(
                eng.insert_edge(int(u), int(v)).simulated_seconds
                for u, v in removed
            )
        assert times["gpu-node"] < times["gpu-edge"]

    def test_repr(self, karate):
        eng = DynamicBC.from_graph(karate, num_sources=4, seed=1)
        assert "gpu-node" in repr(eng)


class TestMemoryReport:
    def test_okn_accounting(self, karate):
        eng = DynamicBC.from_graph(karate, num_sources=8, seed=1)
        report = eng.memory_report()
        n, k = 34, 8
        assert report["d"] == k * n * 8
        assert report["sigma"] == k * n * 8
        assert report["delta"] == k * n * 8
        assert report["bc"] == n * 8
        assert report["total"] == sum(v for kk, v in report.items()
                                      if kk != "total")

    def test_grows_with_sources(self, karate):
        small = DynamicBC.from_graph(karate, num_sources=4, seed=1)
        big = DynamicBC.from_graph(karate, num_sources=16, seed=1)
        assert big.memory_report()["total"] > small.memory_report()["total"]


class TestSpotCheck:
    def test_passes_on_healthy_state(self, karate):
        eng = DynamicBC.from_graph(karate, num_sources=8, seed=1)
        eng.insert_edge(0, 9)
        eng.spot_check(num_sources=8, seed=2)

    def test_detects_corruption(self, karate):
        eng = DynamicBC.from_graph(karate, num_sources=8, seed=1)
        eng.state.sigma[3, 7] += 1.0
        with pytest.raises(AssertionError, match="sigma"):
            eng.spot_check(num_sources=8, seed=2)

    def test_sample_smaller_than_k(self, karate):
        eng = DynamicBC.from_graph(karate, num_sources=8, seed=1)
        eng.spot_check(num_sources=2, seed=3)  # must not raise


class TestStageBreakdown:
    def test_stages_present_and_sum(self, karate):
        eng = DynamicBC.from_graph(karate, num_sources=8, seed=1)
        rep = eng.insert_edge(0, 9)
        assert "classify" in rep.stage_seconds
        if (rep.cases >= 2).any():
            assert "init" in rep.stage_seconds
            assert "commit" in rep.stage_seconds
        total = sum(rep.stage_seconds.values())
        assert total == pytest.approx(rep.per_source_seconds.sum(), rel=1e-9)

    def test_cpu_init_dominates_on_sparse_touch(self):
        """On a large graph with a tiny touched set, the O(n) init is
        the sequential baseline's dominant cost — the structural reason
        dynamic updates still cost milliseconds on the CPU."""
        g = gen.watts_strogatz(4000, k=6, p=0.05, seed=9)
        eng = DynamicBC.from_graph(g, num_sources=16, backend="cpu", seed=2)
        rng = np.random.default_rng(5)
        u, v = g.undirected_non_edges(rng, 1)[0]
        rep = eng.insert_edge(int(u), int(v))
        if (rep.cases >= 2).any():
            stages = rep.stage_seconds
            traversal = stages.get("sp", 0) + stages.get("dep", 0) + \
                stages.get("pull", 0)
            assert stages["init"] + stages["commit"] > traversal


class TestCustomOpCosts:
    def test_costlier_ops_slow_simulation(self, karate):
        from repro.gpu.costmodel import OpCosts

        expensive = OpCosts(edge_check_cycles=400.0, edge_check_bytes=900.0)
        base = DynamicBC.from_graph(karate, num_sources=8, seed=1,
                                    backend="gpu-edge")
        costly = DynamicBC.from_graph(karate, num_sources=8, seed=1,
                                      backend="gpu-edge",
                                      op_costs=expensive)
        t_base = base.insert_edge(0, 9).simulated_seconds
        t_costly = costly.insert_edge(0, 9).simulated_seconds
        assert t_costly > t_base

    def test_num_blocks_override(self, karate):
        eng = DynamicBC.from_graph(karate, num_sources=8, seed=1,
                                   backend="gpu-node", num_blocks=7)
        assert eng.num_blocks == 7
        rep = eng.insert_edge(0, 9)
        assert rep.simulated_seconds > 0


class TestTopK:
    def test_descending_pairs(self, karate):
        eng = DynamicBC.from_graph(karate)  # exact
        top = eng.top_k(5)
        assert len(top) == 5
        scores = [s for _, s in top]
        assert scores == sorted(scores, reverse=True)
        # karate's most central vertices are the two club leaders + 32
        assert top[0][0] in (0, 33)

    def test_k_clamped(self, path10):
        eng = DynamicBC.from_graph(path10)
        assert len(eng.top_k(100)) == 10

    def test_bad_k(self, karate):
        eng = DynamicBC.from_graph(karate, num_sources=4, seed=1)
        with pytest.raises(ValueError):
            eng.top_k(0)

    def test_tracks_updates(self, path10):
        eng = DynamicBC.from_graph(path10)
        assert eng.top_k(1)[0][0] in (4, 5)  # path middle
        eng.insert_edge(0, 9)  # now a cycle: symmetric, all equal
        scores = [s for _, s in eng.top_k(10)]
        assert max(scores) - min(scores) < 1e-9
