import numpy as np
import pytest

from repro.graph.properties import analyze
from repro.graph.suite import SUITE_SPECS, load_suite, make_suite_graph


class TestSuite:
    def test_all_seven_classes(self):
        assert sorted(SUITE_SPECS) == [
            "caida", "coPap", "del", "eu", "kron", "pref", "small",
        ]

    def test_load_full_suite(self):
        suite = load_suite(scale=0.2, seed=1)
        assert set(suite) == set(SUITE_SPECS)
        for name, bench in suite.items():
            assert bench.name == name
            assert bench.graph.num_vertices >= 32
            assert bench.graph.num_edges > 0

    def test_deterministic(self):
        a = load_suite(scale=0.2, seed=5)["caida"].graph
        b = load_suite(scale=0.2, seed=5)["caida"].graph
        assert a == b

    def test_subset_matches_full(self):
        full = load_suite(scale=0.2, seed=5)
        sub = load_suite(scale=0.2, seed=5, names=("pref",))
        assert sub["pref"].graph == full["pref"].graph

    def test_scale_grows_graphs(self):
        small = make_suite_graph("small", scale=0.2, seed=1)
        big = make_suite_graph("small", scale=1.0, seed=1)
        assert big.graph.num_vertices > small.graph.num_vertices

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            make_suite_graph("nope")

    def test_bad_scale_raises(self):
        with pytest.raises(ValueError):
            make_suite_graph("caida", scale=0.0)

    def test_metadata_carried(self):
        bench = make_suite_graph("kron", scale=0.2, seed=1)
        assert bench.full_name.startswith("kron_g500")
        assert "Kronecker" in bench.significance


class TestClassSignatures:
    """Each generated analog must show its DIMACS class's structural
    signature (DESIGN.md §3's substitution argument)."""

    @pytest.fixture(scope="class")
    def suite(self):
        return {
            name: make_suite_graph(name, scale=0.6, seed=3)
            for name in SUITE_SPECS
        }

    def test_caida_sparse(self, suite):
        g = suite["caida"].graph
        assert g.num_edges / g.num_vertices < 8

    def test_copap_high_clustering(self, suite):
        p = analyze(suite["coPap"].graph, clustering_samples=400)
        assert p.avg_clustering > 0.25

    def test_delaunay_planar_and_deep(self, suite):
        g = suite["del"].graph
        assert g.num_edges <= 3 * g.num_vertices - 6
        assert analyze(g).approx_diameter > 10

    def test_kron_skewed(self, suite):
        g = suite["kron"].graph
        assert g.degrees.max() > 10 * max(1.0, float(np.median(g.degrees)))

    def test_pref_heavy_tail(self, suite):
        g = suite["pref"].graph
        assert g.degrees.max() > 5 * g.degrees.mean()

    def test_small_world_shallow(self, suite):
        assert analyze(suite["small"].graph).approx_diameter < 10

    def test_eu_dense(self, suite):
        g = suite["eu"].graph
        assert g.num_edges / g.num_vertices > 3
