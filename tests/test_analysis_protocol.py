import numpy as np
import pytest

from repro.analysis.config import ExperimentConfig
from repro.analysis.protocol import prepare_stream, replay_stream

TINY = ExperimentConfig(scale=0.2, num_sources=8, num_insertions=4,
                        graphs=("small",), seed=99)


class TestPrepareStream:
    def test_deterministic(self):
        _, dyn_a, removed_a = prepare_stream(TINY, "small")
        _, dyn_b, removed_b = prepare_stream(TINY, "small")
        assert np.array_equal(removed_a, removed_b)
        assert dyn_a.snapshot() == dyn_b.snapshot()

    def test_edges_removed(self):
        bench, dyn, removed = prepare_stream(TINY, "small")
        assert dyn.num_edges == bench.graph.num_edges - 4
        for u, v in removed:
            assert not dyn.has_edge(int(u), int(v))
            assert bench.graph.has_edge(int(u), int(v))

    def test_metadata(self):
        bench, _, _ = prepare_stream(TINY, "small")
        assert bench.name == "small"


class TestReplayStream:
    def test_produces_report_per_insertion(self):
        run = replay_stream(TINY, "small", "gpu-node")
        assert len(run.reports) == 4
        assert run.total_simulated > 0
        assert run.per_update_simulated.shape == (4,)

    def test_final_graph_restored(self):
        bench, _, _ = prepare_stream(TINY, "small")
        run = replay_stream(TINY, "small", "gpu-node")
        assert run.engine.graph.snapshot() == bench.graph

    def test_verify_every(self):
        # must not raise: state equals scratch after each insertion
        replay_stream(TINY, "small", "cpu", verify_every=1)

    def test_shared_initial_state_equivalent(self):
        """Passing a precomputed state must not change any result."""
        from repro.analysis.protocol import compute_initial_state

        state = compute_initial_state(TINY, "small")
        fresh = replay_stream(TINY, "small", "gpu-node")
        shared = replay_stream(TINY, "small", "gpu-node",
                               initial_state=state)
        assert np.allclose(fresh.engine.bc_scores, shared.engine.bc_scores)
        assert fresh.total_simulated == pytest.approx(shared.total_simulated)

    def test_backends_paired(self):
        """Same stream across backends -> same per-update cases."""
        a = replay_stream(TINY, "small", "cpu")
        b = replay_stream(TINY, "small", "gpu-edge")
        for ra, rb in zip(a.reports, b.reports):
            assert ra.edge == rb.edge
            assert np.array_equal(ra.cases, rb.cases)
