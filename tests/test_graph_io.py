import numpy as np
import pytest

from repro.graph import generators as gen
from repro.graph.csr import CSRGraph
from repro.graph.io import (
    load_dimacs_metis,
    load_edge_list,
    load_npz,
    save_dimacs_metis,
    save_edge_list,
    save_npz,
)


@pytest.fixture
def sample(karate):
    return karate


class TestMetis:
    def test_round_trip(self, sample, tmp_path):
        path = tmp_path / "g.metis"
        save_dimacs_metis(sample, path)
        assert load_dimacs_metis(path) == sample

    def test_isolated_vertices_survive(self, tmp_path):
        g = CSRGraph.from_edges(5, [(0, 1)])
        path = tmp_path / "iso.metis"
        save_dimacs_metis(g, path)
        assert load_dimacs_metis(path) == g

    def test_comment_lines_skipped(self, tmp_path):
        path = tmp_path / "c.metis"
        path.write_text("% comment\n2 1\n2\n1\n")
        g = load_dimacs_metis(path)
        assert g.num_edges == 1

    def test_weighted_fmt_rejected(self, tmp_path):
        path = tmp_path / "w.metis"
        path.write_text("2 1 1\n2 5\n1 5\n")
        with pytest.raises(ValueError, match="weighted"):
            load_dimacs_metis(path)

    def test_edge_count_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad.metis"
        path.write_text("3 2\n2\n1\n\n")
        with pytest.raises(ValueError, match="declares"):
            load_dimacs_metis(path)

    def test_out_of_range_neighbor_rejected(self, tmp_path):
        path = tmp_path / "oor.metis"
        path.write_text("2 1\n3\n1\n")
        with pytest.raises(ValueError, match="out of range"):
            load_dimacs_metis(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.metis"
        path.write_text("")
        with pytest.raises(ValueError):
            load_dimacs_metis(path)

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "trunc.metis"
        path.write_text("3 1\n2\n")
        with pytest.raises(ValueError, match="expected 3"):
            load_dimacs_metis(path)


class TestEdgeList:
    def test_round_trip(self, sample, tmp_path):
        path = tmp_path / "g.txt"
        save_edge_list(sample, path)
        assert load_edge_list(path) == sample

    def test_explicit_vertex_count(self, tmp_path):
        path = tmp_path / "el.txt"
        path.write_text("0 1\n")
        g = load_edge_list(path, num_vertices=5)
        assert g.num_vertices == 5

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("")
        g = load_edge_list(path, num_vertices=3)
        assert g.num_vertices == 3 and g.num_edges == 0


class TestNpz:
    def test_round_trip(self, sample, tmp_path):
        path = tmp_path / "g.npz"
        save_npz(sample, path)
        assert load_npz(path) == sample

    def test_round_trip_random(self, tmp_path):
        g = gen.erdos_renyi(80, 200, seed=1)
        path = tmp_path / "r.npz"
        save_npz(g, path)
        loaded = load_npz(path)
        assert loaded == g
        assert loaded.col_indices.dtype == np.int32
