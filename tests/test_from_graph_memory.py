"""Peak-memory regression test for the initial Brandes build.

``BCState.compute`` (hence ``DynamicBC.from_graph``) must write each
source's rows straight into the ``(k, n)`` state matrices via
``single_source_state(out=...)`` — the build's transient footprint is
then O(n + m) BFS scratch, not an extra per-source ``(d, sigma,
delta)`` triple that gets copied and thrown away k times.
"""

import tracemalloc

import numpy as np
import pytest

from repro.bc.brandes import single_source_state
from repro.bc.engine import DynamicBC
from repro.bc.state import BCState
from repro.graph import generators as gen
from repro.graph.csr import DIST_INF


def legacy_compute(graph, sources):
    """The pre-optimization build: allocate a fresh per-source triple,
    then copy it into the state rows (kept here as the memory baseline
    the in-place build is measured against)."""
    sources = np.asarray(sorted(int(s) for s in sources), dtype=np.int64)
    n = graph.num_vertices
    k = sources.size
    d = np.empty((k, n), dtype=np.int64)
    sigma = np.empty((k, n), dtype=np.float64)
    delta = np.empty((k, n), dtype=np.float64)
    bc = np.zeros(n, dtype=np.float64)
    for i, s in enumerate(sources):
        d_new, sigma_new, delta_new, _ = single_source_state(graph, int(s))
        delta_new[int(s)] = 0.0
        d[i] = d_new
        sigma[i] = sigma_new
        delta[i] = delta_new
        bc += delta[i]
    return BCState(sources, d, sigma, delta, bc)


def peak_bytes(fn):
    tracemalloc.start()
    try:
        result = fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, peak


@pytest.fixture(scope="module")
def big_er():
    # Large enough that one n-vector (8n bytes) dominates allocator
    # noise in the peak comparison.
    return gen.erdos_renyi(4000, 12000, seed=42)


def test_inplace_build_is_bit_identical(big_er):
    sources = list(range(0, 4000, 500))
    fast = BCState.compute(big_er, sources)
    slow = legacy_compute(big_er, sources)
    assert np.array_equal(fast.d, slow.d)
    assert np.array_equal(fast.sigma, slow.sigma)
    assert np.array_equal(fast.delta, slow.delta)
    assert np.array_equal(fast.bc, slow.bc)


def test_inplace_build_shaves_transient_triple(big_er):
    n = big_er.num_vertices
    sources = list(range(0, 4000, 500))
    _, peak_new = peak_bytes(lambda: BCState.compute(big_er, sources))
    _, peak_old = peak_bytes(lambda: legacy_compute(big_er, sources))
    # The legacy path holds a transient (d, sigma, delta) triple —
    # 8n + 8n + 8n bytes — on top of the retained state at its peak;
    # the in-place path must save at least two of those vectors.
    assert peak_old - peak_new >= 2 * n * 8, (
        f"expected ≥{2 * n * 8} bytes saved, got {peak_old - peak_new} "
        f"(old={peak_old}, new={peak_new})"
    )


def test_from_graph_peak_close_to_retained_state(big_er):
    sources = list(range(0, 4000, 250))

    def build():
        return DynamicBC.from_graph(big_er, sources=sources)

    engine, peak = peak_bytes(build)
    retained = engine.memory_report()["total"]
    n, m = big_er.num_vertices, big_er.num_edges
    # Retained state + O(n + m) scratch with generous allocator
    # headroom; the old build's k transient triples would blow well
    # past this on top of `retained`.
    scratch_budget = 16 * (n + 2 * m) + (1 << 20)
    assert peak <= retained + scratch_budget, (
        f"from_graph peak {peak} exceeds retained {retained} + "
        f"budget {scratch_budget}"
    )
    assert int(np.count_nonzero(engine.state.d[0] != DIST_INF)) > 0
