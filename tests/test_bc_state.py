import numpy as np
import pytest

from repro.bc.brandes import brandes_bc
from repro.bc.state import BCState
from repro.graph import generators as gen


class TestCompute:
    def test_shapes(self, karate):
        st = BCState.compute(karate, [0, 5, 9])
        assert st.num_sources == 3
        assert st.num_vertices == 34
        assert st.d.shape == st.sigma.shape == st.delta.shape == (3, 34)

    def test_bc_matches_brandes_subset(self, karate):
        sources = [0, 5, 9]
        st = BCState.compute(karate, sources)
        assert np.allclose(st.bc, brandes_bc(karate, sources=sources))

    def test_sources_sorted_and_deduped_input_order(self, karate):
        st = BCState.compute(karate, [9, 0, 5])
        assert np.array_equal(st.sources, [0, 5, 9])

    def test_delta_zero_at_source(self, karate):
        st = BCState.compute(karate, [3, 8])
        for i, s in enumerate(st.sources):
            assert st.delta[i, s] == 0.0

    def test_random_sources_deterministic(self, karate):
        a = BCState.compute_with_random_sources(karate, 5, seed=1)
        b = BCState.compute_with_random_sources(karate, 5, seed=1)
        assert np.array_equal(a.sources, b.sources)

    def test_random_sources_clamped(self, karate):
        st = BCState.compute_with_random_sources(karate, 100, seed=1)
        assert st.num_sources == 34


class TestValidation:
    def test_shape_mismatch_rejected(self, karate):
        st = BCState.compute(karate, [0, 1])
        with pytest.raises(ValueError):
            BCState(st.sources, st.d[:1], st.sigma, st.delta, st.bc)

    def test_dtype_rejected(self, karate):
        st = BCState.compute(karate, [0, 1])
        with pytest.raises(ValueError):
            BCState(st.sources, st.d.astype(np.int32), st.sigma, st.delta, st.bc)

    def test_duplicate_sources_rejected(self, karate):
        st = BCState.compute(karate, [0, 1])
        bad = np.array([0, 0])
        with pytest.raises(ValueError):
            BCState(bad, st.d, st.sigma, st.delta, st.bc)


class TestVerify:
    def test_fresh_state_verifies(self, karate):
        BCState.compute(karate, [0, 1, 2]).verify_against(karate)

    def test_corrupted_distance_detected(self, karate):
        st = BCState.compute(karate, [0])
        st.d[0, 5] += 1
        with pytest.raises(AssertionError, match="distance"):
            st.verify_against(karate)

    def test_corrupted_sigma_detected(self, karate):
        st = BCState.compute(karate, [0])
        st.sigma[0, 5] += 1
        with pytest.raises(AssertionError, match="sigma"):
            st.verify_against(karate)

    def test_corrupted_bc_detected(self, karate):
        st = BCState.compute(karate, [0])
        st.bc[5] += 0.5
        with pytest.raises(AssertionError, match="bc"):
            st.verify_against(karate)

    def test_wrong_graph_detected(self, karate):
        st = BCState.compute(karate, [0, 1])
        other = gen.erdos_renyi(34, 78, seed=1)
        with pytest.raises(AssertionError):
            st.verify_against(other)


class TestCopyAndDiff:
    def test_copy_is_deep(self, karate):
        st = BCState.compute(karate, [0])
        cp = st.copy()
        cp.bc[0] += 1
        assert st.bc[0] != cp.bc[0]

    def test_max_abs_error_zero_for_copy(self, karate):
        st = BCState.compute(karate, [0, 1])
        assert st.max_abs_error(st.copy()) == 0.0

    def test_max_abs_error_detects(self, karate):
        st = BCState.compute(karate, [0, 1])
        cp = st.copy()
        cp.delta[1, 3] += 2.5
        assert st.max_abs_error(cp) == pytest.approx(2.5)

    def test_different_sources_rejected(self, karate):
        a = BCState.compute(karate, [0, 1])
        b = BCState.compute(karate, [0, 2])
        with pytest.raises(ValueError):
            a.max_abs_error(b)
