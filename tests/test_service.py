"""Differential service suite: `BCService` vs plain `replay()`.

The service layer's whole determinism contract is that coalescing is
*invisible* — the same event sequence produces bit-identical final BC
scores, counters, per-event reports, skipped records, simulated-time
totals and checkpoint files as a plain :func:`replay`, no matter how
the coalescer slices it into batches (size-triggered, deadline-
triggered, or interleaved with reads at arbitrary offsets).  Every
test here runs the two paths on twin engines and compares exactly.

pytest-asyncio is not a dependency: each test drives its own event
loop with :func:`asyncio.run`, constructing the service inside the
coroutine (required on Python 3.9, see the BCService docstring).
"""

import asyncio

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bc.engine import DynamicBC
from repro.graph import generators as gen
from repro.graph.dynamic import DynamicGraph
from repro.graph.stream import EdgeEvent, EdgeStream, replay
from repro.resilience.chaos import reports_identical
from repro.resilience.checkpoint import load_checkpoint
from repro.service import BCService, ServiceClosed

pytestmark = pytest.mark.service

K = 12
SEED = 3


def make_engine(graph):
    """A fresh serial engine over *graph* with the suite's fixed
    source sample."""
    return DynamicBC.from_graph(DynamicGraph.from_csr(graph),
                                num_sources=K, seed=SEED)


def assert_equivalent(service_engine, service_result, twin_engine,
                      twin_result):
    """Full bit-identity check between a service run and a replay."""
    assert np.array_equal(service_engine.bc_scores, twin_engine.bc_scores)
    for name in ("sources", "d", "sigma", "delta"):
        assert np.array_equal(getattr(service_engine.state, name),
                              getattr(twin_engine.state, name)), name
    assert service_engine.counters == twin_engine.counters
    assert len(service_result.reports) == len(twin_result.reports)
    for a, b in zip(service_result.reports, twin_result.reports):
        assert reports_identical(a, b)
    assert service_result.skipped == twin_result.skipped
    assert service_result.recovered == twin_result.recovered
    assert service_result.simulated_seconds == twin_result.simulated_seconds


async def run_service(graph, stream, **kwargs):
    """Push *stream* through a fresh service; returns the service (its
    engine and accumulated result attached) after a drained stop."""
    engine = make_engine(graph)
    try:
        async with BCService(engine, **kwargs) as svc:
            for event in stream:
                await svc.submit(event)
            await svc.drain()
        return svc
    finally:
        engine.close()


@pytest.fixture(scope="module")
def graph():
    return gen.erdos_renyi(40, 90, seed=7)


@pytest.fixture(scope="module")
def stream(graph):
    # Churn long enough to cross several batch boundaries at size 8
    # and to include both inserts and deletes.
    return EdgeStream.churn(graph, 40, seed=5)


@pytest.fixture(scope="module")
def twin(graph, stream):
    engine = make_engine(graph)
    result = replay(engine, stream)
    return engine, result


class TestDifferential:
    @pytest.mark.parametrize("max_batch", [1, 8, 64])
    def test_bit_identical_across_batch_sizes(self, graph, stream, twin,
                                              max_batch):
        twin_engine, twin_result = twin
        svc = asyncio.run(run_service(graph, stream, max_batch=max_batch,
                                      max_delay=5.0))
        assert_equivalent(svc.core.engine, svc.core.result,
                          twin_engine, twin_result)
        # Size-1 batches flush per event; size-64 coalesces everything
        # the flusher finds queued.
        assert svc.stats["events_applied"] == len(twin_result.reports)
        assert svc.watermark == len(stream)
        assert svc.core.store.version == svc.stats["batches"]

    def test_deadline_triggered_flushes_are_identical(self, graph, stream,
                                                      twin):
        twin_engine, twin_result = twin

        async def main():
            engine = make_engine(graph)
            try:
                # max_batch far above the stream length: every flush is
                # deadline- (or drain-) triggered, never size-triggered.
                async with BCService(engine, max_batch=1024,
                                     max_delay=0.005) as svc:
                    for chunk_start in range(0, len(stream), 7):
                        for event in stream.events[chunk_start:chunk_start + 7]:
                            await svc.submit(event)
                        await svc.drain()
                return svc
            finally:
                engine.close()

        svc = asyncio.run(main())
        assert_equivalent(svc.core.engine, svc.core.result,
                          twin_engine, twin_result)
        assert svc.stats["flush_reasons"].get("size", 0) == 0

    def test_reads_interleaved_at_random_offsets(self, graph, stream):
        # Oracle: prefix_bc[w] is the BC vector after consuming w
        # events — every query's (watermark, scores) answer must match
        # it exactly, wherever the read lands relative to batches.
        oracle_engine = make_engine(graph)
        prefix_bc = [oracle_engine.bc_scores.copy()]
        for event in stream:
            try:
                if event.op == "insert":
                    oracle_engine.insert_edge(event.u, event.v)
                else:
                    oracle_engine.delete_edge(event.u, event.v)
            except ValueError:
                pass
            prefix_bc.append(oracle_engine.bc_scores.copy())
        oracle_engine.close()

        rng = np.random.default_rng(99)
        read_after = set(rng.integers(0, len(stream), size=15).tolist())

        async def main():
            engine = make_engine(graph)
            answers = []
            try:
                async with BCService(engine, max_batch=8,
                                     max_delay=0.005) as svc:
                    for i, event in enumerate(stream):
                        await svc.submit(event)
                        if i in read_after:
                            # Yield once so the flusher can interleave,
                            # then read whatever snapshot is current.
                            await asyncio.sleep(0)
                            ans = await svc.query_bc()
                            answers.append(ans)
                    await svc.drain()
                    answers.append(await svc.query_bc())
                return answers
            finally:
                engine.close()

        answers = asyncio.run(main())
        assert answers[-1]["watermark"] == len(stream)
        for ans in answers:
            assert np.array_equal(ans["scores"], prefix_bc[ans["watermark"]])

    def test_checkpoints_match_replay(self, graph, stream, tmp_path):
        svc_dir = tmp_path / "svc"
        twin_dir = tmp_path / "twin"
        twin_engine = make_engine(graph)
        twin_result = replay(twin_engine, stream, checkpoint_every=10,
                             checkpoint_dir=twin_dir)
        svc = asyncio.run(run_service(graph, stream, max_batch=8,
                                      max_delay=0.005, checkpoint_every=10,
                                      checkpoint_dir=svc_dir))
        assert [p.split("/")[-1] for p in svc.core.result.checkpoints] == \
               [p.split("/")[-1] for p in twin_result.checkpoints]
        for svc_path, twin_path in zip(svc.core.result.checkpoints,
                                       twin_result.checkpoints):
            a, b = load_checkpoint(svc_path), load_checkpoint(twin_path)
            assert a.event_index == b.event_index
            assert a.simulated_prefix == b.simulated_prefix
            assert a.applied_count == b.applied_count
            for name in ("row_offsets", "col_indices", "sources", "d",
                         "sigma", "delta", "bc"):
                assert np.array_equal(getattr(a, name), getattr(b, name)), name
            assert a.counters == b.counters
        twin_engine.close()


class TestAdmission:
    def test_backpressure_waits_are_counted_and_lossless(self, graph, stream):
        async def main():
            engine = make_engine(graph)
            try:
                async with BCService(engine, max_batch=4, max_delay=0.005,
                                     max_pending=4) as svc:
                    for event in stream:
                        await svc.submit(event)
                    await svc.drain()
                return svc
            finally:
                engine.close()

        svc = asyncio.run(main())
        # The queue is 10x smaller than the stream: submissions stalled
        # on backpressure, yet every event was accepted and applied.
        assert svc.stats["backpressure_waits"] > 0
        assert svc.stats["rejected"] == 0
        assert svc.watermark == len(stream)
        assert svc.stats["max_queue_depth"] <= 4

    def test_try_submit_rejects_when_full(self, graph, stream):
        async def main():
            engine = make_engine(graph)
            try:
                # Not started: nothing drains the queue, so admission
                # control is deterministic.
                svc = BCService(engine, max_pending=3)
                accepted = [svc.try_submit(e) for e in stream.events[:5]]
                assert accepted == [True, True, True, False, False]
                assert svc.stats["rejected"] == 2
                svc.start()
                await svc.drain()
                await svc.stop()
                return svc
            finally:
                engine.close()

        svc = asyncio.run(main())
        assert svc.watermark == 3

    def test_submit_after_stop_raises(self, graph, stream):
        async def main():
            engine = make_engine(graph)
            try:
                svc = BCService(engine).start()
                await svc.stop()
                with pytest.raises(ServiceClosed):
                    await svc.submit(stream.events[0])
                with pytest.raises(ServiceClosed):
                    svc.try_submit(stream.events[0])
            finally:
                engine.close()

        asyncio.run(main())

    def test_drained_stop_applies_every_accepted_event(self, graph, stream):
        async def main():
            engine = make_engine(graph)
            try:
                svc = BCService(engine, max_batch=8, max_delay=5.0).start()
                for event in stream:
                    await svc.submit(event)
                # Stop immediately: drain=True must still flush the
                # queue before the flusher exits.
                await svc.stop()
                return svc
            finally:
                engine.close()

        svc = asyncio.run(main())
        assert svc.watermark == len(stream)


@settings(deadline=None, max_examples=25)
@given(data=st.data())
def test_fuzz_interleaving_matches_replay(data):
    """Property fuzz: any (stream, batch config, read offsets, drain
    points) interleaving is bit-identical to plain replay."""
    graph = gen.erdos_renyi(24, 50, seed=11)
    num_events = data.draw(st.integers(min_value=1, max_value=16),
                           label="num_events")
    stream_seed = data.draw(st.integers(min_value=0, max_value=2**16),
                            label="stream_seed")
    max_batch = data.draw(st.sampled_from([1, 2, 5, 64]), label="max_batch")
    stream = EdgeStream.churn(graph, num_events, seed=stream_seed)
    reads = data.draw(
        st.sets(st.integers(min_value=0, max_value=num_events - 1),
                max_size=4),
        label="read_offsets",
    )
    drains = data.draw(
        st.sets(st.integers(min_value=0, max_value=num_events - 1),
                max_size=2),
        label="drain_offsets",
    )

    twin_engine = make_engine(graph)
    twin_result = replay(twin_engine, stream)

    async def main():
        engine = make_engine(graph)
        try:
            async with BCService(engine, max_batch=max_batch,
                                 max_delay=0.002) as svc:
                for i, event in enumerate(stream):
                    await svc.submit(event)
                    if i in drains:
                        await svc.drain()
                    if i in reads:
                        await asyncio.sleep(0)
                        ans = await svc.query_top_k(5)
                        assert 0 <= ans["watermark"] <= i + 1
                await svc.drain()
            return svc
        finally:
            engine.close()

    svc = asyncio.run(main())
    assert_equivalent(svc.core.engine, svc.core.result,
                      twin_engine, twin_result)
    twin_engine.close()
