"""The literal (unguarded) Algorithm 4/6 flood must produce identical
analytics while touching vastly more of the graph."""

import numpy as np
import pytest

from repro.bc.accountants import make_accountant
from repro.bc.brandes import single_source_state
from repro.bc.cases import Case, classify_insertion
from repro.bc.flood import flood_adjacent_level_update
from repro.bc.update_core import adjacent_level_update
from repro.graph import generators as gen
from repro.graph.dynamic import DynamicGraph


def run_both(graph_before, source, u_high, u_low):
    """Apply the same Case-2 insertion via the guarded core and the
    flood; return (guarded_rows, flood_rows, guarded_stats, flood_stats,
    traces)."""
    dyn = DynamicGraph.from_csr(graph_before)
    dyn.insert_edge(u_high, u_low)
    after = dyn.snapshot()
    out = []
    for fn in (adjacent_level_update, flood_adjacent_level_update):
        d, sigma, delta, _ = single_source_state(graph_before, source)
        delta[source] = 0.0
        bc = np.zeros(graph_before.num_vertices)
        acc = make_accountant("gpu-edge", after.num_vertices,
                              2 * after.num_edges)
        kwargs = {} if fn is flood_adjacent_level_update else {"insert": True}
        stats = fn(after, source, d, sigma, delta, bc, u_high, u_low, acc,
                   **kwargs)
        out.append((d, sigma, delta, bc, stats, acc.finish()))
    return out


def find_case2(graph, source, rng):
    d, _, _, _ = single_source_state(graph, source)
    for u, v in graph.undirected_non_edges(rng, 300).tolist():
        case, high, low = classify_insertion(d, u, v)
        if case == Case.ADJACENT_LEVEL:
            return high, low
    pytest.skip("no case-2 insertion found")


class TestFloodCorrectness:
    @pytest.mark.parametrize("source", [0, 12, 30])
    def test_identical_state_karate(self, karate, source, rng):
        u_high, u_low = find_case2(karate, source, rng)
        guarded, flood = run_both(karate, source, u_high, u_low)
        for g, f in zip(guarded[:4], flood[:4]):
            assert np.allclose(g, f)

    def test_identical_state_er(self, small_er, rng):
        u_high, u_low = find_case2(small_er, 7, rng)
        guarded, flood = run_both(small_er, 7, u_high, u_low)
        for g, f in zip(guarded[:4], flood[:4]):
            assert np.allclose(g, f)

    def test_flood_stays_in_component(self):
        """The flood covers the source's cone but cannot spill into
        unreachable components (they have no BFS level)."""
        from repro.graph.csr import CSRGraph

        # component A: 0-1, 1-2, 0-3, 3-4 (so (1, 4) is a case-2 pair
        # for source 0: d[1]=1, d[4]=2); component B: 5-6-7
        g = CSRGraph.from_edges(
            8, [(0, 1), (1, 2), (0, 3), (3, 4), (5, 6), (6, 7)]
        )
        guarded, flood = run_both(g, 0, 1, 4)
        assert flood[4].touched <= 5  # never vertices 5-7
        for g_arr, f_arr in zip(guarded[:4], flood[:4]):
            assert np.allclose(g_arr, f_arr)


class TestFloodCost:
    def test_flood_touches_more(self, karate, rng):
        source = 0
        u_high, u_low = find_case2(karate, source, rng)
        guarded, flood = run_both(karate, source, u_high, u_low)
        g_stats, f_stats = guarded[4], flood[4]
        assert f_stats.touched >= g_stats.touched

    def test_flood_costs_more(self, rng):
        """On a deep sparse graph the flood is dramatically worse."""
        g = gen.random_triangulation(400, seed=8)
        source = 5
        u_high, u_low = find_case2(g, source, rng)
        guarded, flood = run_both(g, source, u_high, u_low)
        g_trace, f_trace = guarded[5], flood[5]
        assert f_trace.total_items >= g_trace.total_items
        assert flood[4].dep_levels >= guarded[4].dep_levels
