"""Property-based tests of structural invariants: CSR construction,
BFS/sigma identities, and case classification."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bc.brandes import brandes_bc, single_source_state
from repro.bc.cases import Case, classify_insertion
from repro.graph.csr import CSRGraph, DIST_INF

N = 12

edge_pool = [(u, v) for u in range(N) for v in range(u + 1, N)]
graphs = st.lists(st.sampled_from(edge_pool), max_size=30, unique=True).map(
    lambda edges: CSRGraph.from_edges(N, edges or [])
)

common = settings(max_examples=60, deadline=None,
                  suppress_health_check=[HealthCheck.too_slow])


class TestCSRInvariants:
    @given(graphs)
    @common
    def test_degree_sum(self, g):
        assert g.degrees.sum() == 2 * g.num_edges

    @given(graphs)
    @common
    def test_neighbor_symmetry(self, g):
        for v in range(g.num_vertices):
            for w in g.neighbors(v):
                assert g.has_edge(int(w), v)

    @given(graphs)
    @common
    def test_edge_list_round_trip(self, g):
        assert CSRGraph.from_edges(g.num_vertices, g.edge_list()) == g

    @given(graphs)
    @common
    def test_no_self_loops(self, g):
        tails, heads = g.arcs()
        assert np.all(tails != heads)


class TestBFSInvariants:
    @given(graphs, st.integers(0, N - 1))
    @common
    def test_triangle_inequality_on_arcs(self, g, s):
        """Adjacent vertices' BFS distances differ by at most 1."""
        d = g.bfs_distances(s)
        tails, heads = g.arcs()
        both = (d[tails] != DIST_INF) & (d[heads] != DIST_INF)
        assert np.all(np.abs(d[tails[both]] - d[heads[both]]) <= 1)
        # one endpoint reachable implies the other is too
        assert np.all((d[tails] == DIST_INF) == (d[heads] == DIST_INF))

    @given(graphs, st.integers(0, N - 1))
    @common
    def test_sigma_is_sum_of_predecessors(self, g, s):
        d, sigma, _, _ = single_source_state(g, s)
        for w in range(g.num_vertices):
            if d[w] in (0, DIST_INF):
                continue
            nbrs = g.neighbors(w)
            preds = nbrs[d[nbrs] == d[w] - 1]
            assert sigma[w] == pytest.approx(sigma[preds].sum())

    @given(graphs, st.integers(0, N - 1))
    @common
    def test_delta_nonnegative(self, g, s):
        _, _, delta, _ = single_source_state(g, s)
        assert np.all(delta >= -1e-12)


class TestBCInvariants:
    @given(graphs)
    @common
    def test_bc_nonnegative(self, g):
        assert np.all(brandes_bc(g) >= -1e-12)

    @given(graphs)
    @common
    def test_bc_upper_bound(self, g):
        """No vertex lies on more ordered pairs than (n-1)(n-2)."""
        n = g.num_vertices
        assert np.all(brandes_bc(g) <= (n - 1) * (n - 2) + 1e-9)

    @given(graphs)
    @common
    def test_degree_one_vertices_have_zero_bc(self, g):
        bc = brandes_bc(g)
        leaves = np.flatnonzero(g.degrees == 1)
        assert np.allclose(bc[leaves], 0.0)

    @given(graphs)
    @common
    def test_matches_networkx(self, g):
        import networkx as nx

        G = nx.Graph()
        G.add_nodes_from(range(g.num_vertices))
        G.add_edges_from(map(tuple, g.edge_list().tolist()))
        nxbc = nx.betweenness_centrality(G, normalized=False)
        theirs = 2 * np.array([nxbc[v] for v in range(g.num_vertices)])
        assert np.allclose(brandes_bc(g), theirs, atol=1e-9)


class TestCaseInvariants:
    @given(graphs, st.integers(0, N - 1), st.integers(0, N - 1),
           st.integers(0, N - 1))
    @common
    def test_classification_consistent_with_distances(self, g, s, u, v):
        if u == v:
            return
        d, _, _, _ = single_source_state(g, s)
        case, high, low = classify_insertion(d, u, v)
        gap = abs(int(d[u]) - int(d[v]))
        if gap == 0:
            assert case == Case.SAME_LEVEL
        elif gap == 1:
            assert case == Case.ADJACENT_LEVEL
        else:
            assert case == Case.DISTANT_LEVEL
        if case != Case.SAME_LEVEL:
            assert d[high] < d[low]
