import pytest

from repro.analysis.config import ExperimentConfig
from repro.analysis.waste import render_waste, run_waste_study

CFG = ExperimentConfig(scale=0.25, num_sources=10, num_insertions=4,
                       graphs=("small",), seed=11)


class TestWasteStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return run_waste_study(CFG, "small")

    def test_cpu_is_the_efficiency_baseline(self, study):
        rows = study.by_backend()
        assert rows["cpu"].efficiency == pytest.approx(1.0)

    def test_edge_parallel_wastes_most(self, study):
        rows = study.by_backend()
        assert rows["gpu-edge"].work_items > rows["gpu-node"].work_items
        assert rows["gpu-edge"].efficiency < rows["gpu-node"].efficiency

    def test_node_parallel_near_efficient(self, study):
        """Node-parallel's only overheads are QQ re-checks and the
        dedup pipeline — efficiency should stay within an order of
        magnitude of 1, far above edge-parallel's."""
        rows = study.by_backend()
        assert rows["gpu-node"].efficiency > 5 * rows["gpu-edge"].efficiency

    def test_traffic_ordering(self, study):
        rows = study.by_backend()
        assert rows["gpu-edge"].bytes_moved > rows["gpu-node"].bytes_moved

    def test_render(self, study):
        out = render_waste(study)
        assert "Work efficiency" in out
        assert "gpu-edge" in out
