"""Quality gate: every public module, class, and function in the
library carries a docstring (deliverable (e): doc comments on every
public item)."""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


MODULES = list(_walk_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_docstring(module):
    assert module.__doc__, f"{module.__name__} lacks a module docstring"


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_members_documented(module):
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; documented at its home
        if not inspect.getdoc(obj):
            undocumented.append(name)
            continue
        if inspect.isclass(obj):
            for mname, member in vars(obj).items():
                if mname.startswith("_"):
                    continue
                if inspect.isfunction(member) and not inspect.getdoc(
                    getattr(obj, mname)  # resolves inherited docstrings
                ):
                    undocumented.append(f"{name}.{mname}")
    assert not undocumented, (
        f"{module.__name__}: missing docstrings on {undocumented}"
    )
