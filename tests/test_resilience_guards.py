"""Self-healing guards: detection, classification (row drift vs
structural), in-place repair, budgeted escalation, and the bc-fold
invariant check."""

import numpy as np
import pytest

from repro.bc.engine import DynamicBC
from repro.graph.stream import EdgeStream, replay
from repro.resilience import FaultInjector, Guard, GuardPolicy
from repro.resilience.guards import (
    BC_DRIFT,
    DETECT,
    ESCALATE,
    REPAIR,
    ROW_DRIFT,
    STRUCTURAL,
    structural_issues,
)


def make_engine(graph, **kwargs):
    return DynamicBC.from_graph(graph, num_sources=8, seed=1, **kwargs)


ALL_ROWS = GuardPolicy(check_every=1, num_check_sources=8, repair_budget=8,
                       seed=0)


class TestPolicy:
    def test_defaults_valid(self):
        GuardPolicy()

    @pytest.mark.parametrize("kwargs", [
        {"check_every": -1},
        {"num_check_sources": 0},
        {"repair_budget": -1},
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            GuardPolicy(**kwargs)


class TestStructuralIssues:
    def test_healthy_state_clean(self, karate):
        assert structural_issues(make_engine(karate)) == []

    def test_nan_sigma_detected(self, karate):
        eng = make_engine(karate)
        eng.state.sigma[2, 5] = np.nan
        assert any("non-finite sigma" in s for s in structural_issues(eng))

    def test_negative_sigma_detected(self, karate):
        eng = make_engine(karate)
        eng.state.sigma[2, 5] = -3.0
        assert any("negative sigma" in s for s in structural_issues(eng))

    def test_vertex_count_mismatch_detected(self, karate):
        eng = make_engine(karate)
        eng.graph.add_vertex()  # grow the graph behind the state's back
        assert any("vertices" in s for s in structural_issues(eng))


class TestGuardCheck:
    def test_detects_and_repairs_row_drift(self, karate):
        eng = make_engine(karate)
        i, _ = FaultInjector(5).corrupt_row(eng)
        guard = Guard(eng, ALL_ROWS)
        events = guard.check(event_index=7)
        actions = [(e.action, e.kind) for e in events]
        assert (DETECT, ROW_DRIFT) in actions
        assert (REPAIR, ROW_DRIFT) in actions
        repaired = [e for e in events if e.action == REPAIR][0]
        assert repaired.source_index == i
        assert repaired.event_index == 7
        eng.verify()

    def test_structural_corruption_escalates(self, karate):
        eng = make_engine(karate)
        FaultInjector(5).corrupt_structural(eng)
        guard = Guard(eng, ALL_ROWS)
        events = guard.check()
        assert any(e.action == DETECT and e.kind == STRUCTURAL for e in events)
        assert any(e.action == ESCALATE for e in events)
        eng.verify()  # full recompute restored everything

    def test_budget_exhaustion_escalates(self, karate):
        eng = make_engine(karate)
        FaultInjector(5).corrupt_row(eng)
        policy = GuardPolicy(check_every=1, num_check_sources=8,
                             repair_budget=0, seed=0)
        guard = Guard(eng, policy)
        events = guard.check()
        assert not any(e.action == REPAIR for e in events)
        assert any(e.action == ESCALATE and e.kind == ROW_DRIFT for e in events)
        eng.verify()

    def test_bc_drift_detected_and_refolded(self, karate):
        eng = make_engine(karate)
        expected = eng.bc_scores.copy()
        eng.state.bc[3] += 0.75  # rows clean, fold invariant broken
        guard = Guard(eng, ALL_ROWS)
        events = guard.check()
        assert any(e.action == DETECT and e.kind == BC_DRIFT for e in events)
        assert any(e.action == REPAIR and e.kind == BC_DRIFT for e in events)
        assert np.allclose(eng.bc_scores, expected, atol=1e-12)
        eng.verify()

    def test_healthy_state_records_nothing(self, karate):
        eng = make_engine(karate)
        guard = Guard(eng, ALL_ROWS)
        assert guard.check() == []
        assert guard.repairs_used == 0


class TestGuardedReplay:
    def test_guard_heals_mid_stream_corruption(self, karate):
        # Delta corruption can never vanish silently: either the row
        # still drifts (row repair) or an update laundered it into bc
        # (fold repair).  Either way the guard must act and the final
        # state must verify.
        eng = make_engine(karate)
        stream = EdgeStream.poisson_growth(karate, 12, seed=3)
        first, second = EdgeStream(stream.events[:4]), EdgeStream(stream.events[4:])
        replay(eng, first, guard=ALL_ROWS)
        FaultInjector(9).corrupt_row(eng, kind="delta")
        result = replay(eng, second, guard=ALL_ROWS)
        assert any(e.action in (REPAIR, ESCALATE) for e in result.guard_events)
        eng.verify()

    def test_cadence_respected(self, karate):
        eng = make_engine(karate)
        stream = EdgeStream.poisson_growth(karate, 9, seed=3)
        policy = GuardPolicy(check_every=4, num_check_sources=8, seed=0)
        result = replay(eng, stream, guard=policy)
        # checks ran after events 3 and 7; healthy state -> no events
        assert result.guard_events == []
        eng.verify()

    def test_unguarded_replay_has_no_guard_events(self, karate):
        eng = make_engine(karate)
        stream = EdgeStream.poisson_growth(karate, 5, seed=3)
        result = replay(eng, stream)
        assert result.guard_events == []

    def test_persistent_update_failure_skipped_after_retry(self, karate):
        eng = make_engine(karate)

        def always_fail(*args, **kwargs):
            raise RuntimeError("permanent kernel failure")

        eng._run_source = always_fail
        stream = EdgeStream.poisson_growth(karate, 6, seed=3)
        result = replay(eng, stream, guard=ALL_ROWS)
        failed = [s for s in result.skipped if s.reason.startswith("update-error")]
        # every failed event was rolled back: its edge is absent
        for s in failed:
            assert not eng.graph.has_edge(s.u, s.v)
        # events whose sources were all Case 1 never hit _run_source
        assert len(result.reports) + len(failed) == 6

    def test_guard_repairs_are_deterministic(self, karate):
        def run():
            eng = make_engine(karate)
            stream = EdgeStream.poisson_growth(karate, 10, seed=3)
            FaultInjector(9).corrupt_row(eng, kind="delta")
            res = replay(eng, stream, guard=ALL_ROWS)
            return [(e.event_index, e.action, e.kind, e.source_index)
                    for e in res.guard_events], eng.bc_scores.copy()

        events_a, bc_a = run()
        events_b, bc_b = run()
        assert events_a == events_b
        assert np.array_equal(bc_a, bc_b)
