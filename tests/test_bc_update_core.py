"""Correctness of the Case-2 update core against (a) a literal
transcription of Green et al.'s Algorithm 2 and (b) full recomputation.
"""

import numpy as np
import pytest

from repro.bc.accountants import make_accountant
from repro.bc.brandes import single_source_state
from repro.bc.cases import Case, classify_insertion
from repro.bc.reference import case2_reference
from repro.bc.state import BCState
from repro.bc.update_core import UNTOUCHED, adjacent_level_update
from repro.graph import generators as gen
from repro.graph.csr import CSRGraph
from repro.graph.dynamic import DynamicGraph


def apply_case2(graph_after, source, state_row, bc, u_high, u_low,
                strategy="cpu", insert=True):
    d, sigma, delta = state_row
    acc = make_accountant(strategy, graph_after.num_vertices,
                          2 * graph_after.num_edges)
    return adjacent_level_update(graph_after, source, d, sigma, delta, bc,
                                 u_high, u_low, acc, insert=insert), acc


def find_case2_edges(graph, d, count=10, rng=None):
    """Non-edges whose insertion is Case 2 for the source owning d."""
    rng = rng or np.random.default_rng(0)
    out = []
    for u, v in graph.undirected_non_edges(rng, 200).tolist():
        case, high, low = classify_insertion(d, u, v)
        if case == Case.ADJACENT_LEVEL:
            out.append((high, low))
            if len(out) == count:
                break
    return out


class TestAgainstGreenReference:
    @pytest.mark.parametrize("source", [0, 11, 33])
    def test_karate_matches_algorithm2(self, karate, source):
        d, sigma, delta = (x.copy() for x in single_source_state(karate, source)[:3])
        delta[source] = 0.0
        bc = np.zeros(34)
        pairs = find_case2_edges(karate, d, count=5)
        assert pairs, "fixture must yield Case-2 insertions"
        for u_high, u_low in pairs:
            dyn = DynamicGraph.from_csr(karate)
            dyn.insert_edge(u_high, u_low)
            after = dyn.snapshot()
            ref_sigma, ref_delta, ref_bc = case2_reference(
                after, source, d, sigma, delta, bc, u_high, u_low
            )
            my_d, my_sigma, my_delta = d.copy(), sigma.copy(), delta.copy()
            my_bc = bc.copy()
            apply_case2(after, source, (my_d, my_sigma, my_delta), my_bc,
                        u_high, u_low)
            assert np.array_equal(my_d, d)  # Case 2 never moves distances
            assert np.allclose(my_sigma, ref_sigma)
            assert np.allclose(my_delta, ref_delta)
            assert np.allclose(my_bc, ref_bc)


class TestAgainstRecompute:
    @pytest.mark.parametrize("strategy", ["cpu", "gpu-edge", "gpu-node"])
    def test_all_strategies_identical_state(self, karate, strategy):
        source = 0
        d, sigma, delta = (x.copy() for x in single_source_state(karate, source)[:3])
        delta[source] = 0.0
        pairs = find_case2_edges(karate, d, count=3)
        for u_high, u_low in pairs:
            dyn = DynamicGraph.from_csr(karate)
            dyn.insert_edge(u_high, u_low)
            after = dyn.snapshot()
            my = [d.copy(), sigma.copy(), delta.copy()]
            bc = np.zeros(34)
            apply_case2(after, source, my, bc, u_high, u_low, strategy)
            dn, sn, den, _ = single_source_state(after, source)
            den[source] = 0.0
            assert np.allclose(my[1], sn)
            assert np.allclose(my[2][my[0] < 10**9], den[my[0] < 10**9])

    def test_full_state_on_er(self, small_er, rng):
        sources = [0, 5, 17]
        st = BCState.compute(small_er, sources)
        dyn = DynamicGraph.from_csr(small_er)
        inserted = 0
        for u, v in small_er.undirected_non_edges(rng, 150).tolist():
            # only apply if Case 2 for every source (else other machinery)
            cls = [classify_insertion(st.d[i], u, v) for i in range(3)]
            if not all(c[0] == Case.ADJACENT_LEVEL for c in cls):
                continue
            dyn.insert_edge(u, v)
            after = dyn.snapshot()
            for i in range(3):
                _, high, low = cls[i]
                apply_case2(after, sources[i],
                            (st.d[i], st.sigma[i], st.delta[i]), st.bc,
                            high, low)
            inserted += 1
            if inserted == 4:
                break
        assert inserted > 0
        st.verify_against(dyn.snapshot())


class TestStats:
    def test_touched_counts_reported(self, karate):
        source = 0
        d, sigma, delta = (x.copy() for x in single_source_state(karate, source)[:3])
        delta[source] = 0.0
        u_high, u_low = find_case2_edges(karate, d, count=1)[0]
        dyn = DynamicGraph.from_csr(karate)
        dyn.insert_edge(u_high, u_low)
        bc = np.zeros(34)
        stats, acc = apply_case2(dyn.snapshot(), source, (d, sigma, delta),
                                 bc, u_high, u_low)
        assert stats.touched >= 1  # at least u_low
        assert stats.sp_levels >= 1
        assert stats.dep_levels >= 1
        assert len(acc.trace) > 0

    def test_precondition_checked(self, karate):
        d, sigma, delta = (x.copy() for x in single_source_state(karate, 0)[:3])
        dyn = DynamicGraph.from_csr(karate)
        bc = np.zeros(34)
        acc = make_accountant("cpu", 34, 2 * 78)
        with pytest.raises(ValueError, match="adjacent-level"):
            adjacent_level_update(dyn.snapshot(), 0, d, sigma, delta, bc,
                                  0, 0, acc)

    def test_source_delta_stays_zero(self, karate):
        # insert an edge adjacent to the source itself
        source = 0
        d, sigma, delta = (x.copy() for x in single_source_state(karate, source)[:3])
        delta[source] = 0.0
        dyn = DynamicGraph.from_csr(karate)
        # a pair whose higher endpoint sits at depth 1 guarantees the
        # up-cascade reaches the source itself
        pairs = [(h, l) for h, l in find_case2_edges(karate, d, count=10)
                 if d[h] == 1]
        assert pairs, "karate must yield a depth-1 case-2 pair"
        u_high, u_low = pairs[0]
        dyn.insert_edge(u_high, u_low)
        bc = np.zeros(34)
        apply_case2(dyn.snapshot(), source, (d, sigma, delta), bc,
                    u_high, u_low)
        assert delta[source] == 0.0
        assert bc[source] == 0.0
