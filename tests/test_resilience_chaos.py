"""Chaos harness: seeded fault-injection scenarios must survive.

Each scenario arms a mid-update fault, corrupts state rows (and on
some seeds injects structural damage) while a guarded replay runs,
then requires (a) the replay to finish with a passing final
``verify()`` and (b) a checkpoint-resumed twin to be bit-identical to
an uninterrupted run.  Any failing seed is reproducible with
``python -m repro.cli chaos --seed <seed>``.
"""

import pytest

from repro.bc.engine import BACKENDS
from repro.resilience import run_chaos


class TestChaosMatrix:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5])
    def test_seed_survives(self, seed):
        report = run_chaos(seed=seed, num_events=30)
        assert report.ok, (
            f"chaos scenario failed; reproduce with "
            f"`python -m repro.cli chaos --seed {seed}`\n{report.summary()}"
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_every_backend_survives(self, backend):
        report = run_chaos(seed=11, num_events=24, backend=backend)
        assert report.ok, report.summary()
        assert report.backend == backend


class TestChaosReportContents:
    def test_faults_actually_fired(self):
        # The scenario is only meaningful if the injector really did
        # something: the armed update fault plus two row corruptions
        # must show up in the log, and the guard/replay machinery must
        # have reacted at least once.
        report = run_chaos(seed=0, num_events=30)
        assert len(report.injector_log) >= 3
        assert any("corrupt" in line for line in report.injector_log)
        assert (report.detections + report.recovered_updates
                + report.skipped_events) > 0

    def test_summary_mentions_outcome(self):
        report = run_chaos(seed=1, num_events=18)
        text = report.summary()
        assert "PASS" in text or "FAIL" in text
        assert f"seed={report.seed}" in text

    def test_ok_is_conjunction_of_parts(self):
        # run_chaos never raises on scenario failure — `.ok` folds the
        # verdicts so the CI matrix can print the failing seed.
        report = run_chaos(seed=2, num_events=18)
        assert report.ok == (
            report.verify_ok and report.resume_identical
            and report.pool_identical
            and report.unrecovered_faults == 0
            and not report.failures
        )


class TestChaosSupervision:
    """workers>1 scenarios add worker crash + stall faults; the
    supervised pool must absorb them all (pool_identical, no
    permanent serial demotion, nothing left unrecovered)."""

    def test_pool_scenario_survives_crash_and_stall(self):
        from repro.parallel.shm import shm_available

        if not shm_available():
            pytest.skip("POSIX shm unavailable")
        report = run_chaos(seed=3, num_events=18, workers=2)
        assert report.ok, report.summary()
        # The differential phase really injected both fault kinds and
        # the supervisor really recovered them.
        assert report.worker_kills >= 1
        assert report.hung_detections >= 1
        assert report.respawns >= 1
        assert report.pool_identical
        assert not report.permanent_serial
        assert report.unrecovered_faults == 0
        assert any("stall" in line for line in report.injector_log)
        assert any("hung-worker" in line for line in report.health_events)
