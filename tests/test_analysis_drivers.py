"""End-to-end driver tests at smoke scale (Fig 1/2/4, Tables II/III)."""

import numpy as np
import pytest

from repro.analysis.blocks import run_block_sweep, sweep_blocks_for_graph
from repro.analysis.config import ExperimentConfig
from repro.analysis.scenarios import aggregate, run_scenario_study
from repro.analysis.speedup import run_table2, run_table3, summarize_headline
from repro.analysis.touched import run_touched_study
from repro.gpu.device import GTX_560, TESLA_C2075
from repro.graph import generators as gen

CFG = ExperimentConfig(scale=0.2, num_sources=10, num_insertions=4,
                       graphs=("small", "pref"), seed=7)


class TestScenarioStudy:
    def test_counts_complete(self):
        results = run_scenario_study(CFG)
        assert [r.graph_name for r in results] == ["small", "pref"]
        for r in results:
            assert r.total == 4 * 10  # insertions x sources

    def test_fractions_sum_to_one(self):
        results = run_scenario_study(CFG)
        for r in results:
            assert sum(r.fraction(c) for c in (1, 2, 3)) == pytest.approx(1.0)

    def test_aggregate_pools(self):
        results = run_scenario_study(CFG)
        agg = aggregate(results)
        assert agg.total == sum(r.total for r in results)
        assert agg.graph_name == "ALL"

    def test_case2_dominates_work(self):
        """The paper's central observation: most work-requiring
        scenarios are Case 2 (73.5% pooled)."""
        agg = aggregate(run_scenario_study(
            ExperimentConfig(scale=0.3, num_sources=16, num_insertions=8,
                             seed=5)
        ))
        assert agg.case2_share_of_work > 0.5


class TestTouchedStudy:
    def test_fractions_bounded(self):
        studies = run_touched_study(CFG)
        for s in studies:
            assert np.all(s.fractions >= 0)
            assert np.all(s.fractions <= 1)
            assert np.all(np.diff(s.fractions) >= 0)  # sorted

    def test_small_majority(self):
        """Fig. 4's observation: the median touched fraction is small."""
        studies = run_touched_study(CFG)
        pooled = np.concatenate([s.fractions for s in studies])
        if pooled.size:
            assert np.median(pooled) < 0.5


class TestBlockSweep:
    def test_speedup_peaks_at_sm_count(self):
        g = gen.erdos_renyi(150, 500, seed=2)
        sweeps = sweep_blocks_for_graph(g, "er", devices=(TESLA_C2075,),
                                        max_sources=60)
        (sweep,) = sweeps
        assert sweep.best_blocks == TESLA_C2075.num_sms

    def test_both_devices(self):
        g = gen.erdos_renyi(100, 300, seed=2)
        sweeps = sweep_blocks_for_graph(g, "er", max_sources=40)
        names = {s.device_name for s in sweeps}
        assert names == {"GTX 560", "Tesla C2075"}

    def test_run_block_sweep_defaults(self):
        sweeps = run_block_sweep(scale=0.2, seed=3, graphs=("small",),
                                 max_sources=30)
        assert len(sweeps) == 2  # one per device
        for s in sweeps:
            assert s.speedups[0] == pytest.approx(1.0)  # blocks=1 baseline
            assert max(s.speedups) > 1.5


class TestTables:
    def test_table2_rows(self):
        rows = run_table2(CFG, verify=True)
        assert [r.graph_name for r in rows] == ["small", "pref"]
        for r in rows:
            assert r.cpu_seconds > 0
            assert r.node_speedup > 0
            # the paper's core finding at any scale:
            assert r.node_seconds < r.edge_seconds

    def test_table3_rows(self):
        rows = run_table3(CFG)
        for r in rows:
            assert r.fastest <= r.average <= r.slowest
            assert r.recompute_seconds > 0
            assert r.fastest_speedup >= r.average_speedup >= r.slowest_speedup

    def test_table3_updates_beat_recompute(self):
        """'even in the worst case for each graph a dynamic update is
        faster than a static recomputation' — holds on average at any
        scale; the slowest-case guarantee needs larger graphs."""
        rows = run_table3(ExperimentConfig(scale=0.5, num_sources=16,
                                           num_insertions=6,
                                           graphs=("small",), seed=3))
        for r in rows:
            assert r.average_speedup > 1.0

    def test_headline_summary(self):
        t2 = run_table2(CFG)
        t3 = run_table3(CFG)
        head = summarize_headline(t2, t3)
        assert head.max_cpu_speedup > 0
        assert head.mean_update_vs_recompute > 0


class TestSubcaseStudy:
    def test_subcases_refine_cases(self):
        from repro.analysis.scenarios import run_subcase_study

        coarse = run_scenario_study(CFG)
        fine = run_subcase_study(CFG)
        for dist in coarse:
            sub = fine[dist.graph_name]
            assert (
                sub.get("1-connected", 0) + sub.get("1-disconnected", 0)
                == dist.counts.get(1, 0)
            )
            assert sub.get("2", 0) == dist.counts.get(2, 0)
            assert (
                sub.get("3-connected", 0) + sub.get("3-merge", 0)
                == dist.counts.get(3, 0)
            )
