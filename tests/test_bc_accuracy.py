import numpy as np
import pytest

from repro.bc.accuracy import kendall_tau_topk, ranking_metrics, top_k_overlap
from repro.bc.brandes import brandes_bc
from repro.graph import generators as gen


class TestTopKOverlap:
    def test_identical(self):
        x = np.array([5.0, 3.0, 1.0, 4.0])
        assert top_k_overlap(x, x, k=2) == 1.0

    def test_disjoint(self):
        a = np.array([1.0, 0.0, 0.0, 0.0])
        b = np.array([0.0, 0.0, 0.0, 1.0])
        assert top_k_overlap(a, b, k=1) == 0.0

    def test_k_clamped(self):
        x = np.arange(3.0)
        assert top_k_overlap(x, x, k=100) == 1.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            top_k_overlap(np.zeros(3), np.zeros(4))

    def test_bad_k(self):
        with pytest.raises(ValueError):
            top_k_overlap(np.zeros(3), np.zeros(3), k=0)


class TestKendall:
    def test_perfect(self):
        x = np.array([4.0, 2.0, 9.0, 1.0])
        assert kendall_tau_topk(x, x) == pytest.approx(1.0)

    def test_reversed(self):
        x = np.arange(10.0)
        assert kendall_tau_topk(-x, x) == pytest.approx(-1.0)

    def test_topk_restriction(self):
        exact = np.array([10.0, 9.0, 8.0, 0.1, 0.2])
        approx = np.array([10.0, 9.0, 8.0, 0.2, 0.1])
        assert kendall_tau_topk(approx, exact, k=3) == pytest.approx(1.0)

    def test_constant_exact(self):
        assert kendall_tau_topk(np.arange(4.0), np.ones(4)) == 1.0


class TestRankingMetrics:
    def test_bundle_keys(self):
        m = ranking_metrics(np.arange(10.0), np.arange(10.0))
        assert set(m) == {"top_k_overlap", "kendall_tau_topk",
                          "kendall_tau_all", "max_rel_error"}
        assert m["max_rel_error"] == 0.0

    def test_approximation_quality_improves_with_k(self, rng):
        """The §II-B claim: more sources -> better ranking agreement."""
        g = gen.watts_strogatz(150, k=6, p=0.1, seed=3)
        exact = brandes_bc(g)
        n = g.num_vertices
        overlaps = []
        for k in (5, 40, 150):
            sources = rng.choice(n, size=k, replace=False)
            approx = brandes_bc(g, sources=sources) * (n / k)
            overlaps.append(top_k_overlap(approx, exact, k=10))
        assert overlaps[-1] >= overlaps[0]
        assert overlaps[-1] == 1.0  # all sources == exact
