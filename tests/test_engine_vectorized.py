"""Differential tests: the vectorized multi-source update path must
produce **bit-identical** reports to the original per-source loop
(kept behind the ``vectorized=False`` escape hatch), on every backend.

The engine promises that the fast path changes only the host-side
execution strategy, never the model: cases, per-source simulated
seconds, scheduled makespan, stage breakdowns, touched counts and
counter totals all feed the paper's figures and tables, so any drift —
even in the last ulp — would silently perturb published numbers.
"""

import numpy as np
import pytest

from repro.bc.cases import (
    Case,
    classify_deletion,
    classify_deletions_batch,
    classify_insertion,
    classify_insertions_batch,
)
from repro.bc.engine import BACKENDS, DynamicBC
from repro.graph import generators as gen
from repro.graph.csr import CSRGraph
from repro.graph.dynamic import DynamicGraph


def assert_reports_identical(rep_a, rep_b):
    """Field-by-field bitwise comparison (wall_seconds and stats are
    execution-side and intentionally excluded)."""
    assert rep_a.edge == rep_b.edge
    assert rep_a.operation == rep_b.operation
    assert rep_a.cases.dtype == rep_b.cases.dtype
    assert np.array_equal(rep_a.cases, rep_b.cases)
    assert np.array_equal(rep_a.per_source_seconds, rep_b.per_source_seconds)
    assert rep_a.simulated_seconds == rep_b.simulated_seconds
    assert np.array_equal(rep_a.touched, rep_b.touched)
    assert rep_a.stage_seconds == rep_b.stage_seconds
    ca, cb = rep_a.counters, rep_b.counters
    assert ca.steps == cb.steps
    assert ca.work_items == cb.work_items
    assert ca.bytes_moved == cb.bytes_moved
    assert ca.atomic_ops == cb.atomic_ops
    assert ca.barriers == cb.barriers
    assert ca.kernel_launches == cb.kernel_launches
    assert ca.by_kernel == cb.by_kernel


def paired_engines(graph, backend, **kwargs):
    fast = DynamicBC.from_graph(DynamicGraph.from_csr(graph),
                                vectorized=True, backend=backend, **kwargs)
    loop = DynamicBC.from_graph(DynamicGraph.from_csr(graph),
                                vectorized=False, backend=backend, **kwargs)
    return fast, loop


class TestDifferentialAllBackends:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_mixed_stream_identical_reports(self, small_er, backend):
        """A mixed insert/delete stream hitting all three cases must
        yield identical UpdateReport fields on every update."""
        fast, loop = paired_engines(small_er, backend, num_sources=12, seed=3)
        rng = np.random.default_rng(5)
        toggles = 0
        while toggles < 18:
            u, v = int(rng.integers(60)), int(rng.integers(60))
            if u == v:
                continue
            toggles += 1
            if fast.graph.has_edge(u, v):
                rep_f, rep_l = fast.delete_edge(u, v), loop.delete_edge(u, v)
            else:
                rep_f, rep_l = fast.insert_edge(u, v), loop.insert_edge(u, v)
            assert_reports_identical(rep_f, rep_l)
        # cumulative engine-level counters agree too
        assert fast.counters.bytes_moved == loop.counters.bytes_moved
        assert fast.counters.work_items == loop.counters.work_items
        assert np.array_equal(fast.bc_scores, loop.bc_scores)
        fast.verify(atol=1e-8)
        loop.verify(atol=1e-8)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_pure_case1_update(self, two_components, backend):
        """The bulk-charged population: both endpoints unreachable from
        the source, so all classifications are Case 1."""
        fast, loop = paired_engines(two_components, backend, sources=[0, 1])
        rep_f, rep_l = fast.insert_edge(6, 8), loop.insert_edge(6, 8)
        assert rep_f.case_histogram == {1: 2}
        assert_reports_identical(rep_f, rep_l)
        rep_f, rep_l = fast.delete_edge(6, 8), loop.delete_edge(6, 8)
        assert rep_f.case_histogram == {1: 2}
        assert_reports_identical(rep_f, rep_l)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_distance_increasing_deletion(self, path10, backend):
        """Deleting a bridge forces the per-source recompute fallback;
        its static-cost charge must be identical under both paths."""
        fast, loop = paired_engines(path10, backend, sources=[0, 4, 9])
        rep_f, rep_l = fast.delete_edge(4, 5), loop.delete_edge(4, 5)
        assert (rep_f.cases == int(Case.DISTANT_LEVEL)).any()
        assert_reports_identical(rep_f, rep_l)

    def test_exact_mode_karate(self, karate):
        """All-sources (exact) mode over a real small graph."""
        fast, loop = paired_engines(karate, "gpu-node")
        for u, v in [(0, 9), (15, 16), (4, 20)]:
            assert_reports_identical(fast.insert_edge(u, v),
                                     loop.insert_edge(u, v))
        for u, v in [(0, 9), (15, 16)]:
            assert_reports_identical(fast.delete_edge(u, v),
                                     loop.delete_edge(u, v))
        fast.verify()


class TestBatchClassifiers:
    def test_insertions_batch_matches_scalar(self, small_er):
        eng = DynamicBC.from_graph(small_er, num_sources=16, seed=2)
        rng = np.random.default_rng(9)
        for _ in range(30):
            u, v = int(rng.integers(60)), int(rng.integers(60))
            if u == v:
                continue
            cases, highs, lows = classify_insertions_batch(eng.state.d, u, v)
            assert cases.dtype == np.int8
            for i in range(eng.state.num_sources):
                case, high, low = classify_insertion(eng.state.d[i], u, v)
                assert cases[i] == int(case)
                assert (int(highs[i]), int(lows[i])) == (high, low)

    def test_deletions_batch_matches_scalar(self, small_er):
        eng = DynamicBC.from_graph(small_er, num_sources=16, seed=2)
        snap = eng.graph.snapshot()
        edges = snap.edge_list()[:40]
        for u, v in edges.tolist():
            cases, highs, lows = classify_deletions_batch(
                eng.state.d, eng.state.sigma, snap, u, v
            )
            for i in range(eng.state.num_sources):
                case, high, low = classify_deletion(
                    eng.state.d[i], eng.state.sigma[i], snap, u, v
                )
                assert cases[i] == int(case)
                assert (int(highs[i]), int(lows[i])) == (high, low)

    def test_deletions_batch_rejects_stale_state(self, path10):
        """A gap > 1 means the stored state does not describe the graph
        — the batch classifier must raise exactly like the scalar one."""
        eng = DynamicBC.from_graph(path10, sources=[0])
        snap = eng.graph.snapshot()
        with pytest.raises(ValueError, match="spans"):
            classify_deletions_batch(eng.state.d, eng.state.sigma, snap, 2, 7)


class TestEscapeHatch:
    def test_flag_plumbing(self, karate):
        assert DynamicBC.from_graph(karate, num_sources=4, seed=1).vectorized
        assert not DynamicBC.from_graph(
            karate, num_sources=4, seed=1, vectorized=False
        ).vectorized

    def test_flag_can_be_toggled_mid_stream(self, karate):
        """The two paths share all stored state, so switching per update
        is safe (useful for A/B profiling)."""
        eng = DynamicBC.from_graph(karate, num_sources=8, seed=1)
        eng.insert_edge(0, 9)
        eng.vectorized = False
        eng.insert_edge(4, 20)
        eng.verify()
