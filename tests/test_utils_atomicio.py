"""Atomic durable writes (:mod:`repro.utils.atomicio`): success
replaces the target in one rename, failure leaves the previous file
untouched, and no temporary files survive either way."""

import os

import pytest

from repro.utils.atomicio import atomic_write, fsync_dir


class TestAtomicWrite:
    def test_creates_new_file(self, tmp_path):
        path = tmp_path / "out.txt"
        with atomic_write(path) as fh:
            fh.write("hello\n")
        assert path.read_text() == "hello\n"
        assert os.listdir(tmp_path) == ["out.txt"]

    def test_replaces_existing_file(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("old")
        with atomic_write(path) as fh:
            fh.write("new")
        assert path.read_text() == "new"

    def test_exception_leaves_original_intact(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("original")
        with pytest.raises(RuntimeError):
            with atomic_write(path) as fh:
                fh.write("partial garbage")
                raise RuntimeError("crash mid-write")
        assert path.read_text() == "original"
        assert os.listdir(tmp_path) == ["out.txt"]  # no .tmp leftover

    def test_exception_on_fresh_target_leaves_nothing(self, tmp_path):
        path = tmp_path / "never.txt"
        with pytest.raises(ValueError):
            with atomic_write(path) as fh:
                fh.write("doomed")
                raise ValueError("boom")
        assert os.listdir(tmp_path) == []

    def test_binary_mode(self, tmp_path):
        path = tmp_path / "blob.bin"
        payload = bytes(range(256))
        with atomic_write(path, "wb") as fh:
            fh.write(payload)
        assert path.read_bytes() == payload

    @pytest.mark.parametrize("mode", ["r", "rb", "r+", "w+", "a+"])
    def test_read_capable_modes_rejected(self, tmp_path, mode):
        with pytest.raises(ValueError, match="write-only"):
            with atomic_write(tmp_path / "x", mode):
                pass

    def test_open_kwargs_forwarded(self, tmp_path):
        path = tmp_path / "enc.txt"
        with atomic_write(path, encoding="utf-8") as fh:
            fh.write("café")
        assert path.read_bytes().decode("utf-8") == "café"


class TestFsyncDir:
    def test_best_effort_on_directory(self, tmp_path):
        fsync_dir(tmp_path)  # must not raise

    def test_tolerates_missing_directory(self, tmp_path):
        fsync_dir(tmp_path / "does-not-exist")  # silently tolerated
