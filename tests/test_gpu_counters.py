import pytest

from repro.gpu.counters import KernelCounters, Step, Trace


class TestTrace:
    def test_add_records_step(self):
        t = Trace("x")
        t.add(10, 2.0, 100.0, atomic_ops=3, max_conflict=2)
        assert len(t) == 1
        s = t.steps[0]
        assert s.work_items == 10 and s.atomic_ops == 3 and s.max_conflict == 2

    def test_empty_step_skipped(self):
        t = Trace()
        t.add(0, 2.0, 0.0)
        assert len(t) == 0

    def test_atomics_only_step_kept(self):
        t = Trace()
        t.add(0, 2.0, 0.0, atomic_ops=5)
        assert len(t) == 1

    def test_negative_rejected(self):
        t = Trace()
        with pytest.raises(ValueError):
            t.add(-1, 1.0, 0.0)

    def test_conflict_floor_is_one(self):
        t = Trace()
        t.add(1, 1.0, 1.0, max_conflict=0)
        assert t.steps[0].max_conflict == 1

    def test_totals(self):
        t = Trace()
        t.add(10, 1.0, 100.0, atomic_ops=2)
        t.add(5, 1.0, 50.0, atomic_ops=1)
        assert t.total_items == 15
        assert t.total_bytes == 150.0
        assert t.total_atomics == 3

    def test_extend(self):
        a, b = Trace(), Trace()
        a.add(1, 1.0, 1.0)
        b.add(2, 1.0, 2.0)
        a.extend(b)
        assert a.total_items == 3


class TestKernelCounters:
    def test_absorb(self):
        t = Trace()
        t.add(10, 1.0, 100.0, atomic_ops=4)
        c = KernelCounters()
        c.absorb(t, kernel="sp")
        assert c.work_items == 10
        assert c.bytes_moved == 100.0
        assert c.atomic_ops == 4
        assert c.steps == c.barriers == 1
        assert c.by_kernel == {"sp": 10}

    def test_absorb_all(self):
        traces = []
        for i in range(3):
            t = Trace()
            t.add(i + 1, 1.0, 1.0)
            traces.append(t)
        c = KernelCounters()
        c.absorb_all(traces, kernel="k")
        assert c.work_items == 6

    def test_merged(self):
        a, b = KernelCounters(), KernelCounters()
        t = Trace()
        t.add(5, 1.0, 10.0)
        a.absorb(t, "x")
        b.absorb(t, "x")
        b.absorb(t, "y")
        m = a.merged(b)
        assert m.work_items == 15
        assert m.by_kernel == {"x": 10, "y": 5}
        # originals untouched
        assert a.work_items == 5
