import numpy as np
import pytest

from repro.graph import generators as gen
from repro.graph.csr import CSRGraph
from repro.graph.properties import (
    GraphProperties,
    analyze,
    approximate_diameter,
    average_clustering,
)


class TestDiameter:
    def test_path_exact(self):
        assert approximate_diameter(gen.path_graph(20)) == 19

    def test_star(self):
        assert approximate_diameter(gen.star_graph(10)) == 2

    def test_complete(self):
        assert approximate_diameter(gen.complete_graph(8)) == 1

    def test_empty_graph(self):
        assert approximate_diameter(CSRGraph.empty(0)) == 0

    def test_lower_bound_vs_networkx(self):
        import networkx as nx

        g = gen.erdos_renyi(60, 120, seed=3)
        if np.all(g.connected_components() == 0):
            G = nx.Graph(list(map(tuple, g.edge_list().tolist())))
            true_diam = nx.diameter(G)
            approx = approximate_diameter(g)
            assert approx <= true_diam
            assert approx >= max(1, true_diam - 2)  # double sweep is tight


class TestClustering:
    def test_triangle(self):
        g = gen.complete_graph(3)
        assert average_clustering(g, samples=None) == pytest.approx(1.0)

    def test_path_has_none(self):
        assert average_clustering(gen.path_graph(10), samples=None) == 0.0

    def test_matches_networkx(self, karate):
        import networkx as nx

        ours = average_clustering(karate, samples=None)
        theirs = nx.average_clustering(nx.karate_club_graph())
        assert ours == pytest.approx(theirs, abs=1e-9)

    def test_sampled_close_to_exact(self):
        g = gen.co_papers(200, seed=1)
        exact = average_clustering(g, samples=None)
        sampled = average_clustering(g, samples=150, seed=0)
        assert abs(exact - sampled) < 0.15

    def test_empty(self):
        assert average_clustering(CSRGraph.empty(0)) == 0.0


class TestAnalyze:
    def test_karate_summary(self, karate):
        p = analyze(karate, clustering_samples=None)
        assert p.num_vertices == 34
        assert p.num_edges == 78
        assert p.max_degree == 17
        assert p.min_degree == 1
        assert p.num_components == 1
        assert p.largest_component_frac == 1.0
        assert p.mean_degree == pytest.approx(2 * 78 / 34)

    def test_disconnected(self, two_components):
        p = analyze(two_components)
        assert p.num_components == 2
        assert p.largest_component_frac == 0.5

    def test_row_shape(self, karate):
        p = analyze(karate)
        assert len(p.row()) == 7

    def test_is_frozen(self, karate):
        p = analyze(karate)
        with pytest.raises(Exception):
            p.num_vertices = 5
