.PHONY: install test bench examples artifacts lint analyze clean

install:
	pip install -e .

test:
	pytest tests/

lint:
	PYTHONPATH=src python -m repro.sanitize.lint src/ tests/

analyze:
	PYTHONPATH=src python -m repro.sanitize.flow src/ tests/ \
		--baseline .flow-baseline.json

bench:
	pytest benchmarks/ --benchmark-only

examples:
	@for f in examples/*.py; do echo "== $$f"; python $$f || exit 1; done

artifacts:
	python -m repro.cli all

clean:
	rm -rf .pytest_cache .hypothesis benchmarks/output src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
