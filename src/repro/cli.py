"""Command-line entry point: regenerate every table and figure.

Usage::

    python -m repro.cli table1                 # graph suite properties
    python -m repro.cli fig1                   # thread-block sweep
    python -m repro.cli fig2                   # scenario distribution
    python -m repro.cli table2                 # CPU vs GPU speedups
    python -m repro.cli table3                 # update vs recompute
    python -m repro.cli fig4                   # touched fractions
    python -m repro.cli all --scale 1 --sources 64 --insertions 20

``--scale`` multiplies the suite graph sizes; the defaults run in a few
minutes, ``--scale 20 --sources 128`` approaches the paper's regime
(see EXPERIMENTS.md for recorded runs).

Resilience subcommands (see docs/RESILIENCE.md)::

    python -m repro.cli replay --graph small --events 50 \\
        --guard-every 10 --checkpoint-every 20 --checkpoint-dir ckpts
    python -m repro.cli replay --resume-from ckpts/ckpt-00000020.npz ...
    python -m repro.cli chaos --seed 7        # seeded fault-injection run

Sanitizer subcommands (see docs/SANITIZER.md)::

    python -m repro.cli sanitize --events 100 --format json \\
        --output artifacts/sanitizer-report.json
    python -m repro.cli flow src/ tests/ --baseline .flow-baseline.json

Service subcommands (see docs/SERVICE.md)::

    python -m repro.cli loadgen --profile flash-crowd --ops 400 \\
        --output workload.jsonl
    python -m repro.cli serve --workload workload.jsonl --duration 30 \\
        --bench-json BENCH_service.json

Durability subcommands (see docs/RESILIENCE.md)::

    python -m repro.cli serve --workload workload.jsonl --wal wal/ \\
        --checkpoint-every 50 --checkpoint-dir ckpts --checkpoint-keep 3
    python -m repro.cli recover --wal wal/ --checkpoint-dir ckpts
    python -m repro.cli drill --seed 3      # kill -9 crash-recovery drill
    python -m repro.cli failover --seed 3   # kill-the-primary failover drill
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.analysis import report
from repro.analysis.blocks import run_block_sweep
from repro.analysis.config import ExperimentConfig
from repro.analysis.scenarios import run_scenario_study
from repro.analysis.speedup import run_table2, run_table3, summarize_headline
from repro.analysis.touched import run_touched_study
from repro.graph.properties import analyze
from repro.graph.suite import load_suite

ARTIFACTS = ("table1", "fig1", "fig2", "table2", "table3", "fig4", "all")


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-bc`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-bc",
        description="Reproduce the tables and figures of McLaughlin & "
                    "Bader, 'Revisiting Edge and Node Parallelism for "
                    "Dynamic GPU Graph Analytics' (IPDPS-W 2014).",
    )
    parser.add_argument("artifact", choices=ARTIFACTS)
    parser.add_argument("--scale", type=float, default=1.0,
                        help="suite graph size multiplier (default 1.0)")
    parser.add_argument("--sources", type=int, default=64,
                        help="k source vertices (paper: 256)")
    parser.add_argument("--insertions", type=int, default=20,
                        help="edges removed and re-inserted (paper: 100)")
    parser.add_argument("--seed", type=int, default=2014)
    parser.add_argument("--graphs", nargs="*", default=None,
                        help="subset of suite graph names")
    parser.add_argument("--verify", action="store_true",
                        help="check final state against a scratch "
                             "recomputation (slower)")
    parser.add_argument("--save", metavar="DIR", default=None,
                        help="also write each section (and CSV series "
                             "for the figures) into DIR")
    return parser


def _config(args: argparse.Namespace) -> ExperimentConfig:
    kwargs = dict(
        scale=args.scale,
        num_sources=args.sources,
        num_insertions=args.insertions,
        seed=args.seed,
    )
    if args.graphs:
        kwargs["graphs"] = tuple(args.graphs)
    return ExperimentConfig(**kwargs)


def iter_artifact_sections(artifact: str, args: argparse.Namespace):
    """Run one artifact, yielding ``(name, text)`` sections as they
    complete; names double as file stems for ``--save``."""
    config = _config(args)
    if artifact in ("table1", "all"):
        suite = load_suite(scale=config.scale, seed=config.seed,
                           names=config.graphs)
        graphs = [suite[name] for name in config.graphs]
        props = [analyze(b.graph) for b in graphs]
        yield "table1", report.render_table1(graphs, props)
    if artifact in ("fig1", "all"):
        sweeps = run_block_sweep(scale=config.scale, seed=config.seed)
        yield "fig1", report.render_fig1(sweeps)
        yield "fig1.csv", report.fig1_csv(sweeps)
    if artifact in ("fig2", "all"):
        yield "fig2", report.render_fig2(run_scenario_study(config))
    table2 = None
    if artifact in ("table2", "all"):
        table2 = run_table2(config, verify=args.verify)
        yield "table2", report.render_table2(table2)
    if artifact in ("table3", "all"):
        table3 = run_table3(config)
        yield "table3", report.render_table3(table3)
        if table2 is not None:
            yield "headline", report.render_headline(
                summarize_headline(table2, table3)
            )
    if artifact in ("fig4", "all"):
        studies = run_touched_study(config)
        yield "fig4", report.render_fig4(studies)
        yield "fig4.csv", report.fig4_csv(studies)


def run_artifact(artifact: str, args: argparse.Namespace) -> List[str]:
    """Run one artifact and return its rendered text sections (CSV
    companions excluded)."""
    return [
        text for name, text in iter_artifact_sections(artifact, args)
        if not name.endswith(".csv")
    ]


# ----------------------------------------------------------------------
# Resilience subcommands
# ----------------------------------------------------------------------
def build_replay_parser() -> argparse.ArgumentParser:
    """Parser for ``repro-bc replay``: guarded, checkpointed stream
    replay over a suite graph or a saved stream CSV."""
    parser = argparse.ArgumentParser(
        prog="repro-bc replay",
        description="Drive a dynamic-BC engine through an edge stream "
                    "with optional self-healing guards and checkpoints.",
    )
    parser.add_argument("--graph", default="small",
                        help="suite graph name (default: small)")
    parser.add_argument("--scale", type=float, default=0.5,
                        help="suite graph size multiplier")
    parser.add_argument("--sources", type=int, default=32,
                        help="k source vertices")
    parser.add_argument("--backend", default="gpu-node",
                        help="execution strategy (see DynamicBC)")
    parser.add_argument("--events", type=int, default=50,
                        help="churn-stream length when --stream is not given")
    parser.add_argument("--stream", default=None,
                        help="CSV stream file (time,u,v,op) to replay "
                             "instead of generated churn")
    parser.add_argument("--seed", type=int, default=2014)
    parser.add_argument("--guard-every", type=int, default=0,
                        help="spot-check cadence in events (0 = unguarded)")
    parser.add_argument("--repair-budget", type=int, default=8,
                        help="row repairs before escalating to recompute")
    parser.add_argument("--checkpoint-every", type=int, default=0,
                        help="write a checkpoint every N events (0 = off)")
    parser.add_argument("--checkpoint-dir", default=None,
                        help="directory for checkpoint files")
    parser.add_argument("--resume-from", default=None,
                        help="checkpoint file to resume the replay from")
    parser.add_argument("--verify", action="store_true",
                        help="verify final state against scratch recompute")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for the engine (default 1 "
                             "= serial; N>1 runs sources on a shared-"
                             "memory pool with bit-identical results)")
    return parser


def run_replay(args: argparse.Namespace) -> int:
    """Execute the ``replay`` subcommand; returns a process exit code."""
    from repro.bc.engine import DynamicBC
    from repro.graph.stream import EdgeStream, replay
    from repro.graph.suite import make_suite_graph
    from repro.resilience.guards import GuardPolicy

    graph = make_suite_graph(args.graph, scale=args.scale, seed=args.seed).graph
    if args.stream is not None:
        stream = EdgeStream.load(args.stream)
    else:
        stream = EdgeStream.churn(graph, args.events, seed=args.seed + 1)
    engine = DynamicBC.from_graph(graph, num_sources=args.sources,
                                  seed=args.seed, backend=args.backend,
                                  workers=args.workers)
    try:
        policy = None
        if args.guard_every > 0:
            policy = GuardPolicy(check_every=args.guard_every,
                                 repair_budget=args.repair_budget,
                                 seed=args.seed)
        result = replay(
            engine, stream, guard=policy,
            checkpoint_every=args.checkpoint_every or None,
            checkpoint_dir=args.checkpoint_dir,
            resume_from=args.resume_from,
        )
        print(f"replayed {len(result.reports)} updates "
              f"(events {result.start_index}..{len(stream) - 1}, "
              f"{len(result.skipped)} skipped, "
              f"{len(result.recovered)} recovered)")
        print(f"simulated seconds: {result.simulated_seconds:.6g} "
              f"({result.updates_per_second:.1f} updates/s)")
        for e in result.guard_events:
            print(f"guard @{e.event_index}: {e.action} {e.kind} {e.detail}")
        for path in result.checkpoints:
            print(f"checkpoint: {path}")
        if args.verify:
            engine.verify()
            print("final verify: ok")
    finally:
        engine.close()
    return 0


def build_sanitize_parser() -> argparse.ArgumentParser:
    """Parser for ``repro-bc sanitize``: replay an edge stream with the
    kernel race sanitizer attached (see docs/SANITIZER.md)."""
    parser = argparse.ArgumentParser(
        prog="repro-bc sanitize",
        description="Replay a churn stream under MemoryTracer "
                    "instrumentation and report data races (S101), "
                    "missing barriers (S102) and frontier-monotonicity "
                    "violations (S103) in the simulated kernels. "
                    "Exit code 1 when any finding survives.",
    )
    parser.add_argument("--graph", default=None,
                        help="suite graph name (default: a small "
                             "Kronecker graph, see --kron-scale)")
    parser.add_argument("--scale", type=float, default=0.5,
                        help="suite graph size multiplier (with --graph)")
    parser.add_argument("--kron-scale", type=int, default=8,
                        help="Kronecker scale 2^s vertices when no "
                             "--graph is given (default 8)")
    parser.add_argument("--sources", type=int, default=16,
                        help="k source vertices")
    parser.add_argument("--events", type=int, default=100,
                        help="churn-stream length")
    parser.add_argument("--seed", type=int, default=2014)
    parser.add_argument("--backend", default="gpu-node",
                        help="execution strategy (see DynamicBC)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", dest="fmt",
                        help="report format (json is the stable "
                             "SanitizerReport schema)")
    parser.add_argument("--output", default=None, metavar="PATH",
                        help="also write the JSON report to PATH (what "
                             "the CI job uploads as an artifact)")
    return parser


def run_sanitize(args: argparse.Namespace) -> int:
    """Execute the ``sanitize`` subcommand; returns a process exit code."""
    from repro.bc.engine import DynamicBC
    from repro.graph.stream import EdgeStream

    if args.graph is not None:
        from repro.graph.suite import make_suite_graph

        graph = make_suite_graph(args.graph, scale=args.scale,
                                 seed=args.seed).graph
    else:
        from repro.graph.generators import kronecker

        graph = kronecker(args.kron_scale, 8, seed=args.seed)
    stream = EdgeStream.churn(graph, args.events, seed=args.seed + 1)
    engine = DynamicBC.from_graph(graph, num_sources=args.sources,
                                  seed=args.seed, backend=args.backend,
                                  sanitize=True)
    try:
        applied = 0
        for event in stream:
            try:
                if event.op == "insert":
                    engine.insert_edge(event.u, event.v)
                else:
                    engine.delete_edge(event.u, event.v)
            except ValueError:
                continue  # duplicate insert / missing delete in churn
            applied += 1
        report = engine.sanitizer_report()
    finally:
        engine.close()
    if args.output:  # persist the artifact before stdout can fail
        import os

        parent = os.path.dirname(os.path.abspath(args.output))
        os.makedirs(parent, exist_ok=True)
        with open(args.output, "w") as fh:
            fh.write(report.to_json() + "\n")
        print(f"report: {args.output}", file=sys.stderr)
    if args.fmt == "json":
        print(report.to_json())
    else:
        print(report.summary())
        print(f"replayed {applied}/{len(stream)} events on "
              f"{graph.num_vertices} vertices / {graph.num_edges} edges "
              f"({args.backend}, {args.sources} sources)")
    return 0 if report.ok else 1


def build_chaos_parser() -> argparse.ArgumentParser:
    """Parser for ``repro-bc chaos``: one seeded fault-injection run."""
    parser = argparse.ArgumentParser(
        prog="repro-bc chaos",
        description="Run the seeded chaos scenario: guarded replay under "
                    "injected faults plus checkpoint-resume bit-identity. "
                    "Exit code 1 when any resilience claim fails.",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--events", type=int, default=30,
                        help="stream length of the scenario")
    parser.add_argument("--backend", default=None,
                        help="execution strategy (default: seed-derived)")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for the engines (default 1 "
                             "= serial; the scenario must pass identically "
                             "at any worker count)")
    parser.add_argument("--health-log", default=None, metavar="PATH",
                        help="write the run's supervision health events "
                             "and injector log as JSON lines to PATH "
                             "(what the CI job uploads as an artifact)")
    return parser


def run_chaos_cmd(args: argparse.Namespace) -> int:
    """Execute the ``chaos`` subcommand; returns a process exit code.

    The reproduction line (seed, events, backend, workers) is printed
    on *every* run — pass or fail — so any log excerpt is replayable;
    the exit code is nonzero whenever a resilience claim fails,
    including any injected fault left unrecovered.
    """
    from repro.resilience.chaos import run_chaos

    report = run_chaos(seed=args.seed, num_events=args.events,
                       backend=args.backend, workers=args.workers)
    print(report.summary())
    repro_line = (
        f"reproduce with: python -m repro.cli chaos --seed {report.seed} "
        f"--events {report.num_events} --backend {report.backend} "
        f"--workers {report.workers}"
    )
    print(repro_line)
    if args.health_log:
        _write_health_log(args.health_log, report)
        print(f"health log: {args.health_log}")
    if not report.ok:
        print(repro_line, file=sys.stderr)
        return 1
    return 0


def _write_health_log(path: str, report) -> None:
    """Dump a chaos report's supervision events + injector log as JSON
    lines (one self-describing record per line)."""
    import json
    import os

    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "w") as fh:
        header = {
            "record": "chaos-report", "seed": report.seed,
            "backend": report.backend, "events": report.num_events,
            "workers": report.workers, "ok": report.ok,
            "worker_kills": report.worker_kills,
            "hung_detections": report.hung_detections,
            "respawns": report.respawns,
            "quarantined_chunks": report.quarantined_chunks,
            "permanent_serial": report.permanent_serial,
            "unrecovered_faults": report.unrecovered_faults,
            "failures": report.failures,
        }
        fh.write(json.dumps(header) + "\n")
        for line in report.health_events:
            fh.write(json.dumps({"record": "health", "event": line}) + "\n")
        for line in report.injector_log:
            fh.write(json.dumps({"record": "injection", "event": line}) + "\n")


# ----------------------------------------------------------------------
# Service subcommands
# ----------------------------------------------------------------------
def build_loadgen_parser() -> argparse.ArgumentParser:
    """Parser for ``repro-bc loadgen``: generate a seeded mixed
    read/write workload file (see docs/SERVICE.md)."""
    parser = argparse.ArgumentParser(
        prog="repro-bc loadgen",
        description="Generate a seeded mixed read/write workload "
                    "(steady, diurnal, or flash-crowd traffic) as a "
                    "JSONL file for 'repro.cli serve'.",
    )
    parser.add_argument("--profile", choices=("steady", "diurnal",
                                              "flash-crowd"),
                        default="steady", help="traffic shape")
    parser.add_argument("--ops", type=int, default=500,
                        help="total operations (reads + writes)")
    parser.add_argument("--read-fraction", type=float, default=0.5,
                        help="fraction of ops that are queries")
    parser.add_argument("--delete-fraction", type=float, default=0.3,
                        help="fraction of writes that are deletions")
    parser.add_argument("--rate", type=float, default=100.0,
                        help="base arrival rate (events per workload "
                             "time unit)")
    parser.add_argument("--graph", default="small",
                        help="suite graph name the workload targets")
    parser.add_argument("--scale", type=float, default=0.5,
                        help="suite graph size multiplier")
    parser.add_argument("--seed", type=int, default=2014)
    parser.add_argument("--output", required=True, metavar="PATH",
                        help="workload JSONL file to write")
    return parser


def run_loadgen(args: argparse.Namespace) -> int:
    """Execute the ``loadgen`` subcommand; returns a process exit code."""
    import os

    from repro.graph.suite import make_suite_graph
    from repro.service.loadgen import generate_workload

    graph = make_suite_graph(args.graph, scale=args.scale,
                             seed=args.seed).graph
    workload = generate_workload(
        graph, args.profile, args.ops,
        read_fraction=args.read_fraction,
        delete_fraction=args.delete_fraction,
        base_rate=args.rate, seed=args.seed,
    )
    parent = os.path.dirname(os.path.abspath(args.output))
    os.makedirs(parent, exist_ok=True)
    workload.save(args.output)
    print(f"wrote {args.output}: {workload.writes} writes + "
          f"{workload.reads} reads ({args.profile}, "
          f"{graph.num_vertices} vertices, seed {args.seed})")
    return 0


def build_serve_parser() -> argparse.ArgumentParser:
    """Parser for ``repro-bc serve``: run the always-on BC service
    against a workload file and report serving metrics."""
    parser = argparse.ArgumentParser(
        prog="repro-bc serve",
        description="Serve a BC engine behind the asyncio service layer "
                    "and drive a workload file through it, reporting "
                    "p50/p99 query latency and sustained updates/sec "
                    "(see docs/SERVICE.md).",
    )
    parser.add_argument("--workload", required=True, metavar="PATH",
                        help="workload JSONL from 'repro.cli loadgen'")
    parser.add_argument("--graph", default="small",
                        help="suite graph name (must match the one the "
                             "workload was generated against)")
    parser.add_argument("--scale", type=float, default=0.5,
                        help="suite graph size multiplier")
    parser.add_argument("--sources", type=int, default=32,
                        help="k source vertices")
    parser.add_argument("--workers", type=int, default=1,
                        help="engine worker processes (default serial)")
    parser.add_argument("--seed", type=int, default=2014)
    parser.add_argument("--max-batch", type=int, default=64,
                        help="coalescer flush threshold (events)")
    parser.add_argument("--max-delay", type=float, default=0.05,
                        help="coalescer latency deadline (seconds)")
    parser.add_argument("--max-pending", type=int, default=1024,
                        help="bounded ingest queue depth")
    parser.add_argument("--pace", type=float, default=0.0,
                        help="wall-seconds per workload time unit "
                             "(0 = back-to-back stress)")
    parser.add_argument("--duration", type=float, default=0.0,
                        help="wall-clock budget in seconds (0 = whole "
                             "workload)")
    parser.add_argument("--checkpoint-every", type=int, default=0,
                        help="checkpoint every N committed events (0 = off)")
    parser.add_argument("--checkpoint-dir", default=None,
                        help="directory for checkpoint files")
    parser.add_argument("--checkpoint-keep", type=int, default=0,
                        help="retain only the newest N checkpoints "
                             "(0 = keep all)")
    parser.add_argument("--resume-from", default=None,
                        help="checkpoint file or directory to restore the "
                             "engine and watermark from before serving "
                             "(a directory picks the newest valid "
                             "checkpoint, falling back past corrupt ones)")
    parser.add_argument("--wal", default=None, metavar="DIR",
                        help="write-ahead journal directory: append every "
                             "accepted event before acking, replay the "
                             "tail past the checkpoint on startup")
    parser.add_argument("--no-ack-durable", action="store_true",
                        help="with --wal, ack writes after the journal "
                             "append instead of after its fsync")
    parser.add_argument("--fsync-every", type=int, default=None,
                        help="group commit: fsync once N appends are "
                             "buffered (default 64)")
    parser.add_argument("--fsync-delay", type=float, default=None,
                        help="group commit: fsync once the oldest "
                             "buffered append has waited this many "
                             "seconds (default 0.002)")
    parser.add_argument("--ack-log", default=None, metavar="PATH",
                        help="write one flushed 'ack <seq>' line per "
                             "acknowledged write to PATH ('-' = stdout); "
                             "the crash drill's observer reads these")
    parser.add_argument("--bench-json", default=None, metavar="PATH",
                        help="write the metrics as a {'service': ...} "
                             "JSON document to PATH")
    return parser


def run_serve(args: argparse.Namespace) -> int:
    """Execute the ``serve`` subcommand; returns a process exit code."""
    import json
    import os

    from repro.bc.engine import DynamicBC
    from repro.graph.suite import make_suite_graph
    from repro.service.driver import drive_workload
    from repro.service.loadgen import Workload

    workload = Workload.load(args.workload)
    graph = make_suite_graph(args.graph, scale=args.scale,
                             seed=args.seed).graph
    if graph.num_vertices != workload.num_vertices:
        print(f"warning: workload was generated for "
              f"{workload.num_vertices} vertices, serving graph has "
              f"{graph.num_vertices}", file=sys.stderr)
    engine = DynamicBC.from_graph(graph, num_sources=args.sources,
                                  seed=args.seed, workers=args.workers)
    ack_stream = None
    if args.ack_log == "-":
        ack_stream = sys.stdout
    elif args.ack_log:
        parent = os.path.dirname(os.path.abspath(args.ack_log))
        os.makedirs(parent, exist_ok=True)
        ack_stream = open(args.ack_log, "w")
    try:
        metrics = drive_workload(
            engine, workload,
            max_batch=args.max_batch, max_delay=args.max_delay,
            max_pending=args.max_pending, pace=args.pace,
            duration=args.duration,
            checkpoint_every=args.checkpoint_every or None,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_keep=args.checkpoint_keep or None,
            resume_from=args.resume_from,
            wal_dir=args.wal,
            ack_durable=False if args.no_ack_durable else None,
            fsync_every=args.fsync_every,
            fsync_delay=args.fsync_delay,
            install_signals=True,
            ack_stream=ack_stream,
        )
    finally:
        engine.close()
        if ack_stream is not None and ack_stream is not sys.stdout:
            ack_stream.close()
    lat = metrics["query_latency"]
    print(f"served {metrics['queries']} queries "
          f"({metrics['queries_during_apply']} during in-flight batches) "
          f"over {metrics['updates_applied']} applied updates "
          f"in {metrics['wall_seconds']:.2f}s"
          f"{' [truncated]' if metrics['truncated'] else ''}"
          f"{' [interrupted: graceful shutdown]' if metrics['interrupted'] else ''}")
    dur = metrics["durability"]
    if dur["wal_dir"] is not None:
        print(f"journal: {dur['wal_appends']} appends / {dur['wal_syncs']} "
              f"fsyncs (ack_durable={dur['ack_durable']}, "
              f"replayed {dur['wal_replayed_on_start']} on start)")
        if dur["final_checkpoint"]:
            print(f"final checkpoint: {dur['final_checkpoint']}")
    print(f"query latency: p50 {lat['p50_ms']:.3f} ms, "
          f"p99 {lat['p99_ms']:.3f} ms, max {lat['max_ms']:.3f} ms")
    print(f"updates/sec: {metrics['updates_per_second']:.1f} across "
          f"{metrics['batches']} batches {metrics['flush_reasons']}")
    print(f"watermark: {metrics['final_watermark']}, snapshot version "
          f"{metrics['snapshot_version']}, health {metrics['health_level']}, "
          f"{metrics['checkpoints_written']} checkpoints")
    if args.bench_json:
        parent = os.path.dirname(os.path.abspath(args.bench_json))
        os.makedirs(parent, exist_ok=True)
        with open(args.bench_json, "w") as fh:
            json.dump({"service": {workload.profile: metrics}}, fh,
                      indent=2, sort_keys=True)
            fh.write("\n")
        print(f"bench json: {args.bench_json}", file=sys.stderr)
    return 0


def build_recover_parser() -> argparse.ArgumentParser:
    """Parser for ``repro-bc recover``: rebuild service state from the
    newest valid checkpoint plus the journal tail, offline."""
    parser = argparse.ArgumentParser(
        prog="repro-bc recover",
        description="Recover BC service state after a crash: load the "
                    "newest valid checkpoint (falling back past corrupt "
                    "ones), truncate the journal's torn tail, replay the "
                    "journal records past the checkpoint watermark, and "
                    "report the recovered watermark and state digest. "
                    "Exit code 1 on unrecoverable journal damage.",
    )
    parser.add_argument("--graph", default="small",
                        help="suite graph name the service was built on")
    parser.add_argument("--scale", type=float, default=0.5,
                        help="suite graph size multiplier")
    parser.add_argument("--sources", type=int, default=32,
                        help="k source vertices")
    parser.add_argument("--workers", type=int, default=1,
                        help="engine worker processes (default serial)")
    parser.add_argument("--seed", type=int, default=2014)
    parser.add_argument("--wal", required=True, metavar="DIR",
                        help="journal directory to recover from")
    parser.add_argument("--checkpoint-dir", default=None,
                        help="checkpoint directory (omit to replay the "
                             "whole journal from an empty engine)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        dest="json_out",
                        help="also write the recovery summary as JSON "
                             "('-' = stdout)")
    return parser


def run_recover(args: argparse.Namespace) -> int:
    """Execute the ``recover`` subcommand; returns a process exit code."""
    import hashlib
    import json
    import os

    from repro.bc.engine import DynamicBC
    from repro.graph.suite import make_suite_graph
    from repro.resilience.errors import CheckpointError, WalError
    from repro.resilience.wal import WriteAheadLog
    from repro.service.core import ServiceCore

    graph = make_suite_graph(args.graph, scale=args.scale,
                             seed=args.seed).graph
    engine = DynamicBC.from_graph(graph, num_sources=args.sources,
                                  seed=args.seed, workers=args.workers)
    resume = None
    if args.checkpoint_dir and os.path.isdir(args.checkpoint_dir):
        from repro.resilience.checkpoint import find_checkpoints

        if find_checkpoints(args.checkpoint_dir):
            resume = args.checkpoint_dir
    try:
        wal = WriteAheadLog(args.wal)
        try:
            core = ServiceCore(engine, checkpoint_dir=args.checkpoint_dir,
                               resume_from=resume, wal=wal)
        finally:
            wal.close()
    except (WalError, CheckpointError) as exc:
        print(f"recovery failed: {exc}", file=sys.stderr)
        engine.close()
        return 1
    digest = hashlib.sha256(engine.bc_scores.tobytes()).hexdigest()
    summary = {
        "watermark": core.watermark,
        "wal_replayed": core.wal_replayed,
        "resumed_from": core.result.resumed_from,
        "applied_total": core.applied_total,
        "skipped": len(core.result.skipped),
        "bc_digest": digest,
        "torn_tail_truncated": wal.scan.torn_path is not None,
        "torn_bytes": wal.scan.torn_bytes,
    }
    engine.close()
    print(f"recovered to watermark {summary['watermark']} "
          f"({summary['wal_replayed']} journal records replayed"
          f"{', from ' + summary['resumed_from'] if summary['resumed_from'] else ''})")
    if summary["torn_tail_truncated"]:
        print(f"torn journal tail truncated "
              f"({summary['torn_bytes']} bytes of partial write)")
    print(f"bc digest: {digest[:16]}")
    if args.json_out == "-":
        print(json.dumps(summary, sort_keys=True))
    elif args.json_out:
        parent = os.path.dirname(os.path.abspath(args.json_out))
        os.makedirs(parent, exist_ok=True)
        with open(args.json_out, "w") as fh:
            json.dump(summary, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return 0


def build_drill_parser() -> argparse.ArgumentParser:
    """Parser for ``repro-bc drill``: one seeded kill -9 crash drill."""
    parser = argparse.ArgumentParser(
        prog="repro-bc drill",
        description="Run one seeded crash-recovery drill: spawn a "
                    "durable 'serve' subprocess under load, SIGKILL it "
                    "at a seed-derived moment, recover from checkpoint "
                    "+ journal, and differentially check the recovered "
                    "state against a no-crash oracle. Exit code 1 when "
                    "any acknowledged event is lost or the recovered "
                    "state diverges.",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--ops", type=int, default=200,
                        help="workload length driven through the service")
    parser.add_argument("--kills", type=int, default=1,
                        help="consecutive kill/recover cycles (each "
                             "restart resumes the same journal)")
    parser.add_argument("--artifacts-dir", default=None, metavar="DIR",
                        help="keep the drill's journal, checkpoints and "
                             "logs under DIR (what the CI job uploads); "
                             "default: a temp dir, removed on success")
    parser.add_argument("--health-log", default=None, metavar="PATH",
                        help="write the drill timeline as JSON lines to "
                             "PATH")
    return parser


def _write_drill_log(path: str, report) -> None:
    import json
    import os

    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "w") as fh:
        fh.write(json.dumps(report.header()) + "\n")
        for entry in report.timeline:
            fh.write(json.dumps(entry) + "\n")


def run_drill_cmd(args: argparse.Namespace) -> int:
    """Execute the ``drill`` subcommand; returns a process exit code."""
    from repro.resilience.drill import run_drill

    report = run_drill(seed=args.seed, ops=args.ops, kills=args.kills,
                       artifacts_dir=args.artifacts_dir)
    print(report.summary())
    repro_line = (f"reproduce with: python -m repro.cli drill "
                  f"--seed {report.seed} --ops {report.ops} "
                  f"--kills {report.kills}")
    print(repro_line)
    if args.health_log:
        _write_drill_log(args.health_log, report)
        print(f"health log: {args.health_log}")
    if not report.ok:
        print(repro_line, file=sys.stderr)
        return 1
    return 0


def build_failover_parser() -> argparse.ArgumentParser:
    """Parser for ``repro-bc failover``: one seeded kill-the-primary
    failover drill against a hot standby."""
    parser = argparse.ArgumentParser(
        prog="repro-bc failover",
        description="Run one seeded failover drill: spawn a durable "
                    "'serve' primary under load with an in-process "
                    "ReplicaService tailing its journal, SIGKILL the "
                    "primary at a seed-derived moment, promote the "
                    "replica behind an epoch fence, and verify zero "
                    "acked-write loss, bit-identity against a no-crash "
                    "oracle, and that the deposed primary's commits "
                    "are refused. Exit code 1 on any violation.",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--ops", type=int, default=200,
                        help="workload length driven through the primary")
    parser.add_argument("--artifacts-dir", default=None, metavar="DIR",
                        help="keep the journal, checkpoints and logs "
                             "under DIR (what the CI job uploads); "
                             "default: a temp dir, removed on success")
    parser.add_argument("--health-log", default=None, metavar="PATH",
                        help="write the drill timeline (including RTO "
                             "and lag stats) as JSON lines to PATH")
    return parser


def run_failover_cmd(args: argparse.Namespace) -> int:
    """Execute the ``failover`` subcommand; returns an exit code."""
    from repro.resilience.drill import run_failover_drill

    report = run_failover_drill(seed=args.seed, ops=args.ops,
                                artifacts_dir=args.artifacts_dir)
    print(report.summary())
    repro_line = (f"reproduce with: python -m repro.cli failover "
                  f"--seed {report.seed} --ops {report.ops}")
    print(repro_line)
    if args.health_log:
        _write_drill_log(args.health_log, report)
        print(f"health log: {args.health_log}")
    if not report.ok:
        print(repro_line, file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point: print (and optionally save) the requested artifact."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "replay":
        return run_replay(build_replay_parser().parse_args(argv[1:]))
    if argv and argv[0] == "chaos":
        return run_chaos_cmd(build_chaos_parser().parse_args(argv[1:]))
    if argv and argv[0] == "sanitize":
        return run_sanitize(build_sanitize_parser().parse_args(argv[1:]))
    if argv and argv[0] == "loadgen":
        return run_loadgen(build_loadgen_parser().parse_args(argv[1:]))
    if argv and argv[0] == "serve":
        return run_serve(build_serve_parser().parse_args(argv[1:]))
    if argv and argv[0] == "recover":
        return run_recover(build_recover_parser().parse_args(argv[1:]))
    if argv and argv[0] == "drill":
        return run_drill_cmd(build_drill_parser().parse_args(argv[1:]))
    if argv and argv[0] == "failover":
        return run_failover_cmd(build_failover_parser().parse_args(argv[1:]))
    if argv and argv[0] == "flow":
        from repro.sanitize.flow import main as flow_main

        return flow_main(argv[1:])
    args = build_parser().parse_args(argv)
    start = time.time()
    save_dir = None
    if args.save:
        import os

        save_dir = args.save
        os.makedirs(save_dir, exist_ok=True)
    for name, text in iter_artifact_sections(args.artifact, args):
        if save_dir is not None:
            import os

            stem = name if name.endswith(".csv") else f"{name}.txt"
            with open(os.path.join(save_dir, stem), "w") as fh:
                fh.write(text + "\n")
        if not name.endswith(".csv"):
            print(text, flush=True)
            print(flush=True)
    print(f"[done in {time.time() - start:.1f}s]", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
