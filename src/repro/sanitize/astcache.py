"""Shared parse layer for the static-analysis tools.

Both sanitizer layers that read source — the lexical linter
(:mod:`repro.sanitize.lint`) and the interprocedural dataflow
analyzer (:mod:`repro.sanitize.flow`) — consume the same parsed
artifact: a :class:`SourceModule` bundling the text, the split lines
(for pragma lookups) and the :mod:`ast` tree.  An :class:`AstCache`
guarantees each file is parsed **once per process** no matter how many
rules, visitors or passes run over it, so lint wall time stays flat as
the rule count grows and a combined ``lint + flow`` run
(``python -m repro.sanitize``) pays a single parse per file.

Cache entries are validated by ``(mtime_ns, size)`` so a long-lived
process (the test suite, a watch loop) never serves a stale tree.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class SourceModule:
    """One parsed Python file (or virtual snippet).

    ``path`` is the *reporting* path — for virtual snippets it encodes
    the tree position the path-scoped rules should assume (e.g.
    ``src/repro/bc/mod.py``), independent of any real location.
    """

    path: str
    source: str
    tree: ast.Module
    #: dotted module name derived from the path (``repro.service.core``),
    #: or ``None`` when the path does not sit under a package root
    module: Optional[str]
    lines: Tuple[str, ...] = field(default_factory=tuple)

    @property
    def ok(self) -> bool:
        """``False`` when the source failed to parse (``tree`` is an
        empty placeholder and ``error`` carries the SyntaxError)."""
        return self.error is None

    # set via object.__setattr__ in parse_source (frozen dataclass)
    error: Optional[SyntaxError] = None


def module_name_for(path: str) -> Optional[str]:
    """Dotted module name for *path*, anchored at the ``repro`` package
    root (``src/repro/service/core.py`` → ``repro.service.core``); for
    paths outside it (tests, scripts) the stem-based fallback keeps
    names unique enough for call-graph keys."""
    parts = Path(str(path).replace("\\", "/")).with_suffix("").parts
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    else:
        # tests/foo.py -> tests.foo ; a bare file -> its stem
        parts = tuple(p for p in parts if p not in (".", "/", "src"))
    if not parts:
        return None
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else None


def parse_source(source: str, path: str) -> SourceModule:
    """Parse *source* under reporting path *path*; a SyntaxError is
    captured on the module (``ok == False``) rather than raised, so
    batch analyses can report it as a finding and keep going."""
    try:
        tree = ast.parse(source, filename=path)
        err: Optional[SyntaxError] = None
    except SyntaxError as exc:
        tree = ast.Module(body=[], type_ignores=[])
        err = exc
    mod = SourceModule(
        path=str(path), source=source, tree=tree,
        module=module_name_for(path), lines=tuple(source.splitlines()),
    )
    object.__setattr__(mod, "error", err)
    return mod


class AstCache:
    """Process-wide parse cache keyed by real path + stat signature."""

    def __init__(self) -> None:
        self._entries: Dict[str, Tuple[Tuple[int, int], SourceModule]] = {}
        self.hits = 0
        self.misses = 0

    def get(self, path, virtual_path: Optional[str] = None) -> SourceModule:
        """The parsed module for file *path*; *virtual_path* overrides
        the reporting path (re-parsing only when it differs from the
        cached entry's)."""
        real = os.fspath(path)
        report_as = virtual_path or real
        try:
            st = os.stat(real)
            sig = (st.st_mtime_ns, st.st_size)
        except OSError:
            sig = (-1, -1)
        cached = self._entries.get(real)
        if cached is not None and cached[0] == sig \
                and cached[1].path == report_as:
            self.hits += 1
            return cached[1]
        self.misses += 1
        text = Path(real).read_text(encoding="utf-8")
        mod = parse_source(text, report_as)
        self._entries[real] = (sig, mod)
        return mod

    def get_many(self, paths: Sequence) -> List[SourceModule]:
        """Parse (or fetch) every file in *paths*, in order."""
        return [self.get(p) for p in paths]

    def clear(self) -> None:
        """Drop every cached parse (tests use this between trees)."""
        self._entries.clear()


#: the default process-wide cache lint and flow share when the caller
#: does not supply one (``python -m repro.sanitize`` runs both layers
#: against it, paying one parse per file total)
GLOBAL_CACHE = AstCache()


def iter_python_files(paths: Sequence[str]) -> List[Path]:
    """Expand files-or-directories into a sorted list of ``.py`` files
    (shared by every tool that takes path arguments)."""
    files: List[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        else:
            files.append(p)
    return files
