"""Shadow-memory tracer for the simulated per-level GPU kernels.

The NumPy kernels execute each barrier-delimited parallel phase as a
handful of vectorized gathers and scatters; GPU-faithfulness means
those phases must also be *legal* under the GPU memory model — no two
lanes may store to one address without an atomic, no lane may read an
address another lane writes in the same interval, and the queue
kernels must push strictly level-monotone frontiers.  The simulation
encodes these rules implicitly (``np.unique`` models the §III-A dedup
pipeline, ``np.add.at`` models ``atomicAdd``), so a refactor can break
GPU-legality while still computing correct numbers on small inputs.

This module makes the rules checkable.  Kernels call the module-level
hooks (:func:`read`, :func:`write`, :func:`enqueue`, :func:`interval`,
:func:`kernel`) at the points where a real kernel would issue the
corresponding memory traffic; the hooks are no-ops unless a
:class:`MemoryTracer` has been activated with :func:`tracing`, so the
uninstrumented hot path pays one ``is None`` test per hook.  Atomic
scatter-adds are *not* recorded here directly — they must route
through the declared atomic helpers in :mod:`repro.gpu.primitives`
(:func:`~repro.gpu.primitives.atomic_scatter_add`), which is exactly
what finding class S101 enforces.

Lane semantics: call sites record the cross-lane data flow — gathers
from addresses other lanes own and every scatter.  A lane re-reading
an address it just wrote in program order is not a race on real
hardware and is deliberately not recorded, so every read/write overlap
the checker sees involves distinct lanes.

Tracing never mutates kernel state: hooks only read the index arrays
they are handed and summarize them eagerly at interval end, so an
instrumented run is bit-identical to an uninstrumented one in every
reported artifact except wall-clock time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.sanitize.report import S101, S102, S103, Finding, SanitizerReport

#: max offending addresses stored per finding
_SAMPLE = 8


def _as_index_array(idx) -> np.ndarray:
    """Normalize an index operand (array, list, mask, scalar) to a flat
    int64 address array without mutating the caller's data."""
    arr = np.asarray(idx)
    if arr.dtype == bool:
        arr = np.flatnonzero(arr)
    return arr.astype(np.int64, copy=False).ravel()


def _sample(addresses: np.ndarray) -> Tuple[int, ...]:
    return tuple(int(a) for a in np.sort(addresses)[:_SAMPLE])


@dataclass
class _Access:
    """One recorded gather/scatter: addresses + benign-intent flag."""

    addresses: np.ndarray
    benign: bool
    intent: str


@dataclass
class _QueueState:
    """Per-queue monotonicity state within one kernel session."""

    direction: int  #: +1 frontier descends the BFS, -1 climbs, 0 free
    last_level: Optional[int] = None
    seen: Set[int] = field(default_factory=set)


class MemoryTracer:
    """Records per-interval read/write sets and checks them at every
    simulated barrier (see the finding classes in
    :mod:`repro.sanitize.report`)."""

    def __init__(self) -> None:
        self.findings: List[Finding] = []
        self.kernels = 0
        self.intervals = 0
        self.read_ops = 0
        self.write_ops = 0
        self.atomic_ops = 0
        self.benign: Dict[str, int] = {}
        self._kernel: str = ""
        self._queues: Dict[str, _QueueState] = {}
        self._stage: str = ""
        self._level: int = 0
        self._open = False
        self._reads: Dict[str, List[_Access]] = {}
        self._writes: Dict[str, List[_Access]] = {}
        self._atomics: Dict[str, List[_Access]] = {}

    # ------------------------------------------------------------------
    # Session / interval structure
    # ------------------------------------------------------------------
    def begin_kernel(self, label: str) -> None:
        """Open a kernel session: queue-monotonicity state is scoped to
        one kernel invocation (one source's update / Brandes pass)."""
        self._kernel = label
        self._queues = {}
        self.kernels += 1

    def end_kernel(self) -> None:
        """Close the current kernel session (resets per-kernel queue
        state; defensively closes a still-open interval)."""
        if self._open:  # unbalanced instrumentation: close defensively
            self.end_interval()
        self._kernel = ""
        self._queues = {}

    def begin_interval(self, stage: str, level: int) -> None:
        """Start one barrier-delimited phase; every access recorded
        until :meth:`end_interval` is concurrent with every other."""
        if self._open:
            self.end_interval()
        self._open = True
        self._stage = stage
        self._level = int(level)
        self._reads = {}
        self._writes = {}
        self._atomics = {}

    def end_interval(self) -> None:
        """The simulated barrier: run the race checks over everything
        recorded since :meth:`begin_interval`."""
        if not self._open:
            return
        self.intervals += 1
        arrays = set(self._writes) | set(self._atomics)
        for array in sorted(arrays):
            self._check_array(array)
        self._open = False
        self._reads = {}
        self._writes = {}
        self._atomics = {}

    # ------------------------------------------------------------------
    # Access recording (module hooks forward here)
    # ------------------------------------------------------------------
    def read(self, array: str, idx) -> None:
        """Record a cross-lane gather of *array* at *idx*."""
        addresses = _as_index_array(idx)
        if addresses.size == 0:
            return
        self.read_ops += int(addresses.size)
        if self._open:
            self._reads.setdefault(array, []).append(
                _Access(addresses, benign=False, intent="")
            )

    def write(self, array: str, idx, intent: str = "") -> None:
        """A plain (non-atomic) store from one lane per index entry."""
        addresses = _as_index_array(idx)
        if addresses.size == 0:
            return
        self.write_ops += int(addresses.size)
        if self._open:
            self._writes.setdefault(array, []).append(
                _Access(addresses, self._is_benign(array, intent), intent)
            )

    def atomic(self, array: str, idx, intent: str = "") -> None:
        """An atomic RMW per index entry — recorded by the declared
        helpers in :mod:`repro.gpu.primitives`, never by kernels
        directly."""
        addresses = _as_index_array(idx)
        if addresses.size == 0:
            return
        self.atomic_ops += int(addresses.size)
        if self._open:
            self._atomics.setdefault(array, []).append(
                _Access(addresses, self._is_benign(array, intent), intent)
            )

    def enqueue(
        self,
        queue: str,
        vertices,
        level: int,
        distances: Optional[np.ndarray] = None,
        direction: int = 1,
    ) -> None:
        """A frontier push into *queue* targeting *level*.

        Checks (S103): every vertex's distance equals *level* (when
        *distances* is given), no duplicate within the push (the dedup
        pipeline must have run), no re-enqueue across levels, and the
        pushed levels move strictly in *direction* (+1 down the BFS,
        -1 up, 0 unordered — the Case-3 pre-pass discovers vertices at
        arbitrary levels).
        """
        verts = _as_index_array(vertices)
        if verts.size == 0:
            return
        level = int(level)
        state = self._queues.setdefault(queue, _QueueState(direction))
        if distances is not None:
            off = verts[np.asarray(distances)[verts] != level]
            if off.size:
                self._flag(S103, queue, off,
                           f"enqueued {off.size} vertices whose distance "
                           f"!= target level {level}")
        uniq, counts = np.unique(verts, return_counts=True)
        dup = uniq[counts > 1]
        if dup.size:
            self._flag(S103, queue, dup,
                       "duplicate vertices in one push (dedup pipeline "
                       "missing)")
        seen = state.seen
        re_enq = [int(v) for v in uniq if int(v) in seen]
        if re_enq:
            self._flag(S103, queue, np.asarray(re_enq, dtype=np.int64),
                       "vertex re-enqueued across levels")
        # Repeated pushes into the same level bucket are legal (one
        # interval may push several groups); moving *against* the
        # declared direction is not.
        if (state.direction and state.last_level is not None
                and (level - state.last_level) * state.direction < 0):
            self._flag(S103, queue, uniq,
                       f"level {level} pushed after {state.last_level} "
                       f"(direction {state.direction:+d})")
        state.last_level = level
        seen.update(int(v) for v in uniq)

    # ------------------------------------------------------------------
    # Checks
    # ------------------------------------------------------------------
    def _is_benign(self, array: str, intent: str) -> bool:
        """True when (array, intent) is a declared benign race — the
        registry lives with the atomic helpers in
        :mod:`repro.gpu.primitives` so races are whitelisted where the
        hardware semantics are defined, not where they are observed."""
        if not intent:
            return False
        from repro.gpu.primitives import BENIGN_RACES

        return (array, intent) in BENIGN_RACES

    def _count_benign(self, array: str, intent: str, lanes: int) -> None:
        key = f"{array}:{intent or '?'}"
        self.benign[key] = self.benign.get(key, 0) + int(lanes)

    def _flag(self, code: str, array: str, addresses: np.ndarray,
              message: str) -> None:
        self.findings.append(Finding(
            code=code, kernel=self._kernel, stage=self._stage,
            level=self._level, array=array, count=int(addresses.size),
            sample=_sample(addresses), message=message,
        ))

    def _conflicts(self, accesses: List[_Access], array: str,
                   what: str) -> None:
        """Duplicate-address check over one access class: an address
        stored by >1 lane is a conflict unless *every* contributing
        record carries a registered benign intent."""
        if not accesses:
            return
        addrs = np.concatenate([a.addresses for a in accesses])
        flags = np.concatenate([
            np.full(a.addresses.size, a.benign) for a in accesses
        ])
        uniq, inverse, counts = np.unique(
            addrs, return_inverse=True, return_counts=True
        )
        dup_elem = counts[inverse] > 1
        if not np.any(dup_elem):
            return
        hot = addrs[dup_elem & ~flags]
        if hot.size:
            self._flag(S101, array, np.unique(hot),
                       f"{what} conflict: address stored by multiple "
                       f"lanes without a declared atomic/benign route")
        # Fully-benign hot addresses: count the whitelisted extra lanes.
        benign_elems = int(np.count_nonzero(dup_elem & flags))
        if benign_elems and not hot.size:
            intents = {a.intent for a in accesses if a.benign}
            for intent in intents:
                self._count_benign(array, intent, benign_elems)

    def _check_array(self, array: str) -> None:
        writes = self._writes.get(array, [])
        atomics = self._atomics.get(array, [])
        reads = self._reads.get(array, [])
        # (a) S101: plain write-write conflicts / unannotated atomic
        # contention, each class checked against itself...
        self._conflicts(writes, array, "write-write")
        self._conflicts(atomics, array, "atomic-accumulation")
        # ...and plain stores overlapping atomic accumulation: the
        # lazy-seed pattern (delta_hat[w] = delta[w] racing the adds)
        # is wrong without a barrier regardless of intents.
        if writes and atomics:
            w = np.concatenate([a.addresses for a in writes])
            a = np.concatenate([a.addresses for a in atomics])
            mixed = np.intersect1d(w, a)
            if mixed.size:
                self._flag(S101, array, mixed,
                           "plain store and atomic accumulation hit the "
                           "same address inside one barrier interval")
        # (b) S102: cross-lane read of an address written this
        # interval.  Same-value stamps (benign plain writes: discover /
        # mark / relabel) are RAW-safe by construction — readers cannot
        # observe a wrong value.  Atomic *accumulation* is not: the
        # atomicity protects the adds from each other, but a reader in
        # the same interval observes a partial sum, so atomics always
        # participate in the hazard set.
        if reads:
            read_addrs = np.unique(np.concatenate(
                [a.addresses for a in reads]
            ))
            hazard_writes = [a for a in writes if not a.benign] + atomics
            benign_writes = [a for a in writes if a.benign]
            if hazard_writes:
                w = np.concatenate([a.addresses for a in hazard_writes])
                overlap = np.intersect1d(read_addrs, w)
                if overlap.size:
                    self._flag(S102, array, overlap,
                               "address read and written by different "
                               "lanes in one barrier interval (missing "
                               "barrier)")
            for acc in benign_writes:
                overlap = np.intersect1d(read_addrs, acc.addresses)
                if overlap.size:
                    self._count_benign(array, acc.intent, int(overlap.size))

    # ------------------------------------------------------------------
    def report(self) -> SanitizerReport:
        """Snapshot everything observed so far (tracing may continue)."""
        return SanitizerReport(
            findings=list(self.findings),
            kernels=self.kernels,
            intervals=self.intervals,
            reads=self.read_ops,
            writes=self.write_ops,
            atomics=self.atomic_ops,
            benign=dict(self.benign),
        )


# ----------------------------------------------------------------------
# Module-level hook surface (what the kernels call)
# ----------------------------------------------------------------------
_CURRENT: Optional[MemoryTracer] = None


def current_tracer() -> Optional[MemoryTracer]:
    """The active tracer, or ``None`` when sanitize mode is off."""
    return _CURRENT


def active() -> bool:
    """True when a tracer is installed — guard for callers that would
    otherwise compute index arrays only to throw them away."""
    return _CURRENT is not None


class _Tracing:
    """Context manager installing a tracer as the current one."""

    __slots__ = ("tracer", "_prev")

    def __init__(self, tracer: MemoryTracer) -> None:
        self.tracer = tracer
        self._prev: Optional[MemoryTracer] = None

    def __enter__(self) -> MemoryTracer:
        global _CURRENT
        self._prev = _CURRENT
        _CURRENT = self.tracer
        return self.tracer

    def __exit__(self, *exc) -> None:
        global _CURRENT
        _CURRENT = self._prev


def tracing(tracer: MemoryTracer) -> _Tracing:
    """``with tracing(MemoryTracer()) as t: ...`` activates *t* for
    every kernel executed in the block (single-threaded by design —
    sanitize mode bypasses the worker pool)."""
    return _Tracing(tracer)


class _NullCtx:
    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL = _NullCtx()


class _KernelCtx:
    __slots__ = ("_tracer", "_label")

    def __init__(self, tracer: MemoryTracer, label: str) -> None:
        self._tracer = tracer
        self._label = label

    def __enter__(self) -> MemoryTracer:
        self._tracer.begin_kernel(self._label)
        return self._tracer

    def __exit__(self, *exc) -> bool:
        self._tracer.end_kernel()
        return False


class _IntervalCtx:
    __slots__ = ("_tracer", "_stage", "_level")

    def __init__(self, tracer: MemoryTracer, stage: str, level: int) -> None:
        self._tracer = tracer
        self._stage = stage
        self._level = level

    def __enter__(self) -> MemoryTracer:
        self._tracer.begin_interval(self._stage, self._level)
        return self._tracer

    def __exit__(self, *exc) -> bool:
        self._tracer.end_interval()
        return False


def kernel(label: str):
    """Scope one kernel invocation (``with san.kernel("case2:5"):``)."""
    t = _CURRENT
    return _NULL if t is None else _KernelCtx(t, label)


def interval(stage: str, level: int):
    """Scope one barrier-delimited phase; the exit is the barrier."""
    t = _CURRENT
    return _NULL if t is None else _IntervalCtx(t, stage, level)


def read(array: str, idx) -> None:
    """Hook: forward a gather to the current tracer (no-op when off)."""
    t = _CURRENT
    if t is not None:
        t.read(array, idx)


def write(array: str, idx, intent: str = "") -> None:
    """Hook: forward a plain scatter to the current tracer (no-op when
    off)."""
    t = _CURRENT
    if t is not None:
        t.write(array, idx, intent)


def atomic(array: str, idx, intent: str = "") -> None:
    """Record atomic RMW traffic — called by the declared helpers in
    :mod:`repro.gpu.primitives` only; kernels never call this
    directly (that is the convention finding class S101 checks)."""
    t = _CURRENT
    if t is not None:
        t.atomic(array, idx, intent)


def enqueue(queue: str, vertices, level: int, distances=None,
            direction: int = 1) -> None:
    """Hook: forward a frontier push to the current tracer (no-op when
    off)."""
    t = _CURRENT
    if t is not None:
        t.enqueue(queue, vertices, level, distances, direction)
