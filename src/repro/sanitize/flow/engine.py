"""Interprocedural fixpoint engine: effect summaries over the call graph.

The framework is a classic bottom-up effect analysis.  Every function
gets a **summary**: the set of effects its execution may transitively
cause.  Root effects are assigned per call site by pattern
(:func:`site_root_effects`); summaries then propagate callee → caller
over the :class:`~repro.sanitize.callgraph.CallGraph` with a worklist
until fixpoint.  The join is set union (a powerset lattice of the
effect atoms, monotone, so termination is immediate).

Which edge kinds an effect crosses is the analysis' precision policy:

* ``BLOCKING`` crosses only ``direct`` edges.  An ``executor`` edge is
  the sanctioned escape hatch (the callee runs on a worker thread) and
  a ``constructor`` edge is setup-time by convention — services are
  built once before serving; e.g. ``BCService.__init__`` legitimately
  recovers a journal synchronously.
* the protocol effects (``CHECKS_FENCE``, ``FH_WRITE``, ``WAL_APPEND``)
  also cross only ``direct`` edges — they describe what a statement on
  the *caller's* thread does, which is exactly what ordering rules
  need.

For every (function, effect) pair the engine records a **witness**: the
call site that introduced the effect.  Following witnesses callee-ward
reconstructs a concrete call path down to the blocking/fencing root —
the trace attached to findings.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.sanitize.callgraph import (
    CallGraph,
    CallSite,
    EXECUTOR_CLASSES,
    FILE_TYPE,
    FunctionInfo,
    ModuleInfo,
    WALL_CLOCK_FUNCS,
)

# effect atoms -----------------------------------------------------------
#: may block the calling thread (sleep, disk, fsync, thread join, ...)
BLOCKING = "blocking"
#: may write bytes into an open segment file handle
FH_WRITE = "fh_write"
#: may re-read + validate the fencing epoch (WriteAheadLog.check_fence)
CHECKS_FENCE = "checks_fence"
#: may append a record to a write-ahead journal
WAL_APPEND = "wal_append"

#: ``os.*`` calls that hit the disk hard enough to stall an event loop
_OS_BLOCKING = {"fsync", "fdatasync", "sync", "unlink", "remove",
                "replace", "rename", "makedirs", "rmdir"}
#: name-based blocking tails (low collision risk, high value)
_BLOCKING_TAILS = {"read_text", "write_text", "read_bytes", "write_bytes"}
#: heavy NumPy entry points (big allocations / LAPACK); deliberately
#: excludes argsort & friends — snapshot reads use them by design
_NP_BLOCKING = {"save", "load", "savez", "savez_compressed"}
_SUBPROCESS = {"run", "call", "check_call", "check_output", "Popen"}

#: method calls on an ``open()``-typed handle, by effect
_FILE_METHOD_EFFECTS = {
    "write": frozenset({BLOCKING, FH_WRITE}),
    "writelines": frozenset({BLOCKING, FH_WRITE}),
    "read": frozenset({BLOCKING}),
    "readline": frozenset({BLOCKING}),
    "readlines": frozenset({BLOCKING}),
    "flush": frozenset({BLOCKING}),
    "close": frozenset({BLOCKING}),
    "seek": frozenset({BLOCKING}),
    "truncate": frozenset({BLOCKING, FH_WRITE}),
}

_EMPTY: FrozenSet[str] = frozenset()


def site_root_effects(site: CallSite, fn: FunctionInfo,
                      mod: ModuleInfo, graph: CallGraph) -> FrozenSet[str]:
    """The effects *this call expression itself* is a root of (before
    any summary propagation)."""
    if site.kind == "executor":
        # the target is shipped to a worker thread, not called here —
        # its effects (and the dispatch call's own name patterns) do
        # not execute on the caller's thread
        return _EMPTY
    chain = site.chain
    if not chain:
        return _EMPTY
    effects: Set[str] = set()
    tail = chain[-1]
    # -- blocking roots ------------------------------------------------
    if chain == ("open",):
        effects.add(BLOCKING)
    elif len(chain) == 2 and chain[0] == "os" and tail in _OS_BLOCKING:
        effects.add(BLOCKING)
    elif len(chain) == 2 and chain[0] in mod.time_aliases \
            and tail == "sleep":
        effects.add(BLOCKING)
    elif len(chain) == 1 and tail == "sleep" \
            and "sleep" in mod.imports \
            and mod.imports["sleep"] == "time.sleep":
        effects.add(BLOCKING)
    elif len(chain) == 2 and chain[0] in mod.np_aliases \
            and tail in _NP_BLOCKING:
        effects.add(BLOCKING)
    elif len(chain) == 2 and chain[0] == "subprocess" \
            and tail in _SUBPROCESS:
        effects.add(BLOCKING)
    elif tail in _BLOCKING_TAILS:
        effects.add(BLOCKING)
    elif tail == "shutdown" and site.receiver_type in EXECUTOR_CLASSES:
        effects.add(BLOCKING)
    # -- file-handle methods -------------------------------------------
    if site.receiver_type == FILE_TYPE and tail in _FILE_METHOD_EFFECTS:
        effects.update(_FILE_METHOD_EFFECTS[tail])
    # -- protocol roots ------------------------------------------------
    if tail == "check_fence":
        effects.add(CHECKS_FENCE)
    if site.callee is not None:
        callee = graph.functions.get(site.callee)
        if callee is not None and callee.name == "append" \
                and callee.class_qname is not None:
            cls = graph.classes.get(callee.class_qname)
            if cls is not None and cls.has_check_fence:
                effects.add(WAL_APPEND)
    return frozenset(effects)


#: which edge kinds each effect crosses during propagation
_PROPAGATE_KINDS: Dict[str, FrozenSet[str]] = {
    BLOCKING: frozenset({"direct"}),
    FH_WRITE: frozenset({"direct"}),
    CHECKS_FENCE: frozenset({"direct"}),
    WAL_APPEND: frozenset({"direct"}),
}


@dataclass
class Witness:
    """How an effect entered a function: the local call site, plus the
    callee it came through (``None`` when the site itself is the root)."""

    site: CallSite
    via_callee: Optional[str] = None


@dataclass
class EffectSummaries:
    """Fixpoint result: per-function effect sets + witnesses."""

    graph: CallGraph
    summary: Dict[str, FrozenSet[str]] = field(default_factory=dict)
    roots: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    witness: Dict[Tuple[str, str], Witness] = field(default_factory=dict)

    def effects_of(self, qname: str) -> FrozenSet[str]:
        """Fixpoint effect set for *qname* (empty when unknown)."""
        return self.summary.get(qname, _EMPTY)

    def site_effects(self, site: CallSite) -> FrozenSet[str]:
        """Everything executing *this call site* may cause: its own
        root effects plus the resolved callee's summary, filtered by
        the effects that legally cross the site's edge kind."""
        effects = set(self.roots.get(id(site), _EMPTY))
        if site.callee is not None:
            for effect in self.effects_of(site.callee):
                if site.kind in _PROPAGATE_KINDS[effect]:
                    effects.add(effect)
        return frozenset(effects)

    def statement_effects(
        self, stmt: ast.stmt,
        sites_by_node: Dict[int, List[CallSite]],
    ) -> FrozenSet[str]:
        """Union of :meth:`site_effects` over every call in *stmt*."""
        effects: Set[str] = set()
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                for site in sites_by_node.get(id(node), []):
                    effects.update(self.site_effects(site))
        return frozenset(effects)

    def trace(self, qname: str, effect: str, limit: int = 12) -> List[str]:
        """Reconstruct a call path for (*qname*, *effect*) by chasing
        witnesses callee-ward, rendered as ``Class.fn (path:line)``."""
        steps: List[str] = []
        cur = qname
        seen = set()
        while cur is not None and cur not in seen and len(steps) < limit:
            seen.add(cur)
            wit = self.witness.get((cur, effect))
            if wit is None:
                break
            fn = self.graph.functions.get(cur)
            where = (f"{fn.path}:{wit.site.lineno}" if fn is not None
                     else f"?:{wit.site.lineno}")
            label = ".".join(wit.site.chain) or "<call>"
            steps.append(f"{label}(...) at {where}")
            cur = wit.via_callee
        return steps


def compute_summaries(graph: CallGraph) -> EffectSummaries:
    """Run the worklist to fixpoint over every registered function."""
    result = EffectSummaries(graph=graph)
    # seed: root effects per site, direct summaries per function
    for qname, sites in graph.calls.items():
        fn = graph.functions[qname]
        mod = graph.modules.get(fn.module)
        acc: Set[str] = set()
        for site in sites:
            roots = (site_root_effects(site, fn, mod, graph)
                     if mod is not None else _EMPTY)
            result.roots[id(site)] = roots
            for effect in roots:
                if effect not in acc:
                    result.witness[(qname, effect)] = Witness(site=site)
            acc.update(roots)
        result.summary[qname] = frozenset(acc)
    # propagate callee -> caller until stable
    work = list(graph.functions)
    pending = set(work)
    while work:
        callee = work.pop()
        pending.discard(callee)
        callee_effects = result.summary.get(callee, _EMPTY)
        if not callee_effects:
            continue
        for caller, site in graph.callers.get(callee, ()):  # noqa: B007
            crossing = {e for e in callee_effects
                        if site.kind in _PROPAGATE_KINDS[e]}
            current = result.summary.get(caller, _EMPTY)
            new = crossing - current
            if not new:
                continue
            for effect in new:
                result.witness[(caller, effect)] = Witness(
                    site=site, via_callee=callee
                )
            result.summary[caller] = current | new
            if caller not in pending:
                pending.add(caller)
                work.append(caller)
    return result


def sites_by_call_node(graph: CallGraph,
                       qname: str) -> Dict[int, List[CallSite]]:
    """Index a function's call sites by their ``ast.Call`` node id
    (dispatch calls contribute two sites for one node)."""
    index: Dict[int, List[CallSite]] = {}
    for site in graph.calls.get(qname, ()):  # noqa: B007
        index.setdefault(id(site.call), []).append(site)
    return index
