"""SARIF 2.1.0 output for the flow analyzer.

SARIF (Static Analysis Results Interchange Format) is what code-review
UIs ingest — GitHub code scanning renders each result inline on the
PR diff.  This emits the minimal conforming document: one run, one
``tool.driver`` with the F-rule catalog, one ``result`` per finding
with a physical location and the call-path evidence folded into the
message.  Suppression is handled *before* SARIF generation (the
baseline filters findings), so every result here is actionable.
"""

from __future__ import annotations

import json

from repro.sanitize.flow.findings import FLOW_RULES, FlowReport

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")


def to_sarif(report: FlowReport) -> dict:
    """The report as a SARIF 2.1.0 ``dict`` (stable key order)."""
    rules = [
        {
            "id": code,
            "name": code,
            "shortDescription": {"text": summary},
            "help": {"text": hint},
            "defaultConfiguration": {"level": "error"},
        }
        for code, (summary, hint) in sorted(FLOW_RULES.items())
    ]
    results = []
    for finding in report.findings:
        text = finding.message
        if finding.trace:
            text += " | path: " + " -> ".join(finding.trace)
        results.append({
            "ruleId": finding.code,
            "level": "error",
            "message": {"text": text},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace("\\", "/"),
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col,
                    },
                },
                "logicalLocations": [{
                    "fullyQualifiedName": finding.function,
                }],
            }],
            "partialFingerprints": {
                "repro/flow/v1": finding.fingerprint,
            },
        })
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-sanitize-flow",
                    "informationUri":
                        "docs/SANITIZER.md#interprocedural-analysis",
                    "rules": rules,
                },
            },
            "results": results,
        }],
    }


def render_sarif(report: FlowReport) -> str:
    """Pretty-printed SARIF JSON for *report*."""
    return json.dumps(to_sarif(report), indent=2)
