"""Analysis driver + command line for ``python -m repro.sanitize.flow``.

``analyze_paths`` / ``analyze_sources`` are the library entry points
(the latter takes ``(virtual_path, source)`` pairs so the mutation
tests can analyze snippets under synthetic tree positions);
:func:`main` wraps them with baseline handling and the three output
formats.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.sanitize.astcache import (
    AstCache,
    GLOBAL_CACHE,
    SourceModule,
    iter_python_files,
    parse_source,
)
from repro.sanitize.callgraph import CallGraph
from repro.sanitize.flow.baseline import (
    BaselineError,
    apply_baseline,
    empty_baseline,
    load_baseline,
)
from repro.sanitize.flow.engine import compute_summaries
from repro.sanitize.flow.findings import (
    FlowFinding,
    FlowReport,
    sort_findings,
)
from repro.sanitize.flow.rules import run_rules
from repro.sanitize.flow.sarif import render_sarif


def analyze_modules(modules: Sequence[SourceModule]) -> FlowReport:
    """Build the graph, run the fixpoint, run every rule."""
    graph = CallGraph.build(modules)
    summaries = compute_summaries(graph)
    findings = sort_findings(run_rules(graph, summaries))
    return FlowReport(
        findings=findings,
        files=len([m for m in modules if m.ok]),
        functions=len(graph.functions),
        call_edges=sum(len(s) for s in graph.calls.values()),
    )


def analyze_paths(paths: Sequence[str],
                  cache: Optional[AstCache] = None) -> FlowReport:
    """Analyze every Python file under *paths* through the shared
    parse cache (pass the same cache the linter used and a combined
    run parses each file once)."""
    cache = cache if cache is not None else GLOBAL_CACHE
    modules = cache.get_many(iter_python_files(paths))
    return analyze_modules(modules)


def analyze_sources(
    pairs: Sequence[Tuple[str, str]],
) -> FlowReport:
    """Analyze in-memory ``(virtual_path, source)`` pairs — the
    mutation-test entry point (a vendored WAL snippet under
    ``src/repro/resilience/mod.py`` is scoped exactly like the real
    one)."""
    modules = [parse_source(source, path) for path, source in pairs]
    return analyze_modules(modules)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; exit 1 on new (unbaselined) findings or a
    malformed baseline, 0 on a clean run."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.sanitize.flow",
        description="Interprocedural dataflow analyzer (rules "
                    "F101-F104; see docs/SANITIZER.md)",
    )
    parser.add_argument("paths", nargs="+",
                        help="files or directories to analyze")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text", dest="fmt",
                        help="output format (json and sarif are stable "
                             "for tooling)")
    parser.add_argument("--output", default=None,
                        help="write the report here instead of stdout")
    parser.add_argument("--baseline", default=None,
                        help="suppression baseline JSON (every entry "
                             "needs a justification); findings it covers "
                             "do not gate")
    opts = parser.parse_args(argv)
    try:
        baseline = (load_baseline(opts.baseline)
                    if opts.baseline else empty_baseline())
    except (OSError, BaselineError) as exc:
        print(f"sanitize-flow: baseline error: {exc}", file=sys.stderr)
        return 1
    report = analyze_paths(opts.paths)
    new, suppressed, stale = apply_baseline(report.findings, baseline)
    report.findings = new
    report.suppressed = suppressed
    report.stale_suppressions = stale
    if opts.fmt == "json":
        rendered = report.to_json()
    elif opts.fmt == "sarif":
        rendered = render_sarif(report)
    else:
        rendered = report.render_text()
    if opts.output:
        Path(opts.output).write_text(rendered + "\n", encoding="utf-8")
    else:
        print(rendered)
    return 0 if report.ok else 1
