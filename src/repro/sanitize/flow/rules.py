"""The four interprocedural rule families (F101–F104).

Each rule documents its scope, its sources/sinks, and — because the
call graph is optimistic — what it can miss.  Shared precision
decisions, chosen so the shipped tree analyzes clean *because the code
is clean*, not because the rules are blind:

* constructors are exempt from F101 (services are built once, before
  serving; ``BCService.__init__`` legitimately recovers a journal
  synchronously — the event loop is not serving traffic yet);
* ``os.stat``/``os.listdir`` are not blocking roots (micro-syscalls
  the health endpoints rely on), while ``fsync``/``unlink``/``open``/
  ``rename`` are;
* ``np.argsort`` is not a blocking root — snapshot reads use it on
  the loop *by design* (wait-free reads over frozen arrays);
* ``repro/parallel/`` is exempt from F103: it is the transport that
  *owns* the zero-copy round protocol (``poll_result`` returning a
  slab view is its documented contract), so view summaries neither
  fire there nor export across its boundary.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.sanitize.callgraph import (
    CallGraph,
    CallSite,
    FunctionInfo,
    ModuleInfo,
    WALL_CLOCK_FUNCS,
    attr_chain,
    norm_path,
)
from repro.sanitize.flow.engine import (
    BLOCKING,
    CHECKS_FENCE,
    FH_WRITE,
    WAL_APPEND,
    EffectSummaries,
    sites_by_call_node,
)
from repro.sanitize.flow.findings import FlowFinding

#: attributes whose stores feed bit-identical state (F104 sinks);
#: deliberately excludes ``wall_seconds``/``elapsed`` — those *are*
#: wall-clock by contract
_TAINT_SINK_ATTRS = {"simulated_seconds", "_sim_seconds",
                     "simulated_prefix", "bc"}
#: calls whose arguments land in checkpoint payloads (F104 sinks)
_CHECKPOINT_SINKS = {"save_checkpoint", "checkpoint_now"}
#: wrapping one of these around a view materializes it (F103 kill)
_VIEW_SANITIZERS = {"copy", "array", "ascontiguousarray"}
#: ``.read(..., copy=False)`` / ``.decode(..., copy=False)`` — the
#: slab API's zero-copy shapes
_VIEW_READ_TAILS = {"read", "decode"}


def _in_service(path: str) -> bool:
    return "/repro/service/" in norm_path(path)


def _f103_exempt(path: str) -> bool:
    return "/repro/parallel/" in norm_path(path)


def _in_repro(path: str) -> bool:
    return "/repro/" in norm_path(path)


def iter_statements(body: Sequence[ast.stmt]) -> Iterator[ast.stmt]:
    """Every statement in *body*, recursively, in source order —
    without entering nested function/class definitions."""
    for stmt in body:
        yield stmt
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        for fname in ("body", "orelse", "finalbody"):
            sub = getattr(stmt, fname, None)
            if sub:
                yield from iter_statements(sub)
        for handler in getattr(stmt, "handlers", []) or []:
            yield from iter_statements(handler.body)


def run_rules(graph: CallGraph,
              summaries: EffectSummaries) -> List[FlowFinding]:
    """Run every F-rule over the graph; unsorted findings."""
    findings: List[FlowFinding] = []
    findings.extend(rule_f101(graph, summaries))
    findings.extend(rule_f102(graph, summaries))
    findings.extend(rule_f103(graph))
    findings.extend(rule_f104(graph))
    return findings


# ----------------------------------------------------------------------
# F101 — async-blocking
# ----------------------------------------------------------------------
def rule_f101(graph: CallGraph,
              summaries: EffectSummaries) -> List[FlowFinding]:
    """Every call site inside an ``async def`` under ``repro/service/``
    whose execution (transitively, over ``direct`` edges) may block the
    event loop.  Executor dispatches and constructor calls are the
    sanctioned escapes; see the engine's propagation policy.

    Reported per *site* (not per function), so one run lists every
    offending call and a fix can be verified site by site.

    Can miss: blocking hidden behind unresolved dynamic dispatch or
    foreign libraries the graph has no edges into.
    """
    findings = []
    for qname, fn in graph.functions.items():
        if not fn.is_async or not _in_service(fn.path):
            continue
        for site in graph.calls.get(qname, ()):  # noqa: B007
            effects = summaries.site_effects(site)
            if BLOCKING not in effects:
                continue
            label = ".".join(site.chain) or "<dynamic>"
            roots = summaries.roots.get(id(site), frozenset())
            if BLOCKING in roots:
                message = (f"blocking call `{label}(...)` runs on the "
                           f"event loop")
                trace: Tuple[str, ...] = ()
            else:
                callee = graph.functions.get(site.callee)
                where = (callee.short if callee is not None
                         else site.callee or "?")
                message = (f"`{label}(...)` reaches blocking code "
                           f"in `{where}` without an executor hop")
                trace = tuple(summaries.trace(site.callee, BLOCKING))
            findings.append(FlowFinding(
                code="F101", path=fn.path, line=site.lineno,
                col=site.col + 1, function=qname, message=message,
                trace=trace,
            ))
    return findings


# ----------------------------------------------------------------------
# F102 — protocol order
# ----------------------------------------------------------------------
def rule_f102(graph: CallGraph,
              summaries: EffectSummaries) -> List[FlowFinding]:
    """Three state-machine checks over the durability protocol:

    a. **fence before write** — in every *public* method of a class
       that defines ``check_fence`` (``WriteAheadLog`` and twins), no
       statement may (transitively) write segment bytes before a
       statement has (transitively) checked the fence.  A statement
       carrying both — ``self.sync()`` inside ``close()`` — counts
       fence-first, matching ``sync``'s own internal order.
    b. **append before ack** — any ``repro/service/`` function awaiting
       a durable ack (``_wait_durable``) must journal-append (reach
       ``WriteAheadLog.append``) on an earlier-or-same line: acking a
       record that was never appended is durability theater.
    c. **promote ordering** — a ``promote()`` under ``repro/service/``
       must run fence (``write_fence``) → seal (``catch_up``/``poll``)
       → own (``WriteAheadLog(...)``) → advertise
       (``clear_replica_position``), each present and in that order
       (docs/RESILIENCE.md §7).
    """
    findings = []
    # -- (a) fence before write ---------------------------------------
    for cls in graph.classes.values():
        if not cls.has_check_fence:
            continue
        for mname, fq in sorted(cls.methods.items()):
            if mname.startswith("_") or mname == "check_fence":
                continue
            fn = graph.functions.get(fq)
            if fn is None:
                continue
            index = sites_by_call_node(graph, fq)
            fenced = False
            for stmt in iter_statements(fn.node.body):
                effects = summaries.statement_effects(stmt, index)
                if CHECKS_FENCE in effects:
                    fenced = True
                if FH_WRITE in effects and not fenced:
                    findings.append(FlowFinding(
                        code="F102", path=fn.path, line=stmt.lineno,
                        col=stmt.col_offset + 1, function=fq,
                        message=(f"`{cls.name}.{mname}` writes segment "
                                 f"bytes before any check_fence() — a "
                                 f"deposed writer could commit"),
                    ))
                    break
    # -- (b) append before ack ----------------------------------------
    for qname, fn in graph.functions.items():
        if not _in_service(fn.path) or fn.name == "_wait_durable":
            continue
        ack_site: Optional[CallSite] = None
        append_line: Optional[int] = None
        for site in graph.calls.get(qname, ()):  # noqa: B007
            if site.chain and site.chain[-1] == "_wait_durable":
                if ack_site is None or site.lineno < ack_site.lineno:
                    ack_site = site
            if WAL_APPEND in summaries.site_effects(site):
                if append_line is None or site.lineno < append_line:
                    append_line = site.lineno
        if ack_site is None:
            continue
        if append_line is None or append_line > ack_site.lineno:
            what = ("never journal-appends" if append_line is None
                    else f"appends only at line {append_line}")
            findings.append(FlowFinding(
                code="F102", path=fn.path, line=ack_site.lineno,
                col=ack_site.col + 1, function=qname,
                message=(f"durable-ack path awaits _wait_durable but "
                         f"{what} — the acked record may not be in "
                         f"the journal"),
            ))
    # -- (c) promote ordering -----------------------------------------
    order = ("fence", "seal", "own", "advertise")
    for qname, fn in graph.functions.items():
        if fn.name != "promote" or not _in_service(fn.path):
            continue
        first: Dict[str, int] = {}
        for site in graph.calls.get(qname, ()):  # noqa: B007
            tail = site.chain[-1] if site.chain else ""
            step = None
            if tail == "write_fence":
                step = "fence"
            elif tail in ("catch_up", "poll"):
                step = "seal"
            elif tail == "WriteAheadLog" or (
                site.ctor_class or "").endswith(".WriteAheadLog"):
                step = "own"
            elif tail == "clear_replica_position":
                step = "advertise"
            if step is not None and step not in first:
                first[step] = site.lineno
        missing = [s for s in order if s not in first]
        if missing:
            findings.append(FlowFinding(
                code="F102", path=fn.path, line=fn.lineno, col=1,
                function=qname,
                message=(f"promote() is missing protocol step(s) "
                         f"{', '.join(missing)} (required order: "
                         f"fence -> seal -> own -> advertise)"),
            ))
            continue
        lines = [first[s] for s in order]
        if lines != sorted(lines):
            got = " -> ".join(
                s for s, _ in sorted(first.items(), key=lambda kv: kv[1])
            )
            findings.append(FlowFinding(
                code="F102", path=fn.path, line=min(lines), col=1,
                function=qname,
                message=(f"promote() runs its protocol out of order "
                         f"({got}); required: fence -> seal -> own -> "
                         f"advertise"),
            ))
    return findings


# ----------------------------------------------------------------------
# F103 — shm/slab view lifetime escape
# ----------------------------------------------------------------------
class _ViewFlow:
    """Per-function forward taint over zero-copy views.

    Sources: ``np.frombuffer(...)``, ``.read/.decode(..., copy=False)``,
    calls to (non-exempt) functions summarized as returning a view.
    Kills: wrapping in ``.copy()`` / ``np.array`` /
    ``np.ascontiguousarray``.  Escapes: returning, yielding, storing on
    an attribute, or closing over a live view — each one lets the view
    outlive the arena round that owns its buffer.
    """

    def __init__(self, graph: CallGraph, fn: FunctionInfo,
                 mod: ModuleInfo, returns_view: Set[str]) -> None:
        self.graph = graph
        self.fn = fn
        self.mod = mod
        self.returns_view = returns_view
        self.tainted: Set[str] = set()
        self.findings: List[FlowFinding] = []
        self.fn_returns_view = False
        self._index = sites_by_call_node(graph, fn.qname)

    def is_view(self, expr: ast.AST) -> bool:
        if isinstance(expr, ast.Name):
            return expr.id in self.tainted
        if isinstance(expr, ast.Await):
            return self.is_view(expr.value)
        if isinstance(expr, ast.IfExp):
            return self.is_view(expr.body) or self.is_view(expr.orelse)
        if isinstance(expr, ast.Subscript):
            return self.is_view(expr.value)  # slicing a view is a view
        if isinstance(expr, ast.Call):
            chain = attr_chain(expr.func)
            tail = chain[-1] if chain else ""
            if tail in _VIEW_SANITIZERS:
                return False
            if tail == "frombuffer":
                return True
            if tail in _VIEW_READ_TAILS and any(
                kw.arg == "copy"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is False
                for kw in expr.keywords
            ):
                return True
            for site in self._index.get(id(expr), []):
                if site.callee in self.returns_view:
                    return True
        return False

    def _contains_view(self, expr: ast.AST) -> bool:
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            return any(self._contains_view(e) for e in expr.elts)
        if isinstance(expr, ast.Dict):
            return any(v is not None and self._contains_view(v)
                       for v in expr.values)
        return self.is_view(expr)

    def _flag(self, node: ast.AST, message: str) -> None:
        self.findings.append(FlowFinding(
            code="F103", path=self.fn.path,
            line=getattr(node, "lineno", self.fn.lineno),
            col=getattr(node, "col_offset", 0) + 1,
            function=self.fn.qname, message=message,
        ))

    def run(self) -> None:
        # two passes so loop-carried taint is observed; only the last
        # pass's findings (with the full taint set) are kept
        for _ in range(2):
            self.findings = []
            self._pass()

    def _pass(self) -> None:
        for stmt in iter_statements(self.fn.node.body):
            if isinstance(stmt, ast.Assign):
                self._assign(stmt.targets, stmt.value)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                self._assign([stmt.target], stmt.value)
            elif isinstance(stmt, ast.Return) and stmt.value is not None:
                if self._contains_view(stmt.value):
                    self.fn_returns_view = True
                    self._flag(stmt,
                               "zero-copy view escapes via return "
                               "without a copy")
            elif isinstance(stmt, ast.Expr) \
                    and isinstance(stmt.value, (ast.Yield, ast.YieldFrom)):
                inner = stmt.value.value
                if inner is not None and self._contains_view(inner):
                    self._flag(stmt,
                               "zero-copy view escapes via yield "
                               "without a copy")
        # closures: a nested def/lambda reading a live view keeps the
        # buffer reachable past the round that owns it
        for node in ast.walk(self.fn.node):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)) and node is not self.fn.node:
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Name) \
                            and isinstance(sub.ctx, ast.Load) \
                            and sub.id in self.tainted:
                        self._flag(node,
                                   f"zero-copy view `{sub.id}` is "
                                   f"captured by a closure without a "
                                   f"copy")
                        break

    def _assign(self, targets: Sequence[ast.AST], value: ast.AST) -> None:
        view = self.is_view(value)
        for target in targets:
            if isinstance(target, ast.Name):
                if view:
                    self.tainted.add(target.id)
                else:
                    self.tainted.discard(target.id)
            elif isinstance(target, ast.Attribute) and \
                    self._contains_view(value):
                chain = attr_chain(target)
                label = ".".join(chain) if chain else "<attribute>"
                self._flag(target,
                           f"zero-copy view stored on `{label}` "
                           f"outlives its arena round")


def rule_f103(graph: CallGraph) -> List[FlowFinding]:
    """Dataflow upgrade of lexical R003: views over shared memory must
    not outlive the arena/round that owns their buffer.  Interprocedural
    via *returns-view* summaries (a helper returning a raw view taints
    its callers' assignments), iterated to fixpoint.

    Can miss: views smuggled through containers built elsewhere, or
    through attributes read back later (no heap model).
    """
    returns_view: Set[str] = set()
    analyses: Dict[str, _ViewFlow] = {}
    changed = True
    while changed:
        changed = False
        analyses.clear()
        for qname, fn in graph.functions.items():
            if not _in_repro(fn.path) or _f103_exempt(fn.path):
                continue
            mod = graph.modules.get(fn.module)
            if mod is None:
                continue
            flow = _ViewFlow(graph, fn, mod, returns_view)
            flow.run()
            analyses[qname] = flow
            if flow.fn_returns_view and qname not in returns_view:
                returns_view.add(qname)
                changed = True
    findings: List[FlowFinding] = []
    for flow in analyses.values():
        findings.extend(flow.findings)
    return findings


# ----------------------------------------------------------------------
# F104 — determinism taint
# ----------------------------------------------------------------------
class _TaintFlow:
    """Per-function forward taint of nondeterministic values.

    Sources: wall-clock reads (``time.time``/``perf_counter``/...),
    ``WallTimer.elapsed``, unseeded ``default_rng()``, and calls to
    functions summarized as returning taint.  Sinks: accountant
    charges (``acc.*(tainted)``), checkpoint payload arguments, and
    stores to the deterministic-state attributes
    (``simulated_seconds``/``_sim_seconds``/``simulated_prefix``/
    ``bc``).  ``wall_seconds`` is *not* a sink: it is wall-clock by
    contract.
    """

    def __init__(self, graph: CallGraph, fn: FunctionInfo,
                 mod: ModuleInfo, returns_taint: Set[str]) -> None:
        self.graph = graph
        self.fn = fn
        self.mod = mod
        self.returns_taint = returns_taint
        self.tainted: Dict[str, str] = {}
        self.findings: List[FlowFinding] = []
        self.fn_returns_taint = False
        self._index = sites_by_call_node(graph, fn.qname)
        self._cls = (graph.classes.get(fn.class_qname)
                     if fn.class_qname else None)

    # -- taint of an expression ---------------------------------------
    def taint_of(self, expr: ast.AST) -> Optional[str]:
        if isinstance(expr, ast.Name):
            return self.tainted.get(expr.id)
        if isinstance(expr, ast.Await):
            return self.taint_of(expr.value)
        if isinstance(expr, ast.BinOp):
            return self.taint_of(expr.left) or self.taint_of(expr.right)
        if isinstance(expr, ast.UnaryOp):
            return self.taint_of(expr.operand)
        if isinstance(expr, ast.IfExp):
            return self.taint_of(expr.body) or self.taint_of(expr.orelse)
        if isinstance(expr, ast.Subscript):
            return self.taint_of(expr.value)
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            for e in expr.elts:
                t = self.taint_of(e)
                if t:
                    return t
            return None
        if isinstance(expr, ast.Dict):
            for v in expr.values:
                if v is not None:
                    t = self.taint_of(v)
                    if t:
                        return t
            return None
        if isinstance(expr, ast.Attribute):
            chain = attr_chain(expr)
            if chain and expr.attr == "elapsed":
                recv = self.graph._chain_type_with(
                    chain[:-1], self.mod, self.fn.local_types, self._cls
                )
                if recv is not None and recv.rsplit(".", 1)[-1] == "WallTimer":
                    return f"WallTimer.elapsed (line {expr.lineno})"
            return None
        if isinstance(expr, ast.Call):
            return self._call_taint(expr)
        return None

    def _call_taint(self, call: ast.Call) -> Optional[str]:
        chain = attr_chain(call.func)
        tail = chain[-1] if chain else ""
        if len(chain) == 2 and chain[0] in self.mod.time_aliases \
                and tail in WALL_CLOCK_FUNCS:
            return f"{'.'.join(chain)}() (line {call.lineno})"
        if len(chain) == 1 and tail in self.mod.wall_clock_names:
            return f"{tail}() (line {call.lineno})"
        if tail == "default_rng" and not call.args and not call.keywords:
            return f"unseeded default_rng() (line {call.lineno})"
        for site in self._index.get(id(call), []):
            if site.callee in self.returns_taint:
                callee = self.graph.functions.get(site.callee)
                name = callee.short if callee else site.callee
                return f"tainted return of {name} (line {call.lineno})"
        return None

    # -- statements ---------------------------------------------------
    def run(self) -> None:
        for _ in range(2):
            self.findings = []
            self._pass()

    def _flag(self, node: ast.AST, message: str) -> None:
        self.findings.append(FlowFinding(
            code="F104", path=self.fn.path,
            line=getattr(node, "lineno", self.fn.lineno),
            col=getattr(node, "col_offset", 0) + 1,
            function=self.fn.qname, message=message,
        ))

    def _check_sink_call(self, call: ast.Call) -> None:
        chain = attr_chain(call.func)
        if not chain:
            return
        args = list(call.args) + [kw.value for kw in call.keywords]
        tainted = next((t for t in map(self.taint_of, args) if t), None)
        if tainted is None:
            return
        if len(chain) >= 2 and chain[0] == "acc":
            self._flag(call,
                       f"nondeterministic value reaches the cost "
                       f"accountant via `{'.'.join(chain)}(...)`: "
                       f"{tainted}")
        elif chain[-1] in _CHECKPOINT_SINKS:
            self._flag(call,
                       f"nondeterministic value reaches a checkpoint "
                       f"payload via `{'.'.join(chain)}(...)`: {tainted}")

    def _pass(self) -> None:
        for stmt in iter_statements(self.fn.node.body):
            # sinks first (a statement may both sink and re-taint)
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    self._check_sink_call(node)
            if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                value = stmt.value
                if value is None:
                    continue
                taint = self.taint_of(value)
                targets = (stmt.targets if isinstance(stmt, ast.Assign)
                           else [stmt.target])
                for target in targets:
                    if isinstance(target, ast.Name) \
                            and isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                        if taint:
                            self.tainted[target.id] = taint
                        else:
                            self.tainted.pop(target.id, None)
                    elif isinstance(target, ast.Attribute) \
                            and taint is not None \
                            and target.attr in _TAINT_SINK_ATTRS:
                        chain = attr_chain(target)
                        label = ".".join(chain) if chain else target.attr
                        self._flag(target,
                                   f"nondeterministic value folded into "
                                   f"`{label}`: {taint}")
            elif isinstance(stmt, ast.Return) and stmt.value is not None:
                if self.taint_of(stmt.value):
                    self.fn_returns_taint = True


def rule_f104(graph: CallGraph) -> List[FlowFinding]:
    """Interprocedural extension of lexical R001/R002: wall-clock and
    unseeded-RNG values must never fold into the quantities the
    bit-identity guarantees cover.  *Returns-taint* summaries carry
    nondeterminism across helper boundaries, iterated to fixpoint.

    Can miss: taint through object attributes or containers mutated
    elsewhere (no heap model), and parameters (no argument-to-return
    transfer functions in v1).
    """
    returns_taint: Set[str] = set()
    analyses: Dict[str, _TaintFlow] = {}
    changed = True
    while changed:
        changed = False
        analyses.clear()
        for qname, fn in graph.functions.items():
            if not _in_repro(fn.path):
                continue
            mod = graph.modules.get(fn.module)
            if mod is None:
                continue
            flow = _TaintFlow(graph, fn, mod, returns_taint)
            flow.run()
            analyses[qname] = flow
            if flow.fn_returns_taint and qname not in returns_taint:
                returns_taint.add(qname)
                changed = True
    findings: List[FlowFinding] = []
    for flow in analyses.values():
        findings.extend(flow.findings)
    return findings
