"""Interprocedural dataflow analyzer (sanitizer Layer 3).

Where the Layer-2 linter judges one expression at a time, this layer
builds a whole-repo call graph (:mod:`repro.sanitize.callgraph`) over
the shared parse cache, runs a fixpoint effect analysis on it
(:mod:`repro.sanitize.flow.engine`), and checks the cross-function
invariants the serving stack actually depends on:

====  ==============================================================
F101  No path from an ``async def`` in ``repro/service/`` to a
      blocking call (fsync, file I/O, ``time.sleep``, thread joins,
      heavy NumPy) except through ``run_in_executor``/``to_thread``
      (or a constructor — setup happens before serving).
F102  Durability protocol order: ``check_fence()`` before segment
      writes on every public WAL commit path; journal-append before
      durable-ack; ``promote()`` runs fence → seal → own → advertise.
F103  Zero-copy shm/slab views must not escape their arena round
      (returned, stored on an attribute, yielded, or closed over)
      without a copy — the dataflow upgrade of lexical R003.
F104  Wall-clock / unseeded-RNG taint must never fold into the
      bit-identical quantities (accountant charges, checkpoint
      payloads, ``simulated_seconds``/``bc`` state).
====  ==============================================================

Run as ``python -m repro.sanitize.flow src/repro`` (formats: text,
json, sarif; exit 1 on any finding not covered by the suppression
baseline).  See docs/SANITIZER.md, "Interprocedural analysis".
"""

from repro.sanitize.flow.baseline import (
    BaselineError,
    apply_baseline,
    empty_baseline,
    load_baseline,
)
from repro.sanitize.flow.cli import analyze_paths, analyze_sources, main
from repro.sanitize.flow.findings import (
    FLOW_RULES,
    FLOW_VERSION,
    FlowFinding,
    FlowReport,
)
from repro.sanitize.flow.sarif import render_sarif, to_sarif

__all__ = [
    "FLOW_RULES",
    "FLOW_VERSION",
    "BaselineError",
    "FlowFinding",
    "FlowReport",
    "analyze_paths",
    "analyze_sources",
    "apply_baseline",
    "empty_baseline",
    "load_baseline",
    "main",
    "render_sarif",
    "to_sarif",
]
