"""Finding and report types for the interprocedural analyzer.

Mirrors the stable-JSON discipline of the Layer-1
:class:`~repro.sanitize.report.SanitizerReport` and the Layer-2 lint
report: findings sort deterministically, serialize to a versioned
document, and carry a **fingerprint** that is independent of line
numbers — so a suppression baseline survives unrelated edits above the
finding and only drifts when the finding itself changes.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

#: schema version of the ``--format json`` document
FLOW_VERSION = 1

#: rule code → (summary, fix-it hint)
FLOW_RULES: Dict[str, Tuple[str, str]] = {
    "F101": (
        "async path reaches a blocking call without an executor hop",
        "route the blocking call off the event loop: await "
        "asyncio.to_thread(fn, ...) or loop.run_in_executor(pool, fn)",
    ),
    "F102": (
        "durability protocol order violated",
        "commit paths must check_fence() before any segment write; "
        "durable-ack paths must journal-append before awaiting the "
        "ack; promote() must fence -> seal -> own -> advertise",
    ),
    "F103": (
        "shared-memory view escapes its arena/round scope",
        "materialize before the buffer can be reused or unmapped: "
        "view.copy() / np.array(view) at the escape point",
    ),
    "F104": (
        "wall-clock or unseeded-RNG taint reaches deterministic state",
        "simulated results must fold only simulated quantities: use "
        "CostModel time / report.simulated_seconds, and seed every "
        "generator (repro.utils.prng.default_rng(seed))",
    ),
}


@dataclass(frozen=True)
class FlowFinding:
    """One interprocedural finding, with the call-path evidence."""

    code: str
    path: str
    line: int
    col: int
    function: str  #: dotted qname of the function the finding is in
    message: str
    #: call-path evidence, caller-first (``Class.fn (path:line)`` steps)
    trace: Tuple[str, ...] = field(default_factory=tuple)

    @property
    def fingerprint(self) -> str:
        """Line-number-independent identity used by the suppression
        baseline: rule + file + function + message."""
        basis = "\0".join((self.code, self.path, self.function,
                           self.message))
        return hashlib.sha256(basis.encode("utf-8")).hexdigest()[:16]

    @property
    def hint(self) -> str:
        """The rule's fix-it hint."""
        return FLOW_RULES[self.code][1]

    def to_dict(self) -> dict:
        """JSON-stable dict form (the ``--format json`` unit)."""
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "function": self.function,
            "summary": FLOW_RULES[self.code][0],
            "message": self.message,
            "trace": list(self.trace),
            "fingerprint": self.fingerprint,
            "hint": self.hint,
        }

    def render(self) -> str:
        """Multi-line human form: location, trace, fix-it, fingerprint."""
        lines = [f"{self.path}:{self.line}:{self.col}: {self.code} "
                 f"[{self.function}] {self.message}"]
        for step in self.trace:
            lines.append(f"    via {step}")
        lines.append(f"    fix-it: {self.hint}")
        lines.append(f"    fingerprint: {self.fingerprint}")
        return "\n".join(lines)

    def sort_key(self) -> tuple:
        """Deterministic report order: path, line, col, code."""
        return (self.path, self.line, self.col, self.code, self.message)


@dataclass
class FlowReport:
    """One analyzer run: findings plus the coverage counters that make
    an empty report meaningful (how much was actually analyzed)."""

    findings: List[FlowFinding] = field(default_factory=list)
    files: int = 0
    functions: int = 0
    call_edges: int = 0
    #: findings matched (and silenced) by the suppression baseline
    suppressed: List[FlowFinding] = field(default_factory=list)
    #: baseline fingerprints that no longer match anything (stale)
    stale_suppressions: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """``True`` when no *new* (unsuppressed) finding remains."""
        return not self.findings

    def by_code(self) -> Dict[str, int]:
        """Finding counts per rule code, sorted by code."""
        counts: Dict[str, int] = {}
        for f in self.findings:
            counts[f.code] = counts.get(f.code, 0) + 1
        return dict(sorted(counts.items()))

    def to_dict(self) -> dict:
        """JSON-stable dict form of the whole run."""
        return {
            "version": FLOW_VERSION,
            "ok": self.ok,
            "files": self.files,
            "functions": self.functions,
            "call_edges": self.call_edges,
            "counts": self.by_code(),
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "stale_suppressions": sorted(self.stale_suppressions),
        }

    def to_json(self) -> str:
        """Pretty-printed JSON report (``--format json``)."""
        return json.dumps(self.to_dict(), indent=2)

    def render_text(self) -> str:
        """Human report: findings, stale-baseline warnings, summary."""
        lines = [f.render() for f in self.findings]
        for fp in sorted(self.stale_suppressions):
            lines.append(f"warning: stale suppression {fp} matches "
                         f"nothing (remove it from the baseline)")
        status = "ok" if self.ok else "FAIL"
        summary = (f"sanitize-flow: {status} — {len(self.findings)} new "
                   f"finding(s), {len(self.suppressed)} suppressed, over "
                   f"{self.functions} function(s) in {self.files} file(s)")
        if self.findings:
            summary += " " + json.dumps(self.by_code())
        lines.append(summary)
        return "\n".join(lines)


def sort_findings(findings: Sequence[FlowFinding]) -> List[FlowFinding]:
    """Sort into the deterministic report order."""
    return sorted(findings, key=FlowFinding.sort_key)
