"""Suppression baseline for the flow analyzer.

The baseline is a checked-in JSON file listing findings the team has
*explicitly accepted*, by fingerprint (which is line-number-independent
— see :class:`~repro.sanitize.flow.findings.FlowFinding.fingerprint`).
The CI gate fails on any finding not in the baseline, and **every
suppression must carry a non-empty justification** — an entry without
one fails validation, so "just baseline it" always leaves a reviewable
sentence behind.  The shipped baseline is empty: the analyzer runs
clean on the tree because PR 10 fixed everything it surfaced.

Schema::

    {
      "version": 1,
      "suppressions": [
        {
          "fingerprint": "0123abcd...",
          "code": "F101",               # optional, documentation
          "path": "src/...",            # optional, documentation
          "justification": "why this is acceptable, reviewed by ..."
        }
      ]
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.sanitize.flow.findings import FlowFinding

BASELINE_VERSION = 1
#: conventional location, used by `make analyze` and CI
DEFAULT_BASELINE = ".flow-baseline.json"


class BaselineError(ValueError):
    """The baseline file is malformed or a suppression lacks its
    justification."""


def empty_baseline() -> dict:
    """A valid baseline that suppresses nothing (the checked-in goal)."""
    return {"version": BASELINE_VERSION, "suppressions": []}


def load_baseline(path) -> dict:
    """Load and validate a baseline file.  Raises
    :class:`BaselineError` on schema violations — most importantly a
    suppression with a missing/empty ``justification``."""
    raw = Path(path).read_text(encoding="utf-8")
    try:
        doc = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise BaselineError(f"{path}: not valid JSON ({exc})") from exc
    if not isinstance(doc, dict) or doc.get("version") != BASELINE_VERSION:
        raise BaselineError(
            f"{path}: expected a baseline document with version "
            f"{BASELINE_VERSION}"
        )
    entries = doc.get("suppressions")
    if not isinstance(entries, list):
        raise BaselineError(f"{path}: 'suppressions' must be a list")
    for i, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise BaselineError(f"{path}: suppression #{i} is not an object")
        fp = entry.get("fingerprint")
        if not isinstance(fp, str) or not fp.strip():
            raise BaselineError(
                f"{path}: suppression #{i} has no fingerprint"
            )
        just = entry.get("justification")
        if not isinstance(just, str) or not just.strip():
            raise BaselineError(
                f"{path}: suppression {fp!r} has no justification — "
                f"every accepted finding needs a reviewed sentence "
                f"explaining why it is acceptable"
            )
    return doc


def apply_baseline(
    findings: Sequence[FlowFinding], baseline: dict,
) -> Tuple[List[FlowFinding], List[FlowFinding], List[str]]:
    """Split *findings* against *baseline*.

    Returns ``(new, suppressed, stale)``: findings not covered (these
    gate), findings matched by a suppression, and fingerprints in the
    baseline that matched nothing (candidates for removal — surfaced
    as warnings so the baseline only ever shrinks back to empty).
    """
    by_fp: Dict[str, dict] = {
        entry["fingerprint"]: entry
        for entry in baseline.get("suppressions", [])
    }
    new: List[FlowFinding] = []
    suppressed: List[FlowFinding] = []
    seen = set()
    for finding in findings:
        if finding.fingerprint in by_fp:
            suppressed.append(finding)
            seen.add(finding.fingerprint)
        else:
            new.append(finding)
    stale = sorted(set(by_fp) - seen)
    return new, suppressed, stale
