"""``python -m repro.sanitize.flow`` — see :mod:`repro.sanitize.flow`."""

import sys

from repro.sanitize.flow.cli import main

if __name__ == "__main__":
    sys.exit(main())
