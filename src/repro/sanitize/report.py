"""Structured output of the kernel race sanitizer.

A :class:`SanitizerReport` is the JSON-serializable artifact the CI
``sanitize`` job uploads: every hazard the tracer flagged, plus the
coverage counters that prove the instrumentation actually ran (a
zero-finding report over zero intervals proves nothing).

Finding classes:

``S101`` — unprotected write-write conflict: two lanes stored to the
    same address inside one barrier interval without routing through a
    declared atomic helper (:mod:`repro.gpu.primitives`), or a plain
    store overlapped an atomic accumulation in the same interval (the
    seed-then-accumulate pattern needs a barrier between the phases).
``S102`` — read-after-write hazard: an address was both read and
    written inside one barrier interval by different lanes — the level
    loop is missing a barrier, so a lane may observe a torn or
    half-updated value.
``S103`` — frontier-monotonicity violation: a queue kernel enqueued a
    vertex whose distance does not match the target level, re-enqueued
    a vertex the dedup pipeline should have removed, or pushed levels
    out of order (the Q/Q2/QQ invariants of Algorithms 5 and 7).

Ordering is deterministic: findings sort by (code, kernel, stage,
level, array), so two runs over the same stream produce byte-identical
JSON — tooling can diff reports directly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

#: schema version of the JSON document (bump on breaking changes)
REPORT_VERSION = 1

S101 = "S101"  #: unprotected write-write conflict
S102 = "S102"  #: read-after-write hazard (missing barrier)
S103 = "S103"  #: frontier-monotonicity violation

FINDING_CLASSES: Dict[str, str] = {
    S101: "unprotected write-write conflict",
    S102: "read-after-write hazard (missing barrier)",
    S103: "frontier-monotonicity violation",
}


@dataclass(frozen=True)
class Finding:
    """One hazard flagged by the tracer.

    ``sample`` holds up to the first few conflicting addresses so a
    finding is actionable without storing whole index arrays.
    """

    code: str  #: S101 | S102 | S103
    kernel: str  #: kernel session label, e.g. "case2-insert:17"
    stage: str  #: barrier-interval stage, e.g. "sp", "dep-accumulate"
    level: int  #: BFS/queue level of the interval
    array: str  #: array (S101/S102) or queue (S103) name
    count: int  #: number of conflicting addresses / vertices
    sample: Tuple[int, ...]  #: first few offending addresses
    message: str

    def to_dict(self) -> dict:
        """JSON-ready representation of one finding."""
        return {
            "code": self.code,
            "class": FINDING_CLASSES.get(self.code, "unknown"),
            "kernel": self.kernel,
            "stage": self.stage,
            "level": self.level,
            "array": self.array,
            "count": self.count,
            "sample": list(self.sample),
            "message": self.message,
        }

    def sort_key(self) -> tuple:
        """Stable report order: finding class first, then location."""
        return (self.code, self.kernel, self.stage, self.level, self.array,
                self.message)


@dataclass
class SanitizerReport:
    """Everything one tracing session observed."""

    findings: List[Finding] = field(default_factory=list)
    #: kernel sessions traced (one per instrumented kernel invocation)
    kernels: int = 0
    #: barrier intervals checked
    intervals: int = 0
    #: gather/scatter accesses recorded
    reads: int = 0
    writes: int = 0
    atomics: int = 0
    #: declared-benign race activity actually observed, keyed
    #: ``"array:intent"`` → number of conflicting lanes whitelisted by
    #: construction (see ``repro.gpu.primitives.BENIGN_RACES``)
    benign: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when no hazard was found."""
        return not self.findings

    def to_dict(self) -> dict:
        """JSON-ready representation (the ``--format json`` schema)."""
        return {
            "version": REPORT_VERSION,
            "ok": self.ok,
            "kernels": self.kernels,
            "intervals": self.intervals,
            "reads": self.reads,
            "writes": self.writes,
            "atomics": self.atomics,
            "benign": {k: self.benign[k] for k in sorted(self.benign)},
            "findings": [
                f.to_dict() for f in sorted(self.findings,
                                            key=Finding.sort_key)
            ],
        }

    def to_json(self, indent: int = 2) -> str:
        """Stable JSON rendering (sorted findings, sorted keys inside
        the benign map) — safe to diff or archive."""
        return json.dumps(self.to_dict(), indent=indent)

    def summary(self) -> str:
        """Human one-screen rendering (the ``--format text`` body)."""
        lines = [
            f"sanitizer: {'ok' if self.ok else 'FAIL'} — "
            f"{len(self.findings)} finding(s) over {self.kernels} kernels, "
            f"{self.intervals} barrier intervals "
            f"({self.reads} reads, {self.writes} writes, "
            f"{self.atomics} atomics)"
        ]
        for key in sorted(self.benign):
            lines.append(f"  benign race [{key}]: {self.benign[key]} "
                         f"whitelisted lane conflicts")
        for f in sorted(self.findings, key=Finding.sort_key):
            lines.append(
                f"  {f.code} {FINDING_CLASSES.get(f.code, '?')}: "
                f"kernel={f.kernel} stage={f.stage} level={f.level} "
                f"{f.array} x{f.count} sample={list(f.sample)} — {f.message}"
            )
        return "\n".join(lines)

    def merge(self, other: "SanitizerReport") -> None:
        """Fold *other* into this report in place (used when several
        tracing sessions contribute to one replay report)."""
        self.findings.extend(other.findings)
        self.kernels += other.kernels
        self.intervals += other.intervals
        self.reads += other.reads
        self.writes += other.writes
        self.atomics += other.atomics
        for key, count in other.benign.items():
            self.benign[key] = self.benign.get(key, 0) + count
