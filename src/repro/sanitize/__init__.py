"""Correctness tooling for the simulated GPU kernels (two layers).

**Layer 1 — kernel race sanitizer** (:mod:`repro.sanitize.tracer`):
an opt-in instrumentation mode that records per-lane read/write sets
inside every simulated barrier interval of the per-level kernels and
flags the hazards GPU memory-model discipline forbids — unprotected
write-write conflicts (S101), read-after-write across lanes within a
level (S102, a missing barrier), and frontier-monotonicity violations
in the Q/Q2/QQ queue kernels (S103).  Exposed as
``DynamicBC(sanitize=True)``, ``brandes_bc(..., sanitize=True)`` and
the ``repro-bc sanitize`` CLI subcommand; results come back as a
structured :class:`~repro.sanitize.report.SanitizerReport`.

**Layer 2 — AST repo linter** (:mod:`repro.sanitize.lint`,
``python -m repro.sanitize.lint``): single-parse, multi-visitor
lexical rules R001–R006 enforcing the repo invariants the simulation's
bit-identity guarantees rest on (no raw wall-clock in kernel code,
no unseeded RNG, shm lifecycle pairing, no silent exception
swallowing in the resilience layers, kernels must charge counters,
atomic durable writes).

**Layer 3 — interprocedural dataflow analyzer**
(:mod:`repro.sanitize.flow`, ``python -m repro.sanitize.flow``):
whole-repo call graph + fixpoint effect analysis checking the
cross-function invariants lexical rules cannot see — async paths
reaching blocking calls (F101), durability protocol ordering (F102),
shm view lifetime escapes (F103), determinism taint (F104) — with a
SARIF formatter and a justification-required suppression baseline.

Layers 2 and 3 share one parse per file through
:mod:`repro.sanitize.astcache` (``python -m repro.sanitize`` runs
both).  See ``docs/SANITIZER.md`` for the rule tables, the benign-race
annotation protocol and usage examples.
"""

from repro.sanitize.report import Finding, SanitizerReport
from repro.sanitize.tracer import MemoryTracer, current_tracer, tracing

__all__ = [
    "Finding",
    "MemoryTracer",
    "SanitizerReport",
    "current_tracer",
    "tracing",
]
