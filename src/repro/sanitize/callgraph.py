"""Module-level call graph over the repo (the flow analyzer's spine).

Builds, from a set of parsed modules (:mod:`repro.sanitize.astcache`),
the symbol tables and call edges the interprocedural rules in
:mod:`repro.sanitize.flow` run over:

* every function/method (nested ones included), keyed by a dotted
  qualified name (``repro.service.service.BCService.stop``) and
  colored async/sync;
* every class, with a method table and an **attribute type map**
  inferred from ``self.x = SomeClass(...)`` assignments and annotated
  parameters — enough to resolve ``self.core.store.current()`` through
  two attribute hops without a real type checker;
* every call site, resolved where possible to its callee and labeled
  with an edge kind:

  ``direct``
      a plain call — effects propagate callee → caller;
  ``executor``
      the function *argument* of ``loop.run_in_executor(...)``,
      ``asyncio.to_thread(...)`` or ``executor.submit(...)`` — the
      callee runs on a worker thread, so blocking effects must NOT
      propagate to the (async) caller;
  ``constructor``
      a resolved class instantiation — constructors are setup-time
      (services are built once, before serving), so the async-blocking
      rule exempts them too.

Resolution is deliberately *optimistic*: a call we cannot resolve
(dynamic dispatch, foreign libraries, ``getattr``) simply contributes
no edge.  That trades soundness for a near-zero false-positive rate —
the right trade for a gating CI check; the rule docstrings in
``flow/rules.py`` record what each rule can therefore miss.

Two pseudo-types thread through the inference because the rules key on
them: ``"<file>"`` for values produced by the ``open()`` builtin (so
``self._fh.write(...)`` is recognizably file I/O) and the executor
class names (so ``self._executor.shutdown(wait=True)`` is recognizably
a thread join).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.sanitize.astcache import SourceModule

#: receiver types whose ``.shutdown()`` joins worker threads
EXECUTOR_CLASSES = {"ThreadPoolExecutor", "ProcessPoolExecutor"}
#: pseudo-type for values returned by the ``open()`` builtin
FILE_TYPE = "<file>"

#: wall-clock reads in the time module (shared with the lexical linter)
WALL_CLOCK_FUNCS = {"time", "perf_counter", "perf_counter_ns",
                    "monotonic", "monotonic_ns", "process_time",
                    "process_time_ns"}


def attr_chain(node: ast.AST) -> Tuple[str, ...]:
    """``a.b.c`` → ``("a", "b", "c")``; empty when not a pure chain."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(parts[::-1])
    return ()


def norm_path(path: str) -> str:
    """Normalize *path* to a leading-slash, forward-slash form."""
    return "/" + str(path).replace("\\", "/").lstrip("/")


@dataclass
class FunctionInfo:
    """One function or method in the graph."""

    qname: str
    module: str
    path: str
    name: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    is_async: bool
    lineno: int
    class_qname: Optional[str] = None
    #: local variable name -> inferred type name (class qname,
    #: ``"<file>"``, or an executor class name)
    local_types: Dict[str, str] = field(default_factory=dict)

    @property
    def short(self) -> str:
        """``Class.method`` / ``func`` — the human-facing name."""
        if self.class_qname:
            return f"{self.class_qname.rsplit('.', 1)[-1]}.{self.name}"
        return self.name

    def param_names(self) -> List[str]:
        """Positional + keyword-only parameter names, in order."""
        a = self.node.args
        return [p.arg for p in a.posonlyargs + a.args + a.kwonlyargs]


@dataclass
class ClassInfo:
    """One class: method table plus inferred attribute types."""

    qname: str
    module: str
    path: str
    name: str
    node: ast.ClassDef
    methods: Dict[str, str] = field(default_factory=dict)
    attr_types: Dict[str, str] = field(default_factory=dict)

    @property
    def has_check_fence(self) -> bool:
        """Marks fencing-protocol classes (WriteAheadLog and any
        vendored twin): the protocol-order rule scopes to these."""
        return "check_fence" in self.methods


@dataclass
class CallSite:
    """One call expression inside a function, with its resolution."""

    call: ast.Call
    lineno: int
    col: int
    chain: Tuple[str, ...]
    kind: str = "direct"  # direct | executor | constructor
    callee: Optional[str] = None  #: resolved function qname
    ctor_class: Optional[str] = None  #: class qname for constructor sites
    #: inferred type of the receiver (``x`` in ``x.m()``), when known
    receiver_type: Optional[str] = None


@dataclass
class ModuleInfo:
    """Per-module symbol context the rules also consult."""

    source: SourceModule
    #: imported name -> fully dotted target (symbol or module)
    imports: Dict[str, str] = field(default_factory=dict)
    np_aliases: Set[str] = field(default_factory=lambda: {"numpy", "np"})
    time_aliases: Set[str] = field(default_factory=lambda: {"time"})
    #: names bound by ``from time import perf_counter [as pc]``
    wall_clock_names: Set[str] = field(default_factory=set)


class CallGraph:
    """The whole-repo symbol tables + resolved call sites.

    Build with :meth:`build`; the flow engine then walks
    :attr:`calls` (per-function call sites) and :attr:`functions`.
    """

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.calls: Dict[str, List[CallSite]] = {}
        #: callee qname -> [(caller qname, CallSite), ...]
        self.callers: Dict[str, List[Tuple[str, CallSite]]] = {}

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, sources: Sequence[SourceModule]) -> "CallGraph":
        graph = cls()
        for src in sources:
            if not src.ok or src.module is None:
                continue
            graph._collect_module(src)
        for info in graph.classes.values():
            graph._infer_attr_types(info)
        for fn in graph.functions.values():
            graph._resolve_function(fn)
        return graph

    # -- pass 1: symbols ----------------------------------------------
    def _collect_module(self, src: SourceModule) -> None:
        mod = ModuleInfo(source=src)
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    mod.imports[bound] = (alias.name if alias.asname
                                          else alias.name.split(".")[0])
                    if alias.name == "numpy":
                        mod.np_aliases.add(alias.asname or "numpy")
                    elif alias.name == "time":
                        mod.time_aliases.add(alias.asname or "time")
            elif isinstance(node, ast.ImportFrom):
                if node.module is None or node.level:
                    continue  # relative imports: not used in this repo
                for alias in node.names:
                    bound = alias.asname or alias.name
                    mod.imports[bound] = f"{node.module}.{alias.name}"
                if node.module == "time":
                    for alias in node.names:
                        if alias.name in WALL_CLOCK_FUNCS:
                            mod.wall_clock_names.add(alias.asname or alias.name)
        self.modules[src.module] = mod
        self._collect_scope(src, src.tree.body, src.module, None)

    def _collect_scope(self, src: SourceModule, body: Iterable[ast.stmt],
                       prefix: str, class_qname: Optional[str]) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qname = f"{prefix}.{node.name}"
                info = FunctionInfo(
                    qname=qname, module=src.module, path=src.path,
                    name=node.name, node=node,
                    is_async=isinstance(node, ast.AsyncFunctionDef),
                    lineno=node.lineno, class_qname=class_qname,
                )
                # last definition wins (same-name redefinitions are
                # rare and benign for analysis purposes)
                self.functions[qname] = info
                if class_qname is not None:
                    self.classes[class_qname].methods[node.name] = qname
                # nested defs: functions only — a method's local helper
                # is registered but carries no class binding
                self._collect_scope(src, node.body, qname, None)
            elif isinstance(node, ast.ClassDef):
                qname = f"{prefix}.{node.name}"
                self.classes[qname] = ClassInfo(
                    qname=qname, module=src.module, path=src.path,
                    name=node.name, node=node,
                )
                self._collect_scope(src, node.body, qname, qname)
            elif isinstance(node, (ast.If, ast.Try, ast.With, ast.AsyncWith,
                                   ast.For, ast.AsyncFor, ast.While)):
                # conditionally defined symbols still count
                for block in self._stmt_blocks(node):
                    self._collect_scope(src, block, prefix, class_qname)

    @staticmethod
    def _stmt_blocks(node: ast.stmt) -> List[List[ast.stmt]]:
        blocks = []
        for fname in ("body", "orelse", "finalbody"):
            block = getattr(node, fname, None)
            if block:
                blocks.append(block)
        for handler in getattr(node, "handlers", []) or []:
            blocks.append(handler.body)
        return blocks

    # -- pass 2: attribute types --------------------------------------
    def _infer_attr_types(self, info: ClassInfo) -> None:
        mod = self.modules.get(info.module)
        if mod is None:
            return
        for mname, fq in info.methods.items():
            fn = self.functions.get(fq)
            if fn is None:
                continue
            locals_ = self._local_types(fn, mod, info)
            for node in ast.walk(fn.node):
                targets: List[Tuple[ast.AST, ast.AST]] = []
                if isinstance(node, ast.Assign):
                    targets = [(t, node.value) for t in node.targets]
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    targets = [(node.target, node.value)]
                for target, value in targets:
                    if (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"):
                        typ = self._expr_type(value, mod, locals_, info)
                        if typ is not None:
                            # a known class beats a pseudo-type beats
                            # nothing; first known-class wins otherwise
                            cur = info.attr_types.get(target.attr)
                            if cur is None or (cur in (FILE_TYPE,)
                                               and typ in self.classes):
                                info.attr_types[target.attr] = typ

    # -- pass 3: call resolution --------------------------------------
    def _resolve_function(self, fn: FunctionInfo) -> None:
        mod = self.modules.get(fn.module)
        if mod is None:
            self.calls[fn.qname] = []
            return
        cls = self.classes.get(fn.class_qname) if fn.class_qname else None
        fn.local_types = self._local_types(fn, mod, cls)
        sites: List[CallSite] = []
        for node in self._own_nodes(fn.node):
            if not isinstance(node, ast.Call):
                continue
            chain = attr_chain(node.func)
            site = CallSite(call=node, lineno=node.lineno,
                            col=node.col_offset, chain=chain)
            self._classify(site, fn, mod, cls)
            sites.append(site)
            # dispatch-style calls additionally create an executor edge
            # to the function they ship to a worker thread
            target = self._dispatch_target(node, chain, fn, mod, cls)
            if target is not None:
                tchain = attr_chain(target)
                tsite = CallSite(call=node, lineno=node.lineno,
                                 col=node.col_offset, chain=tchain,
                                 kind="executor")
                callee, ctor = self._resolve_chain(tchain, fn, mod, cls)
                tsite.callee, tsite.ctor_class = callee, ctor
                sites.append(tsite)
        sites.sort(key=lambda s: (s.lineno, s.col))
        self.calls[fn.qname] = sites
        for site in sites:
            if site.callee is not None:
                self.callers.setdefault(site.callee, []).append(
                    (fn.qname, site)
                )

    def _own_nodes(self, func_node: ast.AST) -> Iterable[ast.AST]:
        """Walk a function's body without descending into nested
        function/class definitions (those are separate graph nodes)."""
        stack: List[ast.AST] = list(ast.iter_child_nodes(func_node))[::-1]
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef, ast.Lambda)):
                continue
            stack.extend(list(ast.iter_child_nodes(node))[::-1])

    def _classify(self, site: CallSite, fn: FunctionInfo,
                  mod: ModuleInfo, cls: Optional[ClassInfo]) -> None:
        callee, ctor = self._resolve_chain(site.chain, fn, mod, cls)
        site.callee, site.ctor_class = callee, ctor
        if ctor is not None:
            site.kind = "constructor"
        if len(site.chain) >= 2:
            site.receiver_type = self._chain_type(
                site.chain[:-1], fn, mod, cls
            )

    def _dispatch_target(self, call: ast.Call, chain: Tuple[str, ...],
                         fn: FunctionInfo, mod: ModuleInfo,
                         cls: Optional[ClassInfo]) -> Optional[ast.AST]:
        """The function expression a thread-dispatch call ships off the
        event loop, or ``None``: ``run_in_executor(executor, FN, ...)``,
        ``asyncio.to_thread(FN, ...)``, ``executor.submit(FN, ...)``."""
        if not chain:
            return None
        if chain[-1] == "run_in_executor" and len(call.args) >= 2:
            return call.args[1]
        if chain[-1] == "to_thread" and call.args:
            return call.args[0]
        if chain[-1] == "submit" and len(chain) >= 2 and call.args:
            recv = self._chain_type(chain[:-1], fn, mod, cls)
            if recv in EXECUTOR_CLASSES:
                return call.args[0]
        return None

    # -- type/symbol machinery ----------------------------------------
    def _local_types(self, fn: FunctionInfo, mod: ModuleInfo,
                     cls: Optional[ClassInfo]) -> Dict[str, str]:
        """Forward pass over the function body: parameter annotations,
        ``v = Expr``, ``with Expr as v`` — enough for the receivers the
        rules care about."""
        types: Dict[str, str] = {}
        args = fn.node.args
        for param in args.posonlyargs + args.args + args.kwonlyargs:
            if param.annotation is not None:
                typ = self._annotation_type(param.annotation, mod)
                if typ is not None:
                    types[param.arg] = typ
        for node in self._own_nodes(fn.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                typ = self._expr_type(node.value, mod, types, cls)
                if typ is not None:
                    types[node.targets[0].id] = typ
                else:
                    types.pop(node.targets[0].id, None)
            elif isinstance(node, ast.AnnAssign) \
                    and isinstance(node.target, ast.Name):
                typ = None
                if node.value is not None:
                    typ = self._expr_type(node.value, mod, types, cls)
                if typ is None:
                    typ = self._annotation_type(node.annotation, mod)
                if typ is not None:
                    types[node.target.id] = typ
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if isinstance(item.optional_vars, ast.Name):
                        typ = self._expr_type(
                            item.context_expr, mod, types, cls
                        )
                        if typ is not None:
                            types[item.optional_vars.id] = typ
        return types

    def _annotation_type(self, ann: ast.AST, mod: ModuleInfo) -> Optional[str]:
        """``ServiceCore`` / ``Optional[ServiceCore]`` /
        ``"ServiceCore"`` → resolved class qname (or executor name)."""
        if isinstance(ann, ast.Subscript):
            # Optional[X] / List[X]: look inside
            return self._annotation_type(ann.slice, mod)
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            name = ann.value.split(".")[-1].strip()
            return self._named_type(name, mod)
        if isinstance(ann, ast.Name):
            return self._named_type(ann.id, mod)
        if isinstance(ann, ast.Attribute):
            chain = attr_chain(ann)
            if chain:
                return self._named_type(chain[-1], mod,
                                        dotted=".".join(chain))
        return None

    def _named_type(self, name: str, mod: ModuleInfo,
                    dotted: Optional[str] = None) -> Optional[str]:
        if name in EXECUTOR_CLASSES:
            return name
        target = mod.imports.get(name, dotted or name)
        if target in self.classes:
            return target
        # same-module class referenced by bare name
        local = f"{mod.source.module}.{name}"
        if local in self.classes:
            return local
        return None

    def _expr_type(self, expr: ast.AST, mod: ModuleInfo,
                   locals_: Dict[str, str],
                   cls: Optional[ClassInfo]) -> Optional[str]:
        if isinstance(expr, ast.Call):
            chain = attr_chain(expr.func)
            if chain == ("open",):
                return FILE_TYPE
            if chain:
                if chain[-1] in EXECUTOR_CLASSES:
                    return chain[-1]
                resolved = self._lookup_symbol(chain, mod)
                if resolved in self.classes:
                    return resolved
            return None
        if isinstance(expr, ast.Name):
            if expr.id in locals_:
                return locals_[expr.id]
            return None
        if isinstance(expr, ast.Attribute):
            chain = attr_chain(expr)
            if chain:
                return self._chain_type_with(chain, mod, locals_, cls)
            return None
        if isinstance(expr, ast.IfExp):
            return (self._expr_type(expr.body, mod, locals_, cls)
                    or self._expr_type(expr.orelse, mod, locals_, cls))
        if isinstance(expr, ast.BoolOp):
            for value in expr.values:
                typ = self._expr_type(value, mod, locals_, cls)
                if typ is not None:
                    return typ
        if isinstance(expr, ast.Await):
            return self._expr_type(expr.value, mod, locals_, cls)
        return None

    def _lookup_symbol(self, chain: Tuple[str, ...],
                       mod: ModuleInfo) -> Optional[str]:
        """Resolve a dotted name through the module's imports to a
        known class/function qname (``ServiceCore`` → class;
        ``wal.WriteAheadLog`` via ``import ... as wal`` → class)."""
        head = mod.imports.get(chain[0])
        candidates = []
        if head is not None:
            candidates.append(".".join((head,) + chain[1:]))
        candidates.append(f"{mod.source.module}." + ".".join(chain))
        for cand in candidates:
            if cand in self.classes or cand in self.functions:
                return cand
        return None

    def _chain_type(self, chain: Tuple[str, ...], fn: FunctionInfo,
                    mod: ModuleInfo,
                    cls: Optional[ClassInfo]) -> Optional[str]:
        return self._chain_type_with(chain, mod, fn.local_types, cls)

    def _chain_type_with(self, chain: Tuple[str, ...], mod: ModuleInfo,
                         locals_: Dict[str, str],
                         cls: Optional[ClassInfo]) -> Optional[str]:
        """The type of ``a.b.c`` (a value chain, no trailing call):
        root from ``self``/locals, then attribute-type hops."""
        if not chain:
            return None
        if chain[0] == "self" and cls is not None:
            cur: Optional[str] = cls.qname
            rest = chain[1:]
        elif chain[0] in locals_:
            cur = locals_[chain[0]]
            rest = chain[1:]
        else:
            return None
        for attr in rest:
            info = self.classes.get(cur) if cur else None
            if info is None:
                return None
            cur = info.attr_types.get(attr)
            if cur is None:
                return None
        return cur

    def _resolve_chain(
        self, chain: Tuple[str, ...], fn: FunctionInfo, mod: ModuleInfo,
        cls: Optional[ClassInfo],
    ) -> Tuple[Optional[str], Optional[str]]:
        """Resolve a called chain to ``(function qname, ctor class)``
        (one of the two, or neither)."""
        if not chain:
            return None, None
        # method on self / a typed receiver: type the receiver prefix,
        # then look the final segment up in its method table
        if len(chain) >= 2:
            recv = self._chain_type(chain[:-1], fn, mod, cls)
            if recv is not None:
                info = self.classes.get(recv)
                if info is not None:
                    target = info.methods.get(chain[-1])
                    if target is not None:
                        return target, None
                return None, None
        resolved = self._lookup_symbol(chain, mod)
        if resolved is None:
            return None, None
        if resolved in self.classes:
            init = self.classes[resolved].methods.get("__init__")
            return init, resolved
        return resolved, None
