"""``python -m repro.sanitize`` — run lint (Layer 2) and flow
(Layer 3) together over the same paths, sharing one parse per file
through the process-wide AST cache.  Exit 1 when either layer finds
anything."""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.sanitize.astcache import GLOBAL_CACHE, iter_python_files
from repro.sanitize import lint
from repro.sanitize.flow import cli as flow_cli


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run both layers over the same parse cache; exit 1 on findings."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.sanitize",
        description="Combined static analysis: lexical lint "
                    "(R001-R006) + interprocedural flow (F101-F104), "
                    "one parse per file",
    )
    parser.add_argument("paths", nargs="+",
                        help="files or directories to analyze")
    parser.add_argument("--baseline", default=None,
                        help="flow suppression baseline JSON")
    opts = parser.parse_args(argv)
    files = iter_python_files(opts.paths)
    lint_findings = lint.lint_paths(opts.paths, cache=GLOBAL_CACHE)
    print(lint.render_text(lint_findings, len(files)))
    flow_args = list(opts.paths)
    if opts.baseline:
        flow_args += ["--baseline", opts.baseline]
    flow_rc = flow_cli.main(flow_args)
    cached = GLOBAL_CACHE.hits
    print(f"ast-cache: {GLOBAL_CACHE.misses} parse(s), "
          f"{cached} reuse(s)")
    return 1 if (lint_findings or flow_rc) else 0


if __name__ == "__main__":
    sys.exit(main())
