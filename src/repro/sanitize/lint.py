"""AST-based repo linter: the determinism/lifecycle invariants the
simulation's bit-identity guarantees rest on (Layer 2 of
:mod:`repro.sanitize`).

Run as ``python -m repro.sanitize.lint src/ tests/``; exits 0 on a
clean tree and 1 when any finding survives.  Rules:

====  ==============================================================
R001  No raw wall-clock (``time.time``/``perf_counter``/...) inside
      ``repro/bc`` or ``repro/gpu`` — simulated time must flow
      through ``CostModel``; wall timing belongs in
      ``repro.utils.timing.WallTimer`` callers outside the kernels.
R002  No module-level / unseeded ``np.random.*``: the legacy global
      API is banned everywhere, and RNG constructors must receive an
      explicit seed or Generator (``repro.utils.prng.default_rng``).
R003  Every ``ShmArena``/``SharedMemory``/``ResultSlabs`` creation
      must be lexically paired with a ``close``/``unlink`` path (or a
      ``with`` block) in its enclosing function/class/module;
      importing raw ``multiprocessing.shared_memory`` is banned
      outside ``parallel/shm.py``.
R004  No bare ``except:`` and no ``except Exception: pass`` in
      ``resilience/`` and ``parallel/`` — swallowed failures defeat
      the supervision/transaction layers (use
      ``contextlib.suppress`` to make best-effort teardown explicit).
R005  Kernel functions in ``bc/`` taking an ``acc`` accountant must
      charge it (call a method on ``acc`` or pass it onward) before
      returning, so no kernel escapes the cost model.
R006  No non-atomic write-mode ``open()`` in ``resilience/`` and
      ``service/`` — durable artifacts must go through
      ``repro.utils.atomicio.atomic_write`` (or the equivalent inline
      tmp + ``os.replace`` pattern) so a crash can never leave a
      truncated file.  ``resilience/faults.py`` (deliberate
      corruption) and ``resilience/wal.py`` (the append-only journal
      is its own durability mechanism) are exempt.
====  ==============================================================

Architecture: every file is parsed **once** (through the shared
:mod:`repro.sanitize.astcache`, so a combined run with the flow
analyzer also shares trees) and walked **once** — a single
:class:`_Walker` maintains the shared traversal context (import
aliases, the scope stack, ``with`` nesting) and fans each AST event
out to one visitor object per rule.  Adding a rule adds a class, not
a parse or a traversal, so lint wall time stays flat as the rule set
grows.

A finding on a line carrying ``# sanitize: ignore[RNNN]`` (comma list
allowed) is suppressed; the shipped tree carries no ignores — add a
justification comment next to any you introduce.
"""

from __future__ import annotations

import argparse
import ast
import json
import re
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.sanitize.astcache import (
    AstCache,
    GLOBAL_CACHE,
    SourceModule,
    iter_python_files,
    parse_source,
)

#: schema version of the ``--format json`` document
LINT_VERSION = 1

#: rule code → (summary, fix-it hint)
RULES: Dict[str, Tuple[str, str]] = {
    "R001": (
        "raw wall-clock read in simulated-kernel code",
        "route simulated time through CostModel; if you need wall "
        "time, use repro.utils.timing.WallTimer outside bc/ and gpu/",
    ),
    "R002": (
        "module-level or unseeded numpy RNG",
        "take an explicit seed or np.random.Generator argument and "
        "build it with repro.utils.prng.default_rng(seed)",
    ),
    "R003": (
        "shared-memory lifecycle hazard",
        "pair the creation with close()/unlink() in the same "
        "function/class (or use a with-block), and go through "
        "repro.parallel.shm instead of multiprocessing.shared_memory",
    ),
    "R004": (
        "silently swallowed exception in a resilience-critical layer",
        "catch the narrowest exception you can handle, or make "
        "best-effort teardown explicit with contextlib.suppress(...)",
    ),
    "R005": (
        "kernel function never charges its accountant",
        "call a method on `acc` (acc.sp_level/acc.dep_level/...) or "
        "pass `acc` to a helper that does, before returning",
    ),
    "R006": (
        "non-atomic write to a durable path",
        "write through repro.utils.atomicio.atomic_write (or an "
        "inline tmp-file + os.replace) so readers never observe a "
        "torn file after a crash",
    ),
}

#: legacy global-RNG attributes always banned (non-exhaustive ban is
#: fine: anything not in the constructor allow-list is flagged)
_RNG_CONSTRUCTORS = {
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
}

_WALL_CLOCK_FUNCS = {"time", "perf_counter", "perf_counter_ns",
                     "monotonic", "monotonic_ns", "process_time",
                     "process_time_ns"}

_PRAGMA = re.compile(r"#\s*sanitize:\s*ignore\[([A-Z0-9,\s]+)\]")


@dataclass(frozen=True)
class LintFinding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    @property
    def hint(self) -> str:
        """The rule's fix-it hint."""
        return RULES[self.rule][1]

    def to_dict(self) -> dict:
        """JSON-ready representation (``--format json`` schema)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "summary": RULES[self.rule][0],
            "message": self.message,
            "hint": self.hint,
        }

    def render(self) -> str:
        """One ``path:line:col: RULE message`` block with the fix-it."""
        return (f"{self.path}:{self.line}:{self.col}: {self.rule} "
                f"{self.message}\n    fix-it: {self.hint}")

    def sort_key(self) -> tuple:
        """Stable output order: location first, then rule/message."""
        return (self.path, self.line, self.col, self.rule, self.message)


def _norm(path: str) -> str:
    """Slash-normalized path with a leading separator so directory
    membership tests are unambiguous substring checks."""
    return "/" + str(path).replace("\\", "/").lstrip("/")


def _in_kernel_tree(path: str) -> bool:
    p = _norm(path)
    return "/repro/bc/" in p or "/repro/gpu/" in p


def _in_resilient_tree(path: str) -> bool:
    p = _norm(path)
    return "/repro/resilience/" in p or "/repro/parallel/" in p


def _is_shm_module(path: str) -> bool:
    return _norm(path).endswith("/parallel/shm.py")


def _in_durable_tree(path: str) -> bool:
    """R006 scope: the layers whose on-disk artifacts a crash must not
    corrupt.  ``faults.py`` exists to corrupt files and ``wal.py``'s
    append-only segments get durability from CRC + torn-tail truncation
    rather than rename, so both are exempt."""
    p = _norm(path)
    if p.endswith("/resilience/faults.py") or p.endswith("/resilience/wal.py"):
        return False
    return "/repro/resilience/" in p or "/repro/service/" in p


def _attr_chain(node: ast.AST) -> List[str]:
    """``a.b.c`` → ``["a", "b", "c"]``; empty when not a pure chain."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return parts[::-1]
    return []


# ----------------------------------------------------------------------
# shared traversal context + per-rule visitors
# ----------------------------------------------------------------------
class LintContext:
    """Everything the rule visitors share for one file: the reporting
    path, the import alias maps, the lexical scope stack and the
    ``with`` nesting depth.  Maintained by :class:`_Walker`; rules only
    read it and call :meth:`flag`."""

    def __init__(self, path: str, tree: ast.Module) -> None:
        self.path = path
        self.findings: List[LintFinding] = []
        self.numpy_aliases: Set[str] = {"numpy", "np"}
        self.time_aliases: Set[str] = {"time"}
        #: names bound by ``from time import perf_counter [as pc]``
        self.wall_clock_names: Set[str] = set()
        #: stack of (module | class | function) nodes, outermost first
        self.scopes: List[ast.AST] = [tree]
        #: with-statement nesting: creations inside one are managed
        self.with_depth = 0

    def flag(self, node: ast.AST, rule: str, message: str) -> None:
        """Record one finding at *node*'s position."""
        self.findings.append(LintFinding(
            path=self.path, line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1, rule=rule,
            message=message,
        ))


class LintRule:
    """Base class for one rule family: per-event hooks, all no-ops.
    One instance is created per file, so rules may keep per-file
    state."""

    codes: Tuple[str, ...] = ()

    def on_import(self, ctx: LintContext, node: ast.Import) -> None:
        """Called for every ``import X`` statement."""

    def on_import_from(self, ctx: LintContext,
                       node: ast.ImportFrom) -> None:
        """Called for every ``from X import Y`` statement."""

    def on_call(self, ctx: LintContext, node: ast.Call,
                chain: List[str]) -> None:
        """Called for every call, with the dotted name *chain*."""

    def on_except(self, ctx: LintContext,
                  node: ast.ExceptHandler) -> None:
        """Called for every ``except`` handler."""

    def on_function(self, ctx: LintContext, node: ast.AST) -> None:
        """Called for every (async) function def before descending."""


class R001WallClock(LintRule):
    codes = ("R001",)

    def on_call(self, ctx, node, chain):
        """Flag raw wall-clock reads inside kernel code."""
        if not _in_kernel_tree(ctx.path):
            return
        if (len(chain) == 2 and chain[0] in ctx.time_aliases
                and chain[1] in _WALL_CLOCK_FUNCS):
            ctx.flag(node, "R001", f"`{'.'.join(chain)}()` in kernel code")
        elif len(chain) == 1 and chain[0] in ctx.wall_clock_names:
            ctx.flag(node, "R001", f"`{chain[0]}()` in kernel code")


class R002Rng(LintRule):
    codes = ("R002",)

    def on_call(self, ctx, node, chain):
        """Flag unseeded or legacy-global numpy RNG constructors."""
        if len(chain) != 3 or chain[1] != "random":
            return
        if chain[0] not in ctx.numpy_aliases:
            return
        name = chain[2]
        if name in _RNG_CONSTRUCTORS:
            if not node.args and not node.keywords:
                ctx.flag(node, "R002",
                         f"`{'.'.join(chain)}()` without an explicit "
                         f"seed draws OS entropy")
            return
        ctx.flag(node, "R002",
                 f"legacy global-state RNG call `{'.'.join(chain)}`")


class R003ShmLifecycle(LintRule):
    codes = ("R003",)

    def on_import(self, ctx, node):
        """Flag raw shared_memory imports outside parallel/shm.py."""
        for alias in node.names:
            if alias.name.startswith("multiprocessing.shared_memory"):
                if not _is_shm_module(ctx.path):
                    ctx.flag(node, "R003",
                             "raw multiprocessing.shared_memory import "
                             "outside parallel/shm.py")

    def on_import_from(self, ctx, node):
        """Flag raw shared_memory from-imports outside parallel/shm.py."""
        if node.module == "multiprocessing.shared_memory" or (
            node.module == "multiprocessing"
            and any(a.name == "shared_memory" for a in node.names)
        ):
            if not _is_shm_module(ctx.path):
                ctx.flag(node, "R003",
                         "raw multiprocessing.shared_memory import "
                         "outside parallel/shm.py")

    def on_call(self, ctx, node, chain):
        """Flag arena/segment creation with no release path in scope."""
        name = chain[-1] if chain else ""
        if name not in ("ShmArena", "SharedMemory", "ResultSlabs"):
            return
        if ctx.with_depth > 0:
            return  # context-managed: lifecycle is structural
        # Widening search: function -> class -> module.  A method may
        # hand the segment to the instance (release in a sibling
        # method), and a factory helper may hand it to a module-level
        # destructor.
        if not any(_scope_releases(s) for s in reversed(ctx.scopes)):
            ctx.flag(node, "R003",
                     f"`{name}(...)` has no close()/unlink() path in "
                     f"its enclosing scope")


class R004SwallowedException(LintRule):
    codes = ("R004",)

    def on_except(self, ctx, node):
        """Flag bare/blanket handlers that swallow failures silently."""
        if not _in_resilient_tree(ctx.path):
            return
        if node.type is None:
            ctx.flag(node, "R004", "bare `except:` clause")
        elif (
            isinstance(node.type, ast.Name)
            and node.type.id in ("Exception", "BaseException")
            and all(isinstance(stmt, ast.Pass) for stmt in node.body)
        ):
            ctx.flag(node, "R004",
                     f"`except {node.type.id}: pass` swallows "
                     f"failures silently")


class R005Accountant(LintRule):
    codes = ("R005",)

    def on_function(self, ctx, node):
        if "/repro/bc/" not in _norm(ctx.path):
            return
        args = node.args
        names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        if "acc" not in names:
            return
        if not _charges_accountant(node):
            ctx.flag(node, "R005",
                     f"kernel `{node.name}` takes `acc` but never "
                     f"charges it")


class R006DurableWrite(LintRule):
    codes = ("R006",)

    def on_call(self, ctx, node, chain):
        """Flag durable-tree writes with no atomic-rename path in scope."""
        if chain != ["open"] or not _in_durable_tree(ctx.path):
            return
        mode = _open_mode(node)
        if mode is None or not any(c in mode for c in "wxa"):
            return  # read mode, or dynamic mode we can't judge
        # The same widening search R003 uses: the atomic rename (or the
        # atomic_write helper wrapping it) may live anywhere in the
        # enclosing function/class/module.
        if any(_scope_writes_atomically(s) for s in reversed(ctx.scopes)):
            return
        ctx.flag(node, "R006",
                 f"`open(..., {mode!r})` writes a durable path "
                 f"without an atomic-rename path in scope")


#: the registered rule families, instantiated fresh per file
RULE_VISITORS = (
    R001WallClock,
    R002Rng,
    R003ShmLifecycle,
    R004SwallowedException,
    R005Accountant,
    R006DurableWrite,
)


class _Walker(ast.NodeVisitor):
    """The single traversal driver: updates the shared context and
    fans each event out to every rule visitor."""

    def __init__(self, path: str, tree: ast.Module,
                 rules: Sequence[LintRule]) -> None:
        self.ctx = LintContext(path, tree)
        self.rules = list(rules)

    # -- imports (context first, then rules) ---------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "numpy":
                self.ctx.numpy_aliases.add(alias.asname or "numpy")
            elif alias.name == "time":
                self.ctx.time_aliases.add(alias.asname or "time")
        for rule in self.rules:
            rule.on_import(self.ctx, node)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "time":
            for alias in node.names:
                if alias.name in _WALL_CLOCK_FUNCS:
                    self.ctx.wall_clock_names.add(alias.asname or alias.name)
        for rule in self.rules:
            rule.on_import_from(self.ctx, node)
        self.generic_visit(node)

    # -- scope tracking ------------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._handle_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._handle_function(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.ctx.scopes.append(node)
        self.generic_visit(node)
        self.ctx.scopes.pop()

    def _handle_function(self, node) -> None:
        for rule in self.rules:
            rule.on_function(self.ctx, node)
        self.ctx.scopes.append(node)
        self.generic_visit(node)
        self.ctx.scopes.pop()

    def visit_With(self, node: ast.With) -> None:
        self.ctx.with_depth += 1
        self.generic_visit(node)
        self.ctx.with_depth -= 1

    # -- events --------------------------------------------------------
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        for rule in self.rules:
            rule.on_except(self.ctx, node)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        chain = _attr_chain(node.func)
        for rule in self.rules:
            rule.on_call(self.ctx, node, chain)
        self.generic_visit(node)


def _scope_releases(scope: ast.AST) -> bool:
    """True when *scope* lexically contains a ``.close()``/``.unlink()``
    call — the pairing R003 requires."""
    for sub in ast.walk(scope):
        if (isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in ("close", "unlink")):
            return True
    return False


def _open_mode(node: ast.Call) -> Optional[str]:
    """The literal mode string of an ``open(...)`` call, or ``None``
    when absent / not a constant (absent means ``"r"`` — safe)."""
    mode: Optional[ast.AST] = None
    if len(node.args) >= 2:
        mode = node.args[1]
    for kw in node.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if mode is None:
        return None
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return "w"  # dynamic mode expression: assume the worst


def _scope_writes_atomically(scope: ast.AST) -> bool:
    """True when *scope* lexically contains an ``os.replace``/``os.rename``
    call or uses the ``atomic_write`` helper — the pairing R006 requires
    for a write-mode ``open`` on a durable path."""
    for sub in ast.walk(scope):
        if not isinstance(sub, ast.Call):
            continue
        chain = _attr_chain(sub.func)
        if chain and chain[-1] in ("replace", "rename") and len(chain) >= 2:
            return True
        if chain and chain[-1] == "atomic_write":
            return True
    return False


def _charges_accountant(func: ast.AST) -> bool:
    """True when the function calls a method rooted at ``acc`` or
    passes ``acc`` (positionally or by keyword) to another call."""
    for sub in ast.walk(func):
        if not isinstance(sub, ast.Call):
            continue
        chain = _attr_chain(sub.func)
        if len(chain) >= 2 and chain[0] == "acc":
            return True
        for arg in list(sub.args) + [kw.value for kw in sub.keywords]:
            if isinstance(arg, ast.Name) and arg.id == "acc":
                return True
    return False


# ----------------------------------------------------------------------
def _suppressed(source_lines: Sequence[str], finding: LintFinding) -> bool:
    if not 1 <= finding.line <= len(source_lines):
        return False
    match = _PRAGMA.search(source_lines[finding.line - 1])
    if not match:
        return False
    codes = {c.strip() for c in match.group(1).split(",")}
    return finding.rule in codes


def lint_module(mod: SourceModule) -> List[LintFinding]:
    """Run every rule over one pre-parsed module in a single walk."""
    if not mod.ok:
        exc = mod.error
        return [LintFinding(path=mod.path, line=exc.lineno or 1,
                            col=(exc.offset or 0) + 1, rule="R001",
                            message=f"unparseable source: {exc.msg}")]
    walker = _Walker(mod.path, mod.tree, [cls() for cls in RULE_VISITORS])
    walker.visit(mod.tree)
    return sorted(
        (f for f in walker.ctx.findings if not _suppressed(mod.lines, f)),
        key=LintFinding.sort_key,
    )


def lint_source(source: str, path: str) -> List[LintFinding]:
    """Lint Python *source*, scoping path-dependent rules by *path*
    (which may be virtual — the tests lint snippets under synthetic
    paths like ``src/repro/bc/mod.py``)."""
    return lint_module(parse_source(source, path))


def lint_file(path, virtual_path: Optional[str] = None,
              cache: Optional[AstCache] = None) -> List[LintFinding]:
    """Lint one file through the shared parse cache; *virtual_path*
    overrides the path used for rule scoping and reporting."""
    cache = cache if cache is not None else GLOBAL_CACHE
    return lint_module(cache.get(path, virtual_path=virtual_path))


def lint_paths(paths: Sequence[str],
               cache: Optional[AstCache] = None) -> List[LintFinding]:
    """Lint every Python file under *paths*, sorted and deduplicated
    by location.  Passing the same *cache* to the flow analyzer makes
    a combined run parse each file exactly once."""
    findings: List[LintFinding] = []
    for f in iter_python_files(paths):
        findings.extend(lint_file(f, cache=cache))
    return sorted(findings, key=LintFinding.sort_key)


def render_text(findings: Sequence[LintFinding], checked: int) -> str:
    """Human-readable report: one block per finding plus a status line."""
    lines = [f.render() for f in findings]
    status = "FAIL" if findings else "ok"
    lines.append(f"sanitize-lint: {status} — {len(findings)} finding(s) "
                 f"over {checked} file(s)")
    return "\n".join(lines)


def render_json(findings: Sequence[LintFinding], checked: int) -> str:
    """Stable machine-readable report (see ``LINT_VERSION``)."""
    return json.dumps({
        "version": LINT_VERSION,
        "ok": not findings,
        "files_checked": checked,
        "findings": [f.to_dict() for f in findings],
    }, indent=2)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns 1 when any finding survives, else 0."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.sanitize.lint",
        description="Determinism/lifecycle linter (rules R001-R006; "
                    "see docs/SANITIZER.md)",
    )
    parser.add_argument("paths", nargs="+",
                        help="files or directories to lint")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", dest="fmt",
                        help="output format (stable for tooling)")
    parser.add_argument("--output", default=None,
                        help="write the report here instead of stdout")
    opts = parser.parse_args(argv)
    files = iter_python_files(opts.paths)
    findings = lint_paths(opts.paths)
    rendered = (render_json if opts.fmt == "json" else render_text)(
        findings, len(files)
    )
    if opts.output:
        Path(opts.output).write_text(rendered + "\n", encoding="utf-8")
    else:
        print(rendered)
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
