"""Fig. 2 — distribution of update scenarios.

For every edge insertion, every source vertex faces exactly one of the
three cases of §II-D-1.  The paper reports, per graph, how the
``num_insertions x k`` scenarios distribute — finding Case 2 at 37.3%
of all scenarios and 73.5% of the work-requiring ones, which motivates
its focus on the Case-2 kernels.

This study only needs the classification, not the updates, so it runs
directly on the distance matrix via
:func:`repro.bc.cases.classify_insertion_batch` while a lightweight
engine replays the stream to keep distances current.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.analysis.config import ExperimentConfig
from repro.analysis.protocol import prepare_stream
from repro.bc.cases import classify_insertion_batch
from repro.bc.engine import DynamicBC


@dataclass
class ScenarioDistribution:
    """Per-graph scenario counts (rows of Fig. 2)."""

    graph_name: str
    counts: Dict[int, int]  # case number -> occurrences

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def fraction(self, case: int) -> float:
        """Share of all scenarios that fell into *case*."""
        return self.counts.get(case, 0) / self.total if self.total else 0.0

    @property
    def case2_share_of_work(self) -> float:
        """Case 2 as a share of scenarios that require work (2 and 3)."""
        work = self.counts.get(2, 0) + self.counts.get(3, 0)
        return self.counts.get(2, 0) / work if work else 0.0


def run_scenario_study(config: ExperimentConfig) -> List[ScenarioDistribution]:
    """Classify every (insertion, source) scenario for each suite graph."""
    results = []
    for name in config.graphs:
        bench, dyn, removed = prepare_stream(config, name)
        engine = DynamicBC.from_graph(
            dyn, num_sources=min(config.num_sources, dyn.num_vertices),
            backend="gpu-node", seed=config.seed + 23,
        )
        counts = {1: 0, 2: 0, 3: 0}
        for u, v in removed:
            cases = classify_insertion_batch(engine.state.d, int(u), int(v))
            for c, cnt in zip(*np.unique(cases, return_counts=True)):
                counts[int(c)] += int(cnt)
            engine.insert_edge(int(u), int(v))  # keep distances current
        results.append(ScenarioDistribution(graph_name=name, counts=counts))
    return results


def run_subcase_study(config: ExperimentConfig) -> Dict[str, Dict[str, int]]:
    """Finer-grained Fig. 2: the connected/disconnected sub-variants of
    Cases 1 and 3 the paper enumerates (§II-D-1).

    Returns graph name -> {subcase value -> count}.
    """
    from repro.bc.cases import classify_insertion_detailed

    out: Dict[str, Dict[str, int]] = {}
    for name in config.graphs:
        bench, dyn, removed = prepare_stream(config, name)
        engine = DynamicBC.from_graph(
            dyn, num_sources=min(config.num_sources, dyn.num_vertices),
            backend="gpu-node", seed=config.seed + 23,
        )
        counts: Dict[str, int] = {}
        for u, v in removed:
            for i in range(engine.state.num_sources):
                sub, _, _ = classify_insertion_detailed(
                    engine.state.d[i], int(u), int(v)
                )
                counts[sub.value] = counts.get(sub.value, 0) + 1
            engine.insert_edge(int(u), int(v))
        out[name] = counts
    return out


def aggregate(results: List[ScenarioDistribution]) -> ScenarioDistribution:
    """Pooled distribution across graphs (the paper's 37.3% / 73.5%
    figures are pooled this way)."""
    total = {1: 0, 2: 0, 3: 0}
    for r in results:
        for c, cnt in r.counts.items():
            total[c] = total.get(c, 0) + cnt
    return ScenarioDistribution(graph_name="ALL", counts=total)
