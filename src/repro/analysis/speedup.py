"""Tables II & III — dynamic GPU vs dynamic CPU, and update vs recompute.

* Table II: for each suite graph, total time of the insertion stream
  under the sequential CPU baseline and the two GPU strategies, with
  speedups relative to CPU.  The paper's headline: up to 110x (node),
  with edge-parallel between 1.03x and 20.6x.
* Table III: static edge-parallel GPU recomputation time vs the
  slowest / average / fastest single node-parallel update.  Headline:
  45x average across graphs, with fastest updates (all-Case-1
  insertions) bounded only by classification time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.analysis.config import ExperimentConfig
from repro.analysis.protocol import (
    StreamRun,
    compute_initial_state,
    replay_stream,
)
from repro.bc.static_gpu import static_bc_gpu
from repro.gpu.device import TESLA_C2075, DeviceSpec


@dataclass
class Table2Row:
    """One graph's CPU-vs-GPU comparison."""

    graph_name: str
    cpu_seconds: float
    edge_seconds: float
    node_seconds: float

    @property
    def edge_speedup(self) -> float:
        return self.cpu_seconds / self.edge_seconds if self.edge_seconds else 0.0

    @property
    def node_speedup(self) -> float:
        return self.cpu_seconds / self.node_seconds if self.node_seconds else 0.0


@dataclass
class Table3Row:
    """One graph's update-vs-recomputation comparison."""

    graph_name: str
    recompute_seconds: float
    slowest: float
    average: float
    fastest: float

    @property
    def slowest_speedup(self) -> float:
        return self.recompute_seconds / self.slowest if self.slowest else 0.0

    @property
    def average_speedup(self) -> float:
        return self.recompute_seconds / self.average if self.average else 0.0

    @property
    def fastest_speedup(self) -> float:
        return self.recompute_seconds / self.fastest if self.fastest else 0.0


def run_table2(
    config: ExperimentConfig, verify: bool = False
) -> List[Table2Row]:
    """Replay the identical stream under all three backends per graph.

    ``verify=True`` additionally checks every backend's final state
    against a scratch recomputation (the paper's §IV correctness
    protocol); costs one Brandes pass per (graph, backend).
    """
    rows = []
    for name in config.graphs:
        totals: Dict[str, float] = {}
        # The Brandes setup is backend-independent: compute it once per
        # graph and hand each backend a copy.
        state = compute_initial_state(config, name)
        for backend in ("cpu", "gpu-edge", "gpu-node"):
            run = replay_stream(config, name, backend=backend,
                                initial_state=state)
            if verify:
                run.engine.verify()
            totals[backend] = run.total_simulated
        rows.append(
            Table2Row(
                graph_name=name,
                cpu_seconds=totals["cpu"],
                edge_seconds=totals["gpu-edge"],
                node_seconds=totals["gpu-node"],
            )
        )
    return rows


def run_table3(
    config: ExperimentConfig,
    device: DeviceSpec = TESLA_C2075,
    runs: Optional[Dict[str, StreamRun]] = None,
) -> List[Table3Row]:
    """Node-parallel updates vs a static edge-parallel recomputation.

    Reuses ``runs`` (graph name -> node-backend StreamRun) when the
    caller already replayed the stream (e.g. Table II); otherwise
    replays it here.
    """
    rows = []
    for name in config.graphs:
        run = runs[name] if runs and name in runs else replay_stream(
            config, name, backend="gpu-node"
        )
        per_update = run.per_update_simulated
        # Static recomputation on the post-stream graph with the same
        # sources (the work a static framework would redo per update).
        static = static_bc_gpu(
            run.engine.graph.snapshot(),
            sources=run.engine.sources,
            strategy="gpu-edge",
        )
        recompute = static.timing(device).total_seconds
        rows.append(
            Table3Row(
                graph_name=name,
                recompute_seconds=recompute,
                slowest=float(per_update.max()),
                average=float(per_update.mean()),
                fastest=float(per_update.min()),
            )
        )
    return rows


@dataclass
class HeadlineSummary:
    """The abstract's headline numbers."""

    max_cpu_speedup: float  # paper: 110x (caida, node-parallel)
    mean_update_vs_recompute: float  # paper: 45x average


def summarize_headline(
    table2: List[Table2Row], table3: List[Table3Row]
) -> HeadlineSummary:
    """Aggregate the abstract's headline numbers from both tables."""
    return HeadlineSummary(
        max_cpu_speedup=max((r.node_speedup for r in table2), default=0.0),
        mean_update_vs_recompute=float(
            np.mean([r.average_speedup for r in table3]) if table3 else 0.0
        ),
    )
