"""Experiment drivers: one module per artifact of the paper's evaluation.

* :mod:`repro.analysis.blocks`    — Fig. 1 (thread-block sweep)
* :mod:`repro.analysis.scenarios` — Fig. 2 (Case 1/2/3 distribution)
* :mod:`repro.analysis.touched`   — Fig. 4 (touched fraction per Case 2)
* :mod:`repro.analysis.speedup`   — Tables II & III (CPU vs GPU, update
  vs recompute)
* :mod:`repro.analysis.report`    — plain-text rendering of all of them

Every driver takes an :class:`ExperimentConfig` and is fully seeded.
"""

from repro.analysis.config import ExperimentConfig
from repro.analysis.blocks import BlockSweepResult, run_block_sweep
from repro.analysis.scenarios import ScenarioDistribution, run_scenario_study
from repro.analysis.speedup import (
    Table2Row,
    Table3Row,
    run_table2,
    run_table3,
    summarize_headline,
)
from repro.analysis.scaling import (
    ScalingPoint,
    ScalingStudy,
    render_scaling,
    run_scaling_study,
)
from repro.analysis.touched import TouchedStudy, run_touched_study
from repro.analysis.waste import WasteStudy, render_waste, run_waste_study

__all__ = [
    "ExperimentConfig",
    "BlockSweepResult",
    "run_block_sweep",
    "ScenarioDistribution",
    "run_scenario_study",
    "Table2Row",
    "Table3Row",
    "run_table2",
    "run_table3",
    "summarize_headline",
    "TouchedStudy",
    "run_touched_study",
    "ScalingPoint",
    "ScalingStudy",
    "render_scaling",
    "run_scaling_study",
    "WasteStudy",
    "render_waste",
    "run_waste_study",
]
