"""Fig. 4 — portion of the graph touched per Case-2 scenario.

For each Case-2 occurrence the update marks a set of vertices
``t[v] != untouched``; the paper plots ``|touched| / n`` sorted
ascending and observes that the vast majority of scenarios touch a tiny
fraction (max ~35% across 62,844 scenarios) — the core argument for
work-efficient thread mapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.analysis.config import ExperimentConfig
from repro.analysis.protocol import replay_stream
from repro.bc.cases import Case


@dataclass
class TouchedStudy:
    """Sorted touched fractions for one graph's Case-2 scenarios."""

    graph_name: str
    fractions: np.ndarray  # sorted ascending, one entry per Case-2 scenario

    @property
    def count(self) -> int:
        return int(self.fractions.size)

    def percentile(self, q: float) -> float:
        """The q-th percentile of the touched fractions (0 if none)."""
        if self.fractions.size == 0:
            return 0.0
        return float(np.percentile(self.fractions, q))

    @property
    def max_fraction(self) -> float:
        return float(self.fractions[-1]) if self.fractions.size else 0.0


def run_touched_study(config: ExperimentConfig) -> List[TouchedStudy]:
    """Replay the protocol (node-parallel backend) and record the
    touched fraction of every Case-2 scenario per graph."""
    studies = []
    for name in config.graphs:
        run = replay_stream(config, name, backend="gpu-node")
        n = run.engine.graph.num_vertices
        fracs: List[float] = []
        for report in run.reports:
            mask = report.cases == int(Case.ADJACENT_LEVEL)
            fracs.extend((report.touched[mask] / n).tolist())
        studies.append(
            TouchedStudy(graph_name=name, fractions=np.sort(np.array(fracs)))
        )
    return studies
