"""Work-efficiency analysis: useful vs charged work per strategy.

§V's explanation of Table II: "the edge-based approach does not scale
well to larger graphs because the amount of unnecessary work that it
performs grows with the size of the graph", while the node-parallel
shortest-path stage "is perfectly work efficient" and its dependency
stage wastes only the level re-checks of the multi-level queue.

This driver replays one stream under every backend and reports, per
strategy, the charged work items, memory traffic, and the efficiency
ratio against the sequential baseline's useful work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.config import ExperimentConfig
from repro.analysis.protocol import compute_initial_state, replay_stream
from repro.utils.tables import format_table


@dataclass
class WasteRow:
    backend: str
    work_items: int
    bytes_moved: float
    atomic_ops: int
    efficiency: float  # useful work / charged work (1.0 = no waste)


@dataclass
class WasteStudy:
    graph_name: str
    useful_items: int
    rows: List[WasteRow]

    def by_backend(self) -> Dict[str, WasteRow]:
        """Rows keyed by backend name."""
        return {r.backend: r for r in self.rows}


def run_waste_study(
    config: ExperimentConfig,
    graph_name: str = "small",
    backends: tuple = ("cpu", "gpu-edge", "gpu-node"),
) -> WasteStudy:
    """Charged-work comparison over the identical stream.

    The CPU backend executes exactly the useful operations, so its item
    count is the efficiency denominator for the parallel strategies.
    """
    state = compute_initial_state(config, graph_name)
    runs = {
        b: replay_stream(config, graph_name, b, initial_state=state)
        for b in backends
    }
    useful = runs["cpu"].engine.counters.work_items if "cpu" in runs else 0
    rows = []
    for backend in backends:
        c = runs[backend].engine.counters
        rows.append(
            WasteRow(
                backend=backend,
                work_items=c.work_items,
                bytes_moved=c.bytes_moved,
                atomic_ops=c.atomic_ops,
                efficiency=(useful / c.work_items) if c.work_items else 0.0,
            )
        )
    return WasteStudy(graph_name=graph_name, useful_items=useful, rows=rows)


def render_waste(study: WasteStudy) -> str:
    """ASCII table of charged work/traffic/atomics per strategy."""
    table = [
        (
            r.backend,
            f"{r.work_items:,}",
            f"{r.bytes_moved / 1e6:,.1f}",
            f"{r.atomic_ops:,}",
            f"{r.efficiency:.1%}",
        )
        for r in study.rows
    ]
    return format_table(
        ["Backend", "Work items", "Traffic (MB)", "Atomics", "Efficiency"],
        table,
        title=(
            f"Work efficiency on '{study.graph_name}' "
            f"(useful items: {study.useful_items:,}; §V's wasted-work "
            "argument quantified)"
        ),
    )
