"""Fig. 1 — static-BC speedup vs. number of thread blocks.

The paper sweeps the grid size for an exact static BC computation on
three DIMACS graphs over two GPUs (GTX 560, 7 SMs; Tesla C2075, 14
SMs), concluding that one block per SM is optimal for these irregular
kernels: below that the machine is under-occupied, above it the memory
bus is already saturated.

We collect each source's cost trace once and *retime* it under each
grid size — the traces are grid-invariant (the work mapping does not
depend on the number of blocks), so this is exact, not an
approximation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.bc.static_gpu import StaticBCResult, static_bc_gpu
from repro.gpu.device import DeviceSpec, GTX_560, TESLA_C2075
from repro.graph.csr import CSRGraph
from repro.graph.suite import make_suite_graph
from repro.utils.prng import SeedLike


@dataclass
class BlockSweepResult:
    """Speedups relative to one thread block, per (graph, device)."""

    graph_name: str
    device_name: str
    block_counts: List[int]
    speedups: List[float]

    @property
    def best_blocks(self) -> int:
        return self.block_counts[int(np.argmax(self.speedups))]


#: the Fig. 1 graph trio: modest exact-BC-feasible inputs ("the largest
#: graphs that are still feasible for an exact computation")
FIG1_GRAPHS = ("caida", "small", "pref")


def sweep_blocks_for_graph(
    graph: CSRGraph,
    graph_name: str,
    devices: Sequence[DeviceSpec] = (GTX_560, TESLA_C2075),
    block_counts: Optional[Sequence[int]] = None,
    strategy: str = "gpu-edge",
    max_sources: int = 0,
) -> List[BlockSweepResult]:
    """Trace static BC once, then retime across grids and devices.

    ``max_sources`` truncates the exact computation for speed (0 = all
    n sources, as in the paper's exact sweep).
    """
    sources = None
    if max_sources and max_sources < graph.num_vertices:
        sources = range(max_sources)
    result: StaticBCResult = static_bc_gpu(graph, sources=sources, strategy=strategy)
    sweeps = []
    for device in devices:
        counts = (
            list(block_counts)
            if block_counts is not None
            else sorted({1, 2, 4, device.num_sms // 2, device.num_sms,
                         2 * device.num_sms, 3 * device.num_sms,
                         4 * device.num_sms} - {0})
        )
        base = result.timing(device, 1).total_seconds
        speedups = [base / result.timing(device, b).total_seconds for b in counts]
        sweeps.append(
            BlockSweepResult(
                graph_name=graph_name,
                device_name=device.name,
                block_counts=counts,
                speedups=speedups,
            )
        )
    return sweeps


def run_block_sweep(
    scale: float = 1.0,
    seed: SeedLike = 2014,
    graphs: Sequence[str] = FIG1_GRAPHS,
    devices: Sequence[DeviceSpec] = (GTX_560, TESLA_C2075),
    max_sources: int = 512,
) -> List[BlockSweepResult]:
    """The full Fig. 1 study over the suite's Fig.-1 trio."""
    out: List[BlockSweepResult] = []
    for name in graphs:
        bench = make_suite_graph(name, scale=scale, seed=seed)
        out.extend(
            sweep_blocks_for_graph(
                bench.graph, name, devices=devices, max_sources=max_sources
            )
        )
    return out
