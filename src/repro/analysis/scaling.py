"""Strong-scaling study across SM counts (paper §VI, future work).

"Further performance improvements can be attained with multi-GPU ...
implementations of this algorithm.  The vast amount of coarse-grained
parallelism that exists should allow for excellent strong scaling."

The coarse-grained parallelism is over source vertices, so a multi-GPU
(or bigger-GPU) deployment is modeled by scaling the SM count and
re-scheduling the same per-source work.  Efficiency is bounded by (a)
the source count k relative to the SM count and (b) the makespan skew
of heavy sources — both visible in the results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.analysis.config import ExperimentConfig
from repro.analysis.protocol import prepare_stream
from repro.bc.engine import DynamicBC
from repro.gpu.costmodel import CostModel
from repro.gpu.device import TESLA_C2075, DeviceSpec
from repro.gpu.executor import schedule_blocks


@dataclass
class ScalingPoint:
    num_sms: int
    seconds: float
    speedup: float     # vs the 1x-SM baseline
    efficiency: float  # speedup / (sms / base_sms)


@dataclass
class ScalingStudy:
    graph_name: str
    base_sms: int
    points: List[ScalingPoint]
    #: lower bound on any update's makespan: the heaviest single
    #: source's duration plus launch overheads (the critical path no
    #: amount of coarse-grained parallelism can shrink)
    critical_path_seconds: float = 0.0

    @property
    def max_speedup(self) -> float:
        return max(p.speedup for p in self.points)


def run_scaling_study(
    config: ExperimentConfig,
    graph_name: str = "small",
    sm_multipliers: Sequence[int] = (1, 2, 4, 8),
    base_device: DeviceSpec = TESLA_C2075,
) -> ScalingStudy:
    """Replay the stream once, collecting per-source simulated seconds,
    then re-schedule the identical work across growing machine sizes.

    The per-source *durations* are device-dependent only through the
    per-block bandwidth, which is unchanged when SMs (and bandwidth)
    scale together — the multi-GPU assumption — so rescheduling the
    recorded durations is exact under the model.
    """
    bench, dyn, removed = prepare_stream(config, graph_name)
    engine = DynamicBC.from_graph(
        dyn, num_sources=min(config.num_sources, dyn.num_vertices),
        backend="gpu-node", seed=config.seed + 23, device=base_device,
    )
    per_update_sources: List[np.ndarray] = []
    for u, v in removed:
        report = engine.insert_edge(int(u), int(v))
        per_update_sources.append(report.per_source_seconds)

    launch = CostModel(base_device).launch_overhead_seconds * 4
    critical = float(
        sum(src.max() for src in per_update_sources)
        + launch * len(per_update_sources)
    )
    points = []
    base_total = None
    for mult in sm_multipliers:
        device = base_device.with_sms(base_device.num_sms * mult)
        total = sum(
            schedule_blocks(src, device, device.num_sms, launch).total_seconds
            for src in per_update_sources
        )
        if base_total is None:
            base_total = total
        speedup = base_total / total
        points.append(
            ScalingPoint(
                num_sms=device.num_sms,
                seconds=total,
                speedup=speedup,
                efficiency=speedup / mult,
            )
        )
    return ScalingStudy(graph_name=graph_name, base_sms=base_device.num_sms,
                        points=points, critical_path_seconds=critical)


def render_scaling(study: ScalingStudy) -> str:
    """ASCII strong-scaling chart with the critical-path note."""
    lines = [
        f"Strong scaling of dynamic updates on '{study.graph_name}' "
        f"(baseline: {study.base_sms} SMs; model of the paper's multi-GPU "
        "future work)"
    ]
    for p in study.points:
        bar = "#" * max(1, int(round(p.speedup * 4)))
        lines.append(
            f"  SMs={p.num_sms:4d}  time={p.seconds * 1e3:9.3f} ms  "
            f"speedup={p.speedup:5.2f}x  efficiency={p.efficiency:5.1%}  {bar}"
        )
    lines.append(
        f"  critical path (heaviest source per update): "
        f"{study.critical_path_seconds * 1e3:.3f} ms — dynamic updates "
        "saturate here because touched-set sizes are heavy-tailed (Fig. 4), "
        "unlike the uniform per-source work of static BC the paper's "
        "strong-scaling prediction assumes."
    )
    return "\n".join(lines)
