"""Shared experiment configuration.

The paper's protocol (§IV): 100 random edges are removed, the state is
computed on the shrunken graph, and the edges are re-inserted one at a
time with k = 256 random sources.  :class:`ExperimentConfig` captures
those knobs plus the graph scale, with defaults small enough for the
benchmark suite to run in minutes (EXPERIMENTS.md records runs at
larger scale — pass ``scale``/``num_sources`` up to taste; everything
is linear except memory, O(k n)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.graph.suite import SUITE_SPECS


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all experiment drivers."""

    #: multiplier on the suite's base graph sizes (1.0 -> a few
    #: thousand vertices; the paper's originals are 50-500x larger)
    scale: float = 1.0
    #: k source vertices for BC approximation (paper: 256)
    num_sources: int = 64
    #: edges removed and re-inserted per graph (paper: 100)
    num_insertions: int = 20
    #: RNG seed governing graph generation, source picks and removals
    seed: int = 2014
    #: which suite graphs to run (default: all seven)
    graphs: Tuple[str, ...] = tuple(sorted(SUITE_SPECS))

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")
        if self.num_sources < 1:
            raise ValueError(f"num_sources must be >= 1, got {self.num_sources}")
        if self.num_insertions < 1:
            raise ValueError(
                f"num_insertions must be >= 1, got {self.num_insertions}"
            )
        unknown = set(self.graphs) - set(SUITE_SPECS)
        if unknown:
            raise ValueError(f"unknown suite graphs: {sorted(unknown)}")


#: quick configuration for tests and smoke runs
SMOKE = ExperimentConfig(scale=0.25, num_sources=16, num_insertions=5)

#: default benchmark configuration (minutes on a laptop)
DEFAULT = ExperimentConfig()

#: nearer the paper's regime (tens of minutes; see EXPERIMENTS.md)
PAPER_LIKE = ExperimentConfig(scale=20.0, num_sources=128, num_insertions=50)
