"""Plain-text rendering of every reproduced table and figure."""

from __future__ import annotations

from typing import Sequence

from repro.analysis.blocks import BlockSweepResult
from repro.analysis.scenarios import ScenarioDistribution, aggregate
from repro.analysis.speedup import HeadlineSummary, Table2Row, Table3Row
from repro.analysis.touched import TouchedStudy
from repro.graph.properties import GraphProperties
from repro.graph.suite import BenchmarkGraph
from repro.utils.tables import format_table


def render_table1(graphs: Sequence[BenchmarkGraph],
                  props: Sequence[GraphProperties]) -> str:
    """Table I: suite names, sizes and structural signatures."""
    rows = [
        (
            f"{b.full_name} ({b.name})",
            p.num_vertices,
            p.num_edges,
            f"{p.mean_degree:.1f}",
            p.approx_diameter,
            f"{p.avg_clustering:.3f}",
            b.significance,
        )
        for b, p in zip(graphs, props)
    ]
    return format_table(
        ["Name", "Vertices", "Edges", "AvgDeg", "Diam~", "Clust", "Significance"],
        rows,
        title="TABLE I: SUITE OF BENCHMARK GRAPHS (generated analogs)",
    )


def render_fig1(results: Sequence[BlockSweepResult]) -> str:
    """Fig. 1 as an ASCII bar chart of speedups per grid size."""
    lines = ["Fig. 1: Static BC speedup relative to one thread block"]
    for r in results:
        lines.append(f"\n  {r.graph_name} on {r.device_name} "
                     f"(best grid: {r.best_blocks} blocks)")
        for b, s in zip(r.block_counts, r.speedups):
            bar = "#" * max(1, int(round(s * 3)))
            lines.append(f"    blocks={b:4d}  speedup={s:6.2f}x  {bar}")
    return "\n".join(lines)


def render_fig2(results: Sequence[ScenarioDistribution]) -> str:
    """Fig. 2: per-graph scenario counts plus the pooled row."""
    rows = []
    for r in list(results) + [aggregate(list(results))]:
        rows.append(
            (
                r.graph_name,
                r.counts.get(1, 0),
                r.counts.get(2, 0),
                r.counts.get(3, 0),
                f"{100 * r.fraction(2):.1f}%",
                f"{100 * r.case2_share_of_work:.1f}%",
            )
        )
    return format_table(
        ["Graph", "Case 1", "Case 2", "Case 3", "Case2/all", "Case2/work"],
        rows,
        title="Fig. 2: Distribution of update scenarios "
              "(paper, pooled: 37.3% of all, 73.5% of work)",
    )


def render_subcases(study: dict) -> str:
    """The §II-D sub-variant refinement of Fig. 2 (graph -> subcase
    counts, from :func:`repro.analysis.scenarios.run_subcase_study`)."""
    keys = ["1-connected", "1-disconnected", "2", "3-connected", "3-merge"]
    rows = [
        tuple([name] + [counts.get(k, 0) for k in keys])
        for name, counts in study.items()
    ]
    return format_table(
        ["Graph", "1 conn", "1 disc", "2", "3 conn", "3 merge"],
        rows,
        title="Fig. 2 refinement: connected/disconnected sub-variants "
              "(paper §II-D-1)",
    )


def render_table2(rows: Sequence[Table2Row]) -> str:
    """Table II: CPU/edge/node times with speedups vs the CPU."""
    table = [
        (
            r.graph_name,
            f"{r.cpu_seconds:.4f}",
            f"{r.edge_seconds:.4f}",
            f"{r.edge_speedup:.2f}x",
            f"{r.node_seconds:.4f}",
            f"{r.node_speedup:.2f}x",
        )
        for r in rows
    ]
    return format_table(
        ["Graph", "CPU (s)", "Edge (s)", "Edge spd", "Node (s)", "Node spd"],
        table,
        title="TABLE II: Dynamic CPU vs dynamic GPU (simulated seconds)",
    )


def render_table3(rows: Sequence[Table3Row]) -> str:
    """Table III: recompute time vs slowest/average/fastest update."""
    table = []
    for r in rows:
        table.append((r.graph_name, f"{r.recompute_seconds:.4f}",
                      f"Slowest: {r.slowest:.6f}", f"{r.slowest_speedup:.2f}x"))
        table.append(("", "", f"Average: {r.average:.6f}",
                      f"{r.average_speedup:.2f}x"))
        table.append(("", "", f"Fastest: {r.fastest:.6f}",
                      f"{r.fastest_speedup:.2f}x"))
    return format_table(
        ["Graph", "Recompute (s)", "Update (s)", "Speedup"],
        table,
        title="TABLE III: Node-parallel updates vs GPU recomputation",
    )


def render_fig4(studies: Sequence[TouchedStudy]) -> str:
    """Fig. 4: touched-fraction percentiles per graph."""
    lines = ["Fig. 4: Portion of the graph touched per Case-2 scenario"]
    total = 0
    for s in studies:
        total += s.count
        lines.append(
            f"  {s.graph_name:6s} scenarios={s.count:6d}  "
            f"p50={s.percentile(50):.4f}  p90={s.percentile(90):.4f}  "
            f"p99={s.percentile(99):.4f}  max={s.max_fraction:.4f}"
        )
    lines.append(f"  total Case-2 scenarios: {total} "
                 "(paper: 62,844; max touched ~0.35)")
    return "\n".join(lines)


def fig1_csv(results: Sequence[BlockSweepResult]) -> str:
    """Plottable series for Fig. 1: graph,device,blocks,speedup."""
    lines = ["graph,device,blocks,speedup"]
    for r in results:
        for b, s in zip(r.block_counts, r.speedups):
            lines.append(f"{r.graph_name},{r.device_name},{b},{s:.6f}")
    return "\n".join(lines)


def fig4_csv(studies: Sequence[TouchedStudy]) -> str:
    """Plottable series for Fig. 4: graph,rank,touched_fraction
    (fractions sorted ascending, as in the paper's scatter)."""
    lines = ["graph,rank,touched_fraction"]
    for s in studies:
        for i, frac in enumerate(s.fractions):
            lines.append(f"{s.graph_name},{i},{frac:.8f}")
    return "\n".join(lines)


def render_headline(summary: HeadlineSummary) -> str:
    """The abstract's two headline numbers vs the paper's."""
    return (
        "Headline: max speedup over CPU = "
        f"{summary.max_cpu_speedup:.1f}x (paper: 110x); "
        "mean update-vs-recompute = "
        f"{summary.mean_update_vs_recompute:.1f}x (paper: 45x)"
    )
