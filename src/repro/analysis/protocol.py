"""The remove-then-reinsert streaming protocol shared by the drivers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.analysis.config import ExperimentConfig
from repro.bc.engine import DynamicBC, UpdateReport
from repro.graph.dynamic import DynamicGraph
from repro.graph.suite import BenchmarkGraph, make_suite_graph
from repro.utils.prng import default_rng


def compute_initial_state(config: ExperimentConfig, name: str):
    """The backend-independent BC state of the shrunken graph (the
    setup every backend's replay starts from)."""
    from repro.bc.state import BCState

    _, dyn, _ = prepare_stream(config, name)
    snap = dyn.snapshot()
    return BCState.compute_with_random_sources(
        snap, min(config.num_sources, snap.num_vertices), config.seed + 23
    )


@dataclass
class StreamRun:
    """One backend's replay of the insertion stream on one graph."""

    graph_name: str
    backend: str
    reports: List[UpdateReport]
    engine: DynamicBC

    @property
    def total_simulated(self) -> float:
        return float(sum(r.simulated_seconds for r in self.reports))

    @property
    def per_update_simulated(self) -> np.ndarray:
        return np.array([r.simulated_seconds for r in self.reports])


def prepare_stream(
    config: ExperimentConfig, name: str
) -> Tuple[BenchmarkGraph, DynamicGraph, np.ndarray]:
    """Build a suite graph, remove the insertion stream from it, and
    return (metadata, shrunken mutable graph, edges in replay order).

    Deterministic in (config.seed, name); every backend replays the
    identical stream so comparisons are paired.
    """
    bench = make_suite_graph(name, scale=config.scale, seed=config.seed)
    dyn = DynamicGraph.from_csr(bench.graph)
    rng = default_rng(config.seed + 17)
    removed = dyn.remove_random_edges(rng, config.num_insertions)
    return bench, dyn, removed


def replay_stream(
    config: ExperimentConfig,
    name: str,
    backend: str,
    verify_every: int = 0,
    initial_state=None,
) -> StreamRun:
    """Run the full protocol for one (graph, backend) pair.

    ``verify_every=j`` checks the maintained state against a scratch
    recomputation after every j-th insertion (slow; tests use it).
    ``initial_state`` (a :class:`~repro.bc.state.BCState` for the
    shrunken graph) skips the Brandes setup — callers comparing
    backends on the same stream pass copies of one state, since the
    setup is backend-independent.
    """
    bench, dyn, removed = prepare_stream(config, name)
    if initial_state is not None:
        engine = DynamicBC(dyn, initial_state.copy(), backend=backend)
    else:
        engine = DynamicBC.from_graph(
            dyn, num_sources=min(config.num_sources, dyn.num_vertices),
            backend=backend, seed=config.seed + 23,
        )
    reports = []
    for idx, (u, v) in enumerate(removed):
        reports.append(engine.insert_edge(int(u), int(v)))
        if verify_every and (idx + 1) % verify_every == 0:
            engine.verify()
    return StreamRun(graph_name=name, backend=backend, reports=reports, engine=engine)
