"""Virtual-GPU execution model.

No CUDA device is assumed: the BC kernels in :mod:`repro.bc` execute
their level-synchronous logic over NumPy arrays and emit a trace of
*parallel steps* (work items, cycles, bytes, atomics).  This package
turns those traces into simulated seconds under a concrete device
specification (Tesla C2075, GTX 560, or a sequential CPU), with the
block-per-SM scheduling discipline the paper uses.

See DESIGN.md §3 for why this substitution preserves the paper's
findings: every conclusion in the paper is an argument about *counted
work* (edge-parallel scans Θ(|E|) arcs per BFS level; node-parallel
touches only the frontier), which the model reproduces exactly.
"""

from repro.gpu.counters import KernelCounters, Step, Trace
from repro.gpu.costmodel import CostModel, OpCosts
from repro.gpu.device import (
    CORE_I7_2600K,
    DeviceSpec,
    GTX_560,
    TESLA_C2075,
    TESLA_K40,
    device_by_name,
)
from repro.gpu.executor import KernelTiming, VirtualGPU, schedule_blocks
from repro.gpu.primitives import (
    bitonic_sort_steps,
    prefix_sum_steps,
    remove_duplicates,
)

__all__ = [
    "KernelCounters",
    "Step",
    "Trace",
    "CostModel",
    "OpCosts",
    "DeviceSpec",
    "TESLA_C2075",
    "GTX_560",
    "TESLA_K40",
    "CORE_I7_2600K",
    "device_by_name",
    "VirtualGPU",
    "KernelTiming",
    "schedule_blocks",
    "bitonic_sort_steps",
    "prefix_sum_steps",
    "remove_duplicates",
]
