"""Analytic timing model: work traces -> simulated seconds.

The model charges each barrier-delimited step of a block the maximum of
its compute time, its memory time, and its (serialized) atomic time —
the classic roofline treatment of a latency-hiding SM:

* **compute**: ``ceil(items / threads) * cycles_per_item / clock`` —
  threads strip-mine the work items, as in the paper ("each thread will
  process multiple units of work").
* **memory**: ``bytes / bw_per_block`` where one block alone sustains
  only :attr:`DeviceSpec.sm_mem_gbs` (outstanding-miss limit) and the
  aggregate bus bandwidth is split between concurrently *resident*
  blocks.  This reproduces Fig. 1: below one block per SM the bus is
  under-subscribed, so adding blocks scales nearly linearly; past one
  block per SM the bus saturates and the curve flattens.
* **atomics**: conflict-free atomics pipeline (treated as ordinary
  traffic plus a fixed cost); conflicting atomics on one address
  serialize at ``atomic_cycles`` each — the paper's argument for why
  node-parallelism's low contention matters.

A CPU device (``is_cpu``) degenerates to one thread, no launch
overhead, and its full cache-side bandwidth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from repro.gpu.counters import Step, Trace
from repro.gpu.device import DeviceSpec


@dataclass(frozen=True)
class OpCosts:
    """Per-operation cost constants shared by the kernel implementations.

    The kernels in :mod:`repro.bc` describe their work in terms of these
    primitive costs so that the arithmetic lives in one auditable place.
    Byte counts assume the paper-era data layout: 4-byte vertex ids and
    distances, 8-byte shortest-path counts and dependencies.
    """

    #: cycles to test one edge (load endpoints, compare levels)
    edge_check_cycles: float = 4.0
    #: bytes to test one edge: two 4-byte ids streamed coalesced plus a
    #: partially L2-cached d[] lookup
    edge_check_bytes: float = 9.0
    #: extra bytes when an edge hits (read/write sigma-hat, t flag)
    edge_hit_bytes: float = 20.0
    #: cycles per frontier vertex (queue pop + offsets fetch)
    node_pop_cycles: float = 6.0
    node_pop_bytes: float = 16.0
    #: cycles per scanned neighbor of a frontier vertex
    arc_scan_cycles: float = 4.0
    arc_scan_bytes: float = 8.0
    #: cycles/bytes per element initialised (t, sigma-hat, delta-hat)
    init_cycles: float = 2.0
    init_bytes: float = 21.0
    #: cycles/bytes per element committed back to global state
    commit_cycles: float = 3.0
    commit_bytes: float = 24.0
    #: dependency update: one fused multiply-add over 8-byte values
    dep_update_cycles: float = 8.0
    dep_update_bytes: float = 24.0


DEFAULT_OP_COSTS = OpCosts()


def traversal_working_set_bytes(num_vertices: int, total_arcs: int) -> float:
    """Bytes an update touches at random: the per-source state arrays
    (d, sigma, delta, their hats, the t flags, BC) plus the adjacency."""
    return 57.0 * num_vertices + 4.0 * total_arcs + 8.0 * (num_vertices + 1)


def cpu_access_cycles(device: DeviceSpec, num_vertices: int, total_arcs: int) -> float:
    """Expected cycles per dependent load on a CPU target.

    Interpolates between the cached and DRAM-latency cost by the
    fraction of the traversal working set that fits in the last-level
    cache — the reason the paper's CPU baseline collapses on graphs
    whose state is tens of MB while microbenchmarks on toy graphs fly.
    Returns the cached cost for devices without a cache model (GPUs).
    """
    if device.cache_mb <= 0:
        return device.cached_access_cycles
    ws = traversal_working_set_bytes(num_vertices, total_arcs)
    hit_fraction = min(1.0, (device.cache_mb * 2**20) / ws)
    return (
        hit_fraction * device.cached_access_cycles
        + (1.0 - hit_fraction) * device.random_access_cycles
    )


class CostModel:
    """Converts :class:`Step`/:class:`Trace` records into seconds for a
    fixed (device, grid-size) configuration."""

    def __init__(self, device: DeviceSpec, num_blocks: int = 0) -> None:
        if num_blocks < 0:
            raise ValueError(f"num_blocks must be >= 0, got {num_blocks}")
        self.device = device
        self.num_blocks = num_blocks or device.num_sms
        if device.is_cpu:
            self.num_blocks = 1
        self._bw_per_block = self._effective_bw_per_block()
        self._contention = self._residency_penalty()

    # ------------------------------------------------------------------
    def _effective_bw_per_block(self) -> float:
        dev = self.device
        if dev.is_cpu:
            return dev.mem_bandwidth_gbs * 1e9
        # In the block-per-SM schedule at most one block per SM issues at
        # any instant, so min(num_blocks, num_sms) blocks share the bus.
        # A lone block is additionally capped by its SM's
        # outstanding-miss limit (sm_mem_gbs), which is what makes the
        # Fig. 1 sweep scale until the bus saturates.
        active = min(self.num_blocks, dev.num_sms)
        return min(dev.sm_mem_gbs, dev.mem_bandwidth_gbs / active) * 1e9

    def _residency_penalty(self) -> float:
        """Mild cost of multiple resident blocks per SM (scheduling and
        cache interference); makes blocks == SMs slightly optimal, as
        measured in Fig. 1."""
        if self.device.is_cpu:
            return 1.0
        per_sm = math.ceil(self.num_blocks / self.device.num_sms)
        return 1.0 + 0.04 * (per_sm - 1)

    # ------------------------------------------------------------------
    def step_seconds(self, step: Step) -> float:
        """Simulated duration of one step executed by one block."""
        dev = self.device
        threads = dev.threads_per_block
        iterations = math.ceil(step.work_items / threads) if step.work_items else 0
        compute = iterations * step.cycles_per_item * dev.cpi / dev.clock_hz
        memory = step.bytes_moved / self._bw_per_block
        # Conflict-free atomics ride the memory pipeline; conflicting
        # ones serialize per address.
        atomic = 0.0
        if step.atomic_ops:
            pipelined = math.ceil(step.atomic_ops / max(1, threads // dev.warp_size))
            serialized = step.max_conflict
            atomic = max(pipelined, serialized) * dev.atomic_cycles / dev.clock_hz
        # A barrier-delimited phase has a small fixed latency floor
        # (instruction issue + synchronization).
        floor = 0.0
        if step.work_items or step.atomic_ops:
            floor = (40.0 if not dev.is_cpu else 2.0) / dev.clock_hz
        return max(compute, memory, atomic, floor) * self._contention

    def fold_step_seconds(self, step: Step, count: int) -> float:
        """Sequential fold of *count* additions of ``step_seconds(step)``.

        Float addition is not associative, so ``count * sec`` can drift
        from a loop that accumulates ``sec`` once per iteration in the
        last ulp.  The vectorized engine uses this to reproduce the
        looped path's per-source stage accumulation bit-for-bit while
        costing only *count* float additions instead of *count* cost
        model evaluations.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        sec = self.step_seconds(step)
        total = 0.0
        for _ in range(count):
            total += sec
        return total

    def trace_seconds(self, trace_or_steps) -> float:
        """Total simulated duration of a trace run by one block."""
        steps: Iterable[Step] = (
            trace_or_steps.steps if isinstance(trace_or_steps, Trace) else trace_or_steps
        )
        return sum(self.step_seconds(s) for s in steps)

    def stage_breakdown(self, trace_or_steps) -> dict:
        """Simulated seconds grouped by each step's stage tag.

        Lets the analysis answer questions like "how much of the CPU
        baseline is Algorithm-2 initialization?" without re-running.
        """
        steps = (
            trace_or_steps.steps
            if isinstance(trace_or_steps, Trace)
            else trace_or_steps
        )
        out: dict = {}
        for s in steps:
            key = s.stage or "other"
            out[key] = out.get(key, 0.0) + self.step_seconds(s)
        return out

    @property
    def launch_overhead_seconds(self) -> float:
        return self.device.launch_overhead_us * 1e-6
