"""Work traces and hardware counters.

A kernel execution is recorded as a sequence of :class:`Step` records —
one per barrier-delimited parallel phase (e.g. one BFS level).  Each
step says how many work items ran, what each cost in cycles and bytes,
and how many atomic operations it issued.  The cost model converts
steps to seconds; :class:`KernelCounters` aggregates raw totals for the
analysis sections (memory traffic, wasted work, atomic pressure).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional


@dataclass(frozen=True)
class Step:
    """One barrier-delimited parallel phase inside a block.

    Attributes
    ----------
    work_items:
        Number of independent work units (threads iterate when this
        exceeds the block's thread count).
    cycles_per_item:
        Arithmetic/branch cost per work item.
    bytes_moved:
        Global-memory traffic of the whole step (reads + writes).
    atomic_ops:
        Atomic RMW operations issued in the step.
    max_conflict:
        Worst-case number of atomics targeting one address (serialized
        by the memory system); 1 means conflict-free.
    """

    work_items: int
    cycles_per_item: float
    bytes_moved: float
    atomic_ops: int = 0
    max_conflict: int = 1
    #: which kernel stage issued the step ("init", "sp", "dep",
    #: "commit", "classify", "pull", "prepass", "dedup", ...)
    stage: str = ""


@dataclass
class Trace:
    """Steps of one logical task (e.g. one source's update in one
    kernel), plus a label for reporting."""

    label: str = ""
    steps: List[Step] = field(default_factory=list)

    def add(
        self,
        work_items: int,
        cycles_per_item: float,
        bytes_moved: float,
        atomic_ops: int = 0,
        max_conflict: int = 1,
        stage: str = "",
    ) -> None:
        """Record one step; zero-work steps are dropped silently."""
        if work_items < 0 or bytes_moved < 0 or atomic_ops < 0:
            raise ValueError("trace quantities must be non-negative")
        if work_items == 0 and atomic_ops == 0:
            return  # empty phases cost nothing and are not recorded
        self.steps.append(
            Step(int(work_items), float(cycles_per_item), float(bytes_moved),
                 int(atomic_ops), max(1, int(max_conflict)), stage)
        )

    def add_stage(self, stage: str, *args, **kwargs) -> None:
        """:meth:`add` with the stage tag leading (reads naturally at
        call sites that pass the work quantities positionally)."""
        self.add(*args, stage=stage, **kwargs)

    @classmethod
    def from_steps(cls, label: str, steps: Iterable[Step]) -> "Trace":
        """Reassemble a trace from already-validated :class:`Step`
        records — e.g. a step list that crossed a process boundary
        (steps are frozen dataclasses, hence picklable; see
        :func:`repro.parallel.reducer.rebuild_trace`).  Unlike
        :meth:`add`, no re-validation or zero-work filtering happens:
        the steps were produced by a :class:`Trace` already."""
        return cls(label=label, steps=list(steps))

    def extend(self, other: "Trace") -> None:
        """Append all of *other*'s steps to this trace."""
        self.steps.extend(other.steps)

    @property
    def total_items(self) -> int:
        return sum(s.work_items for s in self.steps)

    @property
    def total_bytes(self) -> float:
        return sum(s.bytes_moved for s in self.steps)

    @property
    def total_atomics(self) -> int:
        return sum(s.atomic_ops for s in self.steps)

    def __len__(self) -> int:
        return len(self.steps)


@dataclass
class KernelCounters:
    """Aggregate counters across many traces (per engine run).

    These feed the analysis sections: §V argues node-parallelism wins
    because its total memory traffic is a tiny fraction of the
    edge-parallel traffic — ``bytes_moved`` exposes exactly that.
    """

    steps: int = 0
    work_items: int = 0
    bytes_moved: float = 0.0
    atomic_ops: int = 0
    barriers: int = 0
    kernel_launches: int = 0
    by_kernel: Dict[str, int] = field(default_factory=dict)

    def absorb(self, trace: Trace, kernel: Optional[str] = None) -> None:
        """Accumulate one trace's totals (tagged by *kernel* if given)."""
        self.steps += len(trace.steps)
        self.barriers += len(trace.steps)
        self.work_items += trace.total_items
        self.bytes_moved += trace.total_bytes
        self.atomic_ops += trace.total_atomics
        if kernel is not None:
            self.by_kernel[kernel] = self.by_kernel.get(kernel, 0) + trace.total_items

    def absorb_all(self, traces: Iterable[Trace], kernel: Optional[str] = None) -> None:
        """Accumulate many traces."""
        for t in traces:
            self.absorb(t, kernel)

    def absorb_step_repeated(
        self, step: Step, count: int, kernel: Optional[str] = None
    ) -> None:
        """Accumulate one step as if *count* single-step traces had been
        absorbed one at a time.

        The integer totals scale exactly; ``bytes_moved`` does too
        because every byte quantity the kernels charge is a multiple of
        0.5 far below 2**52, so ``count * bytes`` equals the repeated
        float addition bit-for-bit.  This is the bulk-charge entry point
        for the engine's vectorized Case-1 fast path.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        if count == 0:
            return
        self.steps += count
        self.barriers += count
        self.work_items += count * step.work_items
        self.bytes_moved += count * step.bytes_moved
        self.atomic_ops += count * step.atomic_ops
        if kernel is not None:
            self.by_kernel[kernel] = (
                self.by_kernel.get(kernel, 0) + count * step.work_items
            )

    def merged(self, other: "KernelCounters") -> "KernelCounters":
        """A new counter set equal to self + other (inputs untouched)."""
        out = KernelCounters(
            steps=self.steps + other.steps,
            work_items=self.work_items + other.work_items,
            bytes_moved=self.bytes_moved + other.bytes_moved,
            atomic_ops=self.atomic_ops + other.atomic_ops,
            barriers=self.barriers + other.barriers,
            kernel_launches=self.kernel_launches + other.kernel_launches,
            by_kernel=dict(self.by_kernel),
        )
        for k, v in other.by_kernel.items():
            out.by_kernel[k] = out.by_kernel.get(k, 0) + v
        return out
