"""Block-level parallel primitives with cost accounting.

The node-parallel kernels remove duplicates from the ``Q2`` frontier
buffer with the three-phase procedure of §III-A (after Merrill et al.):

1. bitonic sort of the buffer,
2. adjacent-compare to flag unique entries,
3. prefix sum to compact the unique entries into ``Q``.

The *result* is computed with :func:`numpy.unique` (bit-identical to a
real bitonic-sort pipeline on integers); the *cost* charged to the
trace is that of the parallel pipeline: ``O(log^2 p)`` sort steps over
the next power of two ``p``, one compare step, ``O(log p)`` scan steps,
and one scatter.
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

import numpy as np

from repro.gpu.counters import Trace
from repro.sanitize import tracer as _san

# ----------------------------------------------------------------------
# Declared atomics and benign races
# ----------------------------------------------------------------------
#: Races the kernels run *on purpose*, keyed ``(array, intent)`` →
#: rationale.  The race sanitizer whitelists these by construction:
#: a conflicting access is benign only when every contributing call
#: site tags itself with a registered intent, so the whitelist lives
#: here — next to the atomic semantics — not in suppression comments
#: at the observation sites.
BENIGN_RACES: Dict[Tuple[str, str], str] = {}


def declare_benign_race(array: str, intent: str, why: str) -> None:
    """Register an intentionally-benign race class.

    Call at import time, next to the primitive that makes the race
    safe; the sanitizer treats any *other* conflicting access to the
    same array as a real S101/S102 finding.
    """
    BENIGN_RACES[(array, intent)] = why


# The paper's kernels rely on two benign race shapes:
#
# 1. Same-value stamps: many lanes store the *identical* value to one
#    address (BFS level discovery, touched flags).  Any interleaving
#    yields the same memory image.
declare_benign_race(
    "d", "discover",
    "level-synchronous BFS discovery: every lane stores depth+1, so "
    "duplicate stores commute (Alg. 1/3 distance stamp)",
)
declare_benign_race(
    "d_new", "relabel",
    "Case-3 pull relabel: every lane stores level+1 for the vertices "
    "it pulls closer — duplicate stores carry the same value",
)
declare_benign_race(
    "t", "mark",
    "touched-flag stamp (untouched/down/up): lanes marking one vertex "
    "in one interval all store the same state",
)
declare_benign_race(
    "moved", "mark",
    "moved-flag stamp: duplicate True stores commute",
)
# 2. Atomic accumulation: the edge-parallel Case-2 σ update (and every
#    δ/BC accumulation) lets many lanes atomicAdd one address.  The
#    *order* of the adds is nondeterministic on hardware; the
#    simulation fixes arc order, so results stay bit-identical while
#    the contention itself is declared here (§III-B of the paper: the
#    edge-parallel kernels "require atomic operations" on σ and δ).
for _array in ("sigma", "sigma_hat", "delta", "delta_hat", "pull_buf", "bc"):
    declare_benign_race(
        _array, "accumulate",
        "atomicAdd accumulation: conflicting adds commute up to "
        "floating-point ordering, which the fixed arc order pins",
    )
del _array


def atomic_scatter_add(
    target: np.ndarray, idx, values, *, array: str, intent: str = "accumulate"
) -> None:
    """The declared atomicAdd: scatter-add *values* into *target* at
    *idx*, bit-identical to ``np.add.at``.

    This is the **only** sanctioned route for conflicting accumulation
    in the kernels — the race sanitizer flags any scatter with
    duplicate targets that did not come through here (finding S101).
    ``(array, intent)`` must name a :data:`BENIGN_RACES` entry for the
    contention to be whitelisted; subtraction is accumulation of
    negated values (IEEE-754 ``x - y == x + (-y)``).
    """
    np.add.at(target, idx, values)
    _san.atomic(array, idx, intent)


def _next_pow2(x: int) -> int:
    return 1 if x <= 1 else 1 << (x - 1).bit_length()


def bitonic_sort_steps(length: int) -> int:
    """Number of barrier-delimited comparator phases a bitonic sort of
    *length* elements executes: k(k+1)/2 for p = 2**k."""
    if length <= 1:
        return 0
    k = _next_pow2(length).bit_length() - 1
    return k * (k + 1) // 2


def prefix_sum_steps(length: int) -> int:
    """Phases of a work-efficient (Blelloch) scan: 2 * ceil(log2 p)."""
    if length <= 1:
        return 0
    return 2 * math.ceil(math.log2(length))


def remove_duplicates(buffer: np.ndarray, trace: Trace) -> np.ndarray:
    """Deduplicate a frontier buffer, charging the parallel pipeline.

    Returns the unique entries in sorted order (exactly what the GPU
    pipeline produces) and appends the pipeline's steps to *trace*.
    """
    length = int(buffer.size)
    if length == 0:
        return buffer[:0]
    p = _next_pow2(length)
    # Phase 1: bitonic sort — each phase touches all p slots.
    for _ in range(bitonic_sort_steps(length)):
        trace.add(work_items=p, cycles_per_item=3.0, bytes_moved=8.0 * p)
    # Phase 2: adjacent compare producing the uniqueness flags.
    trace.add(work_items=length, cycles_per_item=2.0, bytes_moved=9.0 * length)
    # Phase 3: prefix sum over the flags.
    for _ in range(prefix_sum_steps(length)):
        trace.add(work_items=length, cycles_per_item=2.0, bytes_moved=8.0 * length)
    # Phase 4: compacting scatter of the unique entries.
    unique = np.unique(buffer)
    trace.add(work_items=length, cycles_per_item=2.0,
              bytes_moved=4.0 * length + 4.0 * unique.size)
    return unique
