"""Block-level parallel primitives with cost accounting.

The node-parallel kernels remove duplicates from the ``Q2`` frontier
buffer with the three-phase procedure of §III-A (after Merrill et al.):

1. bitonic sort of the buffer,
2. adjacent-compare to flag unique entries,
3. prefix sum to compact the unique entries into ``Q``.

The *result* is computed with :func:`numpy.unique` (bit-identical to a
real bitonic-sort pipeline on integers); the *cost* charged to the
trace is that of the parallel pipeline: ``O(log^2 p)`` sort steps over
the next power of two ``p``, one compare step, ``O(log p)`` scan steps,
and one scatter.
"""

from __future__ import annotations

import math
import numpy as np

from repro.gpu.counters import Trace


def _next_pow2(x: int) -> int:
    return 1 if x <= 1 else 1 << (x - 1).bit_length()


def bitonic_sort_steps(length: int) -> int:
    """Number of barrier-delimited comparator phases a bitonic sort of
    *length* elements executes: k(k+1)/2 for p = 2**k."""
    if length <= 1:
        return 0
    k = _next_pow2(length).bit_length() - 1
    return k * (k + 1) // 2


def prefix_sum_steps(length: int) -> int:
    """Phases of a work-efficient (Blelloch) scan: 2 * ceil(log2 p)."""
    if length <= 1:
        return 0
    return 2 * math.ceil(math.log2(length))


def remove_duplicates(buffer: np.ndarray, trace: Trace) -> np.ndarray:
    """Deduplicate a frontier buffer, charging the parallel pipeline.

    Returns the unique entries in sorted order (exactly what the GPU
    pipeline produces) and appends the pipeline's steps to *trace*.
    """
    length = int(buffer.size)
    if length == 0:
        return buffer[:0]
    p = _next_pow2(length)
    # Phase 1: bitonic sort — each phase touches all p slots.
    for _ in range(bitonic_sort_steps(length)):
        trace.add(work_items=p, cycles_per_item=3.0, bytes_moved=8.0 * p)
    # Phase 2: adjacent compare producing the uniqueness flags.
    trace.add(work_items=length, cycles_per_item=2.0, bytes_moved=9.0 * length)
    # Phase 3: prefix sum over the flags.
    for _ in range(prefix_sum_steps(length)):
        trace.add(work_items=length, cycles_per_item=2.0, bytes_moved=8.0 * length)
    # Phase 4: compacting scatter of the unique entries.
    unique = np.unique(buffer)
    trace.add(work_items=length, cycles_per_item=2.0,
              bytes_moved=4.0 * length + 4.0 * unique.size)
    return unique
