"""Block/SM scheduling of per-source work.

The paper's decomposition (Fig. 3): coarse-grained parallelism assigns
independent source vertices to thread blocks, one block per SM; each
block loops over its share of the sources.  :func:`schedule_blocks`
reproduces that schedule over simulated per-source durations and
returns the kernel's makespan (the slowest SM determines the total).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.gpu.costmodel import CostModel
from repro.gpu.counters import Trace
from repro.gpu.device import DeviceSpec


@dataclass
class KernelTiming:
    """Result of scheduling one kernel launch."""

    total_seconds: float
    block_seconds: List[float]
    sm_seconds: List[float]
    launch_overhead: float

    @property
    def busy_fraction(self) -> float:
        """Mean SM utilization (1.0 = perfectly balanced)."""
        busy = max(self.sm_seconds) if self.sm_seconds else 0.0
        if busy == 0.0:
            return 1.0
        return float(np.mean(self.sm_seconds) / busy)


def schedule_blocks(
    source_seconds: Sequence[float],
    device: DeviceSpec,
    num_blocks: int = 0,
    launch_overhead: Optional[float] = None,
) -> KernelTiming:
    """Round-robin sources onto blocks, blocks onto SMs; the kernel
    completes when the busiest SM drains.

    ``source_seconds[i]`` is the simulated duration of source *i*'s
    work inside the launch (already costed by :class:`CostModel`).
    """
    num_blocks = num_blocks or device.num_sms
    if num_blocks < 1:
        raise ValueError(f"num_blocks must be >= 1, got {num_blocks}")
    if device.is_cpu:
        num_blocks = 1
    block_seconds = [0.0] * num_blocks
    for i, sec in enumerate(source_seconds):
        if sec < 0:
            raise ValueError("source durations must be non-negative")
        block_seconds[i % num_blocks] += sec
    sm_seconds = [0.0] * device.num_sms
    for b, sec in enumerate(block_seconds):
        sm_seconds[b % device.num_sms] += sec
    if launch_overhead is None:
        launch_overhead = device.launch_overhead_us * 1e-6
    total = max(sm_seconds) + launch_overhead if len(source_seconds) else launch_overhead
    return KernelTiming(
        total_seconds=total,
        block_seconds=block_seconds,
        sm_seconds=sm_seconds,
        launch_overhead=launch_overhead,
    )


class VirtualGPU:
    """Convenience wrapper tying a device, grid size, and cost model.

    >>> from repro.gpu import TESLA_C2075, VirtualGPU
    >>> gpu = VirtualGPU(TESLA_C2075)
    >>> gpu.num_blocks
    14
    """

    def __init__(self, device: DeviceSpec, num_blocks: int = 0) -> None:
        self.device = device
        self.num_blocks = num_blocks or device.num_sms
        if device.is_cpu:
            self.num_blocks = 1
        self.cost_model = CostModel(device, self.num_blocks)

    def time_traces(self, traces: Sequence[Trace]) -> KernelTiming:
        """Cost each per-source trace and schedule the launch."""
        per_source = [self.cost_model.trace_seconds(t) for t in traces]
        return schedule_blocks(
            per_source,
            self.device,
            self.num_blocks,
            self.cost_model.launch_overhead_seconds,
        )

    def with_blocks(self, num_blocks: int) -> "VirtualGPU":
        """Same device, different grid size (Fig. 1 sweep)."""
        return VirtualGPU(self.device, num_blocks)

    def __repr__(self) -> str:
        return f"VirtualGPU({self.device.name!r}, blocks={self.num_blocks})"
