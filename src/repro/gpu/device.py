"""Device specifications for the execution model.

Presets mirror the hardware of the paper's §IV: an Nvidia Tesla C2075
(14 SMs, 1.15 GHz, 144 GB/s GDDR5), the GTX 560 used in Fig. 1 (7 SMs),
and the Intel Core i7-2600K CPU baseline (3.4 GHz, single thread).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class DeviceSpec:
    """Parameters of one (virtual) execution target.

    Attributes
    ----------
    num_sms:
        Streaming multiprocessors.  The paper launches one thread block
        per SM ("we delegate one thread block per SM"), so this is also
        the default grid size.
    threads_per_block:
        Fine-grained parallelism within a block; the paper assigns "the
        maximum number of threads per block".
    clock_ghz:
        Per-SM (or per-core) clock.
    mem_bandwidth_gbs:
        Aggregate DRAM bandwidth shared by all SMs.
    sm_mem_gbs:
        Latency-limited memory throughput one block can sustain alone
        (outstanding-miss limit).  This is what makes the Fig. 1 sweep
        behave: with fewer resident blocks than SMs the bus is
        under-subscribed and throughput scales with the block count.
    atomic_cycles:
        Cost of one atomic memory operation (serialized per location).
    launch_overhead_us:
        Fixed host-side cost per kernel launch.
    cpi:
        Average cycles per scalar operation (CPU targets model cache
        friendliness here; GPU targets model divergence overhead).
    is_cpu:
        Sequential target: one block, one thread, no launch overhead.
    """

    name: str
    num_sms: int
    clock_ghz: float
    mem_bandwidth_gbs: float
    sm_mem_gbs: float
    threads_per_block: int = 1024
    warp_size: int = 32
    atomic_cycles: float = 24.0
    launch_overhead_us: float = 4.0
    cpi: float = 1.0
    is_cpu: bool = False
    #: last-level cache (CPU targets): graph traversals whose working
    #: set spills out of it pay ``random_access_cycles`` per dependent
    #: load instead of ``cached_access_cycles``.  GPUs hide this
    #: latency with massive multithreading, so they leave it at 0.
    cache_mb: float = 0.0
    random_access_cycles: float = 220.0
    cached_access_cycles: float = 8.0

    def __post_init__(self) -> None:
        check_positive("num_sms", self.num_sms)
        check_positive("clock_ghz", self.clock_ghz)
        check_positive("mem_bandwidth_gbs", self.mem_bandwidth_gbs)
        check_positive("sm_mem_gbs", self.sm_mem_gbs)
        check_positive("threads_per_block", self.threads_per_block)
        check_positive("warp_size", self.warp_size)
        check_positive("cpi", self.cpi)

    @property
    def clock_hz(self) -> float:
        return self.clock_ghz * 1e9

    def with_sms(self, num_sms: int) -> "DeviceSpec":
        """Copy of this device with a different SM count (used by the
        multi-GPU strong-scaling ablation)."""
        return replace(self, name=f"{self.name}({num_sms} SMs)", num_sms=num_sms)


#: Tesla C2075: 14 SMs x 32 SPs @ 1.15 GHz, 6 GB GDDR5 @ 144 GB/s.
TESLA_C2075 = DeviceSpec(
    name="Tesla C2075",
    num_sms=14,
    clock_ghz=1.15,
    mem_bandwidth_gbs=144.0,
    sm_mem_gbs=11.0,
    threads_per_block=1024,
    atomic_cycles=24.0,
    launch_overhead_us=4.0,
    cpi=2.0,  # irregular kernels: divergence + replayed transactions
)

#: GTX 560: 7 SMs @ 1.62 GHz, 128 GB/s (the second device of Fig. 1).
GTX_560 = DeviceSpec(
    name="GTX 560",
    num_sms=7,
    clock_ghz=1.62,
    mem_bandwidth_gbs=128.0,
    sm_mem_gbs=19.0,
    threads_per_block=1024,
    atomic_cycles=24.0,
    launch_overhead_us=4.0,
    cpi=2.0,
)

#: Intel Core i7-2600K: single-threaded baseline, 3.4 GHz, 8 MB cache.
CORE_I7_2600K = DeviceSpec(
    name="Intel Core i7-2600K",
    num_sms=1,
    clock_ghz=3.4,
    mem_bandwidth_gbs=21.0,
    sm_mem_gbs=21.0,
    threads_per_block=1,
    warp_size=1,
    atomic_cycles=1.0,  # plain stores: no contention on one thread
    launch_overhead_us=0.0,
    cpi=1.4,  # pointer-chasing costs between cache hits
    is_cpu=True,
    cache_mb=8.0,
)

#: Tesla K40: the follow-up-era Kepler card (15 SMX @ 745 MHz boost
#: ~875, 288 GB/s) — handy for what-if studies beyond the paper's
#: hardware; not used by any recorded experiment.
TESLA_K40 = DeviceSpec(
    name="Tesla K40",
    num_sms=15,
    clock_ghz=0.875,
    mem_bandwidth_gbs=288.0,
    sm_mem_gbs=20.0,
    threads_per_block=1024,
    atomic_cycles=12.0,  # Kepler halved global-atomic latency
    launch_overhead_us=4.0,
    cpi=2.0,
)

_PRESETS = {d.name: d for d in (TESLA_C2075, GTX_560, TESLA_K40,
                                CORE_I7_2600K)}


def device_by_name(name: str) -> DeviceSpec:
    """Look up a preset by exact name."""
    try:
        return _PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown device {name!r}; presets: {sorted(_PRESETS)}"
        ) from None
