"""Shared-memory arena backing the coarse-grained parallel engine.

The paper assigns one source per SM so that every thread block works on
its own slice of the O(kn) state while sharing one read-only graph.
The CPU analogue needs the same memory layout across *processes*:
:class:`ShmArena` owns named ``multiprocessing.shared_memory`` blocks
holding the CSR arrays and the ``BCState`` rows, and
:class:`ShmAttachment` maps them zero-copy inside a worker.

Layout (one block per field)::

    sources      int64[k]          stored source vertices
    d            int64[k, n]       per-source distances
    sigma        float64[k, n]     per-source path counts
    delta        float64[k, n]     per-source dependencies
    row_offsets  int64[n + 1]      CSR offsets (refreshed per dispatch)
    col_indices  int32[capacity]   CSR adjacency (headroom for growth)

``bc`` is deliberately **not** shared: the score vector is a float
accumulator whose update order defines bit-identity, so only the
parent touches it (see docs/MODEL.md, "Parallel execution").

Every (re)allocation bumps :attr:`ShmArena.generation`; workers cache
one attachment and re-attach only when a task arrives with a different
generation, so steady-state dispatch does zero mapping work.
Generation numbers are drawn from one process-wide counter, so two
arenas can never hand a long-lived worker (e.g. an externally owned
warm pool serving successive engines) the same generation for
different blocks — a stale cached attachment is impossible.

Leak guard: named POSIX segments outlive their creator, so an abnormal
parent exit (unhandled exception, SIGTERM/SIGINT) would leave orphaned
files under ``/dev/shm`` until reboot.  Creating the first arena in a
process installs an ``atexit`` hook plus chaining SIGTERM/SIGINT
handlers that unlink every still-open arena of *that* process (a
pid check keeps forked children — which inherit the handler table —
from unlinking the parent's live segments).  ``SIGKILL`` cannot be
guarded by design; the chaos/CI tooling is the backstop there.
"""

from __future__ import annotations

import atexit
import contextlib
import itertools
import os
import signal
import threading
import weakref
from contextlib import contextmanager
from typing import Dict, List, Tuple

import numpy as np

try:  # pragma: no cover - present on every supported platform
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover - minimal builds without _posixshmem
    _shm = None


#: process-wide arena generation counter (see module docstring); the
#: lock keeps it safe on free-threaded builds where ``next`` on a
#: shared iterator is not guaranteed atomic
_GENERATION_LOCK = threading.Lock()
_GENERATION_COUNTER = itertools.count(1)


def _next_generation() -> int:
    """Next process-wide unique arena generation number."""
    with _GENERATION_LOCK:
        return next(_GENERATION_COUNTER)


def shm_available() -> bool:
    """Can this platform actually create POSIX shared memory?

    Probes with a tiny block instead of trusting the import: containers
    occasionally mount ``/dev/shm`` read-only or not at all, and the
    engine must fall back to serial execution instead of crashing.
    """
    if _shm is None:
        return False
    try:
        block = _create_untracked(8)
    except (OSError, ValueError):
        return False
    _destroy(block)
    return True


@contextmanager
def _tracking_disabled():
    """Suppress resource-tracker registration of shared_memory blocks.

    The arena manages segment lifetime explicitly (:func:`_destroy`),
    so no tracker — the parent's, or a worker's, which with ``fork`` is
    the *same* tracker process — may ever unlink or account a block.
    Before Python 3.13 (``track=False``) both creating and attaching
    register unconditionally; registering-then-unregistering instead
    would race when several workers attach the same block through one
    shared tracker (its cache is a set, so N registers collapse to one
    entry and the N-th unregister logs a KeyError).
    """
    try:
        from multiprocessing import resource_tracker
    except ImportError:  # pragma: no cover - minimal builds
        yield
        return
    original = resource_tracker.register

    def _quiet(name, rtype):
        if rtype != "shared_memory":  # pragma: no cover - not hit here
            original(name, rtype)

    resource_tracker.register = _quiet
    try:
        yield
    finally:
        resource_tracker.register = original


def attach_untracked(name: str):
    """Attach to an existing block without resource-tracker ownership.

    Without this, a worker's tracker would unlink the segment when the
    worker exits — yanking the memory out from under the parent and
    every sibling (or, sharing the parent's tracker under ``fork``,
    corrupt its bookkeeping).
    """
    try:
        return _shm.SharedMemory(name=name, track=False)
    except TypeError:
        pass
    with _tracking_disabled():
        return _shm.SharedMemory(name=name)


def _create_untracked(size: int):
    """Create a block whose lifetime the arena manages by hand."""
    try:
        return _shm.SharedMemory(create=True, size=size, track=False)
    except TypeError:
        pass
    with _tracking_disabled():
        return _shm.SharedMemory(create=True, size=size)


def _destroy(block) -> None:
    """Unlink then unmap *block*, tolerating both an already-removed
    name and numpy views that still pin the mapping (the memory is
    reclaimed when the last mapping dies).

    Unlinks through ``_posixshmem`` directly: ``SharedMemory.unlink``
    would also message the resource tracker, which no longer knows the
    (untracked) name and would log a spurious KeyError.
    """
    try:
        from multiprocessing.shared_memory import _posixshmem

        _posixshmem.shm_unlink(block._name)
    except FileNotFoundError:  # pragma: no cover - racing cleanup
        pass
    except ImportError:  # pragma: no cover - non-POSIX platform
        try:
            block.unlink()
        except FileNotFoundError:
            pass
    try:
        block.close()
    except BufferError:
        pass  # a live view still exports the buffer; freed with the process


#: arenas of this process still holding live segments (weak: a GC'd
#: arena has already released or leaked-by-kill its blocks)
_LIVE_ARENAS: "weakref.WeakSet" = weakref.WeakSet()
#: pid that installed the exit guard (fork children inherit module
#: state and must not unlink the parent's segments)
_GUARD_PID: int = -1
#: previous signal dispositions, restored before re-raising
_PREV_HANDLERS: Dict[int, object] = {}


def _unlink_live_arenas() -> None:
    """Unlink every live arena of the installing process (the atexit /
    signal leak guard; idempotent, never raises)."""
    if os.getpid() != _GUARD_PID:
        return  # forked child: the parent owns these segments
    for arena in list(_LIVE_ARENAS):
        with contextlib.suppress(Exception):  # teardown is best effort
            arena.close()


def _guard_signal_handler(signum, frame) -> None:
    """Unlink live arenas, then restore the previous disposition and
    re-deliver so the process still dies with the right status."""
    _unlink_live_arenas()
    previous = _PREV_HANDLERS.get(signum, signal.SIG_DFL)
    if callable(previous):
        previous(signum, frame)
        return
    try:
        signal.signal(signum, previous if previous is not None
                      else signal.SIG_DFL)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        return
    os.kill(os.getpid(), signum)


def _install_exit_guard() -> None:
    """Idempotently install the atexit + SIGTERM/SIGINT unlink guard
    for the current process (re-armed after fork on first arena)."""
    global _GUARD_PID
    if _GUARD_PID == os.getpid():
        return
    _GUARD_PID = os.getpid()
    atexit.register(_unlink_live_arenas)
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            previous = signal.getsignal(signum)
            if previous is _guard_signal_handler:
                continue
            _PREV_HANDLERS[signum] = previous
            signal.signal(signum, _guard_signal_handler)
        except (ValueError, OSError):  # pragma: no cover - non-main thread
            pass


class ShmArena:
    """Parent-side owner of the named blocks (create, fill, unlink)."""

    def __init__(self) -> None:
        if _shm is None:  # pragma: no cover - guarded by shm_available()
            raise RuntimeError("multiprocessing.shared_memory is unavailable")
        _install_exit_guard()
        _LIVE_ARENAS.add(self)
        self._blocks: Dict[str, object] = {}
        self._arrays: Dict[str, np.ndarray] = {}
        self._meta: Dict[str, Tuple[Tuple[int, ...], str]] = {}
        #: bumped on every (re)allocation; workers re-attach on change.
        #: Drawn from a process-wide counter so generations are unique
        #: across arenas (warm pools outlive individual engines).
        self.generation = _next_generation()

    def allocate(self, field: str, shape, dtype) -> np.ndarray:
        """(Re)allocate *field* and return its parent-side view.

        The previous block for the field, if any, is unlinked — workers
        holding the old generation keep a valid mapping until their
        next task tells them to re-attach.
        """
        shape = tuple(int(s) for s in shape)
        dtype = np.dtype(dtype)
        nbytes = max(1, int(np.prod(shape)) * dtype.itemsize)
        block = _create_untracked(nbytes)
        self.release(field)
        self._blocks[field] = block
        self._arrays[field] = np.ndarray(shape, dtype=dtype, buffer=block.buf)
        self._meta[field] = (shape, dtype.str)
        self.generation = _next_generation()
        return self._arrays[field]

    def get(self, field: str) -> np.ndarray:
        """The parent-side view of *field* (KeyError if unallocated)."""
        return self._arrays[field]

    def owns(self, field: str, arr: np.ndarray) -> bool:
        """Is *arr* exactly this arena's view of *field*?  (Used by the
        engine to decide whether state arrays need migrating out of
        shared memory on :meth:`close`.)"""
        return self._arrays.get(field) is arr

    def capacity(self, field: str) -> int:
        """Element capacity allocated for *field* (>= its shape)."""
        shape, dtype = self._meta[field]
        return int(np.prod(shape)) if shape else 0

    def spec(self) -> dict:
        """Picklable attach recipe shipped with every worker task."""
        return {
            "generation": self.generation,
            "fields": {
                f: (self._blocks[f].name, self._meta[f][0], self._meta[f][1])
                for f in self._blocks
            },
        }

    def release(self, field: str) -> None:
        """Unlink *field*'s block, if any.  The caller must drop every
        view into it first — the unmap is immediate."""
        block = self._blocks.pop(field, None)
        self._arrays.pop(field, None)
        self._meta.pop(field, None)
        if block is not None:
            _destroy(block)

    def views(self) -> Dict[str, np.ndarray]:
        """Every allocated field's parent-side view — the attachment
        shim the supervisor's serial chunk retry executes against
        (same bytes the workers map, so results are bit-identical)."""
        return dict(self._arrays)

    def block_names(self) -> List[str]:
        """The names of every live segment (``/dev/shm/<name>`` on
        Linux); used by the leak-guard tests."""
        return [block.name for block in self._blocks.values()]

    def close(self) -> None:
        """Unlink every block (idempotent)."""
        for field in list(self._blocks):
            self.release(field)
        _LIVE_ARENAS.discard(self)

    def __contains__(self, field: str) -> bool:
        return field in self._blocks


class ShmAttachment:
    """Worker-side zero-copy view of one arena generation."""

    def __init__(self, spec: dict) -> None:
        self.generation = int(spec["generation"])
        self._blocks: List[object] = []
        self.arrays: Dict[str, np.ndarray] = {}
        try:
            for field, (name, shape, dtype) in spec["fields"].items():
                block = attach_untracked(name)
                self._blocks.append(block)
                self.arrays[field] = np.ndarray(
                    tuple(shape), dtype=np.dtype(dtype), buffer=block.buf
                )
        except BaseException:
            self.close()
            raise

    def close(self) -> None:
        """Drop the views and unmap the blocks (never unlinks — the
        parent arena owns segment lifetime)."""
        self.arrays = {}
        for block in self._blocks:
            try:
                block.close()
            except BufferError:  # pragma: no cover - stray view
                pass
        self._blocks = []
