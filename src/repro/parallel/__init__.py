"""Coarse-grained source parallelism on CPU cores.

The paper's central design maps one source vertex to one SM/thread
block; this package is the CPU analogue — a process pool in which each
worker executes whole sources against shared-memory state
(``DynamicBC(workers=N)``; see docs/MODEL.md, "Parallel execution").

Modules
-------
shm
    :class:`ShmArena` / :class:`ShmAttachment` — named shared-memory
    blocks holding the CSR arrays and the ``(k, n)`` state rows.
pool
    :class:`WorkerPool` — long-lived workers, a dynamic chunk queue,
    structured error/crash containment.
supervisor
    :class:`SupervisedPool` — heartbeat monitoring, hung-worker
    SIGKILL, bounded respawn with backoff, poisoned-chunk quarantine,
    and the full-pool → shrunk-pool → serial degradation ladder.
chunks
    :func:`plan_chunks` — contiguous, ordered chunk planning.
reducer
    :func:`merge_indexed` / :func:`rebuild_trace` — deterministic
    (source-order) reduction of worker results.
worker
    The child-process task loop (not imported by the parent's hot
    path).
"""

from repro.parallel.chunks import plan_chunks
from repro.parallel.pool import (
    ParallelExecutionError,
    WorkerCrashed,
    WorkerPool,
    WorkerStatus,
    WorkerTaskError,
)
from repro.parallel.reducer import merge_indexed, rebuild_trace
from repro.parallel.shm import ShmArena, ShmAttachment, shm_available
from repro.parallel.supervisor import (
    ChunkEscalated,
    HealthEvent,
    SupervisedPool,
    SupervisorPolicy,
)

__all__ = [
    "ChunkEscalated",
    "HealthEvent",
    "ParallelExecutionError",
    "ShmArena",
    "ShmAttachment",
    "SupervisedPool",
    "SupervisorPolicy",
    "WorkerCrashed",
    "WorkerPool",
    "WorkerStatus",
    "WorkerTaskError",
    "merge_indexed",
    "plan_chunks",
    "rebuild_trace",
    "shm_available",
]
