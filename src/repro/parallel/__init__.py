"""Coarse-grained source parallelism on CPU cores.

The paper's central design maps one source vertex to one SM/thread
block; this package is the CPU analogue — a process pool in which each
worker executes whole sources against shared-memory state
(``DynamicBC(workers=N)``; see docs/MODEL.md, "Parallel execution").

Modules
-------
shm
    :class:`ShmArena` / :class:`ShmAttachment` — named shared-memory
    blocks holding the CSR arrays and the ``(k, n)`` state rows.
slabs
    :class:`ResultSlabs` / :class:`SlabWriter` — per-worker
    shared-memory result staging with a compact binary framing, so
    the result queue carries headers instead of pickled payloads.
pool
    :class:`WorkerPool` — long-lived workers, a dynamic chunk queue,
    structured error/crash containment.
threadpool
    :class:`ThreadWorkerPool` — the same round protocol on daemon
    threads over direct array views (parallel on free-threaded
    CPython, a correct serialized fallback elsewhere);
    :func:`resolve_pool_backend` picks the backend.
supervisor
    :class:`SupervisedPool` — heartbeat monitoring, hung-worker
    SIGKILL, bounded respawn with backoff, poisoned-chunk quarantine,
    and the full-pool → shrunk-pool → serial degradation ladder, on
    either backend.
chunks
    :func:`plan_chunks` / :func:`plan_chunks_guided` — contiguous,
    ordered chunk planning (fixed split and the guided
    self-scheduling taper).
reducer
    :func:`merge_indexed` / :func:`rebuild_trace` — deterministic
    (source-order) reduction of worker results.
worker
    The child-process task loop (not imported by the parent's hot
    path).
"""

from repro.parallel.chunks import plan_chunks, plan_chunks_guided
from repro.parallel.pool import (
    ParallelExecutionError,
    WorkerCrashed,
    WorkerPool,
    WorkerStatus,
    WorkerTaskError,
)
from repro.parallel.reducer import merge_indexed, rebuild_trace
from repro.parallel.shm import ShmArena, ShmAttachment, shm_available
from repro.parallel.slabs import ResultSlabs, SlabWriter
from repro.parallel.supervisor import (
    ChunkEscalated,
    HealthEvent,
    SupervisedPool,
    SupervisorPolicy,
)
from repro.parallel.threadpool import (
    ThreadWorkerPool,
    free_threading_active,
    resolve_pool_backend,
)

__all__ = [
    "ChunkEscalated",
    "HealthEvent",
    "ParallelExecutionError",
    "ResultSlabs",
    "ShmArena",
    "ShmAttachment",
    "SlabWriter",
    "SupervisedPool",
    "SupervisorPolicy",
    "ThreadWorkerPool",
    "WorkerCrashed",
    "WorkerPool",
    "WorkerStatus",
    "WorkerTaskError",
    "free_threading_active",
    "merge_indexed",
    "plan_chunks",
    "plan_chunks_guided",
    "rebuild_trace",
    "resolve_pool_backend",
    "shm_available",
]
