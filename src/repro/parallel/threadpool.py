"""Thread-backed worker pool: the free-threaded CPython backend.

:class:`ThreadWorkerPool` runs the *identical* round protocol as the
process pool — ``(kind, round_id, chunk_id, common, payload)`` tasks in,
``(status, round_id, chunk_id, result)`` messages out, dynamic chunk
pulling, stale-round discard — but on daemon threads inside the parent
process.  That removes every serialization and shm hop: tasks carry the
state arrays as direct references (``common["views"]``), workers mutate
the engine's own d/sigma/delta rows, and results return by reference
(``queue_bytes == 0`` by construction).

On free-threaded CPython (3.13t+/3.14t, ``sys._is_gil_enabled() is
False``) the workers genuinely run in parallel and this backend beats
the process pool by skipping fork, shm setup and framing entirely.  On
GIL builds it is a *correct but serialized* fallback — useful for
differential testing (bit-identity is backend-independent) and chosen
automatically only when shared memory is unusable
(:func:`resolve_pool_backend`).

Supervision compatibility: the pool exposes the same round primitives
(:meth:`enqueue_round`, :meth:`poll_result`, :meth:`worker_status`,
:meth:`kill_worker`, :meth:`respawn`) and per-worker heartbeat slots,
so :class:`~repro.parallel.supervisor.SupervisedPool` drives both
backends unchanged.  The fault hooks are cooperative — a *crash* makes
the worker thread exit without reporting (liveness polling sees a dead
handle), a *stall* makes it stop heartbeating and park on its kill
event (heartbeat staleness sees a hang, :meth:`kill_worker` releases
it).  The one honest limitation vs processes: a thread hung *inside*
un-instrumented compute cannot be SIGKILLed, only abandoned — teardown
replaces the queues so a late result lands in an orphaned queue, and
the supervisor's retry proceeds against restored rows.
"""

from __future__ import annotations

import queue as _queue
import threading
import time
from types import SimpleNamespace
from typing import Any, Dict, List, Optional

from repro.parallel import worker as _worker
from repro.parallel.pool import (
    DEFAULT_JOIN_TIMEOUT,
    WorkerCrashed,
    WorkerStatus,
    WorkerTaskError,
    ParallelExecutionError,
    _POLL_SECONDS,
    _STATS_ZERO,
)


def free_threading_active() -> bool:
    """``True`` when this interpreter runs with the GIL disabled (the
    free-threaded CPython 3.13+ builds); absent the probe (<=3.12),
    the GIL is on."""
    import sys

    probe = getattr(sys, "_is_gil_enabled", None)
    return probe is not None and not probe()


def resolve_pool_backend(requested: str = "auto") -> str:
    """Resolve an execution backend name to ``processes``/``threads``.

    ``auto`` prefers an explicit ``REPRO_POOL_BACKEND`` environment
    override, then threads when free-threading is active (parallel and
    zero-setup), then processes when shared memory works, and finally
    threads as the always-available correct fallback.
    """
    import os

    if requested in ("processes", "threads"):
        return requested
    if requested != "auto":
        raise ValueError(
            f"pool backend must be 'auto', 'processes' or 'threads', "
            f"got {requested!r}"
        )
    env = os.environ.get("REPRO_POOL_BACKEND", "").strip().lower()
    if env in ("processes", "threads"):
        return env
    if free_threading_active():
        return "threads"
    from repro.parallel.shm import shm_available

    return "processes" if shm_available() else "threads"


class _ThreadHandle:
    """Liveness facade over one worker thread, duck-typing the subset
    of ``multiprocessing.Process`` the pool and supervisor touch
    (``is_alive``/``name``/``join``)."""

    def __init__(self, index: int) -> None:
        self.name = f"repro-thread-worker-{index}"
        self.index = index
        self.thread: Optional[threading.Thread] = None
        #: set by the crash hook or kill_worker: the handle reports
        #: dead even while the abandoned thread unwinds
        self.dead = False
        #: set by the stall hook: the beater stops stamping (the
        #: thread-backend analogue of a SIGSTOP freezing the process)
        self.stalled = False
        #: released by kill_worker; the stalled worker parks on it
        self.kill_event = threading.Event()

    def is_alive(self) -> bool:
        """Alive = the thread runs and has not been marked dead."""
        return (not self.dead and self.thread is not None
                and self.thread.is_alive())

    def join(self, timeout: Optional[float] = None) -> None:
        """Join the underlying thread (no-op when never started)."""
        if self.thread is not None:
            self.thread.join(timeout)


class ThreadWorkerPool:
    """Thread-backed drop-in for :class:`~repro.parallel.pool.
    WorkerPool`: same ctor shape, same round protocol, results by
    reference."""

    backend = "threads"

    def __init__(
        self,
        workers: int,
        start_method: Optional[str] = None,
        join_timeout: float = DEFAULT_JOIN_TIMEOUT,
        heartbeat_interval: float = 0.0,
        result_transport: str = "slab",
        slab_bytes: int = 0,
    ) -> None:
        if workers < 2:
            raise ValueError(f"WorkerPool needs >= 2 workers, got {workers}")
        if join_timeout <= 0:
            raise ValueError(f"join_timeout must be > 0, got {join_timeout}")
        self.workers = int(workers)
        #: kept for API parity with the process pool; threads have no
        #: start method
        self.start_method = "thread"
        self.join_timeout = float(join_timeout)
        self.heartbeat_interval = float(heartbeat_interval)
        #: accepted for ctor parity; threads return results by
        #: reference, so there is nothing to transport
        self.result_transport = "reference"
        self._round = 0
        self._crash_chunks = 0
        self._procs: List[_ThreadHandle] = []
        self._tasks: Any = None
        self._results: Any = None
        self._heartbeat: Optional[List[float]] = None
        self._stats: Dict[str, float] = dict(_STATS_ZERO)
        self._spawn()

    # ------------------------------------------------------------------
    @property
    def transport(self) -> str:
        """Results move by reference — no bytes cross any channel."""
        return "reference"

    def _spawn(self) -> None:
        self._tasks = _queue.Queue()
        self._results = _queue.Queue()
        self._heartbeat = None
        if self.heartbeat_interval > 0:
            now = time.monotonic()
            self._heartbeat = [0.0] * (_worker.HB_SLOTS * self.workers)
            for j in range(self.workers):
                base = _worker.HB_SLOTS * j
                self._heartbeat[base + _worker.HB_BEAT] = now
                self._heartbeat[base + _worker.HB_ROUND] = -1.0
                self._heartbeat[base + _worker.HB_CHUNK] = -1.0
        self._procs = []
        for j in range(self.workers):
            handle = _ThreadHandle(j)
            handle.thread = threading.Thread(
                target=self._worker_loop,
                args=(handle, self._tasks, self._results),
                name=handle.name,
                daemon=True,
            )
            handle.thread.start()
            self._procs.append(handle)
            if self._heartbeat is not None:
                self._start_beater(handle)

    def _start_beater(self, handle: _ThreadHandle) -> None:
        """Per-worker heartbeat stamper; stops with the handle (dead)
        and freezes with it (stalled) so supervision sees the same
        staleness signal a frozen process would produce."""
        base = _worker.HB_SLOTS * handle.index
        interval = self.heartbeat_interval
        heartbeat = self._heartbeat

        def _beat() -> None:
            while handle.is_alive():
                if not handle.stalled:
                    heartbeat[base + _worker.HB_BEAT] = time.monotonic()
                time.sleep(interval)

        threading.Thread(target=_beat, daemon=True,
                         name=f"{handle.name}-beat").start()

    def _worker_loop(self, handle: _ThreadHandle, tasks, results) -> None:
        """The thread-side task loop: same message protocol as
        :func:`repro.parallel.worker.worker_main`, with direct array
        views instead of an shm attachment and cooperative fault
        hooks instead of signals."""
        base = _worker.HB_SLOTS * handle.index
        heartbeat = self._heartbeat
        beating = heartbeat is not None
        while True:
            message = tasks.get()
            if message == _worker.STOP:
                break
            kind, round_id, chunk_id, common, payload = message
            if beating:
                heartbeat[base + _worker.HB_ROUND] = float(round_id)
                heartbeat[base + _worker.HB_CHUNK] = float(chunk_id)
                heartbeat[base + _worker.HB_TASK_START] = time.monotonic()
            # The fault hooks run *outside* the try/finally: a process
            # worker dies via os._exit with its heartbeat slots still
            # stamped, and the supervisor's culprit scan (and chunk
            # quarantine) needs the same forensics here.
            if payload.get(_worker.CRASH_KEY):
                # Cooperative crash: vanish without a result; the
                # parent's liveness poll attributes the loss.
                handle.dead = True
                return
            if payload.get(_worker.STALL_KEY):
                # Cooperative hang: stop heartbeating, park until
                # kill_worker releases us, then vanish.
                handle.stalled = True
                handle.kill_event.wait()
                handle.dead = True
                return
            try:
                shim = SimpleNamespace(arrays=common.get("views") or {})
                result = _worker.run_task(shim, kind, common, payload)
            except BaseException as exc:
                import traceback

                detail = (f"{type(exc).__name__}: {exc}\n"
                          f"{traceback.format_exc()}")
                results.put(("error", round_id, chunk_id, detail))
            else:
                results.put(("ok", round_id, chunk_id, result))
            finally:
                if beating:
                    heartbeat[base + _worker.HB_TASK_START] = 0.0
                    heartbeat[base + _worker.HB_ROUND] = -1.0
                    heartbeat[base + _worker.HB_CHUNK] = -1.0

    # ------------------------------------------------------------------
    def arm_crash(self, chunks: int = 1) -> None:
        """Make the next round's first *chunks* task(s) take their
        worker thread down mid-task (cooperative analogue of the
        process pool's crash hook)."""
        if chunks < 1:
            raise ValueError(f"chunks must be >= 1, got {chunks}")
        self._crash_chunks = int(chunks)

    def enqueue_round(self, kind: str, common: dict,
                      payloads: List[dict]) -> int:
        """Enqueue one round's chunks and return its round id (same
        contract as the process pool)."""
        if not self._procs:
            self._spawn()
        start = time.perf_counter()
        self._round += 1
        round_id = self._round
        for chunk_id, payload in enumerate(payloads):
            if self._crash_chunks > 0 and chunk_id < self._crash_chunks:
                payload = dict(payload)
                payload[_worker.CRASH_KEY] = True
            self._tasks.put((kind, round_id, chunk_id, common, payload))
        self._crash_chunks = 0
        self._stats["rounds"] += 1
        self._stats["chunks"] += len(payloads)
        self._stats["dispatch_seconds"] += time.perf_counter() - start
        return round_id

    def poll_result(self, timeout: float = _POLL_SECONDS):
        """One ``(status, round_id, chunk_id, result)`` message, or
        ``None`` after *timeout* seconds — nothing to decode, results
        are references."""
        try:
            return self._results.get(timeout=timeout)
        except _queue.Empty:
            return None

    def transport_stats(self) -> Dict[str, Any]:
        """Cumulative round accounting; all byte counters stay zero
        because results never leave the address space."""
        out: Dict[str, Any] = dict(self._stats)
        out["transport"] = self.transport
        out["backend"] = self.backend
        return out

    def worker_status(self, j: int, now: Optional[float] = None) -> WorkerStatus:
        """Health snapshot of worker *j* from its heartbeat slots."""
        handle = self._procs[j]
        if self._heartbeat is None:
            return WorkerStatus(j, handle.is_alive(), 0.0, 0.0, -1, -1)
        if now is None:
            now = time.monotonic()
        base = _worker.HB_SLOTS * j
        beat = self._heartbeat[base + _worker.HB_BEAT]
        start = self._heartbeat[base + _worker.HB_TASK_START]
        return WorkerStatus(
            worker=j,
            alive=handle.is_alive(),
            beat_age=max(0.0, now - beat),
            busy_seconds=max(0.0, now - start) if start > 0.0 else 0.0,
            round_id=int(self._heartbeat[base + _worker.HB_ROUND]),
            chunk_id=int(self._heartbeat[base + _worker.HB_CHUNK]),
        )

    def kill_worker(self, j: int) -> None:
        """Cooperatively remove worker *j*: release its kill event
        (frees a parked stalled worker), mark the handle dead, and
        give the thread a bounded join.  A thread genuinely stuck in
        compute is abandoned, not reaped — see the module docstring."""
        handle = self._procs[j]
        handle.kill_event.set()
        handle.dead = True
        handle.join(timeout=self.join_timeout)

    def respawn(self, workers: Optional[int] = None) -> None:
        """Tear down (non-graceful) and bring up a fresh thread pool,
        optionally resized."""
        self._teardown(graceful=False)
        if workers is not None:
            if workers < 2:
                raise ValueError(
                    f"WorkerPool needs >= 2 workers, got {workers}"
                )
            self.workers = int(workers)
        self._spawn()

    def run(self, kind: str, common: dict, payloads: List[dict]) -> List[Any]:
        """Execute one round; results in payload order (same contract
        and failure semantics as the process pool)."""
        if not payloads:
            return []
        round_id = self.enqueue_round(kind, common, payloads)
        outputs: dict = {}
        try:
            while len(outputs) < len(payloads):
                message = self.poll_result(_POLL_SECONDS)
                if message is None:
                    dead = [h.name for h in self._procs if not h.is_alive()]
                    if dead:
                        raise WorkerCrashed(
                            f"worker(s) {', '.join(dead)} died mid-round "
                            f"(kind={kind!r})"
                        )
                    continue
                status, rid, chunk_id, result = message
                if rid != round_id:
                    continue  # stale result from an aborted round
                if status == "error":
                    raise WorkerTaskError(
                        f"task {kind!r} chunk {chunk_id} failed in worker:\n"
                        f"{result}"
                    )
                outputs[chunk_id] = result
        except ParallelExecutionError:
            # Same containment as the process pool: stale chunks of
            # this round must never race the next round's writes.
            self._teardown(graceful=False)
            self._spawn()
            raise
        return [outputs[chunk_id] for chunk_id in range(len(payloads))]

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop the workers and drop the queues (idempotent)."""
        self._teardown(graceful=True)

    def _teardown(self, graceful: bool) -> None:
        if self._procs:
            # STOP sentinels drain the live workers; dead/stalled ones
            # ignore the queue, so release every kill event too.
            for handle in self._procs:
                handle.kill_event.set()
                if self._tasks is not None:
                    self._tasks.put(_worker.STOP)
            deadline = time.monotonic() + self.join_timeout
            for handle in self._procs:
                handle.join(timeout=max(0.0, deadline - time.monotonic()))
                # A thread that failed to exit is abandoned: fresh
                # queues (below) orphan anything it posts later.
                handle.dead = True
        self._procs = []
        self._tasks = None
        self._results = None
        self._heartbeat = None

    # ------------------------------------------------------------------
    def __enter__(self) -> "ThreadWorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ThreadWorkerPool(workers={self.workers}, "
            f"alive={sum(h.is_alive() for h in self._procs)})"
        )
