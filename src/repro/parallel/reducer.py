"""Deterministic reduction of worker results.

Workers finish in whatever order the dynamic chunk queue hands them
work, so nothing about completion order may leak into the results.
The reduction protocol:

1. chunk outputs are returned by :meth:`WorkerPool.run` in *chunk*
   order (which is ascending source order — chunks are contiguous);
2. :func:`merge_indexed` flattens them into an index-keyed map,
   refusing duplicates or gaps;
3. the caller then replays every order-sensitive float accumulation
   (bc scatter-adds, stage folds, counter absorption) by walking its
   own ascending index list — the same left-fold order as the serial
   loop and as checkpoint resume, which is what makes the parallel
   engine bit-identical instead of merely close.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence

from repro.gpu.counters import Trace


def merge_indexed(
    chunk_outputs: Iterable[Sequence[Sequence[Any]]],
    expected: Sequence[int],
) -> Dict[int, tuple]:
    """Flatten per-chunk ``[(index, *payload), ...]`` lists into
    ``{index: payload}``, validating exact coverage of *expected*.

    A missing or duplicated index means a scheduling bug that would
    silently corrupt the deterministic replay, so both are errors.
    """
    merged: Dict[int, tuple] = {}
    for output in chunk_outputs:
        for record in output:
            index = int(record[0])
            if index in merged:
                raise ValueError(f"duplicate result for source index {index}")
            merged[index] = tuple(record[1:])
    missing = [i for i in expected if int(i) not in merged]
    if missing or len(merged) != len(expected):
        raise ValueError(
            f"worker results cover {sorted(merged)} but the round "
            f"dispatched {list(expected)}"
        )
    return merged


def rebuild_trace(label: str, steps: Sequence) -> Trace:
    """Reassemble a :class:`Trace` from a worker's pickled step list
    (steps are frozen dataclasses; the label never crosses the wire)."""
    return Trace.from_steps(label, steps)
