"""Process pool with a dynamic chunk queue and crash containment.

:class:`WorkerPool` owns N long-lived worker processes (one per
simulated SM) sharing a task queue and a result queue.  One *round* =
one :meth:`run` call: every chunk is enqueued up front, idle workers
pull the next chunk as they finish (the coarse-grained dynamic
schedule), and the parent collects results until the round completes.

Failure containment:

* a task that **raises** inside a worker comes back as a structured
  error carrying the remote traceback (:class:`WorkerTaskError`);
* a worker that **dies** without reporting (OOM kill, segfault, the
  test hook :meth:`WorkerPool.arm_crash`) is detected by liveness
  polling and surfaces as :class:`WorkerCrashed`.

Either way the round is unrecoverable mid-flight: chunks of the
aborted round may still be queued and would race the *next* round's
writes to the shared state rows, so the pool tears down queues and
processes and respawns fresh before re-raising.  The engine's update
transaction then rolls the half-written state back (it journals every
active row *before* dispatch), so a crashed worker costs one
rolled-back update, not a corrupted engine.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as _queue
import time
from typing import Any, List, Optional

from repro.parallel import worker as _worker


class ParallelExecutionError(RuntimeError):
    """Base class for failures inside the parallel execution layer."""


class WorkerCrashed(ParallelExecutionError):
    """A worker process died without reporting a result; the pool has
    respawned and the in-flight round must be treated as failed."""


class WorkerTaskError(ParallelExecutionError):
    """A task raised inside a worker; the message carries the remote
    exception and traceback."""


#: seconds between liveness polls while waiting on the result queue
_POLL_SECONDS = 0.05


class WorkerPool:
    """N worker processes around one shared task/result queue pair."""

    def __init__(self, workers: int, start_method: Optional[str] = None) -> None:
        if workers < 2:
            raise ValueError(f"WorkerPool needs >= 2 workers, got {workers}")
        if start_method is None:
            # fork shares the parent's loaded modules (microsecond
            # spawns on Linux); spawn is the portable fallback.
            methods = mp.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self.workers = int(workers)
        self.start_method = start_method
        self._ctx = mp.get_context(start_method)
        self._round = 0
        self._crash_chunks = 0
        self._procs: List[Any] = []
        self._tasks: Any = None
        self._results: Any = None
        self._spawn()

    # ------------------------------------------------------------------
    def _spawn(self) -> None:
        self._tasks = self._ctx.Queue()
        self._results = self._ctx.Queue()
        self._procs = []
        for j in range(self.workers):
            proc = self._ctx.Process(
                target=_worker.worker_main,
                args=(self._tasks, self._results),
                name=f"repro-worker-{j}",
                daemon=True,
            )
            proc.start()
            self._procs.append(proc)

    # ------------------------------------------------------------------
    def arm_crash(self, chunks: int = 1) -> None:
        """Make the next round's first *chunks* task(s) kill their
        worker mid-task (fault-injection hook for the resilience
        suite; see tests/test_parallel.py)."""
        if chunks < 1:
            raise ValueError(f"chunks must be >= 1, got {chunks}")
        self._crash_chunks = int(chunks)

    def run(self, kind: str, common: dict, payloads: List[dict]) -> List[Any]:
        """Execute one round and return chunk results in payload order.

        Chunks are pulled dynamically by idle workers; completion order
        is nondeterministic, return order is not.
        """
        if not payloads:
            return []
        if not self._procs:
            self._spawn()
        self._round += 1
        round_id = self._round
        for chunk_id, payload in enumerate(payloads):
            if self._crash_chunks > 0 and chunk_id < self._crash_chunks:
                payload = dict(payload)
                payload[_worker.CRASH_KEY] = True
            self._tasks.put((kind, round_id, chunk_id, common, payload))
        self._crash_chunks = 0
        outputs: dict = {}
        try:
            while len(outputs) < len(payloads):
                try:
                    status, rid, chunk_id, result = self._results.get(
                        timeout=_POLL_SECONDS
                    )
                except _queue.Empty:
                    dead = [p.name for p in self._procs if not p.is_alive()]
                    if dead:
                        raise WorkerCrashed(
                            f"worker(s) {', '.join(dead)} died mid-round "
                            f"(kind={kind!r})"
                        )
                    continue
                if rid != round_id:
                    continue  # stale result from an aborted round
                if status == "error":
                    raise WorkerTaskError(
                        f"task {kind!r} chunk {chunk_id} failed in worker:\n"
                        f"{result}"
                    )
                outputs[chunk_id] = result
        except ParallelExecutionError:
            # Stale tasks of this round may still be queued; starting
            # the next round over the same queues would let them race
            # fresh writes to the shared rows.  Tear down and respawn.
            self._teardown(graceful=False)
            self._spawn()
            raise
        return [outputs[chunk_id] for chunk_id in range(len(payloads))]

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop the workers and release the queues (idempotent)."""
        self._teardown(graceful=True)

    def _teardown(self, graceful: bool) -> None:
        if graceful and self._procs:
            for _ in self._procs:
                try:
                    self._tasks.put(_worker.STOP)
                except Exception:  # pragma: no cover - queue already gone
                    break
        deadline = time.monotonic() + 2.0
        for proc in self._procs:
            if graceful:
                proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        self._procs = []
        for q in (self._tasks, self._results):
            if q is None:
                continue
            try:
                q.cancel_join_thread()
                q.close()
            except Exception:  # pragma: no cover - platform teardown races
                pass
        self._tasks = None
        self._results = None

    # ------------------------------------------------------------------
    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"WorkerPool(workers={self.workers}, "
            f"start_method={self.start_method!r}, "
            f"alive={sum(p.is_alive() for p in self._procs)})"
        )
