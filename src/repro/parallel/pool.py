"""Process pool with a dynamic chunk queue and crash containment.

:class:`WorkerPool` owns N long-lived worker processes (one per
simulated SM) sharing a task queue and a result queue.  One *round* =
one :meth:`run` call: every chunk is enqueued up front, idle workers
pull the next chunk as they finish (the coarse-grained dynamic
schedule), and the parent collects results until the round completes.

Failure containment:

* a task that **raises** inside a worker comes back as a structured
  error carrying the remote traceback (:class:`WorkerTaskError`);
* a worker that **dies** without reporting (OOM kill, segfault, the
  test hook :meth:`WorkerPool.arm_crash`) is detected by liveness
  polling and surfaces as :class:`WorkerCrashed`.

Either way the round is unrecoverable mid-flight: chunks of the
aborted round may still be queued and would race the *next* round's
writes to the shared state rows, so the pool tears down queues and
processes and respawns fresh before re-raising.  The engine's update
transaction then rolls the half-written state back (it journals every
active row *before* dispatch), so a crashed worker costs one
rolled-back update, not a corrupted engine.

:class:`~repro.parallel.supervisor.SupervisedPool` builds on the
round primitives exposed here (:meth:`WorkerPool.enqueue_round`,
:meth:`WorkerPool.poll_result`, :meth:`WorkerPool.worker_status`,
:meth:`WorkerPool.kill_worker`, :meth:`WorkerPool.respawn`) to add
heartbeat monitoring, hung-worker SIGKILL, bounded respawn and a
degradation ladder — turning "one crash demotes to serial forever"
into "retry, quarantine, degrade, re-promote".
"""

from __future__ import annotations

import contextlib
import multiprocessing as mp
import queue as _queue
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.parallel import slabs as _slabs
from repro.parallel import worker as _worker


class ParallelExecutionError(RuntimeError):
    """Base class for failures inside the parallel execution layer."""


class WorkerCrashed(ParallelExecutionError):
    """A worker process died without reporting a result; the pool has
    respawned and the in-flight round must be treated as failed."""


class WorkerTaskError(ParallelExecutionError):
    """A task raised inside a worker; the message carries the remote
    exception and traceback."""


#: seconds between liveness polls while waiting on the result queue
_POLL_SECONDS = 0.05

#: default seconds granted per process per teardown-escalation stage
DEFAULT_JOIN_TIMEOUT = 2.0

#: zeroed transport-stats template (:meth:`WorkerPool.transport_stats`)
_STATS_ZERO = {
    "rounds": 0,  #: rounds dispatched
    "chunks": 0,  #: chunks dispatched
    "queue_bytes": 0,  #: result bytes that crossed the queue (headers
    #: for slab messages, framed payloads for queue/spill messages)
    "slab_bytes": 0,  #: result bytes read in place from the slabs
    "spills": 0,  #: slab-transport results that overflowed to the queue
    "raw_results": 0,  #: results the framing could not carry (pickled)
    "dispatch_seconds": 0.0,  #: parent time enqueueing rounds
    "decode_seconds": 0.0,  #: parent time decoding framed results
}


@dataclass(frozen=True)
class WorkerStatus:
    """One worker's health snapshot, read from its heartbeat slots.

    ``beat_age``/``busy_seconds`` are ``0.0`` when heartbeats are
    disabled (the pool was built with ``heartbeat_interval=0``).
    """

    worker: int  #: worker index in the pool
    alive: bool  #: is the process alive (``Process.is_alive``)?
    beat_age: float  #: seconds since the last heartbeat stamp
    busy_seconds: float  #: seconds spent on the current task (0 = idle)
    round_id: int  #: round of the current task (-1 when idle)
    chunk_id: int  #: chunk of the current task (-1 when idle)


class WorkerPool:
    """N worker processes around one shared task/result queue pair."""

    #: execution backend tag (the thread pool overrides this); the
    #: engine and the benchmarks branch on it, never on the class
    backend = "processes"

    def __init__(
        self,
        workers: int,
        start_method: Optional[str] = None,
        join_timeout: float = DEFAULT_JOIN_TIMEOUT,
        heartbeat_interval: float = 0.0,
        result_transport: str = "slab",
        slab_bytes: int = _slabs.DEFAULT_SLAB_BYTES,
    ) -> None:
        if workers < 2:
            raise ValueError(f"WorkerPool needs >= 2 workers, got {workers}")
        if join_timeout <= 0:
            raise ValueError(f"join_timeout must be > 0, got {join_timeout}")
        if result_transport not in ("slab", "queue"):
            raise ValueError(
                f"result_transport must be 'slab' or 'queue', "
                f"got {result_transport!r}"
            )
        if start_method is None:
            # fork shares the parent's loaded modules (microsecond
            # spawns on Linux); spawn is the portable fallback.
            methods = mp.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self.workers = int(workers)
        self.start_method = start_method
        #: seconds granted per process per stage of the teardown
        #: escalation (join -> terminate -> kill); each stage that
        #: times out hands the process to the next, harder one
        self.join_timeout = float(join_timeout)
        #: heartbeat stamp period for the workers (0 disables the
        #: heartbeat slots entirely — the legacy engine path)
        self.heartbeat_interval = float(heartbeat_interval)
        #: requested result transport: ``"slab"`` stages payloads in
        #: shared-memory result slabs (headers only on the queue);
        #: ``"queue"`` ships the same framing as bytes through the
        #: queue (the measurable baseline).  Slab allocation failure
        #: (no /dev/shm) silently degrades to ``"queue"``.
        self.result_transport = result_transport
        self.slab_bytes = int(slab_bytes)
        self._ctx = mp.get_context(start_method)
        self._round = 0
        self._crash_chunks = 0
        self._procs: List[Any] = []
        self._tasks: Any = None
        self._results: Any = None
        self._heartbeat: Any = None
        self._slabs: Optional[_slabs.ResultSlabs] = None
        self._stats: Dict[str, float] = dict(_STATS_ZERO)
        self._spawn()

    # ------------------------------------------------------------------
    @property
    def transport(self) -> str:
        """The transport actually in effect (``"queue"`` when slab
        allocation failed or was not requested)."""
        return "slab" if self._slabs is not None else "queue"

    def _spawn(self) -> None:
        self._tasks = self._ctx.Queue()
        self._results = self._ctx.Queue()
        self._heartbeat = None
        if self.heartbeat_interval > 0:
            self._heartbeat = self._ctx.Array(
                "d", _worker.HB_SLOTS * self.workers, lock=False
            )
            now = time.monotonic()
            for j in range(self.workers):
                base = _worker.HB_SLOTS * j
                self._heartbeat[base + _worker.HB_BEAT] = now
                self._heartbeat[base + _worker.HB_TASK_START] = 0.0
                self._heartbeat[base + _worker.HB_ROUND] = -1.0
                self._heartbeat[base + _worker.HB_CHUNK] = -1.0
        self._slabs = None
        if self.result_transport == "slab":
            try:
                self._slabs = _slabs.ResultSlabs(
                    self.workers, self.slab_bytes
                )
            except Exception:
                # No usable /dev/shm: degrade to the queue transport
                # (same framing, legacy copy cost) rather than fail.
                self._slabs = None
        slab_spec = self._slabs.spec() if self._slabs is not None else None
        self._procs = []
        for j in range(self.workers):
            proc = self._ctx.Process(
                target=_worker.worker_main,
                args=(self._tasks, self._results, j, self._heartbeat,
                      self.heartbeat_interval, slab_spec, self.transport),
                name=f"repro-worker-{j}",
                daemon=True,
            )
            proc.start()
            self._procs.append(proc)

    # ------------------------------------------------------------------
    def arm_crash(self, chunks: int = 1) -> None:
        """Make the next round's first *chunks* task(s) kill their
        worker mid-task (fault-injection hook for the resilience
        suite; see tests/test_parallel.py)."""
        if chunks < 1:
            raise ValueError(f"chunks must be >= 1, got {chunks}")
        self._crash_chunks = int(chunks)

    def enqueue_round(self, kind: str, common: dict,
                      payloads: List[dict]) -> int:
        """Enqueue one round's chunks and return its round id.

        Armed crash marks (:meth:`arm_crash`) are applied to the first
        chunk(s) and consumed.  The caller collects results itself via
        :meth:`poll_result` (this is the supervisor's entry point;
        :meth:`run` wraps it with the legacy collect loop).
        """
        if not self._procs:
            self._spawn()
        start = time.perf_counter()
        self._round += 1
        round_id = self._round
        for chunk_id, payload in enumerate(payloads):
            if self._crash_chunks > 0 and chunk_id < self._crash_chunks:
                payload = dict(payload)
                payload[_worker.CRASH_KEY] = True
            self._tasks.put((kind, round_id, chunk_id, common, payload))
        self._crash_chunks = 0
        self._stats["rounds"] += 1
        self._stats["chunks"] += len(payloads)
        self._stats["dispatch_seconds"] += time.perf_counter() - start
        return round_id

    def poll_result(self, timeout: float = _POLL_SECONDS):
        """One ``(status, round_id, chunk_id, result)`` message from
        the result queue, or ``None`` after *timeout* seconds.

        Slab (``ok-slab``) and framed-queue (``ok-enc``) messages are
        decoded here, so callers only ever see ``ok``/``error``.  A
        message from a superseded round is returned *undecoded* (its
        slab bytes may already be overwritten); callers discard it by
        round id, as they always have.
        """
        try:
            message = self._results.get(timeout=timeout)
        except _queue.Empty:
            return None
        status, rid, chunk_id, result = message
        if status not in ("ok-slab", "ok-enc"):
            if status == "ok":
                self._stats["raw_results"] += 1
            return message
        if rid != self._round:
            return ("stale", rid, chunk_id, None)
        start = time.perf_counter()
        if status == "ok-slab":
            worker_id, offset, length = result
            self._stats["queue_bytes"] += _slabs.HEADER_BYTES
            self._stats["slab_bytes"] += length
            decoded = self._slabs.read(worker_id, offset, length)
        else:
            self._stats["queue_bytes"] += len(result) + _slabs.HEADER_BYTES
            if self._slabs is not None:
                self._stats["spills"] += 1
            decoded = _slabs.decode(result)
        self._stats["decode_seconds"] += time.perf_counter() - start
        return ("ok", rid, chunk_id, decoded)

    def transport_stats(self) -> Dict[str, Any]:
        """Cumulative result-transport accounting (benchmarks read
        this to report bytes moved and real dispatch overhead)."""
        out: Dict[str, Any] = dict(self._stats)
        out["transport"] = self.transport
        out["backend"] = self.backend
        return out

    def worker_status(self, j: int, now: Optional[float] = None) -> WorkerStatus:
        """Health snapshot of worker *j* from its heartbeat slots."""
        proc = self._procs[j]
        if self._heartbeat is None:
            return WorkerStatus(j, proc.is_alive(), 0.0, 0.0, -1, -1)
        if now is None:
            now = time.monotonic()
        base = _worker.HB_SLOTS * j
        beat = self._heartbeat[base + _worker.HB_BEAT]
        start = self._heartbeat[base + _worker.HB_TASK_START]
        return WorkerStatus(
            worker=j,
            alive=proc.is_alive(),
            beat_age=max(0.0, now - beat),
            busy_seconds=max(0.0, now - start) if start > 0.0 else 0.0,
            round_id=int(self._heartbeat[base + _worker.HB_ROUND]),
            chunk_id=int(self._heartbeat[base + _worker.HB_CHUNK]),
        )

    def kill_worker(self, j: int) -> None:
        """SIGKILL worker *j* and reap it.  SIGKILL (not SIGTERM) is
        mandatory here: a SIGSTOPped process queues SIGTERM without
        acting on it, but SIGKILL removes even a stopped process."""
        proc = self._procs[j]
        if proc.is_alive():
            proc.kill()
        proc.join(timeout=self.join_timeout)

    def respawn(self, workers: Optional[int] = None) -> None:
        """Tear the pool down (non-graceful) and bring up a fresh one,
        optionally resized to *workers* processes."""
        self._teardown(graceful=False)
        if workers is not None:
            if workers < 2:
                raise ValueError(f"WorkerPool needs >= 2 workers, got {workers}")
            self.workers = int(workers)
        self._spawn()

    def run(self, kind: str, common: dict, payloads: List[dict]) -> List[Any]:
        """Execute one round and return chunk results in payload order.

        Chunks are pulled dynamically by idle workers; completion order
        is nondeterministic, return order is not.
        """
        if not payloads:
            return []
        round_id = self.enqueue_round(kind, common, payloads)
        outputs: dict = {}
        try:
            while len(outputs) < len(payloads):
                message = self.poll_result(_POLL_SECONDS)
                if message is None:
                    dead = [p.name for p in self._procs if not p.is_alive()]
                    if dead:
                        raise WorkerCrashed(
                            f"worker(s) {', '.join(dead)} died mid-round "
                            f"(kind={kind!r})"
                        )
                    continue
                status, rid, chunk_id, result = message
                if rid != round_id:
                    continue  # stale result from an aborted round
                if status == "error":
                    raise WorkerTaskError(
                        f"task {kind!r} chunk {chunk_id} failed in worker:\n"
                        f"{result}"
                    )
                outputs[chunk_id] = result
        except ParallelExecutionError:
            # Stale tasks of this round may still be queued; starting
            # the next round over the same queues would let them race
            # fresh writes to the shared rows.  Tear down and respawn.
            self._teardown(graceful=False)
            self._spawn()
            raise
        return [outputs[chunk_id] for chunk_id in range(len(payloads))]

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop the workers and release the queues (idempotent)."""
        self._teardown(graceful=True)

    def _teardown(self, graceful: bool) -> None:
        if graceful and self._procs:
            for _ in self._procs:
                try:
                    self._tasks.put(_worker.STOP)
                except Exception:  # pragma: no cover - queue already gone
                    break
        # Escalation ladder: (graceful) join -> terminate -> kill, each
        # stage bounded by join_timeout.  The final SIGKILL+join always
        # reaps — even a SIGSTOPped worker, which ignores SIGTERM but
        # cannot survive SIGKILL — so no zombie outlives a teardown.
        deadline = time.monotonic() + self.join_timeout
        for proc in self._procs:
            if graceful:
                proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=self.join_timeout)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=self.join_timeout)
        self._procs = []
        for q in (self._tasks, self._results):
            if q is None:
                continue
            with contextlib.suppress(Exception):  # platform teardown races
                q.cancel_join_thread()
                q.close()
        self._tasks = None
        self._results = None
        self._heartbeat = None
        if self._slabs is not None:
            self._slabs.close()
            self._slabs = None

    # ------------------------------------------------------------------
    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"WorkerPool(workers={self.workers}, "
            f"start_method={self.start_method!r}, "
            f"alive={sum(p.is_alive() for p in self._procs)})"
        )
