"""Worker-pool supervision: heartbeats, deadlines, respawn, ladder.

The raw :class:`~repro.parallel.pool.WorkerPool` contains failures but
does not *survive* them: one dead worker fails the round and (at the
engine level) used to demote execution to serial permanently, and a
**hung** worker — SIGSTOPped, deadlocked, or spinning — blocked the
collect loop forever.  :class:`SupervisedPool` wraps the pool with the
machinery a long-running streaming service needs:

**Detection.**  Every worker stamps a heartbeat into a lock-free shared
array (:mod:`repro.parallel.worker`); the supervisor's collect loop
ages those stamps against its own clock.  A worker whose beat is older
than ``heartbeat_interval * hung_multiplier`` is *hung* (a SIGSTOP
freezes the heartbeat thread too, so it is caught here, within twice
the heartbeat interval); a worker that keeps beating but has been on
one chunk longer than ``chunk_deadline`` has a runaway chunk.  Both
are SIGKILLed — the only signal a stopped process cannot ignore — and
dead workers (crash, OOM kill) are caught by liveness polling.

**Recovery.**  A failed round tears the pool down (stale queued chunks
must never race the retry's writes), restores every pending chunk's
state rows via the caller's ``reset`` callback, respawns after an
exponential backoff, and re-runs the round.  Determinism makes this
safe: re-executing a chunk from restored rows is bit-identical to the
first attempt.

**Quarantine.**  A chunk whose execution has killed
``poison_threshold`` workers is poisoned: it is pulled out of pool
dispatch and retried *serially in the parent* (same handler, same
shared arrays — bit-identical).  If even that fails, the chunk
escalates as :class:`ChunkEscalated`; the engine's transaction rolls
the update back and the guard layer takes over (repair/recompute).

**Degradation ladder.**  ``full-pool -> shrunk-pool -> serial`` (and,
beyond the pool, the guard's recompute).  Exhausting the respawn
budget demotes one rung; a configurable streak of healthy rounds
promotes back up, through a ping probe when leaving serial.  Every
transition and every detection is recorded as a :class:`HealthEvent`
(drained by the engine into the guard-event log and
``DynamicBC.health_report()``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set

from repro.parallel.pool import (
    ParallelExecutionError,
    WorkerCrashed,
    WorkerPool,
    WorkerTaskError,
    _POLL_SECONDS,
)
from repro.parallel import worker as _worker

#: ladder rungs, healthiest first (the fourth rung — guarded
#: recompute — lives outside the pool, in repro.resilience.guards)
FULL_POOL = "full-pool"
SHRUNK_POOL = "shrunk-pool"
SERIAL = "serial"
LADDER = (FULL_POOL, SHRUNK_POOL, SERIAL)


class ChunkEscalated(ParallelExecutionError):
    """A quarantined chunk failed even its serial in-parent retry; the
    caller must escalate (transaction rollback + guard recovery)."""


@dataclass(frozen=True)
class SupervisorPolicy:
    """Tuning knobs of the supervision subsystem.

    Attributes
    ----------
    heartbeat_interval:
        Seconds between worker heartbeat stamps.
    hung_multiplier:
        A worker is declared hung when its last beat is older than
        ``heartbeat_interval * hung_multiplier`` seconds (the default
        2.0 gives the "detected within twice the heartbeat interval"
        guarantee for SIGSTOPped workers).
    chunk_deadline:
        Wall-clock budget for one chunk; a worker that keeps beating
        but exceeds it is treated as hung (runaway compute loop).
    max_respawns:
        Pool respawn+retry attempts per :meth:`SupervisedPool.run`
        before demoting one ladder rung.
    backoff_base / backoff_max:
        Exponential respawn backoff: attempt *a* sleeps
        ``min(backoff_base * 2**(a-1), backoff_max)`` seconds.
    poison_threshold:
        Worker deaths attributable to one chunk before it is
        quarantined and retried serially in the parent.
    promote_after:
        Consecutive healthy rounds at a degraded rung before probing /
        promoting one rung up.
    min_workers:
        Floor of the shrunk pool (``max(min_workers, workers // 2)``).
    """

    heartbeat_interval: float = 0.25
    hung_multiplier: float = 2.0
    chunk_deadline: float = 60.0
    max_respawns: int = 3
    backoff_base: float = 0.05
    backoff_max: float = 1.0
    poison_threshold: int = 2
    promote_after: int = 8
    min_workers: int = 2

    def __post_init__(self) -> None:
        if self.heartbeat_interval <= 0:
            raise ValueError(
                f"heartbeat_interval must be > 0, got {self.heartbeat_interval}"
            )
        if self.hung_multiplier < 1.0:
            raise ValueError(
                f"hung_multiplier must be >= 1, got {self.hung_multiplier}"
            )
        if self.chunk_deadline <= 0:
            raise ValueError(
                f"chunk_deadline must be > 0, got {self.chunk_deadline}"
            )
        if self.max_respawns < 0:
            raise ValueError(
                f"max_respawns must be >= 0, got {self.max_respawns}"
            )
        if self.backoff_base < 0 or self.backoff_max < self.backoff_base:
            raise ValueError("need 0 <= backoff_base <= backoff_max")
        if self.poison_threshold < 1:
            raise ValueError(
                f"poison_threshold must be >= 1, got {self.poison_threshold}"
            )
        if self.promote_after < 1:
            raise ValueError(
                f"promote_after must be >= 1, got {self.promote_after}"
            )
        if self.min_workers < 2:
            raise ValueError(
                f"min_workers must be >= 2, got {self.min_workers}"
            )

    @property
    def hung_deadline(self) -> float:
        """Seconds of heartbeat silence that declare a worker hung."""
        return self.heartbeat_interval * self.hung_multiplier


@dataclass(frozen=True)
class HealthEvent:
    """One supervision observation or state transition.

    ``action`` is one of: ``worker-death``, ``hung-worker``,
    ``chunk-timeout``, ``kill``, ``backoff``, ``respawn``,
    ``quarantine``, ``serial-retry``, ``task-error``, ``escalate``,
    ``demote``, ``promote``, ``probe``.
    """

    seq: int  #: monotonically increasing per pool
    action: str
    level: str  #: ladder rung when the event was emitted
    detail: str = ""
    worker: int = -1  #: worker index involved (-1 when n/a)
    chunk: int = -1  #: global chunk index involved (-1 when n/a)


class _RoundFailure(Exception):
    """Internal: one monitored round failed; carries the culprits as
    ``(worker_index, action, local_chunk_id, detail)`` tuples."""

    def __init__(self, culprits: List[tuple], detail: str = "") -> None:
        super().__init__(detail or f"{len(culprits)} worker failure(s)")
        self.culprits = culprits
        self.detail = detail


class SupervisedPool:
    """A :class:`WorkerPool` under heartbeat supervision.

    Drop-in for the engine's pool slot: :meth:`run` has the same
    payload-order contract as ``WorkerPool.run`` but survives crashes
    and hangs via monitored rounds, bounded respawn, quarantine and
    the degradation ladder (module docstring).  The optional ``reset``
    / ``serial`` callbacks supply the two state-touching primitives
    the supervisor itself cannot know: restoring a chunk's rows before
    a retry, and executing a chunk in the parent process.
    """

    def __init__(
        self,
        workers: int,
        start_method: Optional[str] = None,
        policy: Optional[SupervisorPolicy] = None,
        join_timeout: float = 2.0,
        backend: str = "processes",
        result_transport: str = "slab",
    ) -> None:
        self.policy = policy or SupervisorPolicy()
        #: the pool size the caller asked for (chunk planning uses
        #: this even while degraded, keeping chunk shapes stable)
        self.requested_workers = int(workers)
        self.level = FULL_POOL
        self.events: List[HealthEvent] = []
        self.counts: Dict[str, int] = {
            "kills": 0, "deaths": 0, "hung": 0, "timeouts": 0,
            "respawns": 0, "quarantined": 0, "escalations": 0,
            "demotions": 0, "promotions": 0, "probes": 0,
            "serial_retries": 0,
        }
        self.healthy_rounds = 0
        self._seq = 0
        self._drained = 0
        self._armed: Dict[str, List[int]] = {}  # key -> [chunks, rounds]
        if backend not in ("processes", "threads"):
            raise ValueError(
                f"backend must be 'processes' or 'threads', got {backend!r}"
            )
        if backend == "threads":
            from repro.parallel.threadpool import ThreadWorkerPool

            pool_cls = ThreadWorkerPool
        else:
            pool_cls = WorkerPool
        self._pool = pool_cls(
            workers, start_method,
            join_timeout=join_timeout,
            heartbeat_interval=self.policy.heartbeat_interval,
            result_transport=result_transport,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def workers(self) -> int:
        """Requested pool width (stable across ladder levels so chunk
        planning — and therefore results — never depends on health)."""
        return self.requested_workers

    @property
    def start_method(self) -> str:
        """The underlying pool's multiprocessing start method."""
        return self._pool.start_method

    @property
    def backend(self) -> str:
        """Execution backend of the underlying pool."""
        return self._pool.backend

    def transport_stats(self) -> Dict[str, Any]:
        """The underlying pool's result-transport accounting."""
        return self._pool.transport_stats()

    def drain_events(self) -> List[HealthEvent]:
        """Events recorded since the previous drain (the engine folds
        these into the guard-event log during replays)."""
        new = self.events[self._drained:]
        self._drained = len(self.events)
        return new

    def health_report(self) -> Dict[str, Any]:
        """Operator-facing snapshot: ladder level, live workers, and
        every supervision counter."""
        report: Dict[str, Any] = {
            "level": self.level,
            "ladder": list(LADDER),
            "requested_workers": self.requested_workers,
            "live_workers": sum(
                p.is_alive() for p in self._pool._procs
            ),
            "healthy_rounds": self.healthy_rounds,
            "events": len(self.events),
        }
        report.update(self.counts)
        return report

    # ------------------------------------------------------------------
    # Fault arming (chaos harness hooks)
    # ------------------------------------------------------------------
    def arm_crash(self, chunks: int = 1, rounds: int = 1) -> None:
        """For the next *rounds* dispatched pool rounds (retries
        included), the first *chunks* pending chunks kill their
        worker mid-task (``os._exit``)."""
        self._arm(_worker.CRASH_KEY, chunks, rounds)

    def arm_stall(self, chunks: int = 1, rounds: int = 1) -> None:
        """Like :meth:`arm_crash`, but the worker SIGSTOPs itself — a
        silent hang only heartbeat staleness can detect."""
        self._arm(_worker.STALL_KEY, chunks, rounds)

    def _arm(self, key: str, chunks: int, rounds: int) -> None:
        if chunks < 1 or rounds < 1:
            raise ValueError("chunks and rounds must be >= 1")
        self._armed[key] = [int(chunks), int(rounds)]

    def pending_faults(self) -> int:
        """Armed fault rounds not yet consumed by a dispatch."""
        return sum(rounds for _, rounds in self._armed.values())

    # ------------------------------------------------------------------
    # The supervised round
    # ------------------------------------------------------------------
    def run(
        self,
        kind: str,
        common: dict,
        payloads: List[dict],
        *,
        reset: Optional[Callable[[dict], None]] = None,
        serial: Optional[Callable[[str, dict, dict], Any]] = None,
        retryable: bool = True,
    ) -> List[Any]:
        """Execute one round under supervision; results in payload
        order, bit-identical to an unsupervised (or serial) run.

        ``reset(payload)`` must restore every state row the chunk can
        touch to its pre-round bytes (the engine wires this to the
        update transaction's journal); it is called for every pending
        chunk before a retry and before a serial fallback.  ``serial``
        executes one chunk in the parent (quarantine and the serial
        ladder rung).  ``retryable=False`` preserves the legacy
        fail-fast contract: the first failure raises
        :class:`WorkerCrashed` after a pool respawn.
        """
        if not payloads:
            return []
        self._maybe_promote()
        results: List[Any] = [None] * len(payloads)
        done = [False] * len(payloads)
        strikes: Dict[int, int] = {}
        quarantined: Set[int] = set()
        attempts = 0
        while self.level != SERIAL:
            pending = [
                i for i in range(len(payloads))
                if not done[i] and i not in quarantined
            ]
            if not pending:
                break
            marked = self._mark_faults([payloads[i] for i in pending])
            try:
                outputs = self._round(kind, common, marked)
            except WorkerTaskError:
                # A handler bug is deterministic: retrying cannot help
                # and the pool is not unhealthy.  Respawn (stale chunks
                # may still be queued) and let the caller handle it.
                self._respawn_pool(self._level_size())
                self._emit("task-error", detail=f"kind={kind}")
                raise
            except _RoundFailure as fail:
                self._absorb_failure(fail, kind, pending, strikes,
                                     quarantined)
                if reset is not None:
                    for i in pending:
                        reset(payloads[i])
                if not retryable:
                    self._respawn_pool(self._level_size())
                    raise WorkerCrashed(
                        f"supervised round failed (kind={kind!r}): "
                        f"{fail.detail or 'worker failure'}"
                    )
                attempts += 1
                if attempts > self.policy.max_respawns:
                    self._demote()
                    attempts = 0
                if self.level != SERIAL:
                    self._backoff(attempts)
                    self._respawn_pool(self._level_size())
                continue
            for i, out in zip(pending, outputs):
                results[i] = out
                done[i] = True
            self.healthy_rounds += 1
        # Serial leg: quarantined chunks, plus everything when the
        # ladder sits at its serial rung.
        leftovers = [i for i in range(len(payloads)) if not done[i]]
        for i in leftovers:
            if reset is not None:
                reset(payloads[i])
            self.counts["serial_retries"] += 1
            self._emit("serial-retry", chunk=i, detail=f"kind={kind}")
            try:
                if serial is None:
                    raise RuntimeError("no serial executor provided")
                results[i] = serial(kind, common, payloads[i])
            except Exception as exc:
                self.counts["escalations"] += 1
                self._emit("escalate", chunk=i,
                           detail=f"serial retry failed: {exc}")
                raise ChunkEscalated(
                    f"chunk {i} (kind={kind!r}) failed its serial retry: "
                    f"{exc}"
                ) from exc
            done[i] = True
        if leftovers and self.level == SERIAL:
            self.healthy_rounds += 1
        return results

    def _round(self, kind: str, common: dict,
               payloads: List[dict]) -> List[Any]:
        """One monitored pool round; raises :class:`_RoundFailure` on
        any death/hang/deadline (hung workers already SIGKILLed) and
        :class:`WorkerTaskError` on a remote exception."""
        pool = self._pool
        try:
            round_id = pool.enqueue_round(kind, common, payloads)
        except Exception as exc:
            raise _RoundFailure([], f"dispatch failed: {exc}")
        outputs: dict = {}
        while len(outputs) < len(payloads):
            try:
                message = pool.poll_result(_POLL_SECONDS)
            except Exception as exc:
                # A worker SIGKILLed mid-put can corrupt the queue
                # stream; attribution is impossible, the round is not.
                raise _RoundFailure([], f"result queue failed: {exc}")
            if message is not None:
                status, rid, chunk_id, result = message
                if rid != round_id:
                    continue  # stale result from an aborted round
                if status == "error":
                    raise WorkerTaskError(
                        f"task {kind!r} chunk {chunk_id} failed in "
                        f"worker:\n{result}"
                    )
                outputs[chunk_id] = result
                continue
            culprits = self._find_culprits(round_id)
            if culprits:
                raise _RoundFailure(culprits)
        return [outputs[chunk_id] for chunk_id in range(len(payloads))]

    def _find_culprits(self, round_id: int) -> List[tuple]:
        """Scan worker health; SIGKILL hung ones.  Returns
        ``(worker, action, local_chunk, detail)`` tuples."""
        pool = self._pool
        policy = self.policy
        culprits: List[tuple] = []
        now = time.monotonic()
        for j in range(len(pool._procs)):
            st = pool.worker_status(j, now)
            chunk = st.chunk_id if st.round_id == round_id else -1
            if not st.alive:
                culprits.append((j, "worker-death", chunk,
                                 f"died (chunk {chunk})"))
                continue
            action = None
            if st.beat_age > policy.hung_deadline:
                action = "hung-worker"
                detail = (f"no heartbeat for {st.beat_age:.3f}s "
                          f"(deadline {policy.hung_deadline:.3f}s)")
            elif st.busy_seconds > policy.chunk_deadline:
                action = "chunk-timeout"
                detail = (f"chunk {chunk} running {st.busy_seconds:.3f}s "
                          f"(deadline {policy.chunk_deadline:.3f}s)")
            if action is not None:
                pool.kill_worker(j)
                self.counts["kills"] += 1
                culprits.append((j, action, chunk, detail))
        return culprits

    def _absorb_failure(
        self, fail: _RoundFailure, kind: str, pending: List[int],
        strikes: Dict[int, int], quarantined: Set[int],
    ) -> None:
        """Record a failed round: events, strike counters, quarantine
        decisions; then tear the pool down so no stale worker races
        the row restore that follows."""
        if not fail.culprits:
            self._emit("worker-death", detail=fail.detail)
        for j, action, local_chunk, detail in fail.culprits:
            key = {"worker-death": "deaths", "hung-worker": "hung",
                   "chunk-timeout": "timeouts"}[action]
            self.counts[key] += 1
            chunk = pending[local_chunk] if 0 <= local_chunk < len(pending) \
                else -1
            self._emit(action, worker=j, chunk=chunk, detail=detail)
            if action in ("hung-worker", "chunk-timeout"):
                self._emit("kill", worker=j, chunk=chunk,
                           detail="SIGKILL (hung)")
            if chunk >= 0:
                strikes[chunk] = strikes.get(chunk, 0) + 1
                if (strikes[chunk] >= self.policy.poison_threshold
                        and chunk not in quarantined):
                    quarantined.add(chunk)
                    self.counts["quarantined"] += 1
                    self._emit(
                        "quarantine", chunk=chunk,
                        detail=(f"{strikes[chunk]} worker deaths; "
                                f"retrying serially (kind={kind})"),
                    )
        self._pool._teardown(graceful=False)

    # ------------------------------------------------------------------
    # Ladder transitions
    # ------------------------------------------------------------------
    def _level_size(self) -> int:
        """Pool width for the current ladder rung."""
        if self.level == FULL_POOL:
            return self.requested_workers
        return max(self.policy.min_workers, self.requested_workers // 2)

    def _demote(self) -> None:
        """Step one rung down after exhausting the respawn budget."""
        old = self.level
        self.level = LADDER[min(LADDER.index(old) + 1, len(LADDER) - 1)]
        if self.level == old:
            return
        self.healthy_rounds = 0
        self.counts["demotions"] += 1
        self._emit(
            "demote",
            detail=(f"{old} -> {self.level} after "
                    f"{self.policy.max_respawns} failed respawns"),
        )

    def _maybe_promote(self) -> None:
        """Climb one rung after a healthy streak; leaving serial runs
        a ping probe first (a dead platform must not flap)."""
        if self.level == FULL_POOL:
            return
        if self.healthy_rounds < self.policy.promote_after:
            return
        target = LADDER[LADDER.index(self.level) - 1]
        if self.level == SERIAL:
            self.counts["probes"] += 1
            self._emit("probe", detail="ping probe before leaving serial")
            old_level, self.level = self.level, target
            self._respawn_pool(self._level_size())
            try:
                self._round("ping", {}, [{"items": [0]}])
            except (_RoundFailure, WorkerTaskError) as exc:
                self.level = old_level
                self.healthy_rounds = 0
                self._pool._teardown(graceful=False)
                self._emit("probe",
                           detail=f"probe failed, staying serial: {exc}")
                return
        else:
            old_level, self.level = self.level, target
            self._respawn_pool(self._level_size())
        self.healthy_rounds = 0
        self.counts["promotions"] += 1
        self._emit("promote", detail=f"{old_level} -> {self.level}")

    def _backoff(self, attempt: int) -> None:
        """Exponential backoff before a respawn."""
        delay = min(self.policy.backoff_base * (2 ** max(0, attempt - 1)),
                    self.policy.backoff_max)
        if delay > 0:
            self._emit("backoff", detail=f"{delay:.3f}s before respawn "
                                         f"(attempt {attempt})")
            time.sleep(delay)

    def _respawn_pool(self, size: int) -> None:
        self.counts["respawns"] += 1
        self._pool.respawn(size)
        self._emit("respawn", detail=f"{size} workers ({self.level})")

    def _mark_faults(self, payloads: List[dict]) -> List[dict]:
        """Apply armed crash/stall marks to copies of the first
        chunk(s) and consume one armed round per key."""
        if not self._armed:
            return payloads
        out = list(payloads)
        for key in list(self._armed):
            chunks, rounds = self._armed[key]
            for idx in range(min(chunks, len(out))):
                out[idx] = dict(out[idx], **{key: True})
            if rounds <= 1:
                del self._armed[key]
            else:
                self._armed[key][1] = rounds - 1
        return out

    def _emit(self, action: str, level: Optional[str] = None,
              detail: str = "", worker: int = -1, chunk: int = -1) -> None:
        self.events.append(HealthEvent(
            seq=self._seq, action=action,
            level=level if level is not None else self.level,
            detail=detail, worker=int(worker), chunk=int(chunk),
        ))
        self._seq += 1

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop the underlying pool (idempotent)."""
        self._pool.close()

    def __enter__(self) -> "SupervisedPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"SupervisedPool(workers={self.requested_workers}, "
            f"level={self.level!r}, kills={self.counts['kills']}, "
            f"respawns={self.counts['respawns']})"
        )
