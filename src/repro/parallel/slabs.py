"""Zero-copy result transport: shared-memory result slabs.

The original result path shipped every worker result — step lists,
sparse bc probes, stats — through the multiprocessing result queue,
which pickles the whole payload, copies it through a pipe, and
unpickles it in the parent.  At k=256 sources that is megabytes per
round, and `BENCH_parallel.json` showed the dispatch economics flat
because of it.

This module replaces the payload channel with preallocated per-worker
**result slabs**: one shared-memory block of ``workers`` rows, each
``slab_bytes`` long, owned by the parent (:class:`ResultSlabs`).  A
worker serializes its chunk result *directly into its own slab row*
with a compact binary framing (:func:`encode_into`) and posts only a
``(worker, offset, length)`` header on the queue; the parent decodes
by reading the shared bytes in place (:func:`decode`), mapping numpy
payloads as zero-copy views.

Framing
-------
Little-endian, tag-prefixed, recursive::

    'N'                         None
    'T' / 'F'                   True / False
    'i' <q>                     int (signed 64-bit)
    'f' <d>                     float
    'u' <I len> utf8            str
    'b' <I len> raw             bytes
    'l' <I count> items...      list
    't' <I count> items...      tuple
    'S' <q d d q q> str         gpu.counters.Step
    'U' <q q q q>               bc.update_core.UpdateStats
    'a' <B dlen> dtype <B ndim> <q dims...> pad8 raw
                                numpy ndarray (C-contiguous payload,
                                8-byte aligned for zero-copy views)

Every frame is prefixed with ``MAGIC`` (u32) + payload length (u64) so
a torn or stale header can never be silently misread.

Slab write protocol
-------------------
Workers bump-allocate within a *round*: the first task of a new round
resets the worker's write offset to zero.  That is safe because the
round protocol is strictly phased — the parent decodes every message
as it arrives and never dispatches round N+1 before round N's results
are folded, so all round-N bytes are dead by the time any round-N+1
task can reset the cursor.  A result that does not fit in the
remaining slab space **spills**: the worker encodes to private bytes
and ships them through the queue (``ok-enc``) — same framing, no
pickle of numpy payloads, just the legacy copy cost for that one
oversized chunk.  Spills are counted so the benchmarks can see them.

Lifecycle: :class:`ResultSlabs` owns its block through a private
:class:`~repro.parallel.shm.ShmArena` and must be released with
:meth:`ResultSlabs.close` (linter rule R003 enforces the pairing
lexically, exactly as for bare arenas).
"""

from __future__ import annotations

import struct
from typing import Optional, Tuple

import numpy as np

from repro.bc.update_core import UpdateStats
from repro.gpu.counters import Step
from repro.parallel.shm import ShmArena, ShmAttachment

#: frame prefix: magic + u64 payload length
MAGIC = 0x534C4142  # "SLAB"
_PREFIX = struct.Struct("<IQ")

#: default per-worker slab capacity; large enough that the kron-scale
#: bench rounds never spill, small enough that even an 8-worker pool
#: keeps /dev/shm usage in the tens of megabytes
DEFAULT_SLAB_BYTES = 8 * 1024 * 1024

#: approximate pickled size of a header-only queue message — used for
#: the bytes-moved accounting of slab messages (the header tuple is
#: ~70 bytes on the wire; the exact figure does not matter, only that
#: it is orders of magnitude below the payloads it replaces)
HEADER_BYTES = 72

_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
_U32 = struct.Struct("<I")
_STEP = struct.Struct("<qddqq")
_STATS = struct.Struct("<qqqq")


class SlabEncodeError(TypeError):
    """The object graph contains a type the framing cannot carry; the
    caller falls back to the raw-object queue path."""


class _NoFit(Exception):
    """Internal: the encoding ran out of slab space (triggers spill)."""


def _pad8(offset: int) -> int:
    return (offset + 7) & ~7


class _Encoder:
    """Encode into a bounded writable buffer (memoryview or bytearray
    slice); raises :class:`_NoFit` on exhaustion so slab writers can
    fall back to the spill path without partial-frame hazards."""

    def __init__(self, buf, start: int, limit: int) -> None:
        self.buf = buf
        self.pos = start
        self.limit = limit

    def _need(self, nbytes: int) -> int:
        pos = self.pos
        if pos + nbytes > self.limit:
            raise _NoFit()
        self.pos = pos + nbytes
        return pos

    def _pack(self, st: struct.Struct, *values) -> None:
        st.pack_into(self.buf, self._need(st.size), *values)

    def _tag(self, tag: bytes) -> None:
        self.buf[self._need(1)] = tag[0]

    def encode(self, obj) -> None:
        if obj is None:
            self._tag(b"N")
        elif obj is True:
            self._tag(b"T")
        elif obj is False:
            self._tag(b"F")
        elif isinstance(obj, Step):
            self._tag(b"S")
            self._pack(_STEP, obj.work_items, obj.cycles_per_item,
                       obj.bytes_moved, obj.atomic_ops, obj.max_conflict)
            self._str(obj.stage)
        elif isinstance(obj, UpdateStats):
            self._tag(b"U")
            self._pack(_STATS, obj.touched, obj.moved, obj.sp_levels,
                       obj.dep_levels)
        elif isinstance(obj, (int, np.integer)):
            self._tag(b"i")
            try:
                self._pack(_I64, int(obj))
            except struct.error:
                raise SlabEncodeError(f"int out of 64-bit range: {obj!r}")
        elif isinstance(obj, (float, np.floating)):
            self._tag(b"f")
            self._pack(_F64, float(obj))
        elif isinstance(obj, str):
            self._tag(b"u")
            self._str(obj)
        elif isinstance(obj, bytes):
            self._tag(b"b")
            raw = obj
            self._pack(_U32, len(raw))
            self.buf[self._need(len(raw)):self.pos] = raw
        elif isinstance(obj, np.ndarray):
            self._array(obj)
        elif isinstance(obj, (list, tuple)):
            self._tag(b"l" if isinstance(obj, list) else b"t")
            self._pack(_U32, len(obj))
            for item in obj:
                self.encode(item)
        else:
            raise SlabEncodeError(
                f"type {type(obj).__name__} not supported by slab framing"
            )

    def _str(self, text: str) -> None:
        raw = text.encode("utf-8")
        self._pack(_U32, len(raw))
        self.buf[self._need(len(raw)):self.pos] = raw

    def _array(self, arr: np.ndarray) -> None:
        if arr.dtype == object:
            raise SlabEncodeError("object arrays not supported")
        arr = np.ascontiguousarray(arr)
        self._tag(b"a")
        dstr = arr.dtype.str.encode("ascii")
        if len(dstr) > 255 or arr.ndim > 255:
            raise SlabEncodeError("dtype/ndim out of framing range")
        self.buf[self._need(1)] = len(dstr)
        self.buf[self._need(len(dstr)):self.pos] = dstr
        self.buf[self._need(1)] = arr.ndim
        for dim in arr.shape:
            self._pack(_I64, dim)
        # Pad so the raw payload is 8-byte aligned relative to the
        # buffer start: decode() can then map it as a zero-copy view.
        pad = _pad8(self.pos) - self.pos
        if pad:
            self._need(pad)
        # memoryview, not the ndarray itself: bytearray slice
        # assignment accepts buffers only through a memoryview.
        raw = memoryview(arr.reshape(-1).view(np.uint8))
        dst = self._need(raw.nbytes)
        self.buf[dst:self.pos] = raw


class _Decoder:
    """Decode a frame from a readable buffer; ``copy=False`` maps numpy
    payloads as views over the underlying (shared) memory."""

    def __init__(self, buf, pos: int, end: int, copy: bool) -> None:
        self.buf = buf
        self.pos = pos
        self.end = end
        self.copy = copy

    def _take(self, nbytes: int) -> int:
        pos = self.pos
        if pos + nbytes > self.end:
            raise ValueError("truncated slab frame")
        self.pos = pos + nbytes
        return pos

    def _unpack(self, st: struct.Struct):
        return st.unpack_from(self.buf, self._take(st.size))

    def decode(self):
        tag = self.buf[self._take(1)]
        if tag == ord("N"):
            return None
        if tag == ord("T"):
            return True
        if tag == ord("F"):
            return False
        if tag == ord("i"):
            return self._unpack(_I64)[0]
        if tag == ord("f"):
            return self._unpack(_F64)[0]
        if tag == ord("u"):
            return bytes(self._bytes()).decode("utf-8")
        if tag == ord("b"):
            return bytes(self._bytes())
        if tag == ord("S"):
            fields = self._unpack(_STEP)
            stage = bytes(self._bytes()).decode("utf-8")
            return Step(fields[0], fields[1], fields[2], fields[3],
                        fields[4], stage)
        if tag == ord("U"):
            return UpdateStats(*self._unpack(_STATS))
        if tag in (ord("l"), ord("t")):
            count = self._unpack(_U32)[0]
            items = [self.decode() for _ in range(count)]
            return items if tag == ord("l") else tuple(items)
        if tag == ord("a"):
            return self._array()
        raise ValueError(f"unknown slab frame tag {tag!r}")

    def _bytes(self):
        (length,) = self._unpack(_U32)
        start = self._take(length)
        return self.buf[start:self.pos]

    def _array(self) -> np.ndarray:
        dlen = self.buf[self._take(1)]
        dstart = self._take(dlen)
        dtype = np.dtype(bytes(self.buf[dstart:self.pos]).decode("ascii"))
        ndim = self.buf[self._take(1)]
        shape = tuple(self._unpack(_I64)[0] for _ in range(ndim))
        self.pos = _pad8(self.pos)
        count = int(np.prod(shape)) if shape else 1
        start = self._take(count * dtype.itemsize)
        view = np.frombuffer(self.buf, dtype=dtype, count=count,
                             offset=start).reshape(shape)
        return view.copy() if self.copy else view


def encode(obj) -> bytes:
    """Encode *obj* to a framed private byte string (the spill path —
    and the ``result_transport="queue"`` baseline, where the same
    framing rides the queue so byte accounting is apples-to-apples)."""
    # Worst-case growth is bounded: start at 64 KiB and double until
    # it fits.  Encoding goes through encode_into so the byte layout
    # (array padding is relative to the buffer start) is identical to
    # the slab path.
    size = 64 * 1024
    while True:
        buf = bytearray(size)
        end = encode_into(obj, buf, 0, size)
        if end is None:
            size *= 2
            continue
        return bytes(buf[:end])


def encode_into(obj, buf, start: int, limit: int) -> Optional[int]:
    """Encode *obj* framed into ``buf[start:limit]``; returns the end
    offset, or ``None`` when it does not fit (caller spills)."""
    enc = _Encoder(buf, start + _PREFIX.size, limit)
    try:
        enc.encode(obj)
    except _NoFit:
        return None
    _PREFIX.pack_into(buf, start, MAGIC, enc.pos - start - _PREFIX.size)
    return enc.pos


def decode(buf, offset: int = 0, length: Optional[int] = None,
           copy: bool = False):
    """Decode one framed object from *buf* at *offset*.

    ``copy=False`` returns numpy payloads as zero-copy views over
    *buf* — valid until the producing worker's next round resets its
    slab cursor, so fold them before dispatching more work (the engine
    does).  ``copy=True`` detaches them.
    """
    magic, payload = _PREFIX.unpack_from(buf, offset)
    if magic != MAGIC:
        raise ValueError(f"bad slab frame magic {magic:#x} at {offset}")
    if length is not None and payload + _PREFIX.size != length:
        raise ValueError(
            f"slab frame length mismatch: header {payload}, told {length}"
        )
    dec = _Decoder(buf, offset + _PREFIX.size,
                   offset + _PREFIX.size + payload, copy)
    return dec.decode()


class ResultSlabs:
    """Parent-side owner of the per-worker result slab block.

    One shared block of shape ``(workers, slab_bytes)``; row *j* is
    worker *j*'s private bump-allocated scratch.  Pass :meth:`spec` to
    workers at spawn; read results back with :meth:`read`.  Must be
    paired with :meth:`close` (R003).
    """

    def __init__(self, workers: int, slab_bytes: int = DEFAULT_SLAB_BYTES):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if slab_bytes < 4096:
            raise ValueError(f"slab_bytes must be >= 4096, got {slab_bytes}")
        self.workers = int(workers)
        self.slab_bytes = int(slab_bytes)
        self._arena = ShmArena()
        self._arena.allocate("result_slab", (self.workers, self.slab_bytes),
                             np.uint8)

    def spec(self) -> dict:
        """Picklable attach recipe handed to each worker at spawn."""
        return {
            "slab": self._arena.spec(),
            "workers": self.workers,
            "slab_bytes": self.slab_bytes,
        }

    def read(self, worker: int, offset: int, length: int,
             copy: bool = False):
        """Decode the framed result worker *worker* staged at
        ``[offset, offset+length)`` — zero-copy by default."""
        if not 0 <= worker < self.workers:
            raise ValueError(f"worker {worker} out of range")
        if offset < 0 or offset + length > self.slab_bytes:
            raise ValueError(
                f"slab ref [{offset}, {offset + length}) exceeds "
                f"slab_bytes={self.slab_bytes}"
            )
        row = self._arena.get("result_slab")[worker]
        return decode(row.data, offset, length, copy=copy)

    def close(self) -> None:
        """Unlink the slab block (idempotent)."""
        self._arena.close()

    def __enter__(self) -> "ResultSlabs":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SlabWriter:
    """Worker-side bump allocator over this worker's slab row.

    ``write(round_id, obj)`` stages the framed result and returns its
    ``(offset, length)``, or ``None`` when the remaining space cannot
    hold it (the caller spills through the queue).  A task from a new
    round resets the cursor — see the module docstring for why that is
    race-free under the phased round protocol.
    """

    def __init__(self, spec: dict, worker_id: int) -> None:
        self.worker_id = int(worker_id)
        self.slab_bytes = int(spec["slab_bytes"])
        self._attachment = ShmAttachment(spec["slab"])
        self._row = self._attachment.arrays["result_slab"][self.worker_id]
        self._round = -1
        self._cursor = 0

    def write(self, round_id: int, obj) -> Optional[Tuple[int, int]]:
        """Stage *obj* framed in this worker's row; ``(offset, length)``
        on success, ``None`` when it does not fit or is unencodable
        (the caller spills or falls back to the raw queue path)."""
        if round_id != self._round:
            self._round = round_id
            self._cursor = 0
        start = _pad8(self._cursor)
        try:
            end = encode_into(obj, self._row.data, start, self.slab_bytes)
        except SlabEncodeError:
            return None
        if end is None:
            return None
        self._cursor = end
        return start, end - start

    def close(self) -> None:
        """Unmap the slab row (never unlinks — the parent owns it)."""
        self._row = None
        self._attachment.close()
