"""Contiguous chunk planning for the dynamic source queue.

The paper's scheduler hands one source to each SM and lets fast blocks
pull the next one — coarse-grained dynamic load balancing.  The CPU
pool reproduces that with a shared task queue: the work list is split
into contiguous chunks several times smaller than a worker's equal
share, so a worker that drew cheap Case-2 sources simply pulls another
chunk while a neighbour is still grinding through a Case-3 recompute
(the "work-stealing-ish" schedule — stealing from the shared queue
rather than from each other).

Chunks stay *contiguous and ordered* on purpose: results are reduced
in chunk order, so ``concat(chunks) == items`` guarantees the parent's
deterministic ascending-source replay regardless of which worker
finished first.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, TypeVar

T = TypeVar("T")

#: chunks handed out per worker on average; >1 gives the dynamic queue
#: room to rebalance skewed per-source costs (Fig. 4: touched fractions
#: vary wildly across sources), while each chunk still amortizes the
#: per-task queue round trip.
CHUNKS_PER_WORKER = 4


def plan_chunks(
    items: Sequence[T],
    num_workers: int,
    chunks_per_worker: int = CHUNKS_PER_WORKER,
) -> List[List[T]]:
    """Split *items* into contiguous chunks for the dynamic queue.

    Returns at most ``num_workers * chunks_per_worker`` chunks of equal
    size (the last may be short); never returns empty chunks, and
    ``[x for c in chunks for x in c] == list(items)`` always holds.
    """
    if num_workers < 1:
        raise ValueError(f"num_workers must be >= 1, got {num_workers}")
    if chunks_per_worker < 1:
        raise ValueError(
            f"chunks_per_worker must be >= 1, got {chunks_per_worker}"
        )
    items = list(items)
    if not items:
        return []
    target = min(len(items), num_workers * chunks_per_worker)
    size = -(-len(items) // target)  # ceil division
    return [items[i:i + size] for i in range(0, len(items), size)]


#: divisor of the remaining weight per scheduling step: each chunk
#: takes ``remaining / (GSS_FACTOR * workers)`` of the outstanding
#: weight, giving the classic guided-self-scheduling taper (big chunks
#: first, shrinking tail that absorbs per-source cost skew)
GSS_FACTOR = 2.0

#: cap on chunk-count explosion: the effective minimum chunk size is
#: ``ceil(len(items) / (MAX_CHUNKS_PER_WORKER * workers))``, bounding
#: a round at ~MAX_CHUNKS_PER_WORKER chunks per worker even when the
#: guided taper would keep shrinking
MAX_CHUNKS_PER_WORKER = 8


def plan_chunks_guided(
    items: Sequence[T],
    num_workers: int,
    weights: Optional[Sequence[float]] = None,
    factor: float = GSS_FACTOR,
    min_chunk: int = 1,
) -> List[List[T]]:
    """Guided self-scheduling split: large chunks first, shrinking tail.

    Each step peels ``remaining_weight / (factor * num_workers)`` worth
    of items off the front, so early chunks are coarse (amortizing the
    queue round trip) and the tail is fine (absorbing per-source cost
    skew near the barrier).  *weights* — one non-negative cost estimate
    per item, e.g. the engine's observed per-source simulated seconds —
    steers the split; omitted, every item weighs 1 and the split
    depends only on ``len(items)``.

    Chunks stay contiguous and ordered (``concat(chunks) == items``),
    so the parent's ascending-source fold — and therefore bit-identity
    — is untouched by the schedule.  With deterministic weights the
    plan itself is deterministic too.
    """
    if num_workers < 1:
        raise ValueError(f"num_workers must be >= 1, got {num_workers}")
    if factor <= 0:
        raise ValueError(f"factor must be > 0, got {factor}")
    if min_chunk < 1:
        raise ValueError(f"min_chunk must be >= 1, got {min_chunk}")
    items = list(items)
    n = len(items)
    if not n:
        return []
    if weights is None:
        costs = [1.0] * n
    else:
        costs = [max(0.0, float(w)) for w in weights]
        if len(costs) != n:
            raise ValueError(
                f"weights length {len(costs)} != items length {n}"
            )
    # A zero-weight tail must still be scheduled: floor every weight at
    # a fraction of the mean so progress is always positive.
    mean = sum(costs) / n
    floor = mean / 16.0 if mean > 0 else 1.0
    costs = [max(c, floor) for c in costs]
    min_size = max(min_chunk, -(-n // (MAX_CHUNKS_PER_WORKER * num_workers)))
    remaining = sum(costs)
    chunks: List[List[T]] = []
    start = 0
    while start < n:
        target = remaining / (factor * num_workers)
        end = start
        taken = 0.0
        while end < n and (taken < target or end - start < min_size):
            taken += costs[end]
            end += 1
        chunks.append(items[start:end])
        remaining -= taken
        start = end
    return chunks
