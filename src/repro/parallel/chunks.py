"""Contiguous chunk planning for the dynamic source queue.

The paper's scheduler hands one source to each SM and lets fast blocks
pull the next one — coarse-grained dynamic load balancing.  The CPU
pool reproduces that with a shared task queue: the work list is split
into contiguous chunks several times smaller than a worker's equal
share, so a worker that drew cheap Case-2 sources simply pulls another
chunk while a neighbour is still grinding through a Case-3 recompute
(the "work-stealing-ish" schedule — stealing from the shared queue
rather than from each other).

Chunks stay *contiguous and ordered* on purpose: results are reduced
in chunk order, so ``concat(chunks) == items`` guarantees the parent's
deterministic ascending-source replay regardless of which worker
finished first.
"""

from __future__ import annotations

from typing import List, Sequence, TypeVar

T = TypeVar("T")

#: chunks handed out per worker on average; >1 gives the dynamic queue
#: room to rebalance skewed per-source costs (Fig. 4: touched fractions
#: vary wildly across sources), while each chunk still amortizes the
#: per-task queue round trip.
CHUNKS_PER_WORKER = 4


def plan_chunks(
    items: Sequence[T],
    num_workers: int,
    chunks_per_worker: int = CHUNKS_PER_WORKER,
) -> List[List[T]]:
    """Split *items* into contiguous chunks for the dynamic queue.

    Returns at most ``num_workers * chunks_per_worker`` chunks of equal
    size (the last may be short); never returns empty chunks, and
    ``[x for c in chunks for x in c] == list(items)`` always holds.
    """
    if num_workers < 1:
        raise ValueError(f"num_workers must be >= 1, got {num_workers}")
    if chunks_per_worker < 1:
        raise ValueError(
            f"chunks_per_worker must be >= 1, got {chunks_per_worker}"
        )
    items = list(items)
    if not items:
        return []
    target = min(len(items), num_workers * chunks_per_worker)
    size = -(-len(items) // target)  # ceil division
    return [items[i:i + size] for i in range(0, len(items), size)]
