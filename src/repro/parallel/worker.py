"""Worker-process loop: one source per worker at a time.

This module runs inside the pool's child processes.  Tasks arrive on a
shared queue as ``(kind, round_id, chunk_id, common, payload)`` tuples;
each task executes one contiguous chunk of source indices against the
shared-memory arena (:mod:`repro.parallel.shm`) and posts
``(status, round_id, chunk_id, result)`` back.

Division of labour with the parent (the determinism contract):

* **Workers** mutate their own ``d``/``sigma``/``delta`` rows in place
  (zero-copy, disjoint per source — no locks needed) and return the
  order-*insensitive* artifacts: the accountant's :class:`Step` list,
  the :class:`UpdateStats`, and the bc adjustment of each source as a
  sparse ``(indices, values)`` pair harvested from a zeros probe vector
  passed where the kernels expect ``bc``.
* **The parent** replays every order-*sensitive* float accumulation
  (bc scatter-adds, stage-seconds folds, counter absorption) in
  ascending source order, reproducing the serial execution bit for bit
  no matter which worker finished first.

The probe trick is sound because the update kernels treat ``bc`` as a
pure write-only accumulator (one masked ``+=`` in ``_commit``); against
a zeros vector the masked add leaves exactly the adjustment values.

Supervision hooks (see :mod:`repro.parallel.supervisor`): when the pool
hands the worker a heartbeat slot, a daemon thread stamps
``time.monotonic()`` into it every ``heartbeat_interval`` seconds and
the task loop records which (round, chunk) it is executing.  A worker
frozen by ``SIGSTOP`` freezes the thread too, so the parent detects the
hang as heartbeat staleness; a worker stuck in compute keeps beating
but trips the per-chunk deadline instead.
"""

from __future__ import annotations

import os
import signal
import threading
import time
import traceback

import numpy as np

from repro.bc.accountants import make_accountant
from repro.bc.brandes import single_source_state
from repro.bc.cases import Case
from repro.bc.static_gpu import trace_static_source
from repro.bc.update_core import (
    UpdateStats,
    adjacent_level_update,
    distant_level_update,
)
from repro.graph.csr import CSRGraph, DIST_INF
from repro.parallel import slabs as _slabs
from repro.parallel.shm import ShmAttachment

#: queue sentinel telling a worker to exit its loop
STOP = "__stop__"

#: payload key that makes the worker die abruptly mid-task — the
#: crash-injection hook for the resilience tests (WorkerPool.arm_crash);
#: never set by production dispatch
CRASH_KEY = "__crash__"

#: payload key that makes the worker SIGSTOP itself mid-task — the
#: hang-injection hook (SupervisedPool.arm_stall): the process freezes
#: (heartbeat thread included) exactly as an externally-stopped or
#: deadlocked worker would, and only SIGKILL can remove it
STALL_KEY = "__stall__"

#: heartbeat-slot layout: each worker owns ``HB_SLOTS`` consecutive
#: doubles in the pool's lock-free shared array
HB_SLOTS = 4
#: slot 0 — last ``time.monotonic()`` stamped by the heartbeat thread
HB_BEAT = 0
#: slot 1 — ``time.monotonic()`` when the current task started (0.0
#: when idle)
HB_TASK_START = 1
#: slot 2 — round id of the current task (-1 when idle)
HB_ROUND = 2
#: slot 3 — chunk id of the current task (-1 when idle)
HB_CHUNK = 3


def _start_heartbeat(heartbeat, base: int, interval: float) -> None:
    """Start the daemon thread that stamps ``time.monotonic()`` into
    this worker's beat slot every *interval* seconds.

    A plain assignment into a lock-free ``multiprocessing.Array`` slot
    is a single aligned 8-byte store — no lock needed, and the parent
    always reads a consistent value.  ``monotonic()`` is system-wide
    comparable on Linux (CLOCK_MONOTONIC), so the parent can age the
    stamp against its own clock.
    """

    def _beat() -> None:
        while True:
            heartbeat[base + HB_BEAT] = time.monotonic()
            time.sleep(interval)

    threading.Thread(target=_beat, daemon=True,
                     name="repro-heartbeat").start()


def post_result(results, writer, transport: str,
                round_id: int, chunk_id: int, result) -> None:
    """Ship one chunk result to the parent on the cheapest channel.

    Slab transport stages the framed result in this worker's slab row
    and posts only a ``(worker, offset, length)`` header (``ok-slab``);
    an oversized result spills as framed bytes through the queue
    (``ok-enc``).  The queue transport always sends framed bytes.  A
    result the framing cannot carry falls back to the legacy pickled
    ``ok`` message — correctness never depends on the fast path.
    """
    if writer is not None:
        ref = writer.write(round_id, result)
        if ref is not None:
            results.put(("ok-slab", round_id, chunk_id,
                         (writer.worker_id, ref[0], ref[1])))
            return
    try:
        data = _slabs.encode(result)
    except _slabs.SlabEncodeError:
        results.put(("ok", round_id, chunk_id, result))
    else:
        results.put(("ok-enc", round_id, chunk_id, data))


def worker_main(tasks, results, worker_id: int = 0, heartbeat=None,
                heartbeat_interval: float = 0.0, slab_spec=None,
                transport: str = "queue") -> None:
    """Pull tasks until :data:`STOP`; never let an exception escape
    (errors travel back to the parent as structured results).

    When *heartbeat* (the pool's shared slot array) is provided with a
    positive *heartbeat_interval*, the worker stamps liveness and
    per-task (round, chunk, start-time) bookkeeping into its slots so
    the supervisor can detect hangs and attribute them to a chunk.

    When *slab_spec* is provided (``transport="slab"``), results are
    staged in this worker's shared result slab via :func:`post_result`
    instead of being pickled through the queue.
    """
    attachment = None
    writer = None
    if slab_spec is not None and transport == "slab":
        writer = _slabs.SlabWriter(slab_spec, worker_id)
    base = HB_SLOTS * int(worker_id)
    beating = heartbeat is not None and heartbeat_interval > 0
    if beating:
        heartbeat[base + HB_BEAT] = time.monotonic()
        _start_heartbeat(heartbeat, base, float(heartbeat_interval))
    while True:
        message = tasks.get()
        if message == STOP:
            break
        kind, round_id, chunk_id, common, payload = message
        try:
            if beating:
                # Attribution before the fault hooks: a worker that
                # crashes or stalls right here must still be blamed on
                # the correct (round, chunk).
                heartbeat[base + HB_ROUND] = float(round_id)
                heartbeat[base + HB_CHUNK] = float(chunk_id)
                heartbeat[base + HB_TASK_START] = time.monotonic()
            if payload.get(CRASH_KEY):
                os._exit(3)
            if payload.get(STALL_KEY):
                os.kill(os.getpid(), signal.SIGSTOP)
            spec = common.get("spec")
            if spec is not None and (
                attachment is None
                or attachment.generation != spec["generation"]
            ):
                if attachment is not None:
                    attachment.close()
                attachment = ShmAttachment(spec)
            result = _HANDLERS[kind](attachment, common, payload)
        except BaseException as exc:
            detail = (
                f"{type(exc).__name__}: {exc}\n"
                f"{traceback.format_exc()}"
            )
            try:
                results.put(("error", round_id, chunk_id, detail))
            except Exception:  # pragma: no cover - queue already gone
                os._exit(1)
        else:
            post_result(results, writer, transport,
                        round_id, chunk_id, result)
        finally:
            if beating:
                heartbeat[base + HB_TASK_START] = 0.0
                heartbeat[base + HB_ROUND] = -1.0
                heartbeat[base + HB_CHUNK] = -1.0
    if writer is not None:
        writer.close()
    if attachment is not None:
        attachment.close()


def run_task(attachment, kind: str, common: dict, payload: dict):
    """Execute one task *in the calling process* (no queue round-trip).

    This is the supervisor's serial-retry primitive: the parent runs
    the exact handler a worker would have run, against an attachment
    shim whose ``arrays`` are the arena's parent-side views — the same
    bytes the workers see — so the result (and every in-place row
    write) is bit-identical to pool execution.
    """
    return _HANDLERS[kind](attachment, common, payload)


def _views(attachment, common):
    """Zero-copy CSR + state views over the attached arena."""
    n = common["n"]
    arcs = common["arcs"]
    arrays = attachment.arrays
    graph = CSRGraph(
        arrays["row_offsets"][: n + 1], arrays["col_indices"][:arcs]
    )
    return (
        graph,
        arrays["sources"],
        arrays["d"],
        arrays["sigma"],
        arrays["delta"],
    )


def _make_accountant(common, label):
    return make_accountant(
        common["backend"], common["n"], common["arcs"], common["op_costs"],
        label=label,
        access_cycles=(
            common["access"] if common["backend"] == "cpu" else None
        ),
    )


def _handle_update(attachment, common, payload):
    """One streaming update's active sources: run the per-source kernel
    (Case 2/3) in place and sparse-encode each bc adjustment."""
    graph, sources, d, sigma, delta = _views(attachment, common)
    operation = common["operation"]
    n = common["n"]
    out = []
    probe = np.zeros(n, dtype=np.float64)
    for i, case, u_high, u_low in payload["items"]:
        i = int(i)
        s = int(sources[i])
        acc = _make_accountant(common, f"{operation}:{s}")
        acc.classify()
        probe[:] = 0.0
        if case == int(Case.ADJACENT_LEVEL):
            stats = adjacent_level_update(
                graph, s, d[i], sigma[i], delta[i], probe,
                u_high, u_low, acc, insert=(operation == "insert"),
            )
        elif operation == "insert":
            stats = distant_level_update(
                graph, s, d[i], sigma[i], delta[i], probe, u_high, u_low, acc,
            )
        else:
            # Distance-increasing deletion: per-source recompute
            # fallback (mirrors DynamicBC._recompute_source); the bc
            # patch is the full dependency difference.
            delta_old = delta[i].copy()
            levels = single_source_state(
                graph, s, out=(d[i], sigma[i], delta[i])
            )[3]
            delta[i, s] = 0.0
            _, trace = trace_static_source(
                graph, s, common["static_strategy"], common["op_costs"],
                common["access"],
            )
            acc.trace.extend(trace)
            stats = UpdateStats(
                touched=int(np.count_nonzero(d[i] != DIST_INF)), moved=0,
                sp_levels=len(levels), dep_levels=len(levels) - 1,
            )
            probe = delta[i] - delta_old
        idx = np.flatnonzero(probe)
        out.append(
            (i, acc.finish().steps, stats, idx.astype(np.int64), probe[idx])
        )
    return out


def _handle_brandes(attachment, common, payload):
    """Initial build / full recompute: fresh Brandes rows in place."""
    graph, sources, d, sigma, delta = _views(attachment, common)
    done = []
    for i in payload["items"]:
        i = int(i)
        s = int(sources[i])
        single_source_state(graph, s, out=(d[i], sigma[i], delta[i]))
        delta[i, s] = 0.0
        done.append(i)
    return done


def _handle_rebuild(attachment, common, payload):
    """repair_source: rebuild rows and return the static repair trace."""
    graph, sources, d, sigma, delta = _views(attachment, common)
    out = []
    for i in payload["items"]:
        i = int(i)
        s = int(sources[i])
        levels = single_source_state(
            graph, s, out=(d[i], sigma[i], delta[i])
        )[3]
        delta[i, s] = 0.0
        _, trace = trace_static_source(
            graph, s, common["static_strategy"], common["op_costs"],
            common["access"],
        )
        touched = int(np.count_nonzero(d[i] != DIST_INF))
        out.append((i, trace.steps, touched, len(levels)))
    return out


def _handle_check(attachment, common, payload):
    """check_rows: compare stored rows against a scratch recompute."""
    from repro.resilience.guards import row_drift_component

    graph, sources, d, sigma, delta = _views(attachment, common)
    atol = common["atol"]
    bad = []
    for i in payload["items"]:
        i = int(i)
        component = row_drift_component(
            graph, int(sources[i]), d[i], sigma[i], delta[i], atol=atol
        )
        if component is not None:
            bad.append((i, component))
    return bad


def _handle_ping(attachment, common, payload):
    """Health check / pool tests: echo the payload items."""
    return list(payload.get("items", []))


def _handle_sleep(attachment, common, payload):
    """Supervision tests only: busy-sleep ``payload['seconds']`` (in
    short naps, heartbeats keep flowing), then echo the items — a
    compute loop that outlives a chunk deadline without hanging."""
    deadline = time.monotonic() + float(payload.get("seconds", 0.0))
    while time.monotonic() < deadline:
        time.sleep(0.01)
    return list(payload.get("items", []))


_HANDLERS = {
    "update": _handle_update,
    "brandes": _handle_brandes,
    "rebuild": _handle_rebuild,
    "check": _handle_check,
    "ping": _handle_ping,
    "sleep": _handle_sleep,
}
