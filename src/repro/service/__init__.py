"""Always-on BC serving layer: concurrent ingest, coalesced update
batches, and snapshot-isolated reads.

The package turns :meth:`DynamicBC.replay` from a batch driver into a
long-lived service (ROADMAP's top open item; the serving model of
Kourtellis et al., *Scalable Online Betweenness Centrality in Evolving
Graphs*).  See ``docs/SERVICE.md`` for the architecture and knobs.

- :mod:`repro.service.snapshots` — immutable versioned BC snapshots
  (:class:`SnapshotStore`): reads never block on, or observe, an
  in-flight batch.
- :mod:`repro.service.core` — :class:`ServiceCore`: ordered,
  watermarked, replay-bit-identical batch application with periodic
  checkpoints.
- :mod:`repro.service.service` — :class:`BCService`: the asyncio
  front-end with a bounded ingest queue, burst coalescing (flush on
  size or deadline), and backpressure.
- :mod:`repro.service.loadgen` — seeded mixed read/write workloads
  (steady / diurnal / flash-crowd).
- :mod:`repro.service.driver` — the measurement harness behind
  ``repro.cli serve`` and ``benchmarks/bench_service.py``.
- :mod:`repro.service.replication` — :class:`ReplicaService`: a
  hot-standby follower tailing the primary's journal (bit-identical
  state at every shared watermark), stale-bounded snapshot reads, and
  epoch-fenced promotion for failover (see docs/RESILIENCE.md §7).
"""

from repro.service.core import BatchOutcome, ServiceCore
from repro.service.driver import drive_workload
from repro.service.loadgen import (
    PROFILES,
    QueryOp,
    Workload,
    generate_workload,
)
from repro.service.replication import (
    Promotion,
    ReplicaService,
    StaleReadError,
)
from repro.service.service import (
    BCService,
    IngestQueue,
    ServiceClosed,
)
from repro.service.snapshots import Snapshot, SnapshotStore

__all__ = [
    "BCService",
    "BatchOutcome",
    "IngestQueue",
    "PROFILES",
    "Promotion",
    "QueryOp",
    "ReplicaService",
    "ServiceClosed",
    "ServiceCore",
    "Snapshot",
    "SnapshotStore",
    "StaleReadError",
    "Workload",
    "drive_workload",
    "generate_workload",
]
