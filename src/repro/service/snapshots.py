"""Immutable, versioned BC snapshots for the always-on service layer.

The service's reads must never block on (or observe) an in-flight
update batch.  :class:`SnapshotStore` makes that a structural property
instead of a locking discipline: the ingest side *publishes* a frozen
copy of the BC vector after each committed batch, and every query is
served from the most recently published :class:`Snapshot` — a
read-only array stamped with a monotonically increasing ``version``
and the *watermark*, the number of stream events folded into it.  A
reader therefore sees either the state before a batch or the state
after it, never a half-applied one.

Buffer management is double-buffered in steady state: when no reader
holds the previous snapshot, its backing buffer is recycled for the
next publish (the engine's :meth:`~repro.bc.engine.DynamicBC.
bc_snapshot` export hook copies straight into it — one copy, no
transient).  A reader that needs the snapshot to stay frozen across
later commits *pins* it (:meth:`SnapshotStore.acquire` /
:meth:`Snapshot.release`, or a ``with`` block); pinned buffers are
never recycled, the store simply allocates a fresh one, so a pin costs
one O(n) buffer, not a stalled writer.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

#: buffers kept for reuse once their snapshot is retired and unpinned —
#: two is the steady-state double buffer; anything beyond covers a
#: burst of short-lived pins without unbounded growth
DEFAULT_MAX_SPARES = 2


class Snapshot:
    """One published, frozen view of the BC scores.

    Attributes
    ----------
    version:
        Monotonically increasing publish counter (0 for the first
        snapshot a store publishes).
    watermark:
        Number of stream events committed into this snapshot — the
        event offset a reader can correlate with the ingest log and
        with checkpoint ``event_index`` values.
    bc:
        Read-only ``float64[n]`` view of the scores.  Writing through
        it raises; the backing buffer is only recycled once the
        snapshot is both superseded *and* unpinned.
    """

    __slots__ = ("version", "watermark", "bc", "_buffer", "_store", "_pins",
                 "_retired")

    def __init__(self, version: int, watermark: int, bc: np.ndarray,
                 buffer: np.ndarray, store: "SnapshotStore") -> None:
        self.version = int(version)
        self.watermark = int(watermark)
        self.bc = bc
        self._buffer = buffer
        self._store: Optional[SnapshotStore] = store
        self._pins = 0
        self._retired = False

    # ------------------------------------------------------------------
    @property
    def stale(self) -> bool:
        """``True`` once a newer snapshot has been published."""
        return self._retired

    @property
    def pinned(self) -> bool:
        """``True`` while at least one reader holds a pin."""
        return self._pins > 0

    def pin(self) -> "Snapshot":
        """Protect this snapshot's buffer from recycling until a
        matching :meth:`release`; returns ``self`` so
        ``store.current().pin()`` chains."""
        self._pins += 1
        return self

    def release(self) -> None:
        """Drop one pin; the last release of a superseded snapshot
        returns its buffer to the store's spare pool."""
        if self._pins <= 0:
            raise RuntimeError("release() without a matching pin()")
        self._pins -= 1
        if self._pins == 0 and self._retired and self._store is not None:
            store, self._store = self._store, None
            store._reclaim(self)

    def __enter__(self) -> "Snapshot":
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def __repr__(self) -> str:
        return (f"Snapshot(version={self.version}, "
                f"watermark={self.watermark}, n={self.bc.size}, "
                f"pins={self._pins}, stale={self._retired})")


class SnapshotStore:
    """Single-writer, many-reader store of the latest :class:`Snapshot`.

    The writer (the service's flusher) calls :meth:`publish` /
    :meth:`publish_with` after each committed batch; readers call
    :meth:`current` for a borrow valid until they next yield control,
    or :meth:`acquire` for a pinned snapshot that stays frozen across
    any number of later publishes.  All methods are plain synchronous
    calls — on an asyncio event loop they are atomic with respect to
    each other, which is the whole concurrency story.
    """

    def __init__(self, max_spares: int = DEFAULT_MAX_SPARES) -> None:
        if max_spares < 0:
            raise ValueError(f"max_spares must be >= 0, got {max_spares}")
        self._current: Optional[Snapshot] = None
        self._spares: List[np.ndarray] = []
        self._max_spares = int(max_spares)
        self._version = -1
        #: publish / buffer-economy counters (observability only)
        self.published = 0
        self.buffers_allocated = 0
        self.buffers_reused = 0

    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Version of the current snapshot (-1 before the first
        publish)."""
        return self._version

    @property
    def watermark(self) -> int:
        """Watermark of the current snapshot (-1 before the first
        publish)."""
        return -1 if self._current is None else self._current.watermark

    def current(self) -> Snapshot:
        """Borrow the latest snapshot (unpinned).

        Safe for reads that complete before the caller yields back to
        the event loop (every built-in query does); use
        :meth:`acquire` when the snapshot must outlive later commits.
        """
        if self._current is None:
            raise RuntimeError("no snapshot published yet")
        return self._current

    def acquire(self) -> Snapshot:
        """The latest snapshot, pinned — release it (or use ``with``)
        when done so its buffer can be recycled."""
        return self.current().pin()

    # ------------------------------------------------------------------
    def publish(self, bc: np.ndarray, watermark: int) -> Snapshot:
        """Publish a new snapshot holding a frozen copy of *bc*."""
        def _fill(out: np.ndarray) -> None:
            np.copyto(out, bc)

        return self.publish_with(_fill, int(bc.shape[0]), watermark)

    def publish_with(self, fill: Callable[[np.ndarray], object], n: int,
                     watermark: int) -> Snapshot:
        """Publish a snapshot whose buffer is written by *fill(out)* —
        the zero-temporary path used with the engine's
        ``bc_snapshot(out=...)`` export hook.

        The watermark must be monotonically non-decreasing across
        publishes (versions always strictly increase).
        """
        watermark = int(watermark)
        if self._current is not None and watermark < self._current.watermark:
            raise ValueError(
                f"watermark must not decrease: {watermark} < "
                f"{self._current.watermark}"
            )
        buffer = self._obtain_buffer(int(n))
        fill(buffer)
        view = buffer[:]
        view.setflags(write=False)
        self._version += 1
        snap = Snapshot(self._version, watermark, view, buffer, self)
        old, self._current = self._current, snap
        if old is not None:
            old._retired = True
            if old._pins == 0:
                old._store = None
                self._reclaim(old)
        self.published += 1
        return snap

    # ------------------------------------------------------------------
    def _obtain_buffer(self, n: int) -> np.ndarray:
        """A writable float64[n] buffer: a recycled spare when one of
        the right size exists, else a fresh allocation."""
        while self._spares:
            candidate = self._spares.pop()
            if candidate.shape[0] == n:
                self.buffers_reused += 1
                return candidate
            # wrong size (add_vertex grew the graph): drop it
        self.buffers_allocated += 1
        return np.empty(n, dtype=np.float64)

    def _reclaim(self, snap: Snapshot) -> None:
        """Return a retired, unpinned snapshot's buffer to the spare
        pool (bounded; excess buffers are simply dropped)."""
        if len(self._spares) < self._max_spares:
            self._spares.append(snap._buffer)

    def __repr__(self) -> str:
        return (f"SnapshotStore(version={self._version}, "
                f"watermark={self.watermark}, spares={len(self._spares)})")
