"""Seeded mixed read/write workload generation for the service layer.

A :class:`Workload` is a time-ordered list of operations — edge
:class:`~repro.graph.stream.EdgeEvent` writes interleaved with
:class:`QueryOp` reads — produced by :func:`generate_workload` under
one of three traffic profiles:

``steady``
    Constant arrival rate; the baseline sustained-load shape.
``diurnal``
    Sinusoidal rate between ~25% and ~175% of the base rate over a
    configurable period — the day/night cycle of a social workload.
``flash-crowd``
    Steady background with short windows at ~15x the base rate — the
    burst shape the coalescer's size-triggered flush exists for.

Arrival times are drawn by thinning a homogeneous Poisson process at
the profile's peak rate (Lewis & Shedler), so any rate curve yields a
correctly distributed, fully seeded arrival sequence.  Writes use the
same live-edge-set tracking as :meth:`EdgeStream.churn` (deletes hit a
live edge, inserts a live non-edge) so every generated workload is
applicable in full.

Workloads round-trip through JSONL (:meth:`Workload.save` /
:meth:`Workload.load`) so the CLI can generate once and serve many
times — and so CI's smoke run replays a file rather than a process-
local object.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass
from typing import List, Optional, Union

from repro.graph.csr import CSRGraph
from repro.graph.stream import DELETE, INSERT, EdgeEvent, EdgeStream
from repro.utils.prng import SeedLike, default_rng

PROFILES = ("steady", "diurnal", "flash-crowd")

#: flash-crowd burst multiplier over the base rate
FLASH_MULTIPLIER = 15.0
#: fraction of the flash-crowd timeline spent inside bursts
FLASH_DUTY = 0.08
#: diurnal rate swing: rate(t) = base * (1 + AMP * sin)
DIURNAL_AMPLITUDE = 0.75


@dataclass(frozen=True)
class QueryOp:
    """One read operation in a workload.

    ``kind`` is ``"top_k"`` (``arg`` = k) or ``"bc"`` (``arg`` = vertex
    id to read, or ``None`` for the full vector).
    """

    time: float
    kind: str = "top_k"
    arg: Optional[int] = 10

    def __post_init__(self) -> None:
        if self.kind not in ("top_k", "bc"):
            raise ValueError(f"kind must be 'top_k' or 'bc', got {self.kind!r}")


Op = Union[EdgeEvent, QueryOp]


@dataclass
class Workload:
    """A time-ordered mixed sequence of edge events and queries."""

    profile: str
    num_vertices: int
    seed: Optional[int]
    ops: List[Op]

    def __len__(self) -> int:
        return len(self.ops)

    @property
    def writes(self) -> int:
        """Number of edge events in the workload."""
        return sum(1 for op in self.ops if isinstance(op, EdgeEvent))

    @property
    def reads(self) -> int:
        """Number of query operations in the workload."""
        return len(self.ops) - self.writes

    def edge_stream(self) -> EdgeStream:
        """Just the writes, as a replayable :class:`EdgeStream` — the
        differential twin for service-vs-replay comparisons."""
        return EdgeStream([op for op in self.ops if isinstance(op, EdgeEvent)])

    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Write the workload as JSONL: one header record, then one
        record per op, atomically (tmp file + :func:`os.replace`)."""
        path = os.fspath(path)
        tmp = path + ".tmp"
        try:
            with open(tmp, "w") as fh:
                fh.write(json.dumps({
                    "kind": "workload", "profile": self.profile,
                    "num_vertices": self.num_vertices, "seed": self.seed,
                    "ops": len(self.ops),
                }) + "\n")
                for op in self.ops:
                    if isinstance(op, EdgeEvent):
                        rec = {"t": op.time, "op": op.op, "u": op.u, "v": op.v}
                    else:
                        rec = {"t": op.time, "op": "query", "kind": op.kind,
                               "arg": op.arg}
                    fh.write(json.dumps(rec) + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)

    @classmethod
    def load(cls, path) -> "Workload":
        """Read a workload written by :meth:`save`, validating the
        header and every record with ``path:lineno`` diagnostics."""
        path = os.fspath(path)
        with open(path) as fh:
            header_line = fh.readline()
            try:
                header = json.loads(header_line)
            except json.JSONDecodeError:
                raise ValueError(f"{path}:1: invalid JSON header") from None
            if not isinstance(header, dict) or header.get("kind") != "workload":
                raise ValueError(f"{path}:1: not a workload file")
            ops: List[Op] = []
            for lineno, line in enumerate(fh, start=2):
                line = line.strip()
                if not line:
                    continue
                where = f"{path}:{lineno}"
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError:
                    raise ValueError(f"{where}: invalid JSON") from None
                try:
                    if rec["op"] == "query":
                        ops.append(QueryOp(float(rec["t"]), rec["kind"],
                                           rec["arg"]))
                    elif rec["op"] in (INSERT, DELETE):
                        ops.append(EdgeEvent(float(rec["t"]), int(rec["u"]),
                                             int(rec["v"]), rec["op"]))
                    else:
                        raise ValueError(f"invalid op {rec['op']!r}")
                except (KeyError, TypeError, ValueError) as exc:
                    raise ValueError(f"{where}: {exc}") from None
        return cls(profile=header.get("profile", "unknown"),
                   num_vertices=int(header.get("num_vertices", 0)),
                   seed=header.get("seed"), ops=ops)


# ----------------------------------------------------------------------
# Rate curves
# ----------------------------------------------------------------------
def _rate_at(profile: str, base_rate: float, t: float, period: float) -> float:
    """Instantaneous arrival rate of *profile* at time *t*."""
    if profile == "steady":
        return base_rate
    if profile == "diurnal":
        return base_rate * (
            1.0 + DIURNAL_AMPLITUDE * math.sin(2.0 * math.pi * t / period)
        )
    if profile == "flash-crowd":
        # Bursts occupy the first FLASH_DUTY of every period.
        phase = (t % period) / period
        if phase < FLASH_DUTY:
            return base_rate * FLASH_MULTIPLIER
        return base_rate
    raise ValueError(f"unknown profile {profile!r} (expected one of {PROFILES})")


def _peak_rate(profile: str, base_rate: float) -> float:
    """Upper bound of the profile's rate curve (thinning envelope)."""
    if profile == "diurnal":
        return base_rate * (1.0 + DIURNAL_AMPLITUDE)
    if profile == "flash-crowd":
        return base_rate * FLASH_MULTIPLIER
    return base_rate


def generate_workload(
    graph: CSRGraph,
    profile: str = "steady",
    num_ops: int = 500,
    *,
    read_fraction: float = 0.5,
    base_rate: float = 100.0,
    delete_fraction: float = 0.3,
    period: float = 4.0,
    top_k: int = 10,
    seed: SeedLike = 0,
) -> Workload:
    """Generate a seeded mixed workload against *graph*.

    Arrivals follow the profile's rate curve via Poisson thinning; each
    arrival is a read with probability *read_fraction* (split between
    ``top_k`` and single-vertex ``bc`` lookups), otherwise a write
    drawn churn-style against the evolving edge set (*delete_fraction*
    of writes are deletions when a live edge exists).
    """
    if profile not in PROFILES:
        raise ValueError(f"unknown profile {profile!r} (expected one of {PROFILES})")
    if num_ops < 1:
        raise ValueError(f"num_ops must be >= 1, got {num_ops}")
    if not 0 <= read_fraction <= 1:
        raise ValueError("read_fraction must be in [0, 1]")
    if not 0 <= delete_fraction <= 1:
        raise ValueError("delete_fraction must be in [0, 1]")
    if base_rate <= 0:
        raise ValueError(f"base_rate must be positive, got {base_rate}")
    if period <= 0:
        raise ValueError(f"period must be positive, got {period}")
    rng = default_rng(seed)
    n = graph.num_vertices
    live = {tuple(e) for e in graph.edge_list().tolist()}
    peak = _peak_rate(profile, base_rate)
    ops: List[Op] = []
    t = 0.0
    guard = 0
    while len(ops) < num_ops:
        guard += 1
        if guard > 100 * num_ops + 1000:
            raise RuntimeError("could not generate workload")
        # Thinning: candidate arrivals at the peak rate, accepted with
        # probability rate(t)/peak — a non-homogeneous Poisson process.
        t += float(rng.exponential(1.0 / peak))
        if rng.random() >= _rate_at(profile, base_rate, t, period) / peak:
            continue
        if rng.random() < read_fraction:
            if rng.random() < 0.5:
                ops.append(QueryOp(t, "top_k", top_k))
            else:
                ops.append(QueryOp(t, "bc", int(rng.integers(0, n))))
            continue
        if live and rng.random() < delete_fraction:
            idx = int(rng.integers(0, len(live)))
            u, v = sorted(live)[idx]
            live.remove((u, v))
            ops.append(EdgeEvent(t, u, v, DELETE))
            continue
        u, v = int(rng.integers(0, n)), int(rng.integers(0, n))
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key in live:
            continue
        live.add(key)
        ops.append(EdgeEvent(t, key[0], key[1], INSERT))
    seed_out = seed if isinstance(seed, int) or seed is None else None
    return Workload(profile=profile, num_vertices=n, seed=seed_out, ops=ops)
