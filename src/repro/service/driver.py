"""Drive a generated workload through a live :class:`BCService`.

:func:`drive_workload` is the shared measurement harness behind both
``repro.cli serve`` and ``benchmarks/bench_service.py``: it plays a
:class:`~repro.service.loadgen.Workload` against a service — writes
through the ingest queue, reads against the snapshot store — and
reports the serving metrics the tentpole promises: p50/p99/max query
latency, sustained applied-updates/sec, flush-reason mix, and how many
queries were answered *while* an update batch was in flight (the
non-blocking-reads proof).

Timing uses wall-clock (allowed outside ``repro.bc``/``repro.gpu``;
see the lint rules) because service latency *is* wall time; the
workload itself stays fully seeded.

With ``install_signals=True`` the driver turns SIGTERM/SIGINT into a
graceful shutdown: intake stops, the queue drains, a final checkpoint
is written at the exact watermark, and the journal is fsynced and
closed before the loop exits — so a supervised restart resumes with
nothing to replay.  ``ack_stream`` emits one ``ack <seq>`` line per
durably acknowledged write (the crash drill's observer reads these to
know the service's durability lower bound at kill time).
"""

from __future__ import annotations

import asyncio
import signal
import time
from typing import Dict, Optional

import numpy as np

from repro.graph.stream import EdgeEvent
from repro.service.loadgen import QueryOp, Workload
from repro.service.service import BCService


def _percentiles(latencies) -> Dict:
    """p50/p99/max of a latency list, in milliseconds."""
    if not latencies:
        return {"p50_ms": 0.0, "p99_ms": 0.0, "max_ms": 0.0, "count": 0}
    arr = np.asarray(latencies, dtype=np.float64) * 1e3
    return {
        "p50_ms": float(np.percentile(arr, 50)),
        "p99_ms": float(np.percentile(arr, 99)),
        "max_ms": float(np.percentile(arr, 100)),
        "count": int(arr.size),
    }


async def _drive(service: BCService, workload: Workload, pace: float,
                 duration: float, stop_event: Optional[asyncio.Event] = None,
                 ack_stream=None) -> Dict:
    """Inner async loop: issue ops in order, time the queries."""
    latencies = []
    during_apply_latencies = []
    started = time.monotonic()
    prev_t: Optional[float] = None
    truncated = False
    interrupted = False
    for op in workload.ops:
        if stop_event is not None and stop_event.is_set():
            interrupted = True
            break
        if duration > 0 and time.monotonic() - started >= duration:
            truncated = True
            break
        if pace > 0 and prev_t is not None and op.time > prev_t:
            await asyncio.sleep((op.time - prev_t) * pace)
        else:
            # Back-to-back mode: yield one loop turn per op so the
            # flusher actually interleaves with the open-loop driver —
            # the realistic shape where reads land mid-apply.
            await asyncio.sleep(0)
        prev_t = op.time
        if isinstance(op, EdgeEvent):
            seq = await service.submit(op)
            if ack_stream is not None and seq is not None:
                # One line per acknowledged write, flushed immediately:
                # in ack_durable mode the record is fsynced by the time
                # this prints, so an observer's last-seen ack is a hard
                # lower bound on what recovery must reproduce.
                ack_stream.write(f"ack {seq}\n")
                ack_stream.flush()
            continue
        applying = service._applying
        t0 = time.perf_counter()
        if op.kind == "top_k":
            await service.query_top_k(op.arg if op.arg else 10)
        else:
            await service.query_bc(
                None if op.arg is None else [op.arg]
            )
        elapsed = time.perf_counter() - t0
        latencies.append(elapsed)
        if applying:
            during_apply_latencies.append(elapsed)
    await service.drain()
    wall = time.monotonic() - started
    return {
        "wall_seconds": wall,
        "truncated": truncated,
        "interrupted": interrupted,
        "latencies": latencies,
        "during_apply_latencies": during_apply_latencies,
    }


def drive_workload(
    engine,
    workload: Workload,
    *,
    max_batch: int = 64,
    max_delay: float = 0.05,
    max_pending: int = 1024,
    pace: float = 0.0,
    duration: float = 0.0,
    checkpoint_every: Optional[int] = None,
    checkpoint_dir=None,
    checkpoint_keep: Optional[int] = None,
    resume_from=None,
    wal_dir=None,
    wal_segment_records: Optional[int] = None,
    ack_durable: Optional[bool] = None,
    fsync_every: Optional[int] = None,
    fsync_delay: Optional[float] = None,
    install_signals: bool = False,
    ack_stream=None,
) -> Dict:
    """Run *workload* against a fresh service over *engine*; returns a
    JSON-ready metrics dict.

    ``pace``
        Wall-seconds per workload time unit.  ``0`` (default) issues
        ops back-to-back — the throughput-stress shape; a positive
        value reproduces the workload's arrival curve in wall time.
    ``duration``
        Wall-clock budget in seconds; ``0`` plays the whole workload.
        A truncated run is flagged in the result (accepted writes are
        still drained before the service stops).
    ``wal_dir`` / ``ack_durable`` / ``fsync_every`` / ``fsync_delay``
        Journal configuration passed through to :class:`BCService`.
    ``install_signals``
        Turn SIGTERM/SIGINT into a graceful stop: finish the in-flight
        op, drain accepted writes, write a final checkpoint, fsync and
        close the journal, and return normally (the run is flagged
        ``interrupted``).
    ``ack_stream``
        Writable text stream receiving one flushed ``ack <seq>`` line
        per acknowledged write (journal mode only).
    """
    service_kwargs: Dict = {}
    if fsync_every is not None:
        service_kwargs["fsync_every"] = fsync_every
    if fsync_delay is not None:
        service_kwargs["fsync_delay"] = fsync_delay

    async def _main() -> Dict:
        service = BCService(
            engine, max_batch=max_batch, max_delay=max_delay,
            max_pending=max_pending, checkpoint_every=checkpoint_every,
            checkpoint_dir=checkpoint_dir, checkpoint_keep=checkpoint_keep,
            resume_from=resume_from, wal_dir=wal_dir,
            wal_segment_records=wal_segment_records,
            ack_durable=ack_durable, **service_kwargs,
        )
        loop = asyncio.get_running_loop()
        stop_event: Optional[asyncio.Event] = None
        installed = []
        if install_signals:
            stop_event = asyncio.Event()
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, stop_event.set)
                    installed.append(signum)
                except (NotImplementedError, RuntimeError):
                    pass  # non-Unix loop: fall back to KeyboardInterrupt
        final_checkpoint = None
        try:
            async with service as svc:
                run = await _drive(svc, workload, pace, duration,
                                   stop_event=stop_event,
                                   ack_stream=ack_stream)
                if run["interrupted"]:
                    # Graceful shutdown: everything accepted is already
                    # drained; pin the exact watermark so a restart
                    # replays nothing.
                    final_checkpoint = await asyncio.to_thread(
                        svc.core.checkpoint_now
                    )
        finally:
            for signum in installed:
                loop.remove_signal_handler(signum)
        stats = svc.stats
        health = svc.health_report()
        applied = stats["events_applied"]
        wall = run["wall_seconds"]
        durability = {
            "wal_dir": None if wal_dir is None else str(wal_dir),
            "ack_durable": svc.ack_durable,
            "wal_appends": stats["wal_appends"],
            "wal_syncs": stats["wal_syncs"],
            "durable_waits": stats["durable_waits"],
            "wal_replayed_on_start": svc.core.wal_replayed,
            "final_checkpoint": final_checkpoint,
        }
        return {
            "profile": workload.profile,
            "num_vertices": workload.num_vertices,
            "ops_total": len(workload),
            "reads": workload.reads,
            "writes": workload.writes,
            "seed": workload.seed,
            "max_batch": max_batch,
            "max_delay": max_delay,
            "max_pending": max_pending,
            "pace": pace,
            "truncated": run["truncated"],
            "interrupted": run["interrupted"],
            "durability": durability,
            "wall_seconds": wall,
            "updates_applied": applied,
            "updates_skipped": stats["events_skipped"],
            "updates_per_second": (applied / wall) if wall > 0 else 0.0,
            "batches": stats["batches"],
            "flush_reasons": dict(stats["flush_reasons"]),
            "backpressure_waits": stats["backpressure_waits"],
            "rejected": stats["rejected"],
            "max_queue_depth": stats["max_queue_depth"],
            "queries": stats["queries"],
            "queries_during_apply": stats["queries_during_apply"],
            "query_latency": _percentiles(run["latencies"]),
            "query_latency_during_apply": _percentiles(
                run["during_apply_latencies"]
            ),
            "final_watermark": svc.watermark,
            "snapshot_version": svc.core.store.version,
            "snapshots_published": svc.core.store.published,
            "snapshot_buffers_allocated": svc.core.store.buffers_allocated,
            "snapshot_buffers_reused": svc.core.store.buffers_reused,
            "health_level": health["level"],
            "checkpoints_written": len(svc.core.result.checkpoints),
        }

    return asyncio.run(_main())
