"""Asyncio front-end: concurrent edge ingest and centrality reads.

:class:`BCService` is the always-on serving layer over one
:class:`~repro.bc.engine.DynamicBC` engine::

    submit()  ->  IngestQueue  ->  coalescer/flusher  ->  ServiceCore
                 (bounded,          (flush on size        (ordered apply,
                  backpressure)      or deadline)          checkpoints)
                                                              |
    query_*() <------------------  SnapshotStore  <---- publish()

Writes enter a bounded :class:`IngestQueue` (await-based backpressure
when full); a single flusher task coalesces them into batches —
flushing when ``max_batch`` events are waiting or the oldest has aged
``max_delay`` seconds — and applies each batch through
:class:`~repro.service.core.ServiceCore` on a one-thread executor so
the event loop keeps serving queries while a batch runs.  After each
commit the flusher publishes a frozen BC snapshot; queries read the
latest snapshot synchronously on the loop, so they are wait-free with
respect to in-flight batches and can never observe a half-applied one.

Determinism: events are applied strictly in submission order through
the same per-event machinery as :func:`repro.graph.stream.replay`, so
final scores, reports, counters and checkpoints are bit-identical to a
plain replay of the same sequence for *any* ``max_batch``/``max_delay``
setting (``tests/test_service.py``).

Durability (``wal_dir=...``): every accepted event is appended to a
:class:`~repro.resilience.wal.WriteAheadLog` *before* it enters the
ingest queue, and a background syncer group-commits the journal — one
fsync covers up to ``fsync_every`` appends or a ``fsync_delay`` window,
whichever closes first.  In ``ack_durable`` mode (the default whenever
a journal is configured) :meth:`BCService.submit` returns only after
the event's journal record is fsynced, so an acknowledged event
survives ``kill -9`` — recovery replays the journal tail past the
newest valid checkpoint and lands bit-identical to a run that never
crashed (``tests/test_service_wal.py``, ``repro.resilience.drill``).
"""

from __future__ import annotations

import asyncio
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.stream import EdgeEvent
from repro.resilience.errors import WalError
from repro.service.core import BatchOutcome, ServiceCore
from repro.service.snapshots import Snapshot, SnapshotStore

#: flush when this many events are waiting (vectorized batch ceiling)
DEFAULT_MAX_BATCH = 64
#: flush when the oldest queued event has waited this long (seconds)
DEFAULT_MAX_DELAY = 0.05
#: bounded ingest depth — beyond it, submit() awaits (backpressure)
DEFAULT_MAX_PENDING = 1024
#: group commit: fsync once this many appends are buffered...
DEFAULT_FSYNC_EVERY = 64
#: ...or once the oldest buffered append has waited this long (seconds)
DEFAULT_FSYNC_DELAY = 0.002


class ServiceClosed(RuntimeError):
    """Raised when submitting to a service that has been stopped."""


class IngestQueue:
    """Bounded FIFO of pending edge events with await-based
    backpressure.

    ``asyncio.Queue.get`` under ``wait_for`` can drop an item on a
    cancellation race, which would silently corrupt the event order the
    differential tests certify — so this queue is built on a plain
    deque plus two events, where the timed wait is on an
    :class:`asyncio.Event` (cancellation-safe) and items only move
    under synchronous code.
    """

    def __init__(self, maxsize: int) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = int(maxsize)
        self._items: deque = deque()
        self._not_empty = asyncio.Event()
        self._space = asyncio.Event()
        self._space.set()
        self._flush_requested = False
        self._closed = False

    def __len__(self) -> int:
        return len(self._items)

    @property
    def closed(self) -> bool:
        """``True`` once :meth:`close` has been called."""
        return self._closed

    @property
    def full(self) -> bool:
        """``True`` while the queue is at capacity (new puts would
        wait or be rejected)."""
        return len(self._items) >= self.maxsize

    async def wait_space(self) -> None:
        """Wait until the consumer frees at least one slot (the caller
        re-checks :attr:`full` — space may be claimed by another
        producer before it runs)."""
        self._space.clear()
        if not self.full or self._closed:
            self._space.set()
            return
        await self._space.wait()

    def _after_append(self) -> None:
        self._not_empty.set()
        if len(self._items) >= self.maxsize:
            self._space.clear()

    async def put(self, item: EdgeEvent) -> bool:
        """Enqueue, awaiting while the queue is full; returns ``True``
        when the caller had to wait (a backpressure stall)."""
        waited = False
        while len(self._items) >= self.maxsize:
            if self._closed:
                raise ServiceClosed("service is stopped")
            waited = True
            self._space.clear()
            await self._space.wait()
        if self._closed:
            raise ServiceClosed("service is stopped")
        self._items.append(item)
        self._after_append()
        return waited

    def put_nowait(self, item: EdgeEvent) -> bool:
        """Enqueue without waiting; ``False`` when the queue is full
        (admission-control rejection)."""
        if self._closed:
            raise ServiceClosed("service is stopped")
        if len(self._items) >= self.maxsize:
            return False
        self._items.append(item)
        self._after_append()
        return True

    def request_flush(self) -> None:
        """Ask the consumer to flush whatever is queued right now
        instead of waiting out the deadline."""
        self._flush_requested = True
        self._not_empty.set()

    def close(self) -> None:
        """Refuse new items; the consumer drains what is left."""
        self._closed = True
        self._not_empty.set()
        self._space.set()

    async def collect(
        self, max_batch: int, max_delay: float,
    ) -> Tuple[Optional[List[EdgeEvent]], str]:
        """Coalesce the next batch.

        Waits for the first event, then keeps accepting until either
        *max_batch* events are in hand (``"size"``), the deadline since
        the first event expires (``"deadline"``), or a flush/close is
        requested (``"flush"`` / ``"drain"``).  Returns ``(None,
        "closed")`` once the queue is closed and empty.
        """
        loop = asyncio.get_running_loop()
        while not self._items:
            if self._closed:
                return None, "closed"
            if self._flush_requested:
                # A flush raced with an empty queue: nothing to do.
                self._flush_requested = False
            self._not_empty.clear()
            await self._not_empty.wait()
        deadline = loop.time() + max_delay
        while (len(self._items) < max_batch
               and not self._flush_requested and not self._closed):
            remaining = deadline - loop.time()
            if remaining <= 0:
                break
            self._not_empty.clear()
            if self._items:
                # Items arrived between the length check and clear().
                self._not_empty.set()
            try:
                await asyncio.wait_for(self._not_empty.wait(), remaining)
            except asyncio.TimeoutError:
                break
        if len(self._items) >= max_batch:
            reason = "size"
        elif self._closed:
            reason = "drain"
        elif self._flush_requested:
            reason = "flush"
        else:
            reason = "deadline"
        self._flush_requested = False
        batch = [self._items.popleft()
                 for _ in range(min(max_batch, len(self._items)))]
        self._space.set()
        return batch, reason


class BCService:
    """Always-on BC serving: concurrent ingest, coalesced batches,
    snapshot reads.

    Use as an async context manager (or :meth:`start` / :meth:`stop`)::

        async with BCService(engine, max_batch=64, max_delay=0.05) as svc:
            await svc.submit(EdgeEvent("insert", u, v))
            top = await svc.query_top_k(10)

    Determinism contract: results are bit-identical to
    ``replay(engine_twin, same_events)`` regardless of coalescing
    configuration; see the module docstring.

    Construct the service *inside* a running event loop (i.e. within
    the coroutine passed to ``asyncio.run``): on Python 3.9 the asyncio
    primitives bind their loop at construction time, so building the
    service before the loop exists ties it to the wrong loop.
    """

    def __init__(
        self,
        engine,
        *,
        max_batch: int = DEFAULT_MAX_BATCH,
        max_delay: float = DEFAULT_MAX_DELAY,
        max_pending: int = DEFAULT_MAX_PENDING,
        store: Optional[SnapshotStore] = None,
        checkpoint_every: Optional[int] = None,
        checkpoint_dir=None,
        checkpoint_keep: Optional[int] = None,
        resume_from=None,
        wal_dir=None,
        wal=None,
        wal_segment_records: Optional[int] = None,
        ack_durable: Optional[bool] = None,
        fsync_every: int = DEFAULT_FSYNC_EVERY,
        fsync_delay: float = DEFAULT_FSYNC_DELAY,
        core: Optional[ServiceCore] = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay <= 0:
            raise ValueError(f"max_delay must be > 0, got {max_delay}")
        if fsync_every < 1:
            raise ValueError(f"fsync_every must be >= 1, got {fsync_every}")
        if fsync_delay <= 0:
            raise ValueError(f"fsync_delay must be > 0, got {fsync_delay}")
        if wal is not None and wal_dir is not None:
            raise ValueError("pass wal_dir or a pre-opened wal, not both")
        if core is not None:
            # Adoption path (failover promotion): the caller hands over
            # a live, already-recovered core — the engine/checkpoint/
            # resume knobs describe how to *build* one and must not
            # also be set.
            if any(arg is not None for arg in
                   (checkpoint_every, checkpoint_dir, checkpoint_keep,
                    resume_from, wal_dir, store)):
                raise ValueError(
                    "core= adopts an existing ServiceCore; checkpoint/"
                    "resume/wal_dir/store arguments must be None"
                )
            if engine is not core.engine:
                raise ValueError("engine must be the adopted core's engine")
        if ack_durable and wal_dir is None and wal is None and (
                core is None or core.wal is None):
            raise ValueError("ack_durable requires wal_dir, wal=, or "
                             "a core that owns a journal")
        self.max_batch = int(max_batch)
        self.max_delay = float(max_delay)
        self.fsync_every = int(fsync_every)
        self.fsync_delay = float(fsync_delay)
        self._wal = wal
        if wal_dir is not None:
            from repro.resilience.wal import (
                DEFAULT_SEGMENT_RECORDS,
                WriteAheadLog,
            )

            self._wal = WriteAheadLog(
                wal_dir,
                segment_records=(wal_segment_records
                                 if wal_segment_records is not None
                                 else DEFAULT_SEGMENT_RECORDS),
            )
        if core is not None and self._wal is None:
            self._wal = core.wal
        #: whether submit() acks only after the event's journal record
        #: is fsynced — on by default whenever a journal is configured
        self.ack_durable = (self._wal is not None
                            if ack_durable is None else bool(ack_durable))
        if core is not None:
            self.core = core
        else:
            self.core = ServiceCore(
                engine, store=store, checkpoint_every=checkpoint_every,
                checkpoint_dir=checkpoint_dir, checkpoint_keep=checkpoint_keep,
                resume_from=resume_from, wal=self._wal,
            )
        self.queue = IngestQueue(max_pending)
        self.stats: Dict = {
            "submitted": 0,
            "rejected": 0,
            "backpressure_waits": 0,
            "batches": 0,
            "flush_reasons": {},
            "events_applied": 0,
            "events_skipped": 0,
            "events_recovered": 0,
            "queries": 0,
            "queries_during_apply": 0,
            "max_queue_depth": 0,
            "wal_appends": 0,
            "wal_syncs": 0,
            "durable_waits": 0,
        }
        self._flusher: Optional[asyncio.Task] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._syncer: Optional[asyncio.Task] = None
        self._wal_executor: Optional[ThreadPoolExecutor] = None
        self._sync_wanted = asyncio.Event()
        self._sync_full = asyncio.Event()
        #: (seq, future) pairs awaiting a durable ack, seq-ordered
        self._durable_waiters: List[Tuple[int, asyncio.Future]] = []
        self._applying = False
        self._idle = asyncio.Event()
        self._idle.set()
        self._failure: Optional[BaseException] = None
        #: set when the journal failed (disk fault / fencing): the
        #: service degrades to read-only — writes are rejected, reads
        #: keep serving the last published snapshot
        self._write_failure: Optional[BaseException] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "BCService":
        """Start the flusher (and, with a journal, the group-commit
        syncer) tasks (idempotent); requires a running event loop."""
        if self._flusher is None:
            self._executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="bc-service-apply"
            )
            self._flusher = asyncio.get_running_loop().create_task(
                self._run_flusher()
            )
        if self._wal is not None and self._syncer is None:
            # fsyncs get their own one-thread executor so a slow disk
            # never blocks batch application (and vice versa)
            self._wal_executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="bc-service-wal"
            )
            self._syncer = asyncio.get_running_loop().create_task(
                self._run_syncer()
            )
        return self

    async def stop(self, drain: bool = True) -> None:
        """Stop the service.

        With ``drain=True`` (default) every accepted event is applied
        before the flusher exits — no accepted write is ever lost on a
        clean shutdown.  With ``drain=False`` pending events are
        discarded from the queue (the journal keeps them: a durably
        acknowledged event survives even an unclean stop, and recovery
        will apply it).

        The journal is synced one final time and closed, so every
        accepted event is durable on disk when this returns.
        """
        if not drain:
            self.queue._items.clear()
        self.queue.close()
        if self._flusher is not None:
            # A flusher failure is recorded in _failure and re-raised
            # (wrapped) below — awaiting with return_exceptions keeps
            # the executor shutdown on the path either way.
            await asyncio.gather(self._flusher, return_exceptions=True)
            self._flusher = None
        if self._executor is not None:
            # shutdown(wait=True) joins worker threads — off the loop.
            await asyncio.to_thread(self._executor.shutdown, wait=True)
            self._executor = None
        if self._syncer is not None:
            self._syncer.cancel()
            await asyncio.gather(self._syncer, return_exceptions=True)
            self._syncer = None
        if self._wal_executor is not None:
            await asyncio.to_thread(self._wal_executor.shutdown, wait=True)
            self._wal_executor = None
        if self._wal is not None and not self._wal.closed:
            # Final group commit + seal; resolve any waiters the
            # cancelled syncer left behind so submitters never hang.
            # A failed or fenced journal can no longer commit: degrade
            # (failing those waiters) instead of masking the stop.
            try:
                durable = await asyncio.to_thread(self._wal.sync)
            except WalError as exc:
                self._degrade_writes(exc)
            else:
                self._resolve_durable(durable)
            try:
                await asyncio.to_thread(self._wal.close)
            except WalError:
                pass  # already surfaced via _degrade_writes above
        self._raise_if_failed()

    async def __aenter__(self) -> "BCService":
        return self.start()

    async def __aexit__(self, *exc) -> None:
        await self.stop(drain=exc == (None, None, None))

    def _raise_if_failed(self) -> None:
        if self._failure is not None:
            raise RuntimeError("service flusher failed") from self._failure

    @property
    def writes_degraded(self) -> bool:
        """``True`` once a journal failure switched the service to
        read-only mode (see :meth:`_degrade_writes`)."""
        return self._write_failure is not None

    def _check_writable(self) -> None:
        if self._write_failure is not None:
            raise WalError(
                self._wal.directory if self._wal is not None else "<no wal>",
                f"service is read-only after a journal failure "
                f"({self._write_failure})",
            ) from self._write_failure

    def _degrade_writes(self, exc: BaseException) -> None:
        """A journal write failed permanently (disk fault or fencing):
        degrade to read-only instead of dying.

        Every submitter still waiting on a durable ack is failed with
        the cause — their records never reached disk, so acking them
        would be a lie — new writes are rejected at :meth:`submit` /
        :meth:`try_submit`, a ``wal-failure`` HEALTH event lands in the
        guard log, and the read path keeps serving snapshots (already
        *applied* events stay visible: they were accepted, just never
        durably acknowledged).
        """
        if self._write_failure is not None:
            return
        from repro.resilience.guards import HEALTH, GuardEvent

        self._write_failure = exc
        self.stats["write_failures"] = self.stats.get("write_failures", 0) + 1
        self.core.result.guard_events.append(
            GuardEvent(self.core.watermark, HEALTH, "wal-failure", -1,
                       f"journal failure, writes rejected: {exc}")
        )
        for _, future in self._durable_waiters:
            if not future.done():
                future.set_exception(
                    RuntimeError(f"durable ack impossible: {exc}")
                )
        self._durable_waiters = []

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    async def submit(
        self, event: EdgeEvent, *, durable: Optional[bool] = None,
    ) -> Optional[int]:
        """Accept one edge event, awaiting under backpressure when the
        ingest queue is full.

        With a journal the event is appended *before* it is enqueued
        (so the journal is always a superset of what was applied), and
        its journal sequence number — identical to the watermark the
        event will commit at — is returned.  In ``ack_durable`` mode
        the call additionally awaits the group commit that makes the
        record durable (*durable* overrides the mode per call).
        Without a journal, returns ``None``.
        """
        self._raise_if_failed()
        self._check_writable()
        if self._wal is None:
            waited = await self.queue.put(event)
            self.stats["submitted"] += 1
            if waited:
                self.stats["backpressure_waits"] += 1
            self._note_depth()
            return None
        # The append and the enqueue must agree on ordering across
        # concurrent submitters, so the journal+enqueue pair runs with
        # no await between the final capacity check and the put — the
        # event loop makes that section atomic without a lock.
        waited = False
        while self.queue.full:
            if self.queue.closed:
                raise ServiceClosed("service is stopped")
            waited = True
            await self.queue.wait_space()
        if self.queue.closed:
            raise ServiceClosed("service is stopped")
        seq = self._journal(event)
        self.queue.put_nowait(event)
        self.stats["submitted"] += 1
        if waited:
            self.stats["backpressure_waits"] += 1
        self._note_depth()
        if self.ack_durable if durable is None else durable:
            await self._wait_durable(seq)
        return seq

    def try_submit(self, event: EdgeEvent) -> bool:
        """Accept one edge event without waiting; ``False`` means the
        queue was full and the event was rejected (admission control).

        With a journal the accepted event is appended before it is
        enqueued, like :meth:`submit` — but since this path cannot
        await, ``True`` means *accepted and journaled*, with
        durability following at the next group commit."""
        self._raise_if_failed()
        self._check_writable()
        if self._wal is not None:
            if self.queue.closed:
                raise ServiceClosed("service is stopped")
            # Capacity is checked BEFORE journaling: a rejected event
            # must not burn a sequence number the stream never sees.
            if self.queue.full:
                self.stats["rejected"] += 1
                return False
            self._journal(event)
        if self.queue.put_nowait(event):
            self.stats["submitted"] += 1
            self._note_depth()
            return True
        self.stats["rejected"] += 1
        return False

    async def submit_many(self, events: Sequence[EdgeEvent]) -> None:
        """Submit a sequence of events in order (awaits backpressure).

        In ``ack_durable`` mode only the *last* event's durability is
        awaited: sequence numbers are monotone, so one group commit
        covering the last record covers the whole batch — the fsync
        cost amortizes across the sequence instead of gating every
        event."""
        if not events:
            return
        wait_last = self._wal is not None and self.ack_durable
        last_seq: Optional[int] = None
        for event in events:
            last_seq = await self.submit(event, durable=False)
        if wait_last and last_seq is not None:
            await self._wait_durable(last_seq)

    def flush(self) -> None:
        """Ask the coalescer to flush the queued events now rather than
        waiting out the latency deadline."""
        self.queue.request_flush()

    async def drain(self) -> None:
        """Wait until every accepted event has been applied and
        published (the service is idle)."""
        self._raise_if_failed()
        while self.queue or self._applying or not self._idle.is_set():
            self.queue.request_flush()
            self._idle.clear()
            if not self.queue and not self._applying:
                self._idle.set()
                break
            await self._idle.wait()
            self._raise_if_failed()

    def _note_depth(self) -> None:
        depth = len(self.queue)
        if depth > self.stats["max_queue_depth"]:
            self.stats["max_queue_depth"] = depth

    # ------------------------------------------------------------------
    # journal: append on the loop, group-commit fsync on its own thread
    # ------------------------------------------------------------------
    def _journal(self, event: EdgeEvent) -> int:
        """Append one record (buffered) and nudge the syncer; the
        record's sequence number equals the watermark the event will
        commit at."""
        seq = self._wal.append(event)
        self.stats["wal_appends"] += 1
        if self._wal.unsynced >= self.fsync_every:
            self._sync_full.set()
        self._sync_wanted.set()
        return seq

    async def _wait_durable(self, seq: int) -> None:
        """Block until the journal record *seq* is fsynced (resolved
        by the syncer's next group commit)."""
        if self._wal.last_synced_seq >= seq:
            return
        self.stats["durable_waits"] += 1
        future = asyncio.get_running_loop().create_future()
        self._durable_waiters.append((seq, future))
        await future

    def _resolve_durable(self, durable_seq: int) -> None:
        still_waiting = []
        for seq, future in self._durable_waiters:
            if seq <= durable_seq:
                if not future.done():
                    future.set_result(durable_seq)
            else:
                still_waiting.append((seq, future))
        self._durable_waiters = still_waiting

    async def _run_syncer(self) -> None:
        """Group-commit loop: wait for an append, hold the commit open
        for up to ``fsync_delay`` seconds (or until ``fsync_every``
        appends are buffered), then pay one fsync for the lot and
        release every submitter the commit covered."""
        loop = asyncio.get_running_loop()
        while True:
            await self._sync_wanted.wait()
            if not self._sync_full.is_set():
                try:
                    await asyncio.wait_for(
                        self._sync_full.wait(), self.fsync_delay
                    )
                except asyncio.TimeoutError:
                    pass
            self._sync_wanted.clear()
            self._sync_full.clear()
            try:
                durable = await loop.run_in_executor(
                    self._wal_executor, self._wal.sync
                )
            except (WalError, OSError) as exc:
                # ENOSPC / dying disk / fencing: the commit did not
                # happen, so nobody gets acked — degrade to read-only
                # and stop syncing (the journal is dead until
                # reopened).  Queries keep working.
                self._degrade_writes(exc)
                return
            self.stats["wal_syncs"] += 1
            self._resolve_durable(durable)

    async def _run_flusher(self) -> None:
        """Coalescer loop: collect -> apply (executor thread) ->
        publish, until the queue is closed and drained."""
        loop = asyncio.get_running_loop()
        try:
            while True:
                batch, reason = await self.queue.collect(
                    self.max_batch, self.max_delay
                )
                if batch is None:
                    return
                self._applying = True
                self._idle.clear()
                try:
                    outcome: BatchOutcome = await loop.run_in_executor(
                        self._executor, self.core.apply_batch, batch
                    )
                finally:
                    self._applying = False
                self.core.publish()
                self.stats["batches"] += 1
                reasons = self.stats["flush_reasons"]
                reasons[reason] = reasons.get(reason, 0) + 1
                self.stats["events_applied"] += outcome.applied
                self.stats["events_skipped"] += outcome.skipped
                self.stats["events_recovered"] += outcome.recovered
                if not self.queue:
                    self._idle.set()
        except BaseException as exc:  # pragma: no cover - defensive
            self._failure = exc
            self.queue.close()
            self._idle.set()
            raise
        finally:
            self._idle.set()

    # ------------------------------------------------------------------
    # read path — wait-free with respect to in-flight batches
    # ------------------------------------------------------------------
    def _count_query(self) -> None:
        self.stats["queries"] += 1
        if self._applying:
            self.stats["queries_during_apply"] += 1

    async def query_top_k(self, k: int = 10) -> Dict:
        """The k most central vertices in the latest snapshot, with the
        snapshot's version/watermark provenance."""
        snap = self.core.store.current()
        self._count_query()
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        k = min(k, snap.bc.size)
        order = np.argsort(snap.bc)[::-1][:k]
        return {
            "version": snap.version,
            "watermark": snap.watermark,
            "top": [(int(v), float(snap.bc[v])) for v in order],
        }

    async def query_bc(self, vertices: Optional[Sequence[int]] = None) -> Dict:
        """BC scores (all vertices, or a selection) from the latest
        snapshot, with version/watermark provenance."""
        snap = self.core.store.current()
        self._count_query()
        if vertices is None:
            scores = snap.bc.copy()
        else:
            scores = snap.bc[np.asarray(vertices, dtype=np.int64)]
        return {
            "version": snap.version,
            "watermark": snap.watermark,
            "scores": scores,
        }

    def snapshot(self) -> Snapshot:
        """Borrow the latest snapshot (valid until the caller yields)."""
        return self.core.store.current()

    def acquire_snapshot(self) -> Snapshot:
        """Pin and return the latest snapshot; it stays frozen across
        later commits until released (``with svc.acquire_snapshot():``)."""
        return self.core.store.acquire()

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    @property
    def watermark(self) -> int:
        """Events committed into the published state so far."""
        return self.core.store.watermark

    def health_report(self) -> Dict:
        """Engine health (PR-4 supervision ladder) plus service-level
        queue and flow counters — the degradation surface an operator
        watches."""
        report = dict(self.core.engine.health_report())
        report.update(
            queue_depth=len(self.queue),
            queue_capacity=self.queue.maxsize,
            applying=self._applying,
            watermark=self.watermark,
            snapshot_version=self.core.store.version,
            service=dict(self.stats,
                         flush_reasons=dict(self.stats["flush_reasons"])),
        )
        report["writes_degraded"] = self.writes_degraded
        if self._write_failure is not None:
            report["write_failure"] = (
                f"{type(self._write_failure).__name__}: {self._write_failure}"
            )
        if self._wal is not None:
            wal_report = {
                "directory": self._wal.directory,
                "ack_durable": self.ack_durable,
                "next_seq": self._wal.next_seq,
                "last_synced_seq": self._wal.last_synced_seq,
                "unsynced": self._wal.unsynced,
                "replayed_on_recovery": self.core.wal_replayed,
            }
            # size / fsync-lag / fencing-epoch / failure numbers an
            # operator (and the replication docs' decision table) keys
            # off — see WriteAheadLog.stats()
            wal_report.update(self._wal.stats())
            report["wal"] = wal_report
        return report
