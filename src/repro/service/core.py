"""Synchronous heart of the BC service: ordered batch application.

:class:`ServiceCore` owns the engine on behalf of the service and is
the *only* code that mutates it once the service is running.  It
applies coalesced event batches strictly in ingest order through the
exact per-event machinery :func:`repro.graph.stream.replay` uses
(:func:`~repro.graph.stream._apply_event`), so a service run is
bit-identical — reports, skipped events, counters, BC scores,
simulated-seconds left-fold, even checkpoint files — to replaying the
same event sequence in one batch call, for *every* coalescing
configuration (``tests/test_service.py`` is the differential proof).

On top of the replay semantics it adds the service bookkeeping:

* the **watermark** — how many stream events have been consumed —
  which stamps every published snapshot and every checkpoint
  (``event_index``), so resume restores the exact stream offset;
* periodic **checkpoints** on the same cadence as
  ``replay(checkpoint_every=N)`` (after every N-th event, even when
  that lands mid-batch), reusing the PR-2 checksummed NPZ format;
* snapshot **publication** into a :class:`~repro.service.snapshots.
  SnapshotStore` via the engine's ``bc_snapshot`` export hook.

The async front-end (:class:`~repro.service.service.BCService`) calls
:meth:`apply_batch` from a single worker thread and everything else
from the event loop; the core itself is deliberately synchronous and
single-threaded so the differential tests can drive it directly.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.graph.stream import (
    EdgeEvent,
    ReplayResult,
    _apply_event,
    _fold_health_events,
)
from repro.service.snapshots import Snapshot, SnapshotStore
from repro.utils.timing import WallTimer


@dataclass
class BatchOutcome:
    """What one coalesced batch did (service stats, not the report
    stream — the full per-event reports live in
    :attr:`ServiceCore.result`)."""

    events: int  #: stream events consumed by the batch
    applied: int  #: updates that produced a report
    skipped: int  #: no-op / failed events recorded as skipped
    recovered: int  #: updates that succeeded on the post-rollback retry
    first_index: int  #: watermark of the batch's first event
    watermark: int  #: watermark after the batch committed
    simulated_seconds: float  #: simulated cost added by the batch
    checkpoints: List[str]  #: checkpoint files written inside the batch


class ServiceCore:
    """Ordered, watermarked batch application over one engine."""

    def __init__(
        self,
        engine,
        *,
        store: Optional[SnapshotStore] = None,
        checkpoint_every: Optional[int] = None,
        checkpoint_dir=None,
        resume_from=None,
    ) -> None:
        if checkpoint_every is not None:
            if checkpoint_every < 1:
                raise ValueError(
                    f"checkpoint_every must be >= 1, got {checkpoint_every}"
                )
            if checkpoint_dir is None:
                raise ValueError("checkpoint_every requires checkpoint_dir")
            os.makedirs(checkpoint_dir, exist_ok=True)
        self.engine = engine
        self.store = store if store is not None else SnapshotStore()
        self.checkpoint_every = checkpoint_every
        self.checkpoint_dir = checkpoint_dir
        #: the same accumulator replay() fills — reports, skipped,
        #: recovered, guard/health events, checkpoints, totals
        self.result = ReplayResult(
            reports=[], simulated_seconds=0.0, wall_seconds=0.0
        )
        #: stream events consumed so far (event offset of the next event)
        self.watermark = 0
        self._sim_seconds = 0.0
        self._applied_before = 0
        if resume_from is not None:
            self._resume(resume_from)
        # Version 0 (or the first post-resume version) carries the
        # restored state so reads work before the first batch lands.
        self.publish()

    # ------------------------------------------------------------------
    def _resume(self, path) -> None:
        """Restore engine state and the exact stream watermark from a
        PR-2 checkpoint (see docs/RESILIENCE.md)."""
        from repro.resilience.checkpoint import load_checkpoint

        ckpt = load_checkpoint(path)
        ckpt.restore_into(self.engine)
        self.watermark = ckpt.event_index
        self._sim_seconds = ckpt.simulated_prefix
        self._applied_before = ckpt.applied_count
        self.result.start_index = self.watermark
        self.result.resumed_from = os.fspath(path)

    # ------------------------------------------------------------------
    @property
    def applied_total(self) -> int:
        """Updates applied across the whole stream (including any
        pre-resume prefix recorded in the checkpoint)."""
        return self._applied_before + len(self.result.reports)

    def publish(self) -> Snapshot:
        """Publish the engine's current BC scores at the current
        watermark (double-buffered copy through the engine's
        ``bc_snapshot`` hook)."""
        return self.store.publish_with(
            lambda out: self.engine.bc_snapshot(out=out),
            self.engine.state.num_vertices,
            self.watermark,
        )

    def apply_batch(self, events: Sequence[EdgeEvent]) -> BatchOutcome:
        """Apply one coalesced batch in ingest order.

        Each event goes through the replay machinery with
        retry-after-rollback enabled: a mid-update fault rolls the
        failing update back (the transaction journal), the event is
        retried once, and a deterministic failure is recorded as
        skipped — the batch, and the service, keep going.  Nothing is
        published here; the caller publishes *after* the batch commits
        so readers never observe a half-applied batch.
        """
        first_index = self.watermark
        applied = skipped = recovered = 0
        sim_before = self._sim_seconds
        checkpoints: List[str] = []
        timer = WallTimer()
        with timer:
            for event in events:
                index = self.watermark
                before_skip = len(self.result.skipped)
                before_rec = len(self.result.recovered)
                report = _apply_event(
                    self.engine, event, index, self.result, retry=True
                )
                if report is not None:
                    self.result.reports.append(report)
                    # Left-fold, matching replay(): a resumed or
                    # service-batched run reproduces the same float
                    # total as one uninterrupted pass.
                    self._sim_seconds += report.simulated_seconds
                    applied += 1
                skipped += len(self.result.skipped) - before_skip
                recovered += len(self.result.recovered) - before_rec
                self.watermark += 1
                _fold_health_events(self.engine, index, self.result, None)
                path = self._maybe_checkpoint()
                if path is not None:
                    checkpoints.append(path)
        self.result.simulated_seconds = self._sim_seconds
        self.result.wall_seconds += timer.elapsed
        return BatchOutcome(
            events=len(events),
            applied=applied,
            skipped=skipped,
            recovered=recovered,
            first_index=first_index,
            watermark=self.watermark,
            simulated_seconds=self._sim_seconds - sim_before,
            checkpoints=checkpoints,
        )

    def _maybe_checkpoint(self) -> Optional[str]:
        """Write a checkpoint when the watermark crosses the cadence —
        the same files, names and payloads ``replay(checkpoint_every=
        N)`` produces for the same stream."""
        if self.checkpoint_every is None:
            return None
        if self.watermark % self.checkpoint_every != 0:
            return None
        from repro.resilience.checkpoint import save_checkpoint

        path = os.path.join(
            os.fspath(self.checkpoint_dir), f"ckpt-{self.watermark:08d}.npz"
        )
        save_checkpoint(
            self.engine, path,
            event_index=self.watermark,
            simulated_prefix=self._sim_seconds,
            applied_count=self.applied_total,
        )
        self.result.checkpoints.append(path)
        return path

    def __repr__(self) -> str:
        return (f"ServiceCore(watermark={self.watermark}, "
                f"applied={len(self.result.reports)}, "
                f"skipped={len(self.result.skipped)})")
