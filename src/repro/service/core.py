"""Synchronous heart of the BC service: ordered batch application.

:class:`ServiceCore` owns the engine on behalf of the service and is
the *only* code that mutates it once the service is running.  It
applies coalesced event batches strictly in ingest order through the
exact per-event machinery :func:`repro.graph.stream.replay` uses
(:func:`~repro.graph.stream._apply_event`), so a service run is
bit-identical — reports, skipped events, counters, BC scores,
simulated-seconds left-fold, even checkpoint files — to replaying the
same event sequence in one batch call, for *every* coalescing
configuration (``tests/test_service.py`` is the differential proof).

On top of the replay semantics it adds the service bookkeeping:

* the **watermark** — how many stream events have been consumed —
  which stamps every published snapshot and every checkpoint
  (``event_index``), so resume restores the exact stream offset;
* periodic **checkpoints** on the same cadence as
  ``replay(checkpoint_every=N)`` (after every N-th event, even when
  that lands mid-batch), reusing the PR-2 checksummed NPZ format,
  with optional **retention** (``checkpoint_keep``) so the directory
  holds a bounded window of restore points;
* optional **journal integration**: given a
  :class:`~repro.resilience.wal.WriteAheadLog`, construction replays
  the journal tail past the restored checkpoint watermark through the
  same batch machinery (crash recovery — state lands bit-identical to
  an uninterrupted run), and every checkpoint triggers journal GC up
  to the oldest *retained* checkpoint's watermark;
* snapshot **publication** into a :class:`~repro.service.snapshots.
  SnapshotStore` via the engine's ``bc_snapshot`` export hook.

Because the core owns one engine for its whole life, a parallel engine
keeps its worker pool **warm across batches** — successive
:meth:`apply_batch` calls reuse the same workers, shared-memory arena
and result slabs with no respawn (and an externally supplied
``DynamicBC(pool=...)`` pool even survives engine replacement).
:meth:`transport_report` exposes the engine's cumulative result-path
accounting for the service's observability surface.

The async front-end (:class:`~repro.service.service.BCService`) calls
:meth:`apply_batch` from a single worker thread and everything else
from the event loop; the core itself is deliberately synchronous and
single-threaded so the differential tests can drive it directly.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.graph.stream import (
    EdgeEvent,
    ReplayResult,
    _apply_event,
    _fold_health_events,
)
from repro.service.snapshots import Snapshot, SnapshotStore
from repro.utils.timing import WallTimer


@dataclass
class BatchOutcome:
    """What one coalesced batch did (service stats, not the report
    stream — the full per-event reports live in
    :attr:`ServiceCore.result`)."""

    events: int  #: stream events consumed by the batch
    applied: int  #: updates that produced a report
    skipped: int  #: no-op / failed events recorded as skipped
    recovered: int  #: updates that succeeded on the post-rollback retry
    first_index: int  #: watermark of the batch's first event
    watermark: int  #: watermark after the batch committed
    simulated_seconds: float  #: simulated cost added by the batch
    checkpoints: List[str]  #: checkpoint files written inside the batch


class ServiceCore:
    """Ordered, watermarked batch application over one engine."""

    def __init__(
        self,
        engine,
        *,
        store: Optional[SnapshotStore] = None,
        checkpoint_every: Optional[int] = None,
        checkpoint_dir=None,
        checkpoint_keep: Optional[int] = None,
        resume_from=None,
        wal=None,
    ) -> None:
        if checkpoint_every is not None:
            if checkpoint_every < 1:
                raise ValueError(
                    f"checkpoint_every must be >= 1, got {checkpoint_every}"
                )
            if checkpoint_dir is None:
                raise ValueError("checkpoint_every requires checkpoint_dir")
        if checkpoint_keep is not None and checkpoint_keep < 1:
            raise ValueError(
                f"checkpoint_keep must be >= 1, got {checkpoint_keep}"
            )
        if checkpoint_dir is not None:
            os.makedirs(checkpoint_dir, exist_ok=True)
        self.engine = engine
        self.store = store if store is not None else SnapshotStore()
        self.checkpoint_every = checkpoint_every
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_keep = checkpoint_keep
        #: the journal (repro.resilience.wal.WriteAheadLog) when the
        #: service runs durable; the core replays its tail on resume
        #: and GCs its segments behind the retained checkpoints
        self.wal = wal
        #: journal records replayed during construction (crash recovery)
        self.wal_replayed = 0
        #: the same accumulator replay() fills — reports, skipped,
        #: recovered, guard/health events, checkpoints, totals
        self.result = ReplayResult(
            reports=[], simulated_seconds=0.0, wall_seconds=0.0
        )
        #: stream events consumed so far (event offset of the next event)
        self.watermark = 0
        self._sim_seconds = 0.0
        self._applied_before = 0
        if resume_from is not None:
            self._resume(resume_from)
        if self.wal is not None:
            self._replay_wal_tail()
        # Version 0 (or the first post-resume version) carries the
        # restored state so reads work before the first batch lands.
        self.publish()

    # ------------------------------------------------------------------
    def _resume(self, path) -> None:
        """Restore engine state and the exact stream watermark from a
        PR-2 checkpoint (see docs/RESILIENCE.md).  *path* may be a
        checkpoint directory; corrupt files fall back to the
        next-newest retained checkpoint with a warning."""
        from repro.resilience.checkpoint import resolve_resume

        ckpt, resolved, _ = resolve_resume(path)
        ckpt.restore_into(self.engine)
        self.watermark = ckpt.event_index
        self._sim_seconds = ckpt.simulated_prefix
        self._applied_before = ckpt.applied_count
        self.result.start_index = self.watermark
        self.result.resumed_from = os.fspath(resolved)

    def _replay_wal_tail(self) -> None:
        """Crash recovery: apply the journal records past the restored
        watermark through the normal batch machinery, then reconcile
        the journal cursor.

        The journal holds every event the service accepted before the
        crash (append happens before enqueue), so after this the engine
        state is bit-identical to a run that never crashed — modulo the
        unacknowledged suffix the torn-tail truncation removed.
        """
        from repro.resilience.errors import WalError

        tail = self.wal.scan.events_from(self.watermark)
        if tail:
            if tail[0][0] != self.watermark:
                raise WalError(
                    self.wal.directory,
                    f"journal gap: restored watermark {self.watermark} but "
                    f"the journal tail starts at seq {tail[0][0]} — the "
                    f"segments covering the gap were lost",
                )
            self.apply_batch([event for _, event in tail])
        self.wal.align(self.watermark)
        self.wal_replayed = len(tail)

    # ------------------------------------------------------------------
    @property
    def applied_total(self) -> int:
        """Updates applied across the whole stream (including any
        pre-resume prefix recorded in the checkpoint)."""
        return self._applied_before + len(self.result.reports)

    def transport_report(self) -> dict:
        """The engine's cumulative result-path accounting (rounds,
        queue/slab bytes, dispatch/decode/fold seconds, backend) across
        every batch this core has applied — empty when the engine runs
        serial or exposes no report."""
        report = getattr(self.engine, "transport_report", None)
        if report is None:
            return {}
        return report()

    def publish(self) -> Snapshot:
        """Publish the engine's current BC scores at the current
        watermark (double-buffered copy through the engine's
        ``bc_snapshot`` hook)."""
        return self.store.publish_with(
            lambda out: self.engine.bc_snapshot(out=out),
            self.engine.state.num_vertices,
            self.watermark,
        )

    def apply_batch(self, events: Sequence[EdgeEvent]) -> BatchOutcome:
        """Apply one coalesced batch in ingest order.

        Each event goes through the replay machinery with
        retry-after-rollback enabled: a mid-update fault rolls the
        failing update back (the transaction journal), the event is
        retried once, and a deterministic failure is recorded as
        skipped — the batch, and the service, keep going.  Nothing is
        published here; the caller publishes *after* the batch commits
        so readers never observe a half-applied batch.
        """
        first_index = self.watermark
        applied = skipped = recovered = 0
        sim_before = self._sim_seconds
        checkpoints: List[str] = []
        timer = WallTimer()
        with timer:
            for event in events:
                index = self.watermark
                before_skip = len(self.result.skipped)
                before_rec = len(self.result.recovered)
                report = _apply_event(
                    self.engine, event, index, self.result, retry=True
                )
                if report is not None:
                    self.result.reports.append(report)
                    # Left-fold, matching replay(): a resumed or
                    # service-batched run reproduces the same float
                    # total as one uninterrupted pass.
                    self._sim_seconds += report.simulated_seconds
                    applied += 1
                skipped += len(self.result.skipped) - before_skip
                recovered += len(self.result.recovered) - before_rec
                self.watermark += 1
                _fold_health_events(self.engine, index, self.result, None)
                path = self._maybe_checkpoint()
                if path is not None:
                    checkpoints.append(path)
        self.result.simulated_seconds = self._sim_seconds
        self.result.wall_seconds += timer.elapsed
        return BatchOutcome(
            events=len(events),
            applied=applied,
            skipped=skipped,
            recovered=recovered,
            first_index=first_index,
            watermark=self.watermark,
            simulated_seconds=self._sim_seconds - sim_before,
            checkpoints=checkpoints,
        )

    def _maybe_checkpoint(self) -> Optional[str]:
        """Write a checkpoint when the watermark crosses the cadence —
        the same files, names and payloads ``replay(checkpoint_every=
        N)`` produces for the same stream."""
        if self.checkpoint_every is None:
            return None
        if self.watermark % self.checkpoint_every != 0:
            return None
        return self._checkpoint()

    def checkpoint_now(self) -> Optional[str]:
        """Write a checkpoint at the current watermark regardless of
        cadence (graceful shutdown / ``kill -TERM``), so restart
        replays as little of the journal as possible.  ``None`` when
        no checkpoint directory is configured."""
        if self.checkpoint_dir is None:
            return None
        return self._checkpoint()

    def _checkpoint(self) -> str:
        from repro.resilience.checkpoint import save_checkpoint

        path = os.path.join(
            os.fspath(self.checkpoint_dir), f"ckpt-{self.watermark:08d}.npz"
        )
        save_checkpoint(
            self.engine, path,
            event_index=self.watermark,
            simulated_prefix=self._sim_seconds,
            applied_count=self.applied_total,
        )
        if path not in self.result.checkpoints:
            self.result.checkpoints.append(path)
        self._after_checkpoint()
        return path

    def _after_checkpoint(self) -> None:
        """Enforce checkpoint retention, then GC journal segments no
        restore can need: recovery replays from the oldest *retained*
        checkpoint at worst, so its watermark bounds the journal."""
        from repro.resilience.checkpoint import (
            checkpoint_watermark,
            find_checkpoints,
            retain_checkpoints,
        )

        if self.checkpoint_keep is not None:
            retain_checkpoints(self.checkpoint_dir, self.checkpoint_keep)
        if self.wal is not None:
            kept = find_checkpoints(self.checkpoint_dir)
            if kept:
                horizon = checkpoint_watermark(kept[0])
                if horizon is not None:
                    self.wal.gc(horizon)

    def __repr__(self) -> str:
        return (f"ServiceCore(watermark={self.watermark}, "
                f"applied={len(self.result.reports)}, "
                f"skipped={len(self.result.skipped)})")
