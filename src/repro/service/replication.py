"""Hot-standby replication: WAL shipping, read replicas, fenced failover.

PR 7 made a single node RPO-zero (an acked write survives ``kill -9``)
but left availability at the mercy of that one process: until someone
runs ``recover``, queries are down.  This module adds the standby half
of the story, following the textbook primary/replica shape over the
journal that already exists::

        primary BCService                      follower ReplicaService
    submit -> WAL append/fsync  ----------->  WalTailer.poll()
           -> IngestQueue                        |
           -> ServiceCore.apply_batch         ServiceCore.apply_batch
           -> SnapshotStore                   SnapshotStore
                 |                                  |
           query_* (fresh)                query_* (stale-bounded, with
                                          advertised lag watermark)

The follower never talks to the primary process — the *journal
directory* is the replication stream (WAL shipping over a shared or
mirrored filesystem).  Because both sides apply the identical record
sequence through the identical machinery
(:meth:`~repro.service.core.ServiceCore.apply_batch`), the replica's
BC scores, counters, reports and watermark are **bit-identical** to
the primary's at every shared watermark — the same differential
argument the service layer itself rests on, extended across processes
(``tests/test_service_replication.py``).

Failover is *epoch-fenced*: :meth:`ReplicaService.promote` bumps the
monotonic fencing token (the ``FENCE`` file next to the segments)
**before** it seals and replays the tail, so a deposed primary that
is merely slow — not dead — has its next group commit refused
(:class:`~repro.resilience.errors.WalFencedError`) before a single
byte lands.  Split-brain becomes an error the old primary observes,
not a divergence the operator discovers.  The promoted replica then
owns the journal at the new epoch and accepts writes with zero
acked-write loss: every record a client was ever acked is durable in
the journal the replica just replayed.

Retention cooperates with tailing: each follower advertises its
position in a ``replica-<id>.pos`` sidecar, and
:meth:`~repro.resilience.wal.WriteAheadLog.gc` clamps its horizon to
the slowest advertised position — a lagging follower bounds journal
size instead of getting its segments deleted out from under it.
"""

from __future__ import annotations

import asyncio
import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.resilience.wal import (
    WalTailer,
    WriteAheadLog,
    clear_replica_position,
    read_fence,
    record_replica_position,
    write_fence,
)
from repro.service.core import ServiceCore
from repro.service.snapshots import Snapshot, SnapshotStore
from repro.utils.timing import WallTimer

#: how long the background tailer sleeps after an empty poll (seconds)
DEFAULT_POLL_INTERVAL = 0.005
#: records applied per replica batch (bounds apply-thread latency)
DEFAULT_MAX_BATCH = 256


class StaleReadError(RuntimeError):
    """A stale-bounded read could not be served within its bound.

    Raised by the replica's query methods when the caller demanded
    ``min_watermark`` and the latest local snapshot is older: the
    caller asked to *not* see state this stale, so lying is not an
    option.  Retry after the replica catches up, or read the primary.
    """

    def __init__(self, watermark: int, min_watermark: int) -> None:
        self.watermark = int(watermark)
        self.min_watermark = int(min_watermark)
        super().__init__(
            f"replica snapshot is at watermark {watermark}, caller "
            f"requires >= {min_watermark} (lag "
            f"{min_watermark - watermark} records)"
        )


@dataclass
class Promotion:
    """Everything :meth:`ReplicaService.promote` hands the caller.

    ``core`` is the replica's (now fully caught-up) state machine and
    ``wal`` the journal reopened at the new fencing ``epoch`` — pass
    them to ``BCService(core.engine, core=promotion.core,
    wal=promotion.wal)`` to start serving writes.  ``seconds`` is the
    promotion's own wall time (the recovery-time share failover
    control logic contributes; the drill adds detection time on top).
    """

    core: ServiceCore
    wal: WriteAheadLog
    epoch: int
    watermark: int
    replayed: int  #: records applied while sealing the tail
    seconds: float


class ReplicaService:
    """A follower applying the primary's journal, serving snapshot
    reads, and ready to be promoted.

    Synchronous core (:meth:`catch_up`, :meth:`promote`) with an
    optional asyncio front half (:meth:`start` / :meth:`stop`) that
    keeps tailing in the background the way ``BCService`` keeps
    flushing; both halves drive the same :class:`ServiceCore`, so the
    differential guarantees carry over unchanged.

    Parameters
    ----------
    engine:
        A fresh engine over the same graph the primary started from.
    wal_dir:
        The primary's journal directory (the replication stream).
    replica_id:
        Name under which this follower advertises its position for
        GC retention (``replica-<id>.pos``).
    resume_from:
        Optional checkpoint path/directory for bootstrapping a
        follower that joins after journal GC: state is restored from
        the checkpoint (a base backup) and tailing starts at its
        watermark.
    """

    def __init__(
        self,
        engine,
        wal_dir,
        *,
        replica_id: str = "replica",
        store: Optional[SnapshotStore] = None,
        resume_from=None,
        poll_interval: float = DEFAULT_POLL_INTERVAL,
        max_batch: int = DEFAULT_MAX_BATCH,
    ) -> None:
        if poll_interval <= 0:
            raise ValueError(
                f"poll_interval must be > 0, got {poll_interval}"
            )
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.replica_id = str(replica_id)
        self.poll_interval = float(poll_interval)
        self.max_batch = int(max_batch)
        #: same state machine as the primary — no wal (the replica
        #: only *reads* the journal), no checkpoints until promotion
        self.core = ServiceCore(engine, store=store, resume_from=resume_from)
        self.wal_dir = wal_dir
        self.tailer = WalTailer(wal_dir, start_seq=self.core.watermark)
        # Advertise before the first poll: from this moment GC can
        # never delete a segment this follower still needs.
        record_replica_position(wal_dir, self.replica_id, self.core.watermark)
        self.stats: Dict = {
            "batches": 0,
            "records_applied": 0,
            "queries": 0,
            "stale_rejections": 0,
        }
        self._tailer_task: Optional[asyncio.Task] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._promoted = False
        self._failure: Optional[BaseException] = None

    # ------------------------------------------------------------------
    # replication (synchronous half)
    # ------------------------------------------------------------------
    @property
    def watermark(self) -> int:
        """Records applied into the published replica state."""
        return self.core.store.watermark

    @property
    def lag_records(self) -> int:
        """Records fetched from the journal but not yet applied
        (``0`` when the replica is at its last observed tip)."""
        return max(0, self.tailer.last_seen_seq + 1 - self.core.watermark)

    def catch_up(self, max_batches: Optional[int] = None) -> int:
        """Apply every complete journal record past the watermark
        (bounded by *max_batches*); returns how many were applied.

        Safe to call repeatedly and from the async tailer's executor —
        the core applies records strictly in sequence, publishes after
        each batch (readers never see a half-applied batch), and
        re-advertises the follower position for GC retention.
        """
        self._raise_if_failed()
        applied = 0
        batches = 0
        while max_batches is None or batches < max_batches:
            records = self.tailer.poll(self.max_batch)
            if not records:
                break
            self.core.apply_batch([event for _, event in records])
            self.core.publish()
            record_replica_position(
                self.wal_dir, self.replica_id, self.core.watermark
            )
            applied += len(records)
            batches += 1
            self.stats["batches"] += 1
            self.stats["records_applied"] += len(records)
        return applied

    # ------------------------------------------------------------------
    # lifecycle (async half)
    # ------------------------------------------------------------------
    def start(self) -> "ReplicaService":
        """Start the background tailer (idempotent); requires a
        running event loop."""
        if self._promoted:
            raise RuntimeError("replica was promoted; start a BCService "
                               "on the Promotion instead")
        if self._tailer_task is None:
            self._executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="bc-replica-apply"
            )
            self._tailer_task = asyncio.get_running_loop().create_task(
                self._run_tailer()
            )
        return self

    async def stop(self, *, deregister: bool = False) -> None:
        """Stop tailing.  With ``deregister=True`` the follower's
        retention position is removed so journal GC stops waiting for
        it (a follower that is gone for good must not pin segments
        forever)."""
        if self._tailer_task is not None:
            self._tailer_task.cancel()
            await asyncio.gather(self._tailer_task, return_exceptions=True)
            self._tailer_task = None
        if self._executor is not None:
            # shutdown(wait=True) joins the apply thread — off the loop.
            await asyncio.to_thread(self._executor.shutdown, wait=True)
            self._executor = None
        if deregister:
            # Position removal unlinks a file; keep it off the loop too.
            await asyncio.to_thread(
                clear_replica_position, self.wal_dir, self.replica_id
            )
        self._raise_if_failed()

    async def __aenter__(self) -> "ReplicaService":
        return self.start()

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    def _raise_if_failed(self) -> None:
        if self._failure is not None:
            raise RuntimeError("replica tailer failed") from self._failure

    async def _run_tailer(self) -> None:
        """Poll -> apply -> publish loop on a one-thread executor, so
        the loop keeps serving queries while a batch applies."""
        loop = asyncio.get_running_loop()
        try:
            while True:
                applied = await loop.run_in_executor(
                    self._executor, self.catch_up, 1
                )
                if applied == 0:
                    await asyncio.sleep(self.poll_interval)
        except asyncio.CancelledError:
            raise
        except BaseException as exc:
            self._failure = exc
            raise

    # ------------------------------------------------------------------
    # read path — stale-bounded snapshot queries
    # ------------------------------------------------------------------
    def _snapshot_for_read(self, min_watermark: Optional[int]) -> Snapshot:
        self.stats["queries"] += 1
        snap = self.core.store.current()
        if min_watermark is not None and snap.watermark < min_watermark:
            self.stats["stale_rejections"] += 1
            raise StaleReadError(snap.watermark, min_watermark)
        return snap

    async def query_top_k(
        self, k: int = 10, *, min_watermark: Optional[int] = None,
    ) -> Dict:
        """The k most central vertices in the replica's latest
        snapshot, stamped with the replication provenance a caller
        needs to reason about staleness (watermark, lag).

        *min_watermark* makes the read stale-*bounded*: the replica
        refuses (:class:`StaleReadError`) rather than serve state
        older than the caller's bound — e.g. a client that just got
        an acked write at sequence ``s`` from the primary passes
        ``min_watermark=s + 1`` for read-your-writes.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        snap = self._snapshot_for_read(min_watermark)
        k = min(k, snap.bc.size)
        order = np.argsort(snap.bc)[::-1][:k]
        return {
            "version": snap.version,
            "watermark": snap.watermark,
            "replica": self.replica_id,
            "lag_records": self.lag_records,
            "top": [(int(v), float(snap.bc[v])) for v in order],
        }

    async def query_bc(
        self,
        vertices: Optional[Sequence[int]] = None,
        *,
        min_watermark: Optional[int] = None,
    ) -> Dict:
        """BC scores from the replica's latest snapshot with
        watermark/lag provenance (see :meth:`query_top_k` for the
        *min_watermark* stale bound)."""
        snap = self._snapshot_for_read(min_watermark)
        if vertices is None:
            scores = snap.bc.copy()
        else:
            scores = snap.bc[np.asarray(vertices, dtype=np.int64)]
        return {
            "version": snap.version,
            "watermark": snap.watermark,
            "replica": self.replica_id,
            "lag_records": self.lag_records,
            "scores": scores,
        }

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def health_report(self) -> Dict:
        """Engine health plus the replication surface: watermark, the
        highest journal sequence observed, lag in records, tailer
        progress counters, and the journal epoch."""
        report = dict(self.core.engine.health_report())
        report.update(
            role="replica",
            replica_id=self.replica_id,
            watermark=self.watermark,
            last_seen_seq=self.tailer.last_seen_seq,
            lag_records=self.lag_records,
            epoch=read_fence(self.wal_dir),
            polls=self.tailer.polls,
            rotations=self.tailer.rotations,
            promoted=self._promoted,
            snapshot_version=self.core.store.version,
            replication=dict(self.stats),
        )
        return report

    # ------------------------------------------------------------------
    # failover
    # ------------------------------------------------------------------
    def promote(
        self,
        *,
        checkpoint_every: Optional[int] = None,
        checkpoint_dir=None,
        checkpoint_keep: Optional[int] = None,
    ) -> Promotion:
        """Fence the old primary and take ownership of the journal.

        The order is the protocol (docs/RESILIENCE.md §7):

        1. **fence** — bump the epoch token first.  From the moment
           the fence file is durable, any group commit the deposed
           primary attempts raises
           :class:`~repro.resilience.errors.WalFencedError` before a
           byte lands, so the tail this promotion is about to seal
           can no longer grow behind our back.
        2. **seal** — drain the tailer until two consecutive polls
           return nothing: the replica has now applied every complete
           record the old primary ever durably wrote (zero acked-write
           loss — an acked record is by definition one of these).
        3. **own** — reopen the journal as a writer at the new epoch.
           The open scan truncates a torn tail (the old primary's
           mid-write partial record — never acked, legal to drop) and
           the append cursor must land exactly on our watermark.
        4. **advertise** — drop our own retention position (we are no
           longer a follower) and record the transition in the guard
           log's ``HEALTH`` stream.

        Returns a :class:`Promotion`; serve writes by wrapping it in
        ``BCService(promotion.core.engine, core=promotion.core,
        wal=promotion.wal)``.  Call with the tailer stopped.
        """
        from repro.resilience.errors import WalError
        from repro.resilience.guards import HEALTH, GuardEvent

        if self._promoted:
            raise RuntimeError("replica already promoted")
        if self._tailer_task is not None:
            raise RuntimeError("stop() the replica before promote()")
        timer = WallTimer()
        with timer:
            epoch = write_fence(self.wal_dir, read_fence(self.wal_dir) + 1)
            replayed = 0
            dry = 0
            while dry < 2:
                applied = self.catch_up()
                replayed += applied
                dry = dry + 1 if applied == 0 else 0
            wal = WriteAheadLog(self.wal_dir, epoch=epoch)
            if wal.next_seq != self.core.watermark:
                raise WalError(
                    self.wal_dir,
                    f"promotion cursor mismatch: journal resumes at seq "
                    f"{wal.next_seq} but the replica applied through "
                    f"{self.core.watermark}",
                )
            self.core.wal = wal
            if checkpoint_every is not None or checkpoint_dir is not None:
                # The follower never checkpointed; the new primary
                # should.  Same validation as ServiceCore construction.
                if checkpoint_every is not None and checkpoint_dir is None:
                    raise ValueError(
                        "checkpoint_every requires checkpoint_dir"
                    )
                os.makedirs(checkpoint_dir, exist_ok=True)
                self.core.checkpoint_every = checkpoint_every
                self.core.checkpoint_dir = checkpoint_dir
                self.core.checkpoint_keep = checkpoint_keep
            clear_replica_position(self.wal_dir, self.replica_id)
            self._promoted = True
            self.core.result.guard_events.append(
                GuardEvent(
                    self.core.watermark, HEALTH, "promoted", -1,
                    f"replica {self.replica_id!r} promoted to primary at "
                    f"epoch {epoch}, watermark {self.core.watermark} "
                    f"({replayed} records sealed)",
                )
            )
        return Promotion(
            core=self.core,
            wal=wal,
            epoch=epoch,
            watermark=self.core.watermark,
            replayed=replayed,
            seconds=timer.elapsed,
        )

    def __repr__(self) -> str:
        return (f"ReplicaService({self.replica_id!r}, "
                f"watermark={self.watermark}, lag={self.lag_records}, "
                f"promoted={self._promoted})")
